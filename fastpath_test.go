package countnet

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// Acceptance gate for the batched fast path: TraverseBatch(wire, k) must
// produce the same quiescent output-wire token counts as k successive
// Traverse(wire) calls on every network constructor the package ships.
func fastpathConstructors(t *testing.T) []struct {
	name  string
	build func() (*Network, error)
} {
	t.Helper()
	return []struct {
		name  string
		build func() (*Network, error)
	}{
		{"CWT(8,8)", func() (*Network, error) { return NewCWT(8, 8) }},
		{"CWT(8,16)", func() (*Network, error) { return NewCWT(8, 16) }},
		{"CWT(16,64)", func() (*Network, error) { return NewCWT(16, 64) }},
		{"bitonic(8)", func() (*Network, error) { return NewBitonic(8) }},
		{"bitonic(16)", func() (*Network, error) { return NewBitonic(16) }},
		{"periodic(8)", func() (*Network, error) { return NewPeriodic(8) }},
		{"periodic(16)", func() (*Network, error) { return NewPeriodic(16) }},
		{"fwd-butterfly(16)", func() (*Network, error) { return NewForwardButterfly(16) }},
		{"bwd-butterfly(16)", func() (*Network, error) { return NewBackwardButterfly(16) }},
		{"merger(16,2)", func() (*Network, error) { return NewMerger(16, 2) }},
		{"ladder(8)", func() (*Network, error) { return NewLadder(8) }},
		{"toggle-tree(8)", func() (*Network, error) { return NewToggleTree(8) }},
	}
}

func TestTraverseBatchMatchesTraverseEverywhere(t *testing.T) {
	for _, c := range fastpathConstructors(t) {
		t.Run(c.name, func(t *testing.T) {
			batched, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			singles, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int64, batched.OutWidth())
			want := make([]int64, singles.OutWidth())
			// A mixed schedule across all wires and several batch sizes,
			// including k == width and k >> width.
			w := batched.InWidth()
			for round, k := range []int64{1, 2, 3, int64(w), 2*int64(w) + 1, 97} {
				for wire := 0; wire < w; wire++ {
					if (wire+round)%3 == 0 {
						continue // leave gaps so wires see unequal traffic
					}
					batched.TraverseBatchInto(wire, k, got)
					for i := int64(0); i < k; i++ {
						want[singles.Traverse(wire)]++
					}
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("batched exit counts %v\n want (single-token) %v", got, want)
			}
			for i := 0; i < batched.Size(); i++ {
				if batched.Node(i).Balancer().Count() != singles.Node(i).Balancer().Count() {
					t.Fatalf("balancer %d state diverged after batches", i)
				}
			}
		})
	}
}

// The antitoken mirror of the acceptance gate: TraverseAntiBatch(wire, k)
// must produce the same exit tallies and balancer states as k successive
// TraverseAnti(wire) calls on every constructor the package ships, both
// on fresh networks and after a token preload.
func TestTraverseAntiBatchMatchesTraverseAntiEverywhere(t *testing.T) {
	for _, c := range fastpathConstructors(t) {
		t.Run(c.name, func(t *testing.T) {
			batched, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			singles, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int64, batched.OutWidth())
			want := make([]int64, singles.OutWidth())
			w := batched.InWidth()
			// Preload tokens so antitokens retract real state, then mix
			// anti-batch sizes across wires (the negative-count regime is
			// reached once the preload is exhausted).
			for wire := 0; wire < w; wire++ {
				batched.TraverseBatchInto(wire, 11, make([]int64, batched.OutWidth()))
				singles.TraverseBatchInto(wire, 11, make([]int64, singles.OutWidth()))
			}
			for round, k := range []int64{1, 2, 3, int64(w), 2*int64(w) + 1, 97} {
				for wire := 0; wire < w; wire++ {
					if (wire+round)%3 == 0 {
						continue
					}
					batched.TraverseAntiBatchInto(wire, k, got)
					for i := int64(0); i < k; i++ {
						want[singles.TraverseAnti(wire)]++
					}
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("anti-batched exit counts %v\n want (single-antitoken) %v", got, want)
			}
			for i := 0; i < batched.Size(); i++ {
				if batched.Node(i).Balancer().Count() != singles.Node(i).Balancer().Count() {
					t.Fatalf("balancer %d state diverged after anti batches", i)
				}
			}
		})
	}
}

// The step property must hold in every quiescent state reached purely by
// batched traversal on the counting networks.
func TestTraverseBatchPreservesStepProperty(t *testing.T) {
	for _, c := range fastpathConstructors(t) {
		switch c.name {
		case "fwd-butterfly(16)", "bwd-butterfly(16)", "merger(16,2)", "ladder(8)":
			continue // smoothing/merging families: step not guaranteed
		}
		t.Run(c.name, func(t *testing.T) {
			n, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int64, n.OutWidth())
			for b, k := range []int64{5, 1, 16, 42, 3} {
				n.TraverseBatchInto(b%n.InWidth(), k, out)
				step := true
				for i := 1; i < len(out); i++ {
					if out[i] > out[i-1] || out[0]-out[i] > 1 {
						step = false
					}
				}
				if !step {
					t.Fatalf("after batch %d the exit counts %v are not step", b, out)
				}
			}
		})
	}
}

// End-to-end: the facade's batched / sharded / eliminating counters
// behave as documented under concurrent load.
func TestFastPathCountersEndToEnd(t *testing.T) {
	t.Run("batched", func(t *testing.T) {
		net, err := NewCWT(8, 16)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatchedCounter(net, 8)
		const goroutines, per = 6, 300
		vals := make([][]int64, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					vals[g] = append(vals[g], b.Inc(g))
				}
			}(g)
		}
		wg.Wait()
		seen := make(map[int64]bool)
		for _, vs := range vals {
			for _, v := range vs {
				if seen[v] {
					t.Fatalf("duplicate value %d", v)
				}
				seen[v] = true
			}
		}
		if b.Issued() != goroutines*per+b.Buffered() {
			t.Fatalf("claimed %d != returned %d + buffered %d", b.Issued(), goroutines*per, b.Buffered())
		}
	})

	t.Run("sharded", func(t *testing.T) {
		s, err := NewShardedCounter(4, func() (*Network, error) { return NewCWT(8, 8) })
		if err != nil {
			t.Fatal(err)
		}
		var all []int64
		for pid := 0; pid < 40; pid++ {
			for i := 0; i < 5; i++ {
				all = append(all, s.Inc(pid))
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("duplicate value %d", all[i])
			}
		}
		if s.Issued() != int64(len(all)) {
			t.Fatalf("Issued() = %d, want %d", s.Issued(), len(all))
		}
	})

	t.Run("eliminating", func(t *testing.T) {
		net, err := NewCWT(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEliminatingCounter(net, EliminationOptions{Slots: 4, Spin: 128})
		if err != nil {
			t.Fatal(err)
		}
		const pairs, per = 3, 200
		var wg sync.WaitGroup
		for g := 0; g < pairs; g++ {
			wg.Add(2)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					e.Inc(pid)
				}
			}(g)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					e.Dec(pid)
				}
			}(g)
		}
		wg.Wait()
		if got := 2*e.Pairs() + e.Misses(); got != 2*pairs*per {
			t.Fatalf("2*pairs + misses = %d, want %d", got, 2*pairs*per)
		}
	})
}
