// Command countlint is the repository's static-analysis gate: six
// dependency-free analyzers (stdlib go/ast + go/types, no x/tools)
// that mechanize the invariants the tree previously kept by reviewer
// discipline — no unyielded spin loops, atomics-only access to fields
// touched by sync/atomic, Makefile ↔ ci.yml pinned-gate lockstep,
// paired build-tag fallbacks, the single xport.ErrClosed sentinel
// compared only with errors.Is, and Prometheus metric naming synced
// with ctlplanedoc's healthy-range catalogue.
//
// Usage:
//
//	countlint [-list] [-root dir] [packages]
//
// Packages default to ./... under the module root. Output is one
// finding per line in the stable, sorted form
//
//	file:line:col: analyzer: message
//
// so CI diffs are reviewable and the tool is scriptable. Exit status:
// 0 clean, 1 findings, 2 the tree could not be loaded. A finding can
// be waived in place with `//lint:ignore <analyzer> <reason>`; the
// policy for acceptable waivers is in OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		list = flag.Bool("list", false, "print analyzer names and one-line docs, then exit")
		root = flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "countlint: %v\n", err)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "countlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		// Positions are already module-root-relative: stable output no
		// matter where the tool runs.
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "countlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findRoot walks up from the working directory to the enclosing go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s; pass -root", dir)
		}
		dir = parent
	}
}
