// Command countbench regenerates the paper's quantitative results — the
// tables recorded in EXPERIMENTS.md. Each experiment is selected with
// -exp; -exp all runs everything:
//
//	countbench -exp depth        # E1/E2: depth formulas
//	countbench -exp contention   # E10: cont(C(w,t),n) sweeps over n and t
//	countbench -exp compare      # E11/E12: families head to head
//	countbench -exp blocks       # E10: per-block stall attribution vs t
//	countbench -exp slope        # E10: contention-vs-n slopes vs theory
//	countbench -exp throughput   # E13: wall-clock counter throughput
//	countbench -exp fastpath     # E23: batched/sharded fast-path throughput
//	countbench -exp elim         # E24: Inc/Dec elimination rate and speedup
//	countbench -exp dist         # E13: distributed emulation throughput
//	countbench -exp distbatch    # E25: distributed msgs/token, batched protocol
//	countbench -exp distshard    # E26: sharded deployments, cost vs stripe count S
//	countbench -exp dedup        # E27: exactly-once dedup overhead + kill/retry
//	countbench -exp udp          # E28: UDP datagram transport vs injected loss
//	countbench -exp ctlplane     # E29: control-plane scrape overhead (HTTP /metrics mid-run)
//	countbench -exp udpspeed     # E30: raw-speed datagram path (workers × pipeline × batched syscalls)
//	countbench -exp transports   # E31: one protocol core over tcp/udp/inproc — identical frame bills
//	countbench -exp latency      # E32: flight-latency distributions (p50/p95/p99/max per transport×k cell)
//	countbench -exp timesim      # E13: queueing simulation (host-independent)
//	countbench -exp linearize    # E18: linearizability observation
//	countbench -exp ablation     # E16/E17: bitonic merger, random init
//
// The table-producing logic lives in internal/experiments (tested); this
// command is a thin front-end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ctlplane"
	"repro/internal/distnet"
	"repro/internal/dtree"
	"repro/internal/experiments"
	"repro/internal/inproc"
	"repro/internal/network"
	"repro/internal/periodic"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tcpnet"
	"repro/internal/timesim"
	"repro/internal/udpnet"
	"repro/internal/wire"
	"repro/internal/xport"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "depth | contention | compare | blocks | slope | throughput | fastpath | elim | dist | distbatch | distshard | dedup | udp | ctlplane | udpspeed | transports | latency | timesim | linearize | ablation | all")
		rounds   = flag.Int("rounds", 60, "tokens per process in simulations")
		opsK     = flag.Int("ops", 50, "thousands of operations per throughput cell")
		shards   = flag.Int("shards", 4, "max stripe count S for sharded-deployment experiments")
		workers  = flag.Int("workers", 4, "shard worker-pool size for the E30 tuned rows")
		pipeline = flag.Int("pipeline", 4, "session pipeline depth for the E30 tuned rows")
		out      = flag.String("out", "", "JSON output path (stable schema; -exp ctlplane, udpspeed and transports)")
	)
	flag.Parse()

	// Wall-clock numbers are only comparable across runs with the same
	// processor budget: a 1-CPU container (the E23/E24 tables) cannot show
	// cache-line contention, which is what sharding and elimination are
	// for. Stamp every run so recorded tables are attributable — shard
	// count, worker-pool size and pipeline depth included.
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d shards=%d workers=%d pipeline=%d\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *shards, *workers, *pipeline)

	run := map[string]func(){
		"depth":      expDepth,
		"contention": func() { expContention(*rounds) },
		"compare":    func() { expCompare(*rounds) },
		"blocks":     func() { expBlocks(*rounds) },
		"slope":      func() { expSlope(*rounds) },
		"throughput": func() { expThroughput(*opsK * 1000) },
		"fastpath":   func() { expFastpath(*opsK * 1000) },
		"elim":       func() { expElim(*opsK * 1000) },
		"dist":       func() { expDist(*opsK * 200) },
		"distbatch":  expDistbatch,
		"distshard":  func() { expDistshard(*shards) },
		"dedup":      expDedup,
		"udp":        expUDP,
		"ctlplane":   func() { expCtlplane(*out) },
		"udpspeed":   func() { expUDPSpeed(*workers, *pipeline, *out) },
		"transports": func() { expTransports(*out) },
		"latency":    func() { expLatency(*out) },
		"timesim":    expTimesim,
		"linearize":  expLinearize,
		"ablation":   expAblation,
	}
	order := []string{"depth", "contention", "compare", "blocks", "slope",
		"throughput", "fastpath", "elim", "dist", "distbatch", "distshard",
		"dedup", "udp", "ctlplane", "udpspeed", "transports", "latency", "timesim", "linearize", "ablation"}
	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			run[name]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

func must(n *network.Network, err error) *network.Network {
	if err != nil {
		panic(err)
	}
	return n
}

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// E1/E2: depth of C(w,t) vs the Theorem 4.1 formula, vs baselines.
func expDepth() {
	rows := experiments.DepthTable([]int{4, 8, 16, 32, 64}, []int{1, 2, 4})
	fmt.Print(experiments.FormatDepthTable(rows))
}

// E10: amortized contention of C(w,t) as n and t sweep.
func expContention(rounds int) {
	const w = 16
	fmt.Printf("amortized contention (stalls/token), w=%d\n\n", w)
	for _, advName := range []string{"strongest", "greedy", "random"} {
		tb := stats.NewTable("n", "C(16,16)", "C(16,64)", "C(16,256)", "bitonic(16)")
		for _, n := range []int{16, 64, 256, 1024} {
			row := []any{n}
			for _, build := range []func() *network.Network{
				func() *network.Network { return must(core.New(w, 16)) },
				func() *network.Network { return must(core.New(w, 64)) },
				func() *network.Network { return must(core.New(w, 256)) },
				func() *network.Network { return must(bitonic.New(w)) },
			} {
				row = append(row, experiments.Amortized(build(), n, rounds, advName))
			}
			tb.AddRowf(row...)
		}
		fmt.Printf("[%s adversary]\n%s\n", advName, tb.String())
	}
}

// E11/E12: all families head to head under the strongest adversary.
func expCompare(rounds int) {
	rows := experiments.CompareTable(16, 64, rounds, []int{8, 32, 128, 512})
	fmt.Println("strongest-adversary amortized contention (stalls/token, max over all strategies)")
	fmt.Print(experiments.FormatCompareTable(16, 64, rows))
}

// E10 structural interpretation: stall share per block as t grows.
func expBlocks(rounds int) {
	rows := experiments.BlockShares(16, 256, rounds, []int{16, 32, 64, 128, 256})
	fmt.Print(experiments.FormatBlockShares(16, 256, rows))
}

// E10: fitted slope of contention vs n.
func expSlope(rounds int) {
	rep := experiments.Slopes(16, rounds, []int{64, 128, 256, 512, 1024})
	fmt.Printf("contention-vs-n slope, w=%d (lockstep adversary):\n", rep.W)
	fmt.Printf("  bitonic(%d):  %.4f   (theory Θ(lg²w/w) = %.3f)\n",
		rep.W, rep.BitonicSlope, float64(log2(rep.W)*log2(rep.W))/float64(rep.W))
	fmt.Printf("  C(%d,%d):    %.4f   (theory O(lgw/w)  = %.3f)\n",
		rep.W, rep.W*log2(rep.W), rep.CWTSlope, float64(log2(rep.W))/float64(rep.W))
	fmt.Printf("  slope ratio bitonic/C = %.2f  (theory ~lgw = %d)\n", rep.Ratio, log2(rep.W))
}

// E13: wall-clock goroutine throughput of counter implementations.
func expThroughput(ops int) {
	const w = 16
	fmt.Printf("counter throughput, ops/ms (GOMAXPROCS=%d, %d ops per cell)\n\n", runtime.GOMAXPROCS(0), ops)
	counters := []func() counter.Counter{
		func() counter.Counter { return counter.NewCentral() },
		func() counter.Counter { return counter.NewLocked() },
		func() counter.Counter { return counter.NewNetwork(must(bitonic.New(w))) },
		func() counter.Counter { return counter.NewNetwork(must(periodic.New(w))) },
		func() counter.Counter { return counter.NewNetwork(must(core.New(w, w))) },
		func() counter.Counter { return counter.NewNetwork(must(core.New(w, w*log2(w)))) },
		func() counter.Counter { return dtreeCounter(w) },
	}
	header := []string{"goroutines"}
	for _, mk := range counters {
		header = append(header, mk().Name())
	}
	tb := stats.NewTable(header...)
	for _, g := range []int{1, 2, 4, 8, 16, 32} {
		row := []any{g}
		for _, mk := range counters {
			row = append(row, fmt.Sprintf("%.0f", throughput(mk(), g, ops)))
		}
		tb.AddRowf(row...)
	}
	fmt.Print(tb.String())
}

// E23: the fast path — batched and sharded counters against the E13
// baselines. The batched counter amortizes a traversal over k values
// (one fetch-add per balancer touched, Network.TraverseBatch); the
// sharded counter stripes pids over independent networks.
func expFastpath(ops int) {
	const w = 16
	t := w * log2(w)
	fmt.Printf("fast-path counter throughput, ops/ms (GOMAXPROCS=%d, %d ops per cell)\n\n",
		runtime.GOMAXPROCS(0), ops)
	counters := []func() counter.Counter{
		func() counter.Counter { return counter.NewCentral() },
		func() counter.Counter { return counter.NewNetwork(must(core.New(w, t))) },
		func() counter.Counter { return mustSharded(4, w, w) },
		func() counter.Counter { return mustSharded(8, w, t) },
		func() counter.Counter { return counter.NewBatched(counter.NewNetwork(must(core.New(w, t))), 16) },
		func() counter.Counter { return counter.NewBatched(counter.NewNetwork(must(core.New(w, t))), 64) },
	}
	header := []string{"goroutines"}
	for _, mk := range counters {
		header = append(header, mk().Name())
	}
	tb := stats.NewTable(header...)
	for _, g := range []int{1, 2, 4, 8, 16, 32, 64} {
		row := []any{g}
		for _, mk := range counters {
			row = append(row, fmt.Sprintf("%.0f", throughput(mk(), g, ops)))
		}
		tb.AddRowf(row...)
	}
	fmt.Print(tb.String())
}

func mustSharded(shards, w, t int) counter.Counter {
	c, err := counter.NewSharded(shards, func() (*network.Network, error) { return core.New(w, t) })
	if err != nil {
		panic(err)
	}
	return c
}

// E24: elimination under a balanced Inc/Dec workload — pairs cancel at
// the door instead of traversing the network twice.
func expElim(ops int) {
	const w = 16
	fmt.Printf("balanced Inc/Dec workload, ops/ms (%d ops per cell)\n\n", ops)
	tb := stats.NewTable("goroutines", "C(16,16) raw", "C(16,16)+elim", "eliminated %")
	for _, g := range []int{2, 4, 8, 16, 32} {
		raw := counter.NewNetwork(must(core.New(w, w)))
		rawRate := incDecThroughput(raw.Inc, raw.Dec, g, ops)
		// A spin budget of a few thousand keeps pairing effective even when
		// goroutines far outnumber processors (the eliminator yields while
		// parked); the default is tuned for spare-core spinning.
		elim, err := shard.NewEliminator(counter.NewNetwork(must(core.New(w, w))),
			shard.EliminatorOptions{Slots: 2, Spin: 2048})
		if err != nil {
			panic(err)
		}
		elimRate := incDecThroughput(elim.Inc, elim.Dec, g, ops)
		pct := 0.0
		if total := float64(2*elim.Pairs() + elim.Misses()); total > 0 {
			pct = 100 * float64(2*elim.Pairs()) / total
		}
		tb.AddRowf(g, fmt.Sprintf("%.0f", rawRate), fmt.Sprintf("%.0f", elimRate),
			fmt.Sprintf("%.1f", pct))
	}
	fmt.Print(tb.String())
}

// incDecThroughput drives g goroutines, half incrementing and half
// decrementing, and returns ops/ms.
func incDecThroughput(inc, dec func(pid int) int64, g, ops int) float64 {
	if g < 2 {
		g = 2
	}
	return drive(g, ops, func(pid int) {
		if pid%2 == 1 {
			dec(pid)
		} else {
			inc(pid)
		}
	})
}

type dtreeAdapter struct{ c *dtree.Counter }

func (d dtreeAdapter) Inc(int) int64 { return d.c.Inc() }
func (d dtreeAdapter) Name() string  { return "dtree" }

func dtreeCounter(w int) counter.Counter {
	c, err := dtree.NewCounter(w, dtree.DefaultOptions())
	if err != nil {
		panic(err)
	}
	return dtreeAdapter{c}
}

// throughput returns ops/ms for `g` goroutines sharing `ops` operations.
func throughput(c counter.Counter, g, ops int) float64 {
	return drive(g, ops, func(pid int) { c.Inc(pid) })
}

// drive is the shared measurement harness: g goroutines race through ops
// calls of op and the wall-clock rate comes back in ops/ms.
func drive(g, ops int, op func(pid int)) float64 {
	var remaining atomic.Int64
	remaining.Store(int64(ops))
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < g; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				op(pid)
			}
		}(pid)
	}
	wg.Wait()
	ms := float64(time.Since(start).Microseconds()) / 1000
	if ms == 0 {
		ms = 1e-3
	}
	return float64(ops) / ms
}

// E13 distributed: message-passing emulation throughput.
func expDist(ops int) {
	const w = 8
	fmt.Printf("distributed emulation throughput, ops/ms (%d ops per cell)\n\n", ops)
	tb := stats.NewTable("goroutines", "dist:bitonic(8)", "dist:C(8,8)", "dist:C(8,24)")
	nets := []func() *network.Network{
		func() *network.Network { return must(bitonic.New(w)) },
		func() *network.Network { return must(core.New(w, 8)) },
		func() *network.Network { return must(core.New(w, 24)) },
	}
	for _, g := range []int{1, 4, 16} {
		row := []any{g}
		for _, mk := range nets {
			c := distnet.NewCounter(mk(), distnet.Config{LinkBuffer: 4})
			row = append(row, fmt.Sprintf("%.0f", throughput(distAdapter{c}, g, ops)))
			c.Stop()
		}
		tb.AddRowf(row...)
	}
	fmt.Print(tb.String())
}

type distAdapter struct{ c *distnet.Counter }

func (d distAdapter) Inc(pid int) int64 { return d.c.Inc(pid) }
func (d distAdapter) Name() string      { return d.c.Name() }

// E25: messages (distnet) and TCP round trips (tcpnet) per token under
// the batched protocol, as the batch size grows. Counts are exact and
// host-independent — this is the table the ≥5x acceptance floor at k=64
// is read off.
func expDistbatch() {
	const w, t, shards, batches = 8, 24, 3, 16
	fmt.Printf("E25: distributed cost per token, batched protocol, C(%d,%d) (depth %d)\n\n",
		w, t, must(core.New(w, t)).Depth())
	tb := stats.NewTable("k", "distnet msgs/token", "tcpnet rpcs/token", "single-token floor")
	for _, k := range []int{1, 8, 64, 512} {
		// distnet: wavefront messages, counted at the links.
		net := must(core.New(w, t))
		sys := distnet.Start(net, distnet.Config{LinkBuffer: 4})
		for i := 0; i < batches; i++ {
			sys.InjectBatch(i%w, int64(k))
		}
		msgs := float64(sys.Messages()) / float64(batches*k)
		sys.Stop()

		// tcpnet: STEPN/CELLN round trips, counted at the client.
		topo := must(core.New(w, t))
		addrs := make([]string, shards)
		var servers []*tcpnet.Shard
		for i := 0; i < shards; i++ {
			s, err := tcpnet.StartShard("127.0.0.1:0", topo, i, shards)
			if err != nil {
				panic(err)
			}
			servers = append(servers, s)
			addrs[i] = s.Addr()
		}
		cluster := tcpnet.NewCluster(topo, addrs)
		sess, err := cluster.NewSession()
		if err != nil {
			panic(err)
		}
		var vals []int64
		for i := 0; i < batches; i++ {
			vals, err = sess.IncBatch(i, k, vals[:0])
			if err != nil {
				panic(err)
			}
		}
		rpcs := float64(sess.RPCs()) / float64(batches*k)
		sess.Close()
		for _, s := range servers {
			s.Close()
		}
		tb.AddRowf(k, fmt.Sprintf("%.2f", msgs), fmt.Sprintf("%.2f", rpcs),
			fmt.Sprintf("%d / %d", topo.Depth(), cluster.Hops()))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(single-token floor: depth msgs for distnet, depth+1 rpcs for tcpnet)")
}

// E26: sharded deployments — cost per token/op as the stripe count S
// grows. Counts are exact and host-independent: each stripe is an
// independent deployment, so per-shard msgs/token must hold the E25
// batched floor (0.67 distnet / 1.05 tcpnet at k=64) at every S while
// the hot links multiply by S.
func expDistshard(maxS int) {
	const w, t, batches, k = 8, 24, 16, 64
	if maxS < 1 {
		maxS = 1
	}
	var Ss []int
	for s := 1; s <= maxS; s *= 2 {
		Ss = append(Ss, s)
	}
	if last := Ss[len(Ss)-1]; last != maxS {
		Ss = append(Ss, maxS)
	}
	fmt.Printf("E26: sharded deployment cost, C(%d,%d), %d batches of k=%d, pid-striped\n\n",
		w, t, batches, k)
	tb := stats.NewTable("S", "distnet msgs/token", "tcpnet rpcs/token",
		"distnet msgs/op coalesced", "tcpnet rpcs/op coalesced")
	for _, S := range Ss {
		// Batched pipelines, striped by pid: exact aggregate message and
		// round-trip bills per token.
		dsc, err := distnet.NewSharded(S, func() (*network.Network, error) {
			return core.New(w, t)
		}, distnet.Config{LinkBuffer: 4})
		if err != nil {
			panic(err)
		}
		var vals []int64
		for i := 0; i < batches; i++ {
			vals = dsc.IncBatch(i, k, vals[:0])
		}
		if got := dsc.Read(); got != int64(batches*k) {
			panic(fmt.Sprintf("distnet S=%d: Read %d != %d", S, got, batches*k))
		}
		dMsgs := float64(dsc.Messages()) / float64(batches*k)
		dsc.Stop()

		topo := must(core.New(w, t))
		tsc, stop, err := tcpnet.StartShardedCluster(topo, S, 3)
		if err != nil {
			panic(err)
		}
		tctr := tsc.NewCounter(1)
		for i := 0; i < batches; i++ {
			if vals, err = tctr.IncBatch(i, k, vals[:0]); err != nil {
				panic(err)
			}
		}
		if got, err := tctr.Read(); err != nil || got != int64(batches*k) {
			panic(fmt.Sprintf("tcpnet S=%d: Read (%d, %v) != %d", S, got, err, batches*k))
		}
		tRPCs := float64(tctr.RPCs()) / float64(batches*k)
		// The Read side costs OutWidth READ rpcs per stripe; keep the
		// batched column pure by subtracting it.
		tRPCs -= float64(S*topo.OutWidth()) / float64(batches*k)
		tctr.Close()
		stop()

		// Coalesced single-token workloads (no explicit batching): exact
		// msgs/op and rpcs/op under a concurrent driver.
		dMsgsOp := distshardCoalesced(S, w, t)
		tRPCsOp := tcpshardCoalesced(S, w, t)
		tb.AddRowf(S, fmt.Sprintf("%.2f", dMsgs), fmt.Sprintf("%.2f", tRPCs),
			fmt.Sprintf("%.2f", dMsgsOp), fmt.Sprintf("%.2f", tRPCsOp))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(E25 single-deployment floors at k=64: 0.67 msgs/token distnet, 1.05 rpcs/token tcpnet)")
}

// distshardCoalesced drives a concurrent Inc workload against a sharded
// distnet fleet and returns exact msgs/op (hop latency opens windows).
func distshardCoalesced(S, w, t int) float64 {
	sc, err := distnet.NewSharded(S, func() (*network.Network, error) {
		return core.New(w, t)
	}, distnet.Config{LinkBuffer: 4, HopLatency: 50 * time.Microsecond})
	if err != nil {
		panic(err)
	}
	defer sc.Stop()
	const procs, per = 32, 25
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sc.Inc(pid)
			}
		}(pid)
	}
	wg.Wait()
	return float64(sc.Messages()) / float64(procs*per)
}

// tcpshardCoalesced drives a concurrent Inc workload against a sharded
// TCP fleet and returns exact rpcs/op.
func tcpshardCoalesced(S, w, t int) float64 {
	topo := must(core.New(w, t))
	sc, stop, err := tcpnet.StartShardedCluster(topo, S, 3)
	if err != nil {
		panic(err)
	}
	defer stop()
	ctr := sc.NewCounter(0)
	defer ctr.Close()
	const procs, per = 32, 25
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := ctr.Inc(pid); err != nil {
					panic(err)
				}
			}
		}(pid)
	}
	wg.Wait()
	return float64(ctr.RPCs()) / float64(procs*per)
}

// killNthWrite is a net.Conn that drops the connection at one exact
// frame boundary — the E27 kill column's fault injection.
type killNthWrite struct {
	net.Conn
	allow atomic.Int32
}

func newKillNthWrite(conn net.Conn, allow int32) *killNthWrite {
	k := &killNthWrite{Conn: conn}
	k.allow.Store(allow)
	return k
}

func (f *killNthWrite) Write(b []byte) (int, error) {
	if f.allow.Add(-1) < 0 {
		f.Conn.Close()
		return 0, fmt.Errorf("injected connection kill")
	}
	return f.Conn.Write(b)
}

// E27: exactly-once dedup overhead. The v2 protocol seq-numbers every
// mutating frame and the shards keep bounded per-client dedup windows;
// that must cost bytes and bookkeeping, never round trips — rpcs/token
// of the batched pipeline must hold the E25/E26 k=64 floor (1.05). The
// kill column injects one connection death at a frame boundary
// mid-workload: the bounded retry budget absorbs it, the replayed
// frames are answered from the dedup window (each counted as an rpc by
// the client), and the count stays EXACT — no gapped or duplicated
// values, the invariant E27 exists to demonstrate.
func expDedup() {
	const w, t, shards, batches = 8, 24, 3, 16
	fmt.Printf("E27: exactly-once dedup overhead, C(%d,%d), %d batches per row\n\n",
		w, t, batches)
	tb := stats.NewTable("k", "rpcs/token", "rpcs/token, kill+retry", "exact count (both)")
	for _, k := range []int{1, 8, 64, 512} {
		clean := dedupRun(w, t, shards, batches, k, false)
		killed := dedupRun(w, t, shards, batches, k, true)
		tb.AddRowf(k, fmt.Sprintf("%.2f", clean), fmt.Sprintf("%.2f", killed),
			fmt.Sprintf("%d", batches*k))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(floor: E25/E26 record 1.05 rpcs/token at k=64; the kill column re-sends" +
		"\n a window whose replayed frames are deduped server-side, not re-executed)")
}

// dedupRun drives `batches` batched pipelines of k tokens through a
// pooled Counter, optionally killing the first session's first
// connection at a frame boundary mid-workload, verifies the exact
// count, and returns rpcs/token (read-side RPCs excluded).
func dedupRun(w, t, shards, batches, k int, kill bool) float64 {
	topo := must(core.New(w, t))
	addrs := make([]string, shards)
	var servers []*tcpnet.Shard
	for i := 0; i < shards; i++ {
		s, err := tcpnet.StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			panic(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	cluster := tcpnet.NewCluster(topo, addrs)
	if kill {
		var conns int32
		cluster.SetDialWrapper(func(conn net.Conn) net.Conn {
			if atomic.AddInt32(&conns, 1) == 1 {
				// The first dialed connection dies after 12 more frames —
				// mid-window for every k in the sweep.
				return newKillNthWrite(conn, 12)
			}
			return conn
		})
	}
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	var vals []int64
	var err error
	for i := 0; i < batches; i++ {
		if vals, err = ctr.IncBatch(i, k, vals[:0]); err != nil {
			panic(fmt.Sprintf("E27 k=%d kill=%v: %v", k, kill, err))
		}
	}
	rpcs := ctr.RPCs() // mutating-frame round trips only, so far
	got, err := ctr.Read()
	if err != nil {
		panic(err)
	}
	if got != int64(batches*k) {
		panic(fmt.Sprintf("E27 k=%d kill=%v: Read %d != %d — values leaked",
			k, kill, got, batches*k))
	}
	return float64(rpcs) / float64(batches*k)
}

// E28: the UDP datagram transport under injected loss. The frame bill
// (rpcs/token, the E25-E27 unit) must hold the TCP 1.05 floor at k=64
// with zero loss — the transports send the same frames — while the
// datagram bill shows the MTU-packing win and the retransmit rate shows
// what reliability costs as the injected loss grows. Counts are
// panic-checked exact in every cell: loss, duplication and reordering
// never leak a value.
func expUDP() {
	const w, t, shards, batches, k = 8, 24, 3, 16, 64
	fmt.Printf("E28: UDP transport cost vs injected packet loss, C(%d,%d), %d batches of k=%d\n\n",
		w, t, batches, k)
	tb := stats.NewTable("loss%", "rpcs/token", "packets/token", "retrans/packet", "exact count")
	for _, loss := range []float64{0, 0.10, 0.25} {
		rpcs, pkts, retr := udpRun(w, t, shards, batches, k, loss)
		tb.AddRowf(fmt.Sprintf("%.0f", loss*100), fmt.Sprintf("%.2f", rpcs),
			fmt.Sprintf("%.2f", pkts), fmt.Sprintf("%.2f", retr),
			fmt.Sprintf("%d", batches*k))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(floor: E25-E27 record 1.05 rpcs/token at k=64 over TCP; lossy rows inject" +
		"\n symmetric drop plus 10% duplication and reordering — retransmitted frames" +
		"\n are replayed from the shards' dedup windows, and the exact-count check" +
		"\n panics if any value leaks)")
}

// udpRun drives `batches` batched pipelines of k tokens through a
// pooled UDP Counter under the given injected loss rate (plus
// duplication and reordering on lossy runs), verifies the exact count,
// and returns (rpcs/token, packets/token, retransmits/packet) with
// read-side costs excluded.
func udpRun(w, t, shards, batches, k int, loss float64) (rpcs, pkts, retr float64) {
	topo := must(core.New(w, t))
	cluster, stop, err := udpnet.StartCluster(topo, shards)
	if err != nil {
		panic(err)
	}
	defer stop()
	if loss > 0 {
		cluster.SetRetransmitPolicy(wireRetry(), wireTimer())
		cluster.SetDialWrapper(udpnet.Faults{
			Drop: loss, Dup: 0.10, Reorder: 0.10, Seed: 42,
		}.Wrapper())
	}
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	var vals []int64
	for i := 0; i < batches; i++ {
		if vals, err = ctr.IncBatch(i, k, vals[:0]); err != nil {
			panic(fmt.Sprintf("E28 loss=%.2f: %v", loss, err))
		}
	}
	frames, packets, retrans := ctr.RPCs(), ctr.Packets(), ctr.Retransmits()
	got, err := ctr.Read()
	if err != nil {
		panic(err)
	}
	if got != int64(batches*k) {
		panic(fmt.Sprintf("E28 loss=%.2f: Read %d != %d — values leaked",
			loss, got, batches*k))
	}
	tokens := float64(batches * k)
	if packets == 0 {
		packets = 1
	}
	return float64(frames) / tokens, float64(packets) / tokens,
		float64(retrans) / float64(packets)
}

// wireRetry/wireTimer keep the lossy E28 rows quick without weakening
// the guarantee: more attempts, shorter jittered timers.
func wireRetry() wire.RetryPolicy {
	return wire.RetryPolicy{Attempts: 25, Budget: 60 * time.Second}
}

func wireTimer() wire.Backoff {
	return wire.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
}

// E29: what observability costs. The same C(8,24) workload the E27/E28
// tables bill runs twice — control plane detached, then attached with
// an HTTP scraper hammering /metrics for the whole run — and the frame
// bill must come out identical: every exported number is a read-side
// view over atomics the flights maintain anyway, so a scrape adds no
// RPC and blocks no flight. Wall-clock ns/token is reported for both
// modes (the attached row carries the scraper's CPU time, which stays
// within run-to-run noise). With -out, both modes plus the final
// mid-run scrape's series are written as JSON.
func expCtlplane(outPath string) {
	const w, t, shards, batches, k = 8, 24, 3, 16, 64
	fmt.Printf("E29: control-plane scrape overhead, C(%d,%d), %d batches of k=%d\n\n",
		w, t, batches, k)
	detached := ctlplaneRun(w, t, shards, batches, k, false)
	attached := ctlplaneRun(w, t, shards, batches, k, true)
	tb := stats.NewTable("mode", "rpcs/token", "ns/token", "mid-run scrapes")
	for _, r := range []ctlplaneResult{detached, attached} {
		tb.AddRowf(r.Mode, fmt.Sprintf("%.2f", r.RPCsPerToken),
			fmt.Sprintf("%.0f", r.NsPerToken), fmt.Sprintf("%d", r.Scrapes))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(the rpcs/token column must be identical across modes: scrapes are" +
		"\n read-side views over the flight path's own atomics and add no frames;" +
		"\n see OPERATIONS.md for the metric reference)")
	if outPath != "" {
		writeBenchDoc(outPath, "E29", []ctlplaneResult{detached, attached}, nil)
	}
}

// benchDoc is the stable machine-readable envelope every -out write
// uses: a schema tag, the host stamp (wall-clock rows are meaningless
// without it), the experiment id and its rows. Downstream tooling keys
// on `schema`; adding fields is compatible, renaming them is not.
type benchDoc struct {
	Schema     string         `json:"schema"`
	Experiment string         `json:"experiment"`
	Host       benchHost      `json:"host"`
	Rows       any            `json:"rows"`
	Summary    map[string]any `json:"summary,omitempty"`
}

type benchHost struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
}

func writeBenchDoc(outPath, experiment string, rows any, summary map[string]any) {
	doc := benchDoc{
		Schema:     "countbench/v1",
		Experiment: experiment,
		Host: benchHost{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Rows:    rows,
		Summary: summary,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", outPath)
}

// ctlplaneResult is one E29 mode's bill; Series is the last mid-run
// /metrics scrape, stamped into the JSON output so a recorded run
// carries the fleet's own accounting alongside the bench's.
type ctlplaneResult struct {
	Mode         string           `json:"mode"`
	RPCsPerToken float64          `json:"rpcs_per_token"`
	NsPerToken   float64          `json:"ns_per_token"`
	Scrapes      int              `json:"scrapes"`
	Series       map[string]int64 `json:"series,omitempty"`
}

// ctlplaneRun drives the E29 workload through a pooled TCP Counter,
// optionally fronting the whole deployment (client plus every shard)
// with one admin endpoint and scraping it over HTTP in a tight loop
// for the duration.
func ctlplaneRun(w, t, shards, batches, k int, attached bool) ctlplaneResult {
	topo := must(core.New(w, t))
	addrs := make([]string, shards)
	var servers []*tcpnet.Shard
	for i := 0; i < shards; i++ {
		s, err := tcpnet.StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			panic(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	ctr := tcpnet.NewCluster(topo, addrs).NewCounterPool(1)
	defer ctr.Close()

	res := ctlplaneResult{Mode: "detached"}
	stopScrape := func() {}
	if attached {
		res.Mode = "attached"
		fleet := ctlplane.NewFleet("countbench-e29", "node")
		fleet.Add("client", ctr)
		for i, s := range servers {
			fleet.Add(fmt.Sprintf("shard%d", i), s)
		}
		srv, err := ctlplane.Serve("127.0.0.1:0", fleet)
		if err != nil {
			panic(err)
		}
		url := "http://" + srv.Addr() + "/metrics"
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					panic(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					panic(err)
				}
				res.Scrapes++
				res.Series = parseScrape(string(body))
				// Prometheus scrapes on an interval, not a hot loop;
				// 2ms here is already ~7500x its default cadence.
				time.Sleep(2 * time.Millisecond)
			}
		}()
		stopScrape = func() { close(stop); <-done; srv.Close() }
	}

	begin := time.Now()
	var vals []int64
	var err error
	for i := 0; i < batches; i++ {
		if vals, err = ctr.IncBatch(i, k, vals[:0]); err != nil {
			panic(fmt.Sprintf("E29 attached=%v: %v", attached, err))
		}
	}
	elapsed := time.Since(begin)
	stopScrape()
	rpcs := ctr.RPCs()
	got, err := ctr.Read()
	if err != nil {
		panic(err)
	}
	if got != int64(batches*k) {
		panic(fmt.Sprintf("E29 attached=%v: Read %d != %d — values leaked",
			attached, got, batches*k))
	}
	tokens := float64(batches * k)
	res.RPCsPerToken = float64(rpcs) / tokens
	res.NsPerToken = float64(elapsed.Nanoseconds()) / tokens
	return res
}

// E30: the raw-speed datagram path. The same exactly-once workload —
// G concurrent clients driving batched increments through a 4-shard
// C(8,24) fleet — runs on the pre-optimization architecture (one
// inline shard worker, one datagram per syscall, stop-and-wait
// sessions) and tuned (worker pool, recvmmsg/sendmmsg bursts,
// pipelined sessions), over two networks: raw loopback, where the bill
// is pure CPU and the win is syscall amortization, and an emulated
// 500µs one-way request latency, the regime pipelining exists for —
// stop-and-wait pays one RTT per shard exchange in sequence, the
// pipelined session overlaps a whole layer's shard fan-out inside its
// window. The guarantee columns must not move: rpcs/token holds the
// E25-E28 1.05 floor and the count is panic-checked exact in every
// cell. allocs/op (the whole-process malloc delta per IncBatch, across
// clients AND shards) pins the steady-state zero-allocation claim on
// the loopback rows; the latency rows skip it because the injector
// itself allocates (a timer per delayed datagram).
func expUDPSpeed(workers, pipeline int, outPath string) {
	const w, t, shards, G, k = 8, 24, 8, 8, 64
	const rtt = 500 * time.Microsecond
	fmt.Printf("E30: raw-speed datagram path, C(%d,%d), %d shards, %d clients, k=%d\n\n",
		w, t, shards, G, k)
	rows := []udpspeedRow{
		udpspeedRun("serial", "loopback", 0, w, t, shards, 1, 1, 1, G, 16, k),
		udpspeedRun("tuned", "loopback", 0, w, t, shards, workers, udpnet.DefaultShardBatch, pipeline, G, 16, k),
		udpspeedRun("serial", "rtt=500µs", rtt, w, t, shards, 1, 1, 1, G, 8, k),
		udpspeedRun("tuned", "rtt=500µs", rtt, w, t, shards, workers, udpnet.DefaultShardBatch, pipeline, G, 8, k),
	}
	tb := stats.NewTable("network", "mode", "workers", "batch", "pipeline",
		"tokens/sec", "ns/token", "rpcs/token", "allocs/op")
	for _, r := range rows {
		allocs := "-"
		if r.Network == "loopback" {
			allocs = fmt.Sprintf("%.1f", r.AllocsPerOp)
		}
		tb.AddRowf(r.Network, r.Mode, r.Workers, r.Batch, r.Pipeline,
			fmt.Sprintf("%.0f", r.TokensPerSec), fmt.Sprintf("%.0f", r.NsPerToken),
			fmt.Sprintf("%.2f", r.RPCsPerToken), allocs)
	}
	fmt.Print(tb.String())
	loopback := rows[1].TokensPerSec / rows[0].TokensPerSec
	latency := rows[3].TokensPerSec / rows[2].TokensPerSec
	fmt.Printf("\nspeedup over the serial/stop-and-wait baseline (tokens/sec):\n")
	fmt.Printf("  loopback:   %.2fx  (syscall amortization only — loopback has no latency to hide)\n", loopback)
	fmt.Printf("  rtt=500µs:  %.2fx  (the pipelined window overlaps each layer's shard fan-out)\n", latency)
	fmt.Println("(all four cells are the same exactly-once protocol — same frames, same" +
		"\n dedup windows, panic-checked exact counts; only the engine underneath changed)")
	if outPath != "" {
		writeBenchDoc(outPath, "E30", rows, map[string]any{
			"speedup_loopback":  loopback,
			"speedup_rtt_500us": latency,
		})
	}
}

// udpspeedRow is one E30 mode's bill — the rows -out records.
type udpspeedRow struct {
	Mode          string  `json:"mode"`
	Network       string  `json:"network"`
	Workers       int     `json:"workers"`
	Batch         int     `json:"batch"`
	Pipeline      int     `json:"pipeline"`
	Clients       int     `json:"clients"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	NsPerToken    float64 `json:"ns_per_token"`
	RPCsPerToken  float64 `json:"rpcs_per_token"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
}

// udpspeedRun boots one fleet at the given engine settings (delay > 0
// installs the latency injector on every request datagram), drives the
// G-client workload with per-session warmup (pools primed, pipes spun
// up) outside the timed window, verifies the exact count, and returns
// the row.
func udpspeedRun(mode, network string, delay time.Duration, w, t, shards, workers, batch, pipeline, G, per, k int) udpspeedRow {
	topo := must(core.New(w, t))
	cluster, stop, err := udpnet.StartClusterConfig(topo, shards,
		udpnet.ShardConfig{Workers: workers, Batch: batch})
	if err != nil {
		panic(err)
	}
	defer stop()
	cluster.SetPipeline(pipeline)
	if delay > 0 {
		cluster.SetDialWrapper(udpnet.Faults{DelayProb: 1, Delay: delay, Seed: 30}.Wrapper())
	}
	sessions := make([]*udpnet.Session, G)
	scratch := make([][]int64, G)
	for i := range sessions {
		if sessions[i], err = cluster.NewSession(); err != nil {
			panic(err)
		}
		defer sessions[i].Close()
		// Warmup op: prime buffer pools, size scratch, spin up pipes.
		if scratch[i], err = sessions[i].IncBatch(i, k, scratch[i][:0]); err != nil {
			panic(err)
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	var wg sync.WaitGroup
	for pid := 0; pid < G; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			var err error
			for i := 0; i < per; i++ {
				if scratch[pid], err = sessions[pid].IncBatch(pid+i, k, scratch[pid][:0]); err != nil {
					panic(fmt.Sprintf("E30 %s pid %d: %v", mode, pid, err))
				}
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&m1)

	var rpcs, packets int64
	for _, s := range sessions {
		rpcs += s.RPCs()
		packets += s.Packets()
	}
	chk, err := cluster.NewSession()
	if err != nil {
		panic(err)
	}
	got, err := chk.Read()
	chk.Close()
	if err != nil {
		panic(err)
	}
	if want := int64(G * (per + 1) * k); got != want { // +1: the warmup batches
		panic(fmt.Sprintf("E30 %s: Read %d != %d — values leaked", mode, got, want))
	}
	tokens := float64(G * per * k)
	ops := float64(G * per)
	secs := elapsed.Seconds()
	return udpspeedRow{
		Mode: mode, Network: network,
		Workers: workers, Batch: batch, Pipeline: pipeline, Clients: G,
		TokensPerSec:  tokens / secs,
		PacketsPerSec: float64(packets) / secs,
		NsPerToken:    float64(elapsed.Nanoseconds()) / tokens,
		// The warmup ops are inside the RPC counters but not the timed
		// window; their frame bill is identical per op, so scale by the
		// op ratio instead of re-counting.
		RPCsPerToken: float64(rpcs) / float64(G*(per+1)*k),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / ops,
	}
}

// parseScrape reads a Prometheus text body into series -> value.
func parseScrape(body string) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			continue
		}
		v, err := strconv.ParseInt(line[cut+1:], 10, 64)
		if err != nil {
			continue
		}
		out[line[:cut]] = v
	}
	return out
}

// E13: host-independent discrete-event queueing simulation.
func expTimesim() {
	fmt.Println("queueing simulation (service=1, think=20, exponential): throughput / mean latency")
	rows := experiments.TimesimTable(16, 64, []int{16, 64, 128, 256}, 80)
	fmt.Print(experiments.FormatTimesimTable(16, 64, rows))

	fmt.Println("\nwith memory-contention service inflation (factor 0.5), n=256:")
	nets := []*network.Network{
		experiments.SingleBalancer(),
		must(bitonic.New(16)),
		must(periodic.New(16)),
		must(core.New(16, 16)),
		must(core.New(16, 64)),
	}
	for _, net := range nets {
		res := timesim.Run(net.Clone(), timesim.Config{
			Processes: 256, Ops: 256 * 60, ServiceTime: 1,
			Exponential: true, ContentionFactor: 0.5, Seed: 9,
		})
		fmt.Printf("  %-14s thr=%.4f  lat=%.0f  busiest-util=%.2f\n",
			net.Name(), res.Throughput, res.MeanLat, res.BusiestUse)
	}
}

// E18: linearizability observation.
func expLinearize() {
	fmt.Print(experiments.LinearizeReport(8, 8, 2000))
}

// E16/E17 ablations.
func expAblation() {
	fmt.Println("E17: C(w,t) with bitonic merger instead of M(t,δ) — depth blow-up")
	fmt.Print(experiments.AblationDepths([][2]int{{8, 8}, {8, 16}, {8, 32}, {16, 64}}))

	fmt.Println("\nE16: randomized initial states — observed output smoothness of C(8,8)")
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		net := must(core.New(8, 8))
		net.RandomizeInitialStates(rng)
		worst, err := network.MaxObservedSmoothness(net, 3, 2000, rng)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  trial %d: max observed smoothness %d (deterministic init would be 1)\n", trial, worst)
	}
}

// transportBoot starts one real transport deployment and hands back a
// pooled xport.Counter over it — the shared fixture for the
// cross-transport experiments (E31 bills, E32 latency).
type transportBoot struct {
	name string
	mk   func() (ctr *xport.Counter, stop func())
}

func transportBoots(topo *network.Network, shards int) []transportBoot {
	return []transportBoot{
		{"tcp", func() (*xport.Counter, func()) {
			addrs := make([]string, shards)
			var servers []*tcpnet.Shard
			for i := 0; i < shards; i++ {
				s, err := tcpnet.StartShard("127.0.0.1:0", topo, i, shards)
				if err != nil {
					panic(err)
				}
				servers = append(servers, s)
				addrs[i] = s.Addr()
			}
			ctr := tcpnet.NewCluster(topo, addrs).NewCounterPool(1)
			return ctr, func() {
				for _, s := range servers {
					s.Close()
				}
			}
		}},
		{"udp", func() (*xport.Counter, func()) {
			cluster, stop, err := udpnet.StartCluster(topo, shards)
			if err != nil {
				panic(err)
			}
			return cluster.NewCounterPool(1), stop
		}},
		{"inproc", func() (*xport.Counter, func()) {
			cluster, stop, err := inproc.StartCluster(topo, shards)
			if err != nil {
				panic(err)
			}
			return cluster.NewCounterPool(1), stop
		}},
	}
}

// transportRow is one E31 cell's bill — the rows -out records.
type transportRow struct {
	Transport       string  `json:"transport"`
	K               int     `json:"k"`
	Tokens          int64   `json:"tokens"`
	RPCs            int64   `json:"rpcs"`
	RPCsPerToken    float64 `json:"rpcs_per_token"`
	NsPerToken      float64 `json:"ns_per_token"`
	PacketsPerToken float64 `json:"packets_per_token,omitempty"`
}

// E31: the transport seam's bill, measured. The same pooled Counter
// (internal/xport) drives the same C(4,8) walk over every link — TCP
// streams, UDP datagrams, the in-memory inproc transport — so the
// request-frame bill per token must be INTEGER-identical across
// transports at every batch size (the conformance suite pins this;
// here it is recorded with wall-clock context). What differs is pure
// link cost: ns/token separates the protocol's price from the
// socket's, and inproc is the protocol-only floor — counting-network
// machinery with zero kernel crossings. packets/token (UDP) shows the
// MTU packing amortizing frames into datagrams.
func expTransports(outPath string) {
	const w, t, shards = 4, 8, 2
	topo := must(core.New(w, t))
	fmt.Printf("E31: one protocol core over every transport, C(%d,%d), %d shards\n\n", w, t, shards)
	boots := transportBoots(topo, shards)

	var rows []transportRow
	bills := make(map[int]map[string]int64)
	for _, k := range []int{1, 64} {
		bills[k] = make(map[string]int64)
		for _, b := range boots {
			ctr, stop := b.mk()
			ops := 512
			if k > 1 {
				ops = 32
			}
			begin := time.Now()
			var scratch []int64
			var err error
			for i := 0; i < ops; i++ {
				if k == 1 {
					_, err = ctr.Inc(i)
				} else {
					scratch, err = ctr.IncBatch(i, k, scratch[:0])
				}
				if err != nil {
					panic(fmt.Sprintf("E31 %s k=%d: %v", b.name, k, err))
				}
			}
			elapsed := time.Since(begin)
			tokens := int64(ops * k)
			rpcs := ctr.RPCs()
			got, err := ctr.Read()
			if err != nil {
				panic(err)
			}
			if got != tokens {
				panic(fmt.Sprintf("E31 %s k=%d: Read %d != %d — values leaked", b.name, k, got, tokens))
			}
			row := transportRow{
				Transport:    b.name,
				K:            k,
				Tokens:       tokens,
				RPCs:         rpcs,
				RPCsPerToken: float64(rpcs) / float64(tokens),
				NsPerToken:   float64(elapsed.Nanoseconds()) / float64(tokens),
			}
			if b.name == "udp" {
				row.PacketsPerToken = float64(ctr.Packets()) / float64(tokens)
			}
			rows = append(rows, row)
			bills[k][b.name] = rpcs
			ctr.Close()
			stop()
		}
	}

	tb := stats.NewTable("transport", "k", "tokens", "rpcs", "rpcs/token", "ns/token", "packets/token")
	for _, r := range rows {
		packets := "-"
		if r.PacketsPerToken > 0 {
			packets = fmt.Sprintf("%.3f", r.PacketsPerToken)
		}
		tb.AddRowf(r.Transport, r.K, r.Tokens, r.RPCs,
			fmt.Sprintf("%.3f", r.RPCsPerToken), fmt.Sprintf("%.0f", r.NsPerToken), packets)
	}
	fmt.Print(tb.String())

	for k, byName := range bills {
		for name, rpcs := range byName {
			if ref := byName["tcp"]; rpcs != ref {
				panic(fmt.Sprintf("E31: frame bill diverges at k=%d: %s sent %d rpcs, tcp sent %d",
					k, name, rpcs, ref))
			}
		}
	}
	fmt.Println("\n(the rpcs column is integer-identical per k across all three transports —" +
		"\n the frame bill is a property of the walk, not the link; panic-checked here" +
		"\n and race-checked in internal/conformance)")
	if outPath != "" {
		writeBenchDoc(outPath, "E31", rows, map[string]any{
			"bill_identical":     true,
			"rpcs_per_token_k64": float64(bills[64]["tcp"]) / float64(32*64),
		})
	}
}

// latencyRow is one E32 transport×k cell: the flight-latency
// distribution (exact order statistics over per-op wall clocks) with
// the client histogram's own p99 beside it as a cross-check that the
// zero-alloc log-bucketed estimate brackets the truth.
type latencyRow struct {
	Transport    string  `json:"transport"`
	K            int     `json:"k"`
	Ops          int     `json:"ops"`
	Tokens       int64   `json:"tokens"`
	P50Ns        int64   `json:"p50_ns"`
	P95Ns        int64   `json:"p95_ns"`
	P99Ns        int64   `json:"p99_ns"`
	MaxNs        int64   `json:"max_ns"`
	HistP99Ns    float64 `json:"hist_p99_ns"`
	RPCsPerToken float64 `json:"rpcs_per_token"`
}

// pctNs is the exact q-th percentile of a sorted sample: the smallest
// element with at least ceil(q·n) observations at or below it.
func pctNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// histQuantileNs digs the client's own flight histogram out of a
// Gather and returns its q-quantile in nanoseconds — the number an
// operator would read off /metrics, as opposed to the exact order
// statistics the benchmark measures directly.
func histQuantileNs(samples []ctlplane.Sample, q float64) float64 {
	for _, s := range samples {
		if s.Name == wire.MetricClientFlightSeconds && s.Hist != nil {
			return s.Hist.Quantile(q) * 1e9
		}
	}
	return 0
}

// E32: what the new flight histograms actually record, measured. Each
// transport×k cell runs E31's workload shape and collects BOTH the
// exact per-op latency distribution (sorted wall clocks, so p50/p95/
// p99/max are true order statistics) and the client histogram's own
// p99 — the operator-facing number — so the committed table documents
// how tight the log-bucketed estimate is (buckets are 2× apart, so
// hist_p99 may read up to one bucket above p99). inproc is the
// protocol-only floor; tcp and udp add the socket's tail.
func expLatency(outPath string) {
	const w, t, shards = 4, 8, 2
	topo := must(core.New(w, t))
	fmt.Printf("E32: flight-latency distributions over every transport, C(%d,%d), %d shards\n\n", w, t, shards)
	boots := transportBoots(topo, shards)

	var rows []latencyRow
	for _, k := range []int{1, 64} {
		for _, b := range boots {
			ctr, stop := b.mk()
			ops := 512
			if k > 1 {
				ops = 64
			}
			samples := make([]int64, 0, ops)
			var scratch []int64
			var err error
			for i := 0; i < ops; i++ {
				begin := time.Now()
				if k == 1 {
					_, err = ctr.Inc(i)
				} else {
					scratch, err = ctr.IncBatch(i, k, scratch[:0])
				}
				if err != nil {
					panic(fmt.Sprintf("E32 %s k=%d: %v", b.name, k, err))
				}
				samples = append(samples, time.Since(begin).Nanoseconds())
			}
			// Gather BEFORE the verifying Read so the flight histogram
			// holds exactly the ops timed above.
			histP99 := histQuantileNs(ctr.Gather(), 0.99)
			tokens := int64(ops * k)
			rpcs := ctr.RPCs()
			got, err := ctr.Read()
			if err != nil {
				panic(err)
			}
			if got != tokens {
				panic(fmt.Sprintf("E32 %s k=%d: Read %d != %d — values leaked", b.name, k, got, tokens))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			rows = append(rows, latencyRow{
				Transport:    b.name,
				K:            k,
				Ops:          ops,
				Tokens:       tokens,
				P50Ns:        pctNs(samples, 0.50),
				P95Ns:        pctNs(samples, 0.95),
				P99Ns:        pctNs(samples, 0.99),
				MaxNs:        samples[len(samples)-1],
				HistP99Ns:    histP99,
				RPCsPerToken: float64(rpcs) / float64(tokens),
			})
			ctr.Close()
			stop()
		}
	}

	tb := stats.NewTable("transport", "k", "ops", "p50 µs", "p95 µs", "p99 µs", "max µs", "hist p99 µs", "rpcs/token")
	for _, r := range rows {
		tb.AddRowf(r.Transport, r.K, r.Ops,
			fmt.Sprintf("%.1f", float64(r.P50Ns)/1e3),
			fmt.Sprintf("%.1f", float64(r.P95Ns)/1e3),
			fmt.Sprintf("%.1f", float64(r.P99Ns)/1e3),
			fmt.Sprintf("%.1f", float64(r.MaxNs)/1e3),
			fmt.Sprintf("%.1f", r.HistP99Ns/1e3),
			fmt.Sprintf("%.3f", r.RPCsPerToken))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(exact order statistics from per-op wall clocks; hist p99 is the client's" +
		"\n own log-bucketed flight histogram read back through Gather — the same" +
		"\n number /metrics exports — and brackets the exact p99 from above by at" +
		"\n most one 2× bucket)")
	if outPath != "" {
		writeBenchDoc(outPath, "E32", rows, map[string]any{
			"hist_source": wire.MetricClientFlightSeconds,
			"note":        "hist_p99_ns is the bucket upper bound; exact percentiles from sorted per-op wall clocks",
		})
	}
}
