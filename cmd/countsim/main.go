// Command countsim runs one adversarially scheduled execution in the
// Dwork–Herlihy–Waarts contention simulator and reports the measured
// stalls, with per-layer and per-block attribution (experiments E10–E12):
//
//	countsim -net cwt -w 16 -t 64 -n 256 -rounds 50 -adversary greedy
//	countsim -net bitonic -w 16 -n 256 -rounds 50
//	countsim -net dtree -w 8 -n 64 -rounds 50      # the Θ(n) tree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/contention"
	"repro/internal/registry"
	"repro/internal/stats"
)

func main() {
	var (
		family  = flag.String("net", "cwt", fmt.Sprintf("network family %v", registry.Families()))
		w       = flag.Int("w", 8, "input width")
		t       = flag.Int("t", 0, "output width (cwt; 0 = w)")
		n       = flag.Int("n", 64, "concurrency (number of processes)")
		rounds  = flag.Int("rounds", 50, "tokens per process")
		advName = flag.String("adversary", "greedy", "greedy | random | roundrobin")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	net, err := registry.Build(*family, registry.Params{W: *w, T: *t})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var adv contention.Adversary
	switch *advName {
	case "greedy":
		adv = contention.Greedy{}
	case "random":
		adv = contention.Random{}
	case "roundrobin":
		adv = &contention.RoundRobin{}
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *advName)
		os.Exit(2)
	}

	res := contention.Run(net, contention.Config{N: *n, Rounds: *rounds, Adversary: adv, Seed: *seed})

	fmt.Printf("network    %s (in=%d out=%d depth=%d balancers=%d)\n",
		res.Net, net.InWidth(), net.OutWidth(), net.Depth(), net.Size())
	fmt.Printf("adversary  %s   n=%d   m=%d tokens\n", res.Adversary, res.N, res.Tokens)
	fmt.Printf("stalls     %d total   amortized %.3f stalls/token\n", res.Stalls, res.Amortized)
	fmt.Printf("occupancy  max %d tokens at one balancer\n", res.MaxOccupancy)

	tb := stats.NewTable("layer", "stalls", "share")
	for d, s := range res.PerLayer {
		tb.AddRowf(d+1, s, fmt.Sprintf("%.1f%%", pct(s, res.Stalls)))
	}
	fmt.Printf("\nper-layer stalls:\n%s", tb.String())

	if len(res.PerLabel) > 1 || res.PerLabel[""] == 0 {
		tb := stats.NewTable("block", "stalls", "share")
		for _, block := range []string{"Na", "Nb", "Nc"} {
			if s, ok := res.PerLabel[block]; ok {
				tb.AddRowf(block, s, fmt.Sprintf("%.1f%%", pct(s, res.Stalls)))
			}
		}
		fmt.Printf("\nper-block stalls (§1.3.2):\n%s", tb.String())
	}
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
