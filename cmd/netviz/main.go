// Command netviz prints the structure of the paper's networks — the
// textual regeneration of the construction figures (experiment E9):
//
//	netviz -net cwt -w 8 -t 16 -style summary      # Fig. 3 structure
//	netviz -net cwt -w 4 -t 8  -style diagram      # Fig. 1 wiring
//	netviz -net bitonic -w 8   -style brick        # Fig. 2 style drawing
//	netviz -net cwt -w 8 -t 16 -blocks             # Na/Nb/Nc decomposition
//	netviz -net merger -t 16 -delta 4              # Fig. 6 merger
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/registry"
)

func main() {
	var (
		family = flag.String("net", "cwt", fmt.Sprintf("network family %v", registry.Families()))
		w      = flag.Int("w", 8, "input width")
		t      = flag.Int("t", 0, "output width (cwt/prefix/merger; 0 = w)")
		delta  = flag.Int("delta", 0, "merging parameter (merger; 0 = 2)")
		style  = flag.String("style", "summary", "summary | diagram | brick | dot | json")
		blocks = flag.Bool("blocks", false, "print the Na/Nb/Nc block decomposition (cwt only)")
	)
	flag.Parse()

	n, err := registry.Build(*family, registry.Params{W: *w, T: *t, Delta: *delta})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *style {
	case "summary":
		fmt.Print(network.Summary(n))
	case "diagram":
		fmt.Print(network.Diagram(n))
	case "brick":
		s, err := network.BrickDiagram(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(s)
	case "dot":
		fmt.Print(network.DOT(n))
	case "json":
		data, err := network.Marshal(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	default:
		fmt.Fprintf(os.Stderr, "unknown style %q\n", *style)
		os.Exit(2)
	}

	if *blocks {
		if *family != "cwt" {
			fmt.Fprintln(os.Stderr, "-blocks requires -net cwt")
			os.Exit(2)
		}
		b := core.Decompose(n)
		fmt.Printf("\nblock decomposition (Fig. 3):\n")
		for _, row := range []struct {
			name string
			info core.BlockInfo
		}{{"Na", b.Na}, {"Nb", b.Nb}, {"Nc", b.Nc}} {
			fmt.Printf("  %-3s %3d balancers in %2d layers  %s\n",
				row.name, row.info.Balancers, row.info.Layers, censusString(row.info.Arities))
		}
	}
}

func censusString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d x %s", m[k], k)
	}
	return out
}
