// Command ctlplanedoc generates the control-plane metric reference
// table embedded in OPERATIONS.md. It boots one loopback deployment of
// every transport (a TCP shard + counter, a UDP shard + counter, an
// in-memory inproc shard + counter, a distributed emulation counter),
// gathers every registry the control plane would scrape, and emits one
// markdown row per metric name:
// name, type, the labels its series carry, the registered help text,
// and a hand-maintained healthy range.
//
// The table is therefore derived from the same registrations /metrics
// serves — `make docs-check` regenerates it and diffs against
// OPERATIONS.md, so the manual cannot drift from the code. The command
// exits nonzero if transports register the same name with a different
// type or help, or if the healthy-range map here is missing a
// registered metric (or documents one that no longer exists).
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/distnet"
	"repro/internal/inproc"
	"repro/internal/tcpnet"
	"repro/internal/udpnet"
)

// healthy is the operator-facing healthy range per metric name — the
// one column a registration cannot carry. Every registered name MUST
// have an entry; every entry MUST match a registered name.
var healthy = map[string]string{
	"countnet_shard_frames_total":             "grows with load; fleet rate tracks client rpcs",
	"countnet_shard_conns_open":               "= bound client sessions; 0 on an idle shard",
	"countnet_shard_conns_total":              "monotone; fast growth = reconnect churn",
	"countnet_shard_packets_total":            "grows with load (UDP datagrams in)",
	"countnet_shard_dropped_packets_total":    "0; any growth = malformed or truncated datagrams",
	"countnet_shard_workers":                  "= configured pool size (constant)",
	"countnet_shard_workers_busy":             "≤ workers; pinned at workers = shard saturated",
	"countnet_shard_recv_batches_total":       "packets/batches = mean recvmmsg burst; ≈1 under light load",
	"countnet_shard_recv_batch_packets_total": "= shard packets_total (the same datagrams, syscall view)",
	"countnet_shard_send_batches_total":       "≤ send packets; packets/batches = mean sendmmsg burst",
	"countnet_shard_send_batch_packets_total": "= replies written; ≈ packets − drops",
	"countnet_dedup_clients":                  "= client ids seen; bounded by the dedup client cap",
	"countnet_dedup_pinned_clients":           "= connected client ids; ≤ clients",
	"countnet_dedup_records":                  "≤ clients × window size",
	"countnet_dedup_replays_total":            "0 on clean TCP; grows with retransmits/retries",
	"countnet_dedup_client_evictions_total":   "≈0; steady growth = client cap too small for the fleet",
	"countnet_dedup_min_idle_seconds":         "= configured eviction floor (constant)",
	"countnet_dedup_oldest_idle_seconds":      "≤ max_idle with age expiry on; unbounded growth with it off = departed clients pile up",
	"countnet_dedup_max_idle_seconds":         "= configured age-expiry bound (constant); 0 = age expiry disabled",
	"countnet_dedup_client_expirations_total": "≈0 with a stable client set; growth = abandoned client ids reclaimed",
	"countnet_client_rpcs_total":              "≈1.05 per token at k=64 (E25-E28)",
	"countnet_client_flights_total":           "= operations issued (one per batch/window)",
	"countnet_client_flight_retries_total":    "0 on a healthy network; growth = sessions dying mid-flight",
	"countnet_client_inflight":                "≤ concurrent callers; 0 when quiescent",
	"countnet_client_windows_total":           "grows under concurrency (coalesced groups)",
	"countnet_client_window_tokens_total":     "tokens/windows = coalescing win; ≈1 means no sharing",
	"countnet_client_pool_checkouts_total":    "= flights (each checks out one session)",
	"countnet_client_pool_dials_total":        "≈ pool width; steady growth = session churn",
	"countnet_client_pool_evictions_total":    "0; growth = probe failures or mid-flight deaths",
	"countnet_client_pool_idle":               "≤ pool width",
	"countnet_client_packets_total":           "≤ rpcs (MTU packing amortizes frames per datagram)",
	"countnet_client_retransmits_total":       "0 on a clean network; rate tracks packet loss",
	"countnet_client_pipeline_depth":          "= configured depth (constant); 1 = stop-and-wait",
	"countnet_client_outstanding_packets":     "≤ depth × sessions; 0 when quiescent",
	"countnet_client_msgs_total":              "≈4.4 per token batched (E25); 2(d+1) unbatched",
	"countnet_client_flight_seconds":          "p99 ≈ one RTT × pipeline depth; spikes track retries (see OPERATIONS.md triage)",
	"countnet_client_attempt_seconds":         "≈ one wire RTT; ≪ flight_seconds unless retries are zero",
	"countnet_client_coalesce_wait_seconds":   "≤ one flight; grows with window size under concurrency",
	"countnet_client_pool_checkout_seconds":   "≈0 with idle sessions; ≈ dial time after evictions",
	"countnet_client_flight_attempts":         "p99 = 1 on a healthy network; >1 tracks retries_total",
	"countnet_client_flight_events":           "≤ ring capacity (64); = recent completed flights",
}

type row struct {
	typ    ctlplane.Type
	help   string
	labels map[string]bool
}

func main() {
	rows := make(map[string]*row)
	merge := func(samples []ctlplane.Sample) {
		for _, s := range samples {
			r, ok := rows[s.Name]
			if !ok {
				r = &row{typ: s.Type, help: s.Help, labels: make(map[string]bool)}
				rows[s.Name] = r
			}
			if r.typ != s.Type || r.help != s.Help {
				fatalf("metric %s registered inconsistently across transports:\n  %s / %q\n  %s / %q",
					s.Name, r.typ, r.help, s.Type, s.Help)
			}
			for _, l := range s.Labels {
				r.labels[l.Key] = true
			}
		}
	}

	topo, err := core.New(4, 8)
	if err != nil {
		fatalf("%v", err)
	}

	ts, err := tcpnet.StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		fatalf("tcp shard: %v", err)
	}
	tctr := tcpnet.NewCluster(topo, []string{ts.Addr()}).NewCounter()
	merge(ts.Gather())
	merge(tctr.Gather())
	tctr.Close()
	ts.Close()

	us, err := udpnet.StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		fatalf("udp shard: %v", err)
	}
	uctr := udpnet.NewCluster(topo, []string{us.Addr()}).NewCounter()
	merge(us.Gather())
	merge(uctr.Gather())
	uctr.Close()
	us.Close()

	ic, istop, err := inproc.StartCluster(topo, 1)
	if err != nil {
		fatalf("inproc shard: %v", err)
	}
	ictr := ic.NewCounter()
	merge(ic.Shard(0).Gather())
	merge(ictr.Gather())
	ictr.Close()
	istop()

	dtopo, err := core.New(4, 8)
	if err != nil {
		fatalf("%v", err)
	}
	dctr := distnet.NewCounter(dtopo, distnet.Config{})
	merge(dctr.Gather())
	dctr.Stop()

	names := make([]string, 0, len(rows))
	for name := range rows {
		if _, ok := healthy[name]; !ok {
			fatalf("metric %s is registered but has no healthy-range entry in ctlplanedoc", name)
		}
		names = append(names, name)
	}
	for name := range healthy {
		if _, ok := rows[name]; !ok {
			fatalf("ctlplanedoc documents %s but no transport registers it", name)
		}
	}
	sort.Strings(names)

	fmt.Println("| Metric | Type | Labels | Meaning | Healthy range |")
	fmt.Println("|---|---|---|---|---|")
	for _, name := range names {
		r := rows[name]
		keys := make([]string, 0, len(r.labels))
		for k := range r.labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("| `%s` | %s | %s | %s | %s |\n",
			name, r.typ, strings.Join(keys, ", "), r.help, healthy[name])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctlplanedoc: "+format+"\n", args...)
	os.Exit(1)
}
