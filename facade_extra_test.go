package countnet

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestButterflyFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewForwardButterfly(16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBackwardButterfly(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Network{d, e} {
		if n.Depth() != 4 {
			t.Fatalf("%s depth %d", n.Name(), n.Depth())
		}
		if err := VerifySmoothing(n, 4, 2, 200, rng); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeasibilityFacade(t *testing.T) {
	if ok, _ := Constructible(8, []int{2}); !ok {
		t.Fatal("width 8 from (·,2) should be constructible")
	}
	ok, p := Constructible(6, []int{2})
	if ok || p != 3 {
		t.Fatalf("width 6 from (·,2): ok=%v p=%d", ok, p)
	}
	n, err := NewCWT(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditFeasibility(n); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizabilityFacade(t *testing.T) {
	central := NewCentralCounter()
	rep := ObserveLinearizability(4, 500, central.Inc)
	if rep.Inversions != 0 {
		t.Fatalf("central counter inverted %d times", rep.Inversions)
	}
	if rep.Ops != 2000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
}

func TestStrongestFacade(t *testing.T) {
	n, err := NewCWT(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	best := MeasureContentionStrongest(n, 32, 10, 1)
	plain := MeasureContention(n, 32, 10, GreedyAdversary(), 1)
	if best.Amortized < plain.Amortized {
		t.Fatalf("strongest %.2f < greedy %.2f", best.Amortized, plain.Amortized)
	}
	if !seq.IsStep(best.Exits) {
		t.Fatal("exits not step")
	}
	if len(AllAdversaries()) < 6 {
		t.Fatal("adversary roster shrank")
	}
	for _, adv := range []Adversary{ParkingAdversary(), StarverAdversary(2)} {
		res := MeasureContention(n, 16, 5, adv, 2)
		if res.Tokens != 80 {
			t.Fatalf("%s: tokens %d", adv.Name(), res.Tokens)
		}
	}
}

// Path-length uniformity: every token in C(w,t), bitonic, and the merger
// crosses exactly Depth() balancers — the constructions are layered, so
// latency is uniform across tokens (the paper's "depth determines
// latency").
func TestUniformPathLength(t *testing.T) {
	builds := []func() (*Network, error){
		func() (*Network, error) { return NewCWT(8, 16) },
		func() (*Network, error) { return NewCWT(16, 16) },
		func() (*Network, error) { return NewBitonic(8) },
		func() (*Network, error) { return NewPeriodic(8) },
		func() (*Network, error) { return NewMerger(16, 4) },
		func() (*Network, error) { return NewForwardButterfly(8) },
	}
	for _, build := range builds {
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			_, path := n.TraverseTrace(i % n.InWidth())
			if len(path) != n.Depth() {
				t.Fatalf("%s: token crossed %d balancers, depth is %d",
					n.Name(), len(path), n.Depth())
			}
		}
	}
}

// Fuzz the Builder framework itself: random layered networks must preserve
// token sums and match quiescent evaluation under concurrent traversal.
func TestRandomNetworksSumPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := randomNetwork(t, rng)
		x := make([]int64, n.InWidth())
		var total int64
		for i := range x {
			x[i] = rng.Int63n(40)
			total += x[i]
		}
		y, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Sum(y) != total {
			t.Fatalf("trial %d: %s lost tokens: %d -> %d", trial, n.Name(), total, seq.Sum(y))
		}
	}
}

// randomNetwork builds a random valid layered network: each layer randomly
// groups the current ports into balancers of arity 1..3 inputs and 1..4
// outputs.
func randomNetwork(t *testing.T, rng *rand.Rand) *Network {
	t.Helper()
	w := 2 + rng.Intn(7)
	b, ports := NewBuilder("fuzz", w)
	layers := 1 + rng.Intn(4)
	for l := 0; l < layers; l++ {
		rng.Shuffle(len(ports), func(i, j int) { ports[i], ports[j] = ports[j], ports[i] })
		var next []Port
		for len(ports) > 0 {
			take := 1 + rng.Intn(3)
			if take > len(ports) {
				take = len(ports)
			}
			in := ports[:take]
			ports = ports[take:]
			out := b.Balancer(in, 1+rng.Intn(4))
			next = append(next, out...)
		}
		ports = next
	}
	n, err := b.Finalize(ports)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
