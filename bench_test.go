// Benchmark harness: one benchmark family per experiment row of
// EXPERIMENTS.md / DESIGN.md §3. Custom metrics report the paper's
// quantities (stalls/token for contention experiments) alongside ns/op.
//
// Run everything:  go test -bench=. -benchmem
package countnet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/contention"
	"repro/internal/counter"
	"repro/internal/dtree"
	"repro/internal/registry"
)

func mustNet(b *testing.B, family string, p registry.Params) *Network {
	b.Helper()
	n, err := registry.Build(family, p)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// E1: construction cost of every family (depth table companion).
func BenchmarkConstruct(b *testing.B) {
	cases := []struct {
		name   string
		family string
		p      registry.Params
	}{
		{"CWT/w=16,t=16", "cwt", registry.Params{W: 16}},
		{"CWT/w=16,t=64", "cwt", registry.Params{W: 16, T: 64}},
		{"CWT/w=64,t=256", "cwt", registry.Params{W: 64, T: 256}},
		{"Bitonic/w=16", "bitonic", registry.Params{W: 16}},
		{"Bitonic/w=64", "bitonic", registry.Params{W: 64}},
		{"Periodic/w=16", "periodic", registry.Params{W: 16}},
		{"Merger/t=64,d=8", "merger", registry.Params{T: 64, Delta: 8}},
		{"Butterfly/w=64", "butterfly", registry.Params{W: 64}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := registry.Build(c.family, c.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3/E13 latency: single-token traversal (depth in action). The irregular
// C(16,64) and the bitonic network have identical depth 10, so their
// per-token latency should match — the paper's "same latency" claim.
func BenchmarkTraverse(b *testing.B) {
	cases := []struct {
		name   string
		family string
		p      registry.Params
	}{
		{"CWT/w=16,t=16", "cwt", registry.Params{W: 16}},
		{"CWT/w=16,t=64", "cwt", registry.Params{W: 16, T: 64}},
		{"Bitonic/w=16", "bitonic", registry.Params{W: 16}},
		{"Periodic/w=16", "periodic", registry.Params{W: 16}},
		{"CWT/w=64,t=64", "cwt", registry.Params{W: 64}},
		{"Bitonic/w=64", "bitonic", registry.Params{W: 64}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			n := mustNet(b, c.family, c.p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Traverse(i % n.InWidth())
			}
		})
	}
}

// E3 fast path: batched traversal vs token-at-a-time. The custom metric
// ns/token divides the batch cost by k — watch it fall as the batch
// amortizes one fetch-add per balancer over many tokens.
func BenchmarkTraverseBatch(b *testing.B) {
	for _, c := range []struct {
		name   string
		family string
		p      registry.Params
	}{
		{"CWT16x64", "cwt", registry.Params{W: 16, T: 64}},
		{"Bitonic16", "bitonic", registry.Params{W: 16}},
	} {
		for _, k := range []int64{1, 8, 64, 512} {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				n := mustNet(b, c.family, c.p)
				out := make([]int64, n.OutWidth())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.TraverseBatchInto(i%n.InWidth(), k, out)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/token")
			})
		}
	}
}

// E23 antitoken mirror: batched antitoken traversal (TraverseAntiBatch),
// one fetch-add per balancer touched on the Fetch&Decrement path.
func BenchmarkTraverseAntiBatch(b *testing.B) {
	for _, k := range []int64{1, 64, 512} {
		b.Run(fmt.Sprintf("CWT16x64/k=%d", k), func(b *testing.B) {
			n := mustNet(b, "cwt", registry.Params{W: 16, T: 64})
			out := make([]int64, n.OutWidth())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.TraverseAntiBatchInto(i%n.InWidth(), k, out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/token")
		})
	}
}

// E24: elimination layer under a balanced Inc/Dec workload (pairs cancel
// at the door; the pairs/op metric reports how often).
func BenchmarkEliminatingCounter(b *testing.B) {
	net := mustAny("cwt", registry.Params{W: 16})
	e, err := NewEliminatingCounter(net, EliminationOptions{Slots: 2, Spin: 2048})
	if err != nil {
		b.Fatal(err)
	}
	var pids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1))
		for pb.Next() {
			if pid%2 == 0 {
				e.Inc(pid)
			} else {
				e.Dec(pid)
			}
		}
	})
	b.ReportMetric(float64(2*e.Pairs())/float64(b.N), "eliminated/op")
}

// E13: wall-clock counter throughput under goroutine parallelism
// (RunParallel scales with GOMAXPROCS). This is the refs [19,20]
// simulation-side sweep, now including the E23 fast-path counters
// (sharded and batched).
func BenchmarkCounterThroughput(b *testing.B) {
	impls := []struct {
		name string
		make func() counter.Counter
	}{
		{"Central", func() counter.Counter { return counter.NewCentral() }},
		{"Locked", func() counter.Counter { return counter.NewLocked() }},
		{"Bitonic16", func() counter.Counter { return counter.NewNetwork(mustAny("bitonic", registry.Params{W: 16})) }},
		{"Periodic16", func() counter.Counter { return counter.NewNetwork(mustAny("periodic", registry.Params{W: 16})) }},
		{"CWT16x16", func() counter.Counter { return counter.NewNetwork(mustAny("cwt", registry.Params{W: 16})) }},
		{"CWT16x64", func() counter.Counter { return counter.NewNetwork(mustAny("cwt", registry.Params{W: 16, T: 64})) }},
		{"Sharded4xCWT16x16", func() counter.Counter {
			c, err := NewShardedCounter(4, func() (*Network, error) { return NewCWT(16, 16) })
			if err != nil {
				panic(err)
			}
			return c
		}},
		{"Batched16xCWT16x64", func() counter.Counter {
			return NewBatchedCounter(mustAny("cwt", registry.Params{W: 16, T: 64}), 16)
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make()
			var pids atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pid := int(pids.Add(1))
				for pb.Next() {
					c.Inc(pid)
				}
			})
		})
	}
}

func mustAny(family string, p registry.Params) *Network {
	n, err := registry.Build(family, p)
	if err != nil {
		panic(err)
	}
	return n
}

// E10/E11/E12: adversarial amortized contention, reported as the custom
// metric stalls/token. Each benchmark iteration simulates a full execution
// of n*rounds tokens; compare the stalls/token column across families and
// concurrencies — this is the paper's §1.3.1 comparison table.
func BenchmarkContentionSim(b *testing.B) {
	type cse struct {
		name   string
		family string
		p      registry.Params
		n      int
	}
	var cases []cse
	for _, n := range []int{32, 256} {
		cases = append(cases,
			cse{fmt.Sprintf("Bitonic16/n=%d", n), "bitonic", registry.Params{W: 16}, n},
			cse{fmt.Sprintf("Periodic16/n=%d", n), "periodic", registry.Params{W: 16}, n},
			cse{fmt.Sprintf("CWT16x16/n=%d", n), "cwt", registry.Params{W: 16}, n},
			cse{fmt.Sprintf("CWT16x64/n=%d", n), "cwt", registry.Params{W: 16, T: 64}, n},
			cse{fmt.Sprintf("DTree16/n=%d", n), "dtree", registry.Params{W: 16}, n},
		)
	}
	const rounds = 20
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			net := mustNet(b, c.family, c.p)
			var last contention.Result
			for i := 0; i < b.N; i++ {
				last = contention.Run(net, contention.Config{
					N: c.n, Rounds: rounds, Adversary: contention.Greedy{}, Seed: int64(i),
				})
			}
			b.ReportMetric(last.Amortized, "stalls/token")
			b.ReportMetric(float64(last.Tokens)*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}

// E10: the t-sweep — contention of C(16,t) falls as t grows at constant
// depth (the paper's flexibility claim).
func BenchmarkContentionTSweep(b *testing.B) {
	const n, rounds = 256, 20
	for _, t := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("CWT16x%d", t), func(b *testing.B) {
			net := mustNet(b, "cwt", registry.Params{W: 16, T: t})
			var last contention.Result
			for i := 0; i < b.N; i++ {
				last = contention.Run(net, contention.Config{
					N: n, Rounds: rounds, Adversary: contention.Greedy{}, Seed: int64(i),
				})
			}
			b.ReportMetric(last.Amortized, "stalls/token")
		})
	}
}

// E4: quiescent-state arithmetic evaluation speed (the verification
// engine; also a proxy for network size).
func BenchmarkQuiescent(b *testing.B) {
	for _, c := range []struct {
		name   string
		family string
		p      registry.Params
	}{
		{"CWT16x64", "cwt", registry.Params{W: 16, T: 64}},
		{"Bitonic64", "bitonic", registry.Params{W: 64}},
	} {
		b.Run(c.name, func(b *testing.B) {
			n := mustNet(b, c.family, c.p)
			x := make([]int64, n.InWidth())
			for i := range x {
				x[i] = int64(i * 3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Quiescent(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E14: the sorting byproduct — comparator-network sort of width-w slices.
func BenchmarkSort(b *testing.B) {
	for _, w := range []int{16, 64} {
		b.Run(fmt.Sprintf("CWTSorter/w=%d", w), func(b *testing.B) {
			net := mustNet(b, "cwt", registry.Params{W: w})
			s, err := NewSortingNetwork(net)
			if err != nil {
				b.Fatal(err)
			}
			in := make([]int, w)
			for i := range in {
				in[i] = (i * 7919) % 1000
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E15: antitoken traversal cost (Fetch&Decrement path).
func BenchmarkAntitoken(b *testing.B) {
	n := mustNet(b, "cwt", registry.Params{W: 16, T: 16})
	// Pre-load with tokens so antitokens unwind real state.
	for i := 0; i < 1024; i++ {
		n.Traverse(i % 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			n.Traverse(i % 16)
		} else {
			n.TraverseAnti(i % 16)
		}
	}
}

// E12: the diffracting tree with a live prism under parallel load
// (throughput side; its adversarial contention is in BenchmarkContentionSim).
func BenchmarkDTreeCounter(b *testing.B) {
	c, err := dtree.NewCounter(16, dtree.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// E13 distributed: message-passing emulation Inc latency/throughput.
func BenchmarkDistributedCounter(b *testing.B) {
	for _, c := range []struct {
		name   string
		family string
		p      registry.Params
	}{
		{"Bitonic8", "bitonic", registry.Params{W: 8}},
		{"CWT8x24", "cwt", registry.Params{W: 8, T: 24}},
	} {
		b.Run(c.name, func(b *testing.B) {
			net := mustNet(b, c.family, c.p)
			ctr := NewDistributedCounter(net, DistributedConfig{LinkBuffer: 4})
			defer ctr.Stop()
			var pids atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				pid := int(pids.Add(1))
				for pb.Next() {
					ctr.Inc(pid)
				}
			})
		})
	}
}

// E20: the adaptive counter's fast path (central mode) and network mode.
func BenchmarkAdaptiveCounter(b *testing.B) {
	mk := func() *AdaptiveCounter {
		return NewAdaptiveCounter(AdaptiveCounterConfig{
			BuildNetwork: func() (*Network, error) { return NewCWT(8, 8) },
		})
	}
	b.Run("central-mode", func(b *testing.B) {
		a := mk()
		for i := 0; i < b.N; i++ {
			a.Inc(i)
		}
	})
	b.Run("network-mode", func(b *testing.B) {
		a := mk()
		a.ForceMode("network")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Inc(i)
		}
	})
}

// E13: queueing simulation cost (events/s of the discrete-event engine).
func BenchmarkTimesim(b *testing.B) {
	net := mustNet(b, "cwt", registry.Params{W: 16, T: 64})
	for i := 0; i < b.N; i++ {
		SimulateTiming(net.Clone(), TimingConfig{
			Processes: 64, Ops: 2000, ServiceTime: 1, Exponential: true, Seed: int64(i),
		})
	}
}

// E22: tracing overhead versus plain traversal, plus linearization cost.
func BenchmarkTraceCertification(b *testing.B) {
	net := mustNet(b, "cwt", registry.Params{W: 8, T: 16})
	b.Run("record", func(b *testing.B) {
		rec := NewTraceRecorder()
		for i := 0; i < b.N; i++ {
			rec.Traverse(net, i%8, i)
		}
	})
	b.Run("linearize+replay", func(b *testing.B) {
		rec := NewTraceRecorder()
		src := net.Clone() // fresh balancer states so K indices start at 0
		for i := 0; i < 2000; i++ {
			rec.Traverse(src, i%8, i)
		}
		fresh := mustNet(b, "cwt", registry.Params{W: 8, T: 16})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, err := rec.Linearize()
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.Replay(fresh); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E17 ablation: traversal latency of the bitonic-merger variant, whose
// depth grows with t (vs constant depth with M(t,δ)).
func BenchmarkBitonicMergerAblation(b *testing.B) {
	net := mustNet(b, "cwt", registry.Params{W: 8, T: 32})
	abl, err := NewCWTWithBitonicMerger(8, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MergerMtDelta/depth="+fmt.Sprint(net.Depth()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.Traverse(i % 8)
		}
	})
	b.Run("BitonicMerger/depth="+fmt.Sprint(abl.Depth()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			abl.Traverse(i % 8)
		}
	})
}
