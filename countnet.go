// Package countnet is a production-quality Go implementation of the
// counting network of Busch & Mavronicolas, "An Efficient Counting
// Network" (IPPS/SPDP'98; full version in Theoretical Computer Science
// 411, 2010), together with every substrate and baseline the paper builds
// on or compares against.
//
// # Overview
//
// A counting network (Aspnes, Herlihy & Shavit) is a distributed data
// structure of asynchronous (p,q)-balancers that implements a shared
// counter with low memory contention: tokens traverse the network from
// input wires to output wires, and in every quiescent state the number of
// tokens that exited each output wire satisfies the step property.
//
// The paper's contribution, constructed by NewCWT, is the irregular
// network C(w,t) whose output width t = p·w may exceed its input width w:
// its depth (lg²w+lgw)/2 depends only on w, while its amortized contention
// O(n·lgw/w + n·lg²w/t + w·lg³w/t + lg²w) falls as t grows. With
// t = w·lgw it beats the bitonic network of equal width and depth by a
// lg w factor at high concurrency.
//
// # What the package provides
//
//   - Constructors for C(w,t), its difference merging network M(t,δ), the
//     bitonic and periodic baselines, forward/backward butterflies, and
//     the diffracting tree.
//   - Lock-free concurrent traversal (one atomic add per balancer) and
//     shared Fetch&Increment / Fetch&Decrement counters.
//   - A high-throughput fast path: batched traversal for tokens AND
//     antitokens (Network.TraverseBatch / Network.TraverseAntiBatch, one
//     atomic add per balancer *touched* rather than per token), plus
//     batched, sharded and Inc/Dec-eliminating counters built on it.
//   - The Dwork–Herlihy–Waarts adversarial contention simulator.
//   - Quiescent-state verification (counting / k-smoothing / difference
//     merging properties).
//   - The Section 7 byproduct: balancing networks as sorting networks.
//   - A message-passing emulation and TCP- and UDP-sharded deployments, all
//     speaking a batched message protocol (one message per balancer
//     touched per batch) with client-side coalescing of concurrent
//     callers into shared flights, composable into pid-striped fleets of
//     S independent deployments (ShardedDistributedCounter,
//     TCPShardedCluster) whose TCP wires run from pooled, self-healing
//     sessions: health-probed at checkout, failed connections evicted
//     pool-wide, and flights retried EXACTLY-ONCE under a bounded
//     budget via seq-numbered idempotent frames (protocol v2). The UDP
//     transport (UDPCluster) turns that same machinery into a full
//     reliability layer: frames packed into MTU-budgeted datagrams,
//     jittered retransmit timers, and per-client dedup windows making
//     every mutating op exactly-once under packet loss, duplication
//     and reordering. The whole client stack — coalescing, pooling,
//     tape-driven retries, striping — is ONE implementation behind a
//     transport seam; InprocCluster is the dependency-free in-memory
//     transport on the same seam, with injectable call/reply loss, and
//     `make conformance` runs the one suite every transport must pass.
//   - A production control plane (ServeControlPlane, DrainOnSignal):
//     every shard server, counter client and sharded fleet serves
//     /health (liveness + quiescence), /status (topology JSON) and
//     /metrics (Prometheus text format) from read-side views over the
//     atomics the data path already maintains, so a scrape never adds
//     an RPC or blocks a flight.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and OPERATIONS.md for the operator's
// manual: fleet bring-up, scraping, the full metric reference, and the
// drain/triage runbooks.
//
// # Contributing
//
// Run `make check` before pushing — it mirrors CI exactly, including
// `make lint`: cmd/countlint, the repository's own static analyzers,
// which mechanize the tree's hand-audited invariants (spin-loop
// hygiene, atomics-only field access, Makefile ↔ ci.yml gate
// lockstep, build-tag pairing, errors.Is on sentinels, metric naming).
// DESIGN.md §6 documents the analyzers; the waiver policy for
// `//lint:ignore` is in OPERATIONS.md.
package countnet

import (
	"io"
	"math/rand"
	"net/http"
	"os"

	"repro/internal/bitonic"
	"repro/internal/butterfly"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ctlplane"
	"repro/internal/distnet"
	"repro/internal/dtree"
	"repro/internal/feasibility"
	"repro/internal/inproc"
	"repro/internal/linearize"
	"repro/internal/merge"
	"repro/internal/network"
	"repro/internal/periodic"
	"repro/internal/shard"
	"repro/internal/sorting"
	"repro/internal/tcpnet"
	"repro/internal/timesim"
	"repro/internal/trace"
	"repro/internal/udpnet"
)

// Network is a balancing network: an immutable DAG of balancers with
// ordered input and output wires, supporting lock-free concurrent token
// traversal and quiescent-state evaluation.
type Network = network.Network

// Builder incrementally constructs custom balancing networks; see
// NewBuilder.
type Builder = network.Builder

// Port is a dangling wire end handed out by a Builder.
type Port = network.Port

// NewBuilder starts a custom balancing network with the given input width.
// Use Builder.Balancer to add balancers and Builder.Finalize to obtain the
// Network.
func NewBuilder(name string, inWidth int) (*Builder, []Port) {
	return network.NewBuilder(name, inWidth)
}

// NewCWT constructs the paper's counting network C(w,t): input width
// w = 2^k, output width t = p·w (k, p >= 1). Its depth is (lg²w+lgw)/2
// regardless of t (Theorem 4.1) and it satisfies the counting property
// (Theorem 4.2).
func NewCWT(w, t int) (*Network, error) { return core.New(w, t) }

// CWTValid reports whether (w,t) are valid C(w,t) parameters.
func CWTValid(w, t int) bool { return core.Valid(w, t) }

// CWTDepth returns the Theorem 4.1 depth formula (lg²w + lgw)/2.
func CWTDepth(w int) int { return core.DepthFormula(w) }

// NewCWTWithBitonicMerger is the §3.3/§1.3.2 ablation: C(w,t) built with
// the bitonic merging network in place of M(t,δ). Still a counting
// network, but its depth grows with t instead of depending on w alone —
// the measured contrast is experiment E17.
func NewCWTWithBitonicMerger(w, t int) (*Network, error) {
	return core.NewWithBitonicMerger(w, t, bitonic.BuildMerger)
}

// NewMerger constructs the difference merging network M(t,δ) of Section 3:
// width t, depth lg δ; merges two step input halves whose sums differ by
// at most δ into a step output.
func NewMerger(t, delta int) (*Network, error) { return merge.New(t, delta) }

// NewCWTPrefix constructs C'(w,t): the first lgw layers of C(w,t) (blocks
// Na and Nb), which are s-smoothing with s = floor(w·lgw/t)+2 (Lemma 6.6).
func NewCWTPrefix(w, t int) (*Network, error) { return core.NewPrefix(w, t) }

// NewLadder constructs the single-layer ladder network L(w) pairing wires
// i and i+w/2.
func NewLadder(w int) (*Network, error) { return core.NewLadder(w) }

// NewBitonic constructs the bitonic counting network of width w (Aspnes,
// Herlihy & Shavit), the paper's primary regular baseline.
func NewBitonic(w int) (*Network, error) { return bitonic.New(w) }

// NewPeriodic constructs the periodic counting network of width w, the
// paper's second regular baseline (depth lg²w).
func NewPeriodic(w int) (*Network, error) { return periodic.New(w) }

// NewToggleTree constructs the diffracting tree's toggle-tree skeleton as
// a balancing network with 1 input wire and w output wires (§1.4.1).
func NewToggleTree(w int) (*Network, error) { return dtree.NewToggleNetwork(w) }

// DiffractingTree is the randomized diffracting tree of Shavit & Zemach
// with working prisms; see NewDiffractingTree.
type DiffractingTree = dtree.Tree

// DiffractingTreeOptions configures prism width and spin budget.
type DiffractingTreeOptions = dtree.Options

// NewDiffractingTree constructs a diffracting tree with w = 2^k leaves.
func NewDiffractingTree(w int, opts DiffractingTreeOptions) (*DiffractingTree, error) {
	return dtree.New(w, opts)
}

// Blocks is the Na/Nb/Nc block decomposition of C(w,t) (§1.3.2, Fig. 3).
type Blocks = core.Blocks

// Decompose returns the block decomposition of a network built by NewCWT.
func Decompose(n *Network) Blocks { return core.Decompose(n) }

// Counter is a shared Fetch&Increment counter.
type Counter = counter.Counter

// NetworkCounter is a counting-network-backed counter supporting both
// Fetch&Increment and Fetch&Decrement.
type NetworkCounter = counter.Network

// NewCounter wraps a counting network as a shared counter: m concurrent
// Inc operations return exactly the values 0..m-1.
func NewCounter(n *Network) *NetworkCounter { return counter.NewNetwork(n) }

// NewCentralCounter returns the single-atomic-word baseline counter.
func NewCentralCounter() Counter { return counter.NewCentral() }

// AdaptiveCounter migrates between a central word (low load) and a
// counting network (high load), keeping values dense across migrations —
// the Section 7 future-work direction (ref [27]). Network epochs serve
// increments in batches whose size is learned from the network's observed
// batching crossover (see AdaptiveCounterConfig.Batch).
type AdaptiveCounter = counter.Adaptive

// AdaptiveCounterConfig tunes the adaptive counter's migration thresholds.
type AdaptiveCounterConfig = counter.AdaptiveConfig

// NewAdaptiveCounter creates an adaptive counter starting in central mode.
func NewAdaptiveCounter(cfg AdaptiveCounterConfig) *AdaptiveCounter {
	return counter.NewAdaptive(cfg)
}

// NewLockedCounter returns the mutex-based baseline counter.
func NewLockedCounter() Counter { return counter.NewLocked() }

// High-throughput fast path -------------------------------------------------
//
// Three layers turn a counting network into a counter fit for very high
// concurrency. Network.TraverseBatch pushes k tokens through with one
// atomic fetch-add per balancer touched (a (p,q)-balancer hands
// consecutive tokens to consecutive wires, so a group splits
// arithmetically); the counters below build on it and on internal/shard.

// BatchedCounter amortizes network traversals by prefetching values k at
// a time through Network.TraverseBatch into per-stripe buffers. Claimed
// values are dense in quiescent states; buffered-but-unreturned ones are
// reported by Buffered.
type BatchedCounter = counter.Batched

// NewBatchedCounter wraps a counting network in a batched counter with
// the given batch size (<= 0 learns it from the network's observed
// batching crossover; see LearnBatchSize).
func NewBatchedCounter(n *Network, batch int) *BatchedCounter {
	return counter.NewBatched(counter.NewNetwork(n), batch)
}

// LearnBatchSize measures the network's batching crossover (per-token
// cost of TraverseBatch vs single-token traversal, probed on a clone) and
// returns a batch size at or past it — the structural estimate is the
// network size ≈ width·depth (EXPERIMENTS.md E23).
func LearnBatchSize(n *Network) int { return counter.LearnBatch(n) }

// ShardedCounter stripes Fetch&Increment traffic over several independent
// counting networks selected by pid hash; shard s of S hands out the
// residue class v·S + s, so values stay globally unique while hot words
// multiply by S.
type ShardedCounter = counter.Sharded

// NewShardedCounter builds a sharded counter over `shards` fresh networks
// produced by build (called once per shard).
func NewShardedCounter(shards int, build func() (*Network, error)) (*ShardedCounter, error) {
	return counter.NewSharded(shards, build)
}

// EliminatingCounter is an elimination front-end in the spirit of the
// diffracting tree's prism (§1.4.1): concurrent Inc/Dec pairs meet in an
// exchange slot, linearize as an adjacent Inc;Dec returning the same
// value to both callers, and never enter the network.
//
// Caveat: an eliminated pair's value is drawn from a slot-private
// sequence, not from the network, so it may coincide with a value a
// concurrent non-eliminated Inc is holding. The pair issues and revokes
// its value in one linearization step, so quiescent-state guarantees are
// unaffected — but Inc results from this counter are NOT unique live
// tickets. Use BatchedCounter or ShardedCounter where every Inc must
// hold a distinct value; use this counter where Inc/Dec traffic is
// balanced and only the net count matters (semaphores, load gauges).
type EliminatingCounter = shard.Eliminator

// EliminationOptions tunes the eliminator's slot count and spin budget.
type EliminationOptions = shard.EliminatorOptions

// NewEliminatingCounter wraps a counting-network counter with an
// elimination layer handling both Inc (tokens) and Dec (antitokens).
func NewEliminatingCounter(n *Network, opts EliminationOptions) (*EliminatingCounter, error) {
	return shard.NewEliminator(counter.NewNetwork(n), opts)
}

// Contention simulation ---------------------------------------------------

// Adversary schedules token transitions in the contention simulator.
type Adversary = contention.Adversary

// GreedyAdversary maximizes immediate stalls (convoying).
func GreedyAdversary() Adversary { return contention.Greedy{} }

// RandomAdversary schedules uniformly at random.
func RandomAdversary() Adversary { return contention.Random{} }

// RoundRobinAdversary advances all tokens in lockstep generations — the
// strongest strategy on counting networks (the DHW generation structure).
func RoundRobinAdversary() Adversary { return &contention.RoundRobin{} }

// ParkingAdversary keeps balancer crowds parked and runs the newest
// arrivals through them.
func ParkingAdversary() Adversary { return contention.Parking{} }

// StarverAdversary drives k runner processes through the network while all
// other tokens stay parked (the reservoir schedule).
func StarverAdversary(runners int) Adversary { return contention.Starver{Runners: runners} }

// AllAdversaries returns one instance of every built-in strategy.
func AllAdversaries() []Adversary { return contention.AllAdversaries() }

// MeasureContentionStrongest runs every built-in adversary and returns the
// result with the highest amortized contention — the best empirical lower
// bound on cont(B, n).
func MeasureContentionStrongest(n *Network, procs, rounds int, seed int64) ContentionResult {
	return contention.Strongest(n, contention.Config{N: procs, Rounds: rounds, Seed: seed})
}

// ContentionResult reports measured stalls for one simulated execution.
type ContentionResult = contention.Result

// MeasureContention runs m = n·rounds tokens through the network under the
// adversary (nil = greedy) and returns the Dwork–Herlihy–Waarts stall
// accounting, including per-layer and per-block attribution.
func MeasureContention(n *Network, procs, rounds int, adv Adversary, seed int64) ContentionResult {
	return contention.Run(n, contention.Config{N: procs, Rounds: rounds, Adversary: adv, Seed: seed})
}

// Verification -------------------------------------------------------------

// VerifyCounting checks the counting property over exhaustive small inputs
// plus `trials` random input count vectors. A nil error means no
// counterexample was found.
func VerifyCounting(n *Network, exhaustiveSum, trials int, rng *rand.Rand) error {
	return network.CheckCounting(n, exhaustiveSum, trials, rng)
}

// VerifySmoothing checks the k-smoothing property over the same sweep.
func VerifySmoothing(n *Network, k int64, exhaustiveSum, trials int, rng *rand.Rand) error {
	return network.CheckSmoothing(n, k, exhaustiveSum, trials, rng)
}

// VerifyDifferenceMerger checks the difference-merging property with
// parameter delta.
func VerifyDifferenceMerger(n *Network, delta int64, exhaustiveSum, trials int, rng *rand.Rand) error {
	return network.CheckDifferenceMerger(n, delta, exhaustiveSum, trials, rng)
}

// Rendering ----------------------------------------------------------------

// Summary returns a structural description (widths, depth, per-layer
// balancer census).
func Summary(n *Network) string { return network.Summary(n) }

// Diagram returns an exact layer-by-layer wiring listing.
func Diagram(n *Network) string { return network.Diagram(n) }

// BrickDiagram renders a classic horizontal-wire diagram for all-(2,2)
// regular networks (the Fig. 2 style).
func BrickDiagram(n *Network) (string, error) { return network.BrickDiagram(n) }

// DOT renders the network as a Graphviz digraph.
func DOT(n *Network) string { return network.DOT(n) }

// Marshal serializes a network topology (including balancer initial
// states and block labels) to JSON for interchange; Unmarshal rebuilds it.
func Marshal(n *Network) ([]byte, error) { return network.Marshal(n) }

// Unmarshal rebuilds a network from Marshal's JSON, re-validating the
// wiring.
func Unmarshal(data []byte) (*Network, error) { return network.Unmarshal(data) }

// Cascade composes networks in series (outputs of each feed inputs of the
// next); e.g. the periodic network is a cascade of lgw butterfly blocks.
func Cascade(name string, stages ...*Network) (*Network, error) {
	return network.Cascade(name, stages...)
}

// Sorting (§7) --------------------------------------------------------------

// SortingNetwork is a comparator network derived from a balancing network.
type SortingNetwork = sorting.Comparator

// NewSortingNetwork converts a regular all-(2,2) balancing network into a
// comparator network; if the source network counts, the result sorts
// (Section 7: C(w,w) gives a new O(lg²w)-depth sorting network).
func NewSortingNetwork(n *Network) (*SortingNetwork, error) { return sorting.FromNetwork(n) }

// Distributed emulation -----------------------------------------------------

// Distributed is a running message-passing deployment of a network: one
// server goroutine per balancer (the refs [19,20] real-system stand-in).
// Batches of tokens or antitokens travel as pipeline wavefronts — one
// message per balancer touched (InjectBatch / InjectAntiBatch) — and
// Messages reports the deployment's link-level cost.
type Distributed = distnet.System

// DistributedConfig tunes link buffering and per-hop latency.
type DistributedConfig = distnet.Config

// StartDistributed launches the servers; call Stop when done.
func StartDistributed(n *Network, cfg DistributedConfig) *Distributed {
	return distnet.Start(n, cfg)
}

// DistributedCounter is a Fetch&Increment / Fetch&Decrement counter over
// a distributed deployment: concurrent Inc callers on the same input
// wire coalesce into one in-flight batched message per single-flight
// window, and IncBatch/DecBatch expose the batch protocol directly.
type DistributedCounter = distnet.Counter

// NewDistributedCounter starts a Fetch&Increment counter over a
// distributed deployment of the network.
func NewDistributedCounter(n *Network, cfg DistributedConfig) *DistributedCounter {
	return distnet.NewCounter(n, cfg)
}

// ShardedDistributedCounter stripes Fetch&Increment traffic over S
// independent distributed deployments by pid hash (the same striping
// discipline as ShardedCounter): stripe s hands out the residue class
// v·S + s, so values stay globally unique while the hot links, inboxes
// and exit cells multiply by S — sharding composed with the batched
// protocol and per-wire coalescing each stripe already runs. Messages
// and Read aggregate across stripes.
type ShardedDistributedCounter = distnet.Sharded

// NewShardedDistributedCounter starts S independent deployments over
// fresh networks produced by build (called once per stripe).
func NewShardedDistributedCounter(shards int, build func() (*Network, error), cfg DistributedConfig) (*ShardedDistributedCounter, error) {
	return distnet.NewSharded(shards, build, cfg)
}

// Execution tracing (§2.2 executions as transition sequences) ----------------

// TraceRecorder captures concurrent traversals for certification.
type TraceRecorder = trace.Recorder

// Trace is a linearized execution certificate.
type Trace = trace.Trace

// NewTraceRecorder returns an empty execution recorder. Shepherd tokens
// with rec.Traverse(net, wire, token); then Linearize reconstructs a legal
// serial schedule from the per-balancer sequence indices (an acyclicity
// certificate for the lock-free run) and Trace.Replay re-validates it
// against the network's semantics.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Timing simulation (refs [19,20]) -------------------------------------------

// TimingConfig parameterizes the discrete-event queueing simulator.
type TimingConfig = timesim.Config

// TimingResult reports simulated throughput, latency and utilization.
type TimingResult = timesim.Result

// SimulateTiming runs a closed-loop discrete-event queueing simulation of
// the network: each balancer is a FIFO server, each process a client with
// a think time; optional contention-dependent service inflation models
// hot memory words. Host-independent reproduction of the refs [19,20]
// throughput/latency sweeps.
func SimulateTiming(n *Network, cfg TimingConfig) TimingResult {
	return timesim.Run(n, cfg)
}

// TCP deployment (refs [19,20] real-system stand-in) -------------------------

// TCPShard is one balancer server in a TCP-sharded deployment.
type TCPShard = tcpnet.Shard

// TCPCluster is the client-side view of a sharded deployment.
type TCPCluster = tcpnet.Cluster

// TCPSession is a single-goroutine client holding one connection per
// shard. Besides per-token Inc (depth+1 round trips), it speaks the
// batched wire frames: IncBatch/DecBatch shepherd k tokens or antitokens
// as one pipeline costing one STEPN round trip per balancer touched plus
// one CELLN per exit wire. Standalone sessions perform no retries and
// speak the stateless v1 frames; sessions pooled under a TCPCounter
// speak protocol v2 (client id + seq-numbered frames, deduped by the
// shards) so the counter's retries are exactly-once.
type TCPSession = tcpnet.Session

// TCPCounter is the cluster-wide coalescing client: concurrent Inc
// callers entering on the same input wire merge into one in-flight
// batched pipeline running on a session checked out of a shared
// connection pool (TCPCluster.NewCounterPool configures the width). The
// pool self-heals: idle sessions are health-probed at checkout (no
// round trip), a session that fails mid-flight is evicted pool-wide,
// and the flight retries on fresh sessions under a bounded
// attempt/deadline budget (SetRetryPolicy). Retries are exactly-once —
// they re-send the same sequence numbers and the shards' dedup windows
// replay already-applied frames — so absorbed connection losses leave
// no gaps and no duplicates in the value sequence. Close returns
// ErrTCPCounterClosed to stranded callers (including a window racing a
// retry) instead of a raw connection error. Create with
// TCPCluster.NewCounter or NewCounterPool.
type TCPCounter = tcpnet.Counter

// ErrTCPCounterClosed is the sentinel a TCPCounter returns once Close has
// been called, including to callers pooled in a coalescing window.
var ErrTCPCounterClosed = tcpnet.ErrClosed

// TCPShardedCluster composes S independent TCP deployments into one
// pid-striped fleet: stripe s maps its values into the residue class
// v·S + s, and the read side (RPCs, Read) aggregates across stripes.
type TCPShardedCluster = tcpnet.ShardedCluster

// TCPShardedCounter is the fleet-wide client over a TCPShardedCluster:
// pid-striped routing to per-stripe pooled coalescing counters. Create
// with NewShardedClusterCounter.
type TCPShardedCounter = tcpnet.ShardedCounter

// NewTCPShardedCluster wires S independent deployments (each its own
// servers for the same topology shape) into one sharded fleet.
func NewTCPShardedCluster(clusters []*TCPCluster) (*TCPShardedCluster, error) {
	return tcpnet.NewShardedCluster(clusters)
}

// StartTCPShardedCluster launches S independent loopback deployments of
// topo, each across `shards` servers — the test/benchmark harness;
// production fleets dial real addresses via NewTCPShardedCluster.
func StartTCPShardedCluster(topo *Network, deployments, shards int) (*TCPShardedCluster, func(), error) {
	return tcpnet.StartShardedCluster(topo, deployments, shards)
}

// NewShardedClusterCounter builds the fleet-wide counter: one pooled,
// self-healing coalescing counter per stripe (poolWidth <= 0 defaults to
// each stripe's input width).
func NewShardedClusterCounter(sc *TCPShardedCluster, poolWidth int) *TCPShardedCounter {
	return sc.NewCounter(poolWidth)
}

// StartTCPShard launches shard `index` of `shards` for the topology on
// addr ("host:0" picks a free port). Shard i owns balancers and exit cells
// with id ≡ i (mod shards); a balancer access is one TCP round trip — the
// remote analogue of the §1.2 shared memory word.
func StartTCPShard(addr string, topo *Network, index, shards int) (*TCPShard, error) {
	return tcpnet.StartShard(addr, topo, index, shards)
}

// NewTCPCluster wires a topology to its shard addresses.
func NewTCPCluster(topo *Network, addrs []string) *TCPCluster {
	return tcpnet.NewCluster(topo, addrs)
}

// UDP deployment (datagram transport over the exactly-once wire layer) -------

// UDPShard is one balancer server in a UDP-sharded deployment: the same
// balancer/cell partitioning as a TCPShard, served as packed datagrams
// of seq-numbered v2 frames, every mutating frame deduplicated per
// client — which is what lets clients retransmit over a transport that
// drops, duplicates and reorders.
type UDPShard = udpnet.Shard

// UDPCluster is the client-side view of a UDP-sharded deployment. Its
// retransmit policy (attempts, budget, jittered exponential timer) is
// set per cluster with SetRetransmitPolicy; SetDialWrapper installs the
// packet-path fault-injection hook (see UDPFaults).
type UDPCluster = udpnet.Cluster

// UDPSession is a single-goroutine client holding one connected socket
// per shard. Batched pipelines pack each topology layer's STEPN frames
// (and the whole exit-cell phase) into MTU-budgeted datagrams, so the
// per-frame bill equals tcpnet's while the packet bill is several times
// smaller; RPCs/Packets/Retransmits report the three costs.
type UDPSession = udpnet.Session

// UDPCounter is the cluster-wide coalescing client over UDP: the same
// single-flight windows, pooled sessions and exactly-once tape-driven
// retries as TCPCounter, with packet loss inside the retransmit budget
// absorbed below the flight layer entirely. Create with
// UDPCluster.NewCounter or NewCounterPool, or NewUDPClusterCounter.
type UDPCounter = udpnet.Counter

// ErrUDPCounterClosed is the sentinel a UDPCounter returns once Close
// has been called, including to callers pooled in a coalescing window.
var ErrUDPCounterClosed = udpnet.ErrClosed

// UDPFaults injects deterministic packet-path faults (drop, duplicate,
// reorder, delay) into a cluster's sockets via
// UDPCluster.SetDialWrapper(faults.Wrapper()) — the chaos-testing and
// E28 loss-sweep harness.
type UDPFaults = udpnet.Faults

// UDPShardedCluster composes S independent UDP deployments into one
// pid-striped fleet, exactly like TCPShardedCluster.
type UDPShardedCluster = udpnet.ShardedCluster

// UDPShardedCounter is the fleet-wide client over a UDPShardedCluster.
// Create with NewUDPShardedClusterCounter.
type UDPShardedCounter = udpnet.ShardedCounter

// StartUDPShard launches shard `index` of `shards` for the topology on
// addr ("host:0" picks a free port), partitioned exactly like
// StartTCPShard.
func StartUDPShard(addr string, topo *Network, index, shards int) (*UDPShard, error) {
	return udpnet.StartShard(addr, topo, index, shards)
}

// NewUDPCluster wires a topology to its shard addresses.
func NewUDPCluster(topo *Network, addrs []string) *UDPCluster {
	return udpnet.NewCluster(topo, addrs)
}

// StartUDPCluster launches one loopback deployment of topo across
// `shards` UDP servers and returns the client cluster plus a stop
// function — the test/benchmark harness; production deployments dial
// real addresses via NewUDPCluster.
func StartUDPCluster(topo *Network, shards int) (*UDPCluster, func(), error) {
	return udpnet.StartCluster(topo, shards)
}

// NewUDPClusterCounter builds the coalescing counter client over a UDP
// cluster (poolWidth <= 0 defaults to the input width).
func NewUDPClusterCounter(c *UDPCluster, poolWidth int) *UDPCounter {
	return c.NewCounterPool(poolWidth)
}

// StartUDPShardedCluster launches S independent loopback deployments of
// topo, each across `shards` UDP servers.
func StartUDPShardedCluster(topo *Network, deployments, shards int) (*UDPShardedCluster, func(), error) {
	return udpnet.StartShardedCluster(topo, deployments, shards)
}

// NewUDPShardedClusterCounter builds the fleet-wide counter: one pooled
// coalescing counter per stripe (poolWidth <= 0 defaults to each
// stripe's input width).
func NewUDPShardedClusterCounter(sc *UDPShardedCluster, poolWidth int) *UDPShardedCounter {
	return sc.NewCounter(poolWidth)
}

// In-memory deployment (the transport-seam conformance link) ----------------

// InprocShard is one balancer server of an in-memory deployment: the
// same balancer/cell partitioning and per-client exactly-once dedup as
// a TCPShard or UDPShard, served by direct calls — no sockets, no
// goroutines, no kernel. It exists to prove the transport seam: the
// full client stack runs over it unchanged, and the conformance suite
// uses it as the deterministic fault-injection substrate.
type InprocShard = inproc.Shard

// InprocCluster is the client-side view of an in-memory deployment. It
// implements the same transport link the socket clusters do, plus two
// fault arms the conformance tests drive: SetFaults (probabilistic
// call/reply loss) and LoseReplies (the next n mutating exchanges
// apply server-side but report failure — the pure replay case).
type InprocCluster = inproc.Cluster

// InprocSession is a single-goroutine client of an in-memory
// deployment, every mutating frame seq-numbered and deduplicated.
type InprocSession = inproc.Session

// InprocCounter is the cluster-wide coalescing client over the
// in-memory link: the identical pooled/coalescing/retrying counter
// that serves TCP and UDP, at zero wire cost. Create with
// InprocCluster.NewCounter or NewCounterPool, or
// NewInprocClusterCounter.
type InprocCounter = inproc.Counter

// ErrInprocCounterClosed is the sentinel an InprocCounter returns once
// Close has been called. It is the SAME sentinel every transport's
// counter returns — errors.Is against any one of them matches all.
var ErrInprocCounterClosed = inproc.ErrClosed

// InprocFaults configures probabilistic call/reply loss on an
// in-memory cluster via InprocCluster.SetFaults: a lost call never
// reaches the shard, a lost reply is applied server-side and the
// client must replay through the dedup window.
type InprocFaults = inproc.Faults

// InprocShardedCluster composes S independent in-memory deployments
// into one pid-striped fleet, exactly like TCPShardedCluster.
type InprocShardedCluster = inproc.ShardedCluster

// InprocShardedCounter is the fleet-wide client over an
// InprocShardedCluster. Create with NewInprocShardedClusterCounter.
type InprocShardedCounter = inproc.ShardedCounter

// StartInprocCluster builds one in-memory deployment of topo across
// `shards` shards and returns the client cluster plus a stop function
// closing every shard.
func StartInprocCluster(topo *Network, shards int) (*InprocCluster, func(), error) {
	return inproc.StartCluster(topo, shards)
}

// NewInprocClusterCounter builds the coalescing counter client over an
// in-memory cluster (poolWidth <= 0 defaults to the input width).
func NewInprocClusterCounter(c *InprocCluster, poolWidth int) *InprocCounter {
	return c.NewCounterPool(poolWidth)
}

// StartInprocShardedCluster builds S independent in-memory deployments
// of topo, each across `shards` shards.
func StartInprocShardedCluster(topo *Network, deployments, shards int) (*InprocShardedCluster, func(), error) {
	return inproc.StartShardedCluster(topo, deployments, shards)
}

// NewInprocShardedClusterCounter builds the fleet-wide counter: one
// pooled coalescing counter per stripe (poolWidth <= 0 defaults to
// each stripe's input width).
func NewInprocShardedClusterCounter(sc *InprocShardedCluster, poolWidth int) *InprocShardedCounter {
	return sc.NewCounter(poolWidth)
}

// Control plane (/health, /status, /metrics; OPERATIONS.md) -----------------

// ControlPlaneSource is anything the admin surface can front: every
// shard server (TCPShard, UDPShard), pooled counter client (TCPCounter,
// UDPCounter, DistributedCounter) and sharded fleet implements it.
type ControlPlaneSource = ctlplane.Source

// ControlPlaneHealth is the /health document: Live (the target accepts
// new work) and Quiescent (nothing in flight — the exact-count Read
// precondition).
type ControlPlaneHealth = ctlplane.Health

// ControlPlaneSample is one evaluated metric reading.
type ControlPlaneSample = ctlplane.Sample

// ControlPlaneFleet aggregates member sources under a distinguishing
// label so one endpoint shows per-member load side by side.
type ControlPlaneFleet = ctlplane.Fleet

// ControlPlaneServer is one listening admin endpoint.
type ControlPlaneServer = ctlplane.Server

// NewControlPlaneFleet builds an empty aggregate; member samples gain
// the label labelKey="<member value>".
func NewControlPlaneFleet(name, labelKey string) *ControlPlaneFleet {
	return ctlplane.NewFleet(name, labelKey)
}

// ControlPlaneOptions selects the optional admin endpoints:
// Pprof mounts net/http/pprof under /debug/pprof/ (off by default —
// profiling exposes stacks and timings; opt in deliberately).
type ControlPlaneOptions = ctlplane.HandlerOptions

// ControlPlaneFlightEvent is one completed flight from a counter's
// bounded trace ring, served as JSON at /debug/flights.
type ControlPlaneFlightEvent = ctlplane.FlightEvent

// ServeControlPlane starts the admin surface for src on addr: /health
// (HTTP 503 once draining or closed), /status, /metrics, and — when
// src is a counter or fleet of counters — /debug/flights.
func ServeControlPlane(addr string, src ControlPlaneSource) (*ControlPlaneServer, error) {
	return ctlplane.Serve(addr, src)
}

// ServeControlPlaneOpts is ServeControlPlane with the optional
// endpoints (pprof) selected.
func ServeControlPlaneOpts(addr string, src ControlPlaneSource, opts ControlPlaneOptions) (*ControlPlaneServer, error) {
	return ctlplane.ServeOpts(addr, src, opts)
}

// ControlPlaneHandler returns the admin mux for src, for mounting under
// an existing HTTP server.
func ControlPlaneHandler(src ControlPlaneSource) http.Handler {
	return ctlplane.Handler(src)
}

// ControlPlaneHandlerOpts is ControlPlaneHandler with the optional
// endpoints (pprof) selected.
func ControlPlaneHandlerOpts(src ControlPlaneSource, opts ControlPlaneOptions) http.Handler {
	return ctlplane.HandlerOpts(src, opts)
}

// DrainOnSignal runs drain once when one of the given signals arrives
// (default SIGTERM and SIGINT): close the counters, then the shards,
// and the fleet lands with exact counts. See the OPERATIONS.md runbook.
func DrainOnSignal(drain func(), signals ...os.Signal) (done <-chan struct{}, cancel func()) {
	return ctlplane.DrainOnSignal(drain, signals...)
}

// WritePrometheusMetrics renders samples in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheusMetrics(w io.Writer, samples []ControlPlaneSample) error {
	return ctlplane.WritePrometheus(w, samples)
}

// Butterflies (§5) ----------------------------------------------------------

// NewForwardButterfly constructs the lgw-smoothing forward butterfly D(w).
func NewForwardButterfly(w int) (*Network, error) { return butterfly.NewForward(w) }

// NewBackwardButterfly constructs the backward butterfly E(w), isomorphic
// to D(w) (Lemma 5.3).
func NewBackwardButterfly(w int) (*Network, error) { return butterfly.NewBackward(w) }

// Feasibility (§1.4.2, Aharonson–Attiya) -------------------------------------

// Constructible reports whether a counting network of output width t can
// possibly be built from balancers with the given output widths: every
// prime factor of t must divide some balancer width. Returns the first
// offending prime when not.
func Constructible(t int, balancerOuts []int) (ok bool, offendingPrime int) {
	return feasibility.Constructible(t, balancerOuts)
}

// AuditFeasibility checks a concrete network against the Aharonson–Attiya
// necessary condition.
func AuditFeasibility(n *Network) error { return feasibility.AuditNetwork(n) }

// Linearizability observation (§1.4.2) --------------------------------------

// LinearizabilityReport summarizes observed order inversions of a counter.
type LinearizabilityReport = linearize.Report

// ObserveLinearizability runs procs goroutines x per increments against
// inc under a logical clock and counts linearizability violations
// (operations that started after another finished yet received a smaller
// value). Counting networks are not linearizable (ref [16]); a central
// counter shows zero inversions.
func ObserveLinearizability(procs, per int, inc func(pid int) int64) LinearizabilityReport {
	var r linearize.Recorder
	return linearize.Analyze(r.Record(procs, per, inc))
}
