package countnet

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/seq"
)

// Integration: the full public API path a downstream user takes —
// construct, verify, count, measure, sort.
func TestPublicAPIEndToEnd(t *testing.T) {
	n, err := NewCWT(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() != CWTDepth(8) {
		t.Fatalf("depth %d != formula %d", n.Depth(), CWTDepth(8))
	}
	rng := rand.New(rand.NewSource(1))
	if err := VerifyCounting(n, 3, 200, rng); err != nil {
		t.Fatal(err)
	}

	c := NewCounter(n)
	const procs, per = 8, 500
	var wg sync.WaitGroup
	vals := make([][]int64, procs)
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], c.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("counter values not dense at %d: %d", i, v)
		}
	}
}

func TestConstructorsProduceCountingNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	builders := map[string]func() (*Network, error){
		"C(4,8)":      func() (*Network, error) { return NewCWT(4, 8) },
		"Bitonic(8)":  func() (*Network, error) { return NewBitonic(8) },
		"Periodic(8)": func() (*Network, error) { return NewPeriodic(8) },
		"DTree(8)":    func() (*Network, error) { return NewToggleTree(8) },
	}
	for name, build := range builders {
		n, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyCounting(n, 3, 200, rng); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMergerAndPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMerger(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDifferenceMerger(m, 4, 8, 100, rng); err != nil {
		t.Fatal(err)
	}
	p, err := NewCWTPrefix(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySmoothing(p, 3, 3, 200, rng); err != nil { // s = 8*3/16+2 = 3
		t.Fatal(err)
	}
}

func TestContentionFacade(t *testing.T) {
	n, err := NewCWT(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range []Adversary{GreedyAdversary(), RandomAdversary(), RoundRobinAdversary(), nil} {
		res := MeasureContention(n, 16, 10, adv, 1)
		if res.Tokens != 160 {
			t.Fatalf("tokens = %d", res.Tokens)
		}
		if !seq.IsStep(res.Exits) {
			t.Fatalf("exits not step under %v", adv)
		}
	}
}

func TestSortingFacade(t *testing.T) {
	n, err := NewCWT(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSortingNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IsSortingNetwork(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedFacade(t *testing.T) {
	n, err := NewBitonic(4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewDistributedCounter(n, DistributedConfig{})
	defer c.Stop()
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		v := c.Inc(i)
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestShardedDistributedFacade(t *testing.T) {
	sc, err := NewShardedDistributedCounter(3, func() (*Network, error) {
		return NewCWT(4, 8)
	}, DistributedConfig{LinkBuffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	seen := map[int64]bool{}
	for i := 0; i < 60; i++ {
		v := sc.Inc(i)
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	vals := sc.IncBatch(7, 40, nil)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("batched duplicate value %d", v)
		}
		seen[v] = true
	}
	if got := sc.Read(); got != 100 {
		t.Fatalf("aggregate Read() = %d, want 100", got)
	}
	if sc.Messages() <= 0 {
		t.Fatal("no messages billed")
	}
}

func TestTCPShardedClusterFacade(t *testing.T) {
	topo, err := NewCWT(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, stop, err := StartTCPShardedCluster(topo, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctr := NewShardedClusterCounter(sc, 2)
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		v, err := ctr.Inc(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if got, err := ctr.Read(); err != nil || got != 50 {
		t.Fatalf("aggregate Read() = (%d, %v), want (50, nil)", got, err)
	}
	ctr.Close()
	if _, err := ctr.Inc(0); !errors.Is(err, ErrTCPCounterClosed) {
		t.Fatalf("Inc after Close = %v, want ErrTCPCounterClosed", err)
	}
}

func TestUDPShardedClusterFacade(t *testing.T) {
	topo, err := NewCWT(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, stop, err := StartUDPShardedCluster(topo, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctr := NewUDPShardedClusterCounter(sc, 2)
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		v, err := ctr.Inc(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if got, err := ctr.Read(); err != nil || got != 50 {
		t.Fatalf("aggregate Read() = (%d, %v), want (50, nil)", got, err)
	}
	ctr.Close()
	if _, err := ctr.Inc(0); !errors.Is(err, ErrUDPCounterClosed) {
		t.Fatalf("Inc after Close = %v, want ErrUDPCounterClosed", err)
	}
}

func TestDiffractingTreeFacade(t *testing.T) {
	dt, err := NewDiffractingTree(8, DiffractingTreeOptions{PrismWidth: 4, SpinBudget: 32})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 8)
	for i := 0; i < 64; i++ {
		counts[dt.TraverseSequential()]++
	}
	if !seq.IsStep(counts) {
		t.Fatalf("leaf counts %v", counts)
	}
}

func TestBuilderFacade(t *testing.T) {
	b, in := NewBuilder("custom", 2)
	out := b.Balancer(in, 4)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatal(err)
	}
	if n.OutWidth() != 4 {
		t.Fatal("custom network broken")
	}
}

func TestRenderFacade(t *testing.T) {
	n, err := NewCWT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Summary(n) == "" || Diagram(n) == "" {
		t.Fatal("empty rendering")
	}
	if _, err := BrickDiagram(n); err != nil {
		t.Fatal(err)
	}
	blocks := Decompose(n)
	if blocks.Nb.Balancers != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestCWTValidFacade(t *testing.T) {
	if !CWTValid(8, 24) || CWTValid(6, 6) {
		t.Fatal("CWTValid broken")
	}
}
