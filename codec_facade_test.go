package countnet

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/seq"
)

func TestMarshalUnmarshalFacade(t *testing.T) {
	orig, err := NewCWT(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Depth() != orig.Depth() || back.Size() != orig.Size() {
		t.Fatal("round trip lost geometry")
	}
	// Labels (block decomposition) survive, so Decompose still works.
	b := Decompose(back)
	if b.Nb.Balancers != 4 {
		t.Fatalf("blocks after round trip: %+v", b)
	}
	// Behaviour preserved.
	x := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	a1, err := orig.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(a1, a2) {
		t.Fatal("round trip changed behaviour")
	}
}

func TestDOTFacade(t *testing.T) {
	n, err := NewCWT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	dot := DOT(n)
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "Nc") {
		t.Fatalf("DOT missing content:\n%s", dot)
	}
}

func TestCascadeFacade(t *testing.T) {
	// Butterfly cascade: lgw backward butterflies form a counting network
	// — that is precisely the periodic network's structure.
	e1, err := NewBackwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewBackwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := NewBackwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	cas, err := Cascade("E(8)^3", e1, e2, e3)
	if err != nil {
		t.Fatal(err)
	}
	if cas.Depth() != 9 {
		t.Fatalf("cascade depth %d", cas.Depth())
	}
	// Note: the butterfly cascade need not be counting (the periodic
	// network's mirror blocks differ from E(w)); verify only smoothing
	// composition here: output of a cascade of lgw-smoothing stages is at
	// least as smooth as one stage.
	x := []int64{40, 0, 13, 7, 0, 0, 25, 2}
	y, err := cas.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsKSmooth(y, 3) {
		t.Fatalf("cascade output %v rougher than one butterfly", y)
	}
}

func TestTraceFacade(t *testing.T) {
	net, err := NewCWT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Traverse(net, pid, pid*200+i)
			}
		}(pid)
	}
	wg.Wait()
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCWT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(fresh); err != nil {
		t.Fatal(err)
	}
	if !seq.IsStep(tr.ExitCensus(4)) {
		t.Fatal("census not step")
	}
}

func TestAdaptiveFacade(t *testing.T) {
	// Batch: -1 serves network epochs token-at-a-time, so sequential
	// values stay in issue order (the batched default reorders them; see
	// internal/counter's adaptive tests for that mode).
	a := NewAdaptiveCounter(AdaptiveCounterConfig{
		BuildNetwork: func() (*Network, error) { return NewCWT(4, 4) },
		Batch:        -1,
	})
	for i := int64(0); i < 50; i++ {
		if got := a.Inc(int(i)); got != i {
			t.Fatalf("Inc = %d, want %d", got, i)
		}
	}
	a.ForceMode("network")
	for i := int64(50); i < 100; i++ {
		if got := a.Inc(int(i)); got != i {
			t.Fatalf("after migration Inc = %d, want %d", got, i)
		}
	}
}

func TestAdaptiveFacadeLearnsBatch(t *testing.T) {
	a := NewAdaptiveCounter(AdaptiveCounterConfig{
		BuildNetwork: func() (*Network, error) { return NewCWT(4, 4) },
	})
	a.ForceMode("network")
	if k := a.Batch(); k < 8 || k > 4096 {
		t.Fatalf("learned batch %d outside [8, 4096]", k)
	}
}
