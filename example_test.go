package countnet_test

import (
	"fmt"
	"math/rand"

	countnet "repro"
)

// Build the paper's counting network and inspect its geometry.
func ExampleNewCWT() {
	net, _ := countnet.NewCWT(8, 16)
	fmt.Println(net.Name(), "depth", net.Depth(), "balancers", net.Size())
	// Output: C(8,16) depth 6 balancers 36
}

// Theorem 4.1: the depth depends only on the input width.
func ExampleCWTDepth() {
	for _, p := range []int{1, 2, 8} {
		net, _ := countnet.NewCWT(16, 16*p)
		fmt.Println(net.Name(), "depth", net.Depth())
	}
	fmt.Println("formula:", countnet.CWTDepth(16))
	// Output:
	// C(16,16) depth 10
	// C(16,32) depth 10
	// C(16,128) depth 10
	// formula: 10
}

// Shared counting: sequential increments return dense values.
func ExampleNewCounter() {
	net, _ := countnet.NewCWT(4, 8)
	ctr := countnet.NewCounter(net)
	for pid := 0; pid < 5; pid++ {
		fmt.Print(ctr.Inc(pid), " ")
	}
	fmt.Println()
	// Output: 0 1 2 3 4
}

// Quiescent evaluation: any input distribution yields a step output.
func ExampleNetwork_quiescent() {
	net, _ := countnet.NewCWT(4, 8)
	y, _ := net.Quiescent([]int64{5, 0, 3, 2})
	fmt.Println(y)
	// Output: [2 2 1 1 1 1 1 1]
}

// Verify the counting property over exhaustive + randomized inputs.
func ExampleVerifyCounting() {
	net, _ := countnet.NewCWT(4, 4)
	err := countnet.VerifyCounting(net, 5, 100, rand.New(rand.NewSource(1)))
	fmt.Println("counterexample:", err)
	// Output: counterexample: <nil>
}

// The Fig. 3 block decomposition of the network's structure.
func ExampleDecompose() {
	net, _ := countnet.NewCWT(8, 16)
	b := countnet.Decompose(net)
	fmt.Printf("Na: %d balancers / %d layers\n", b.Na.Balancers, b.Na.Layers)
	fmt.Printf("Nb: %d balancers / %d layers\n", b.Nb.Balancers, b.Nb.Layers)
	fmt.Printf("Nc: %d balancers / %d layers\n", b.Nc.Balancers, b.Nc.Layers)
	// Output:
	// Na: 8 balancers / 2 layers
	// Nb: 4 balancers / 1 layers
	// Nc: 24 balancers / 3 layers
}

// Measure adversarial contention in the DHW model.
func ExampleMeasureContention() {
	net, _ := countnet.NewCWT(8, 8)
	res := countnet.MeasureContention(net, 16, 50, countnet.RoundRobinAdversary(), 1)
	fmt.Println("tokens:", res.Tokens, "exits step:", len(res.Exits) == 8)
	// Output: tokens: 800 exits step: true
}

// The Section 7 byproduct: C(w,w) as a sorting network.
func ExampleNewSortingNetwork() {
	net, _ := countnet.NewCWT(8, 8)
	s, _ := countnet.NewSortingNetwork(net)
	out, _ := s.Sort([]int{5, 3, 8, 1, 9, 2, 7, 4})
	fmt.Println(out)
	// Output: [1 2 3 4 5 7 8 9]
}

// The Aharonson–Attiya feasibility condition (§1.4.2).
func ExampleConstructible() {
	ok, p := countnet.Constructible(6, []int{2})
	fmt.Println("width 6 from (·,2)-balancers:", ok, "- offending prime:", p)
	ok, _ = countnet.Constructible(6, []int{2, 6})
	fmt.Println("width 6 with a (·,6)-balancer:", ok)
	// Output:
	// width 6 from (·,2)-balancers: false - offending prime: 3
	// width 6 with a (·,6)-balancer: true
}

// Antitokens implement Fetch&Decrement (ref [2]).
func ExampleNetworkCounter_dec() {
	net, _ := countnet.NewCWT(4, 4)
	ctr := countnet.NewCounter(net)
	ctr.Inc(0)
	ctr.Inc(0)
	fmt.Println("dec returns:", ctr.Dec(0))
	fmt.Println("next inc:", ctr.Inc(0))
	// Output:
	// dec returns: 1
	// next inc: 1
}

// Custom networks through the Builder: a single (2,6)-balancer.
func ExampleNewBuilder() {
	b, in := countnet.NewBuilder("demo", 2)
	out := b.Balancer(in, 6)
	net, _ := b.Finalize(out)
	y, _ := net.Quiescent([]int64{7, 6})
	fmt.Println(y)
	// Output: [3 2 2 2 2 2]
}

// Closed-loop queueing simulation of throughput and latency.
func ExampleSimulateTiming() {
	net, _ := countnet.NewCWT(8, 8)
	res := countnet.SimulateTiming(net, countnet.TimingConfig{
		Processes: 1, Ops: 100, ServiceTime: 1,
	})
	fmt.Printf("latency %.0f = depth %d\n", res.MeanLat, net.Depth())
	// Output: latency 6 = depth 6
}

// The fast path: a batch of tokens crosses each balancer with a single
// atomic fetch-add and exits with the same step counts k single
// traversals would produce.
func ExampleNetwork_TraverseBatch() {
	net, _ := countnet.NewCWT(4, 8)
	fmt.Println(net.TraverseBatch(0, 11))
	// Output: [2 2 2 1 1 1 1 1]
}

// Batched counting: values are claimed k at a time through one batched
// traversal; a quiescent claim range is still dense. A single pid always
// uses one stripe, so eight Incs consume two exact batches of four
// regardless of GOMAXPROCS.
func ExampleNewBatchedCounter() {
	net, _ := countnet.NewCWT(4, 8)
	ctr := countnet.NewBatchedCounter(net, 4)
	seen := make([]bool, 8)
	for i := 0; i < 8; i++ {
		seen[ctr.Inc(0)] = true
	}
	fmt.Println(seen, "buffered:", ctr.Buffered())
	// Output: [true true true true true true true true] buffered: 0
}
