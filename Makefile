# Local mirror of .github/workflows/ci.yml — run `make check` before
# pushing and you have run exactly what CI runs.

GO ?= go

.PHONY: check build vet fmt lint test race resilience conformance bench-smoke bench fuzz docs-check

check: build vet fmt lint race resilience conformance bench-smoke docs-check

build:
	$(GO) build ./...

# Both build-tag variants of udpnet's batched-syscall files are vetted:
# the default build resolves the recvmmsg/sendmmsg fast path, the
# countnet_nommsg build resolves the portable single-syscall fallback.
# Keep in lockstep with .github/workflows/ci.yml.
vet:
	$(GO) vet ./...
	$(GO) vet -tags countnet_nommsg ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# The project's own analyzers (cmd/countlint): spin-loop hygiene,
# atomics-only field access, Makefile↔ci.yml gate lockstep, build-tag
# pairing, errors.Is on the xport sentinel, and metric-name
# conventions. Keep the invocation identical to the ci.yml lint step —
# the lockstep analyzer checks that it is.
lint:
	$(GO) run ./cmd/countlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short -timeout 10m ./...

# The exactly-once gates pinned BY NAME (a rename can't silently drop
# them): the tcpnet retry/dedup regressions, the session-kill chaos
# grid, the checkout health probe, Close racing a retry, the v1/v2
# codec distinction, the shared wire codec/packet fuzz seeds, and the
# udpnet loss/dup/reorder chaos grid with its retransmit and
# replay-not-reexecute regressions, and the control-plane gates (the
# Prometheus text-format validator, endpoint/health-lifecycle tests,
# SIGTERM-drain exact-count reconciliation, and the monotone-metrics
# chaos scrape), and the raw-speed-path gates (pipelined sessions
# through reorder-heavy fault grids staying exact, the pipelined frame
# bill matching stop-and-wait, and worker-pool packet-buffer
# isolation), and the observability gates (the histogram
# scraper-vs-writers race consistency check, the Prometheus histogram
# exposition format, the bounded flight ring, and the
# zero-added-frames latency gate replaying E31's exact bill on every
# transport). Keep this regex in lockstep with
# .github/workflows/ci.yml.
resilience:
	$(GO) test -race -run 'TestRetryExactlyOnce|TestChaosSessionKill|TestDedupSurvives|TestDedupConfig|TestPoolHealthCheck|TestCounterCloseDuringRetry|TestLegacyFrames|TestFrameRoundTrip|TestPacketRoundTrip|FuzzFrameCodec|FuzzPacketCodec|TestUDPChaosExactCountGrid|TestUDPRetransmitExactlyOnce|TestUDPResponseLoss|TestUDPMalformedPackets|TestUDPBatchRPCsMatchTCPFloor|TestUDPPipelineReorderExactCount|TestUDPPipelineRPCFloorMatchesSerial|TestUDPShardWorkersBufferIsolation|TestWritePrometheusFormat|TestServeEndpoints|TestDrainOnSignal|TestFleetAggregation|TestShardControlPlaneEndpoints|TestCounterHealthFlipsAcrossDrain|TestShardedCounterEndpointAggregation|TestSIGTERMDrainExactCount|TestUDPShardControlPlaneEndpoints|TestMetricsMonotoneUnderChaos|TestHistogramRaceConsistency|TestPrometheusHistogramFormat|TestFlightRingBufferBounded|TestLatencyFrameBillUnchanged' ./internal/tcpnet ./internal/udpnet ./internal/wire ./internal/ctlplane ./internal/conformance

# The transport conformance suite pinned BY NAME, run under the race
# detector: one behavioural contract — chaos exact-count grids,
# deterministic retry/replay, shared Close semantics, drain health
# flips, integer-identical frame bills, single-source retry defaults —
# executed against every transport on the xport seam (tcp, udp,
# inproc). A new transport passes this suite or it does not ship. Keep
# the regex in lockstep with .github/workflows/ci.yml.
conformance:
	$(GO) test -race -count=1 -run 'TestConformance|TestTransportFrameBillEquality|TestRetryDefaultsSingleSource' ./internal/conformance

# Covers every package, the distributed benchmarks in internal/distnet,
# internal/tcpnet and internal/udpnet (batched protocol, E25) included;
# the second pass pins the sharded-deployment (E26), dedup-enabled (E27)
# and UDP-transport (E28) benchmarks by name so a rename can't silently
# drop them, and the third pins the raw-speed-path allocation gates
# (E30): BenchmarkUDPShardWorkers and BenchmarkUDPPipelinedBatch carry
# the ReportAllocs zero-allocation claim, and the fourth pins
# BenchmarkHistogramObserve, whose ReportAllocs carries the
# zero-allocation claim for the latency-histogram record path. The
# countbench runs re-emit BENCH_udp.json (the committed
# machine-readable E30 record), BENCH_transports.json (E31: the
# per-transport frame bill, panic-checked integer-identical across
# tcp/udp/inproc) and BENCH_latency.json (E32: per-transport flight
# latency distributions with the client histogram's own p99 as
# cross-check) — commit the refreshed files when the engine changes.
# Keep in lockstep with .github/workflows/ci.yml.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) test -bench='Sharded|Dedup|UDP' -benchtime=1x -run='^$$' ./internal/distnet ./internal/tcpnet ./internal/udpnet
	$(GO) test -bench='BenchmarkUDPShardWorkers|BenchmarkUDPPipelinedBatch' -benchtime=1x -run='^$$' ./internal/udpnet
	$(GO) test -bench='BenchmarkHistogramObserve' -benchtime=1x -run='^$$' ./internal/ctlplane
	$(GO) run ./cmd/countbench -exp udpspeed -out BENCH_udp.json
	$(GO) run ./cmd/countbench -exp transports -out BENCH_transports.json
	$(GO) run ./cmd/countbench -exp latency -out BENCH_latency.json

# The OPERATIONS.md metric reference is generated from the live
# registrations: rebuild it with cmd/ctlplanedoc and diff against the
# committed table, so the manual cannot drift from the code. To update
# after changing metrics: go run ./cmd/ctlplanedoc and paste between
# the BEGIN/END markers in OPERATIONS.md.
docs-check:
	@gen="$$(mktemp)" want="$$(mktemp)"; \
	$(GO) run ./cmd/ctlplanedoc > "$$gen" || exit 1; \
	awk '/<!-- BEGIN GENERATED METRICS TABLE -->/{f=1;next} /<!-- END GENERATED METRICS TABLE -->/{f=0} f' OPERATIONS.md > "$$want"; \
	if ! diff -u "$$want" "$$gen"; then \
		echo "OPERATIONS.md metric table drifted from the registered metrics;" >&2; \
		echo "regenerate with: go run ./cmd/ctlplanedoc" >&2; exit 1; \
	fi; \
	rm -f "$$gen" "$$want"

# Full benchmark sweep (slow; see EXPERIMENTS.md for recorded tables).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Explore the batched-traversal and wire codec fuzz targets beyond the
# checked-in corpus.
fuzz:
	$(GO) test -fuzz=FuzzTraverseBatch -fuzztime=60s ./internal/network
	$(GO) test -fuzz=FuzzTraverseAntiBatch -fuzztime=60s ./internal/network
	$(GO) test -fuzz=FuzzFrameCodec -fuzztime=60s ./internal/wire
	$(GO) test -fuzz=FuzzPacketCodec -fuzztime=60s ./internal/wire
