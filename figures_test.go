package countnet

// Golden structural tests for every construction figure in the paper
// (experiment E9). Each test pins the exact balancer counts, arities,
// layer structure, and key wire pairings the figure depicts, so a
// regression in any construction is caught against the paper's drawings.

import (
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

// census is a helper asserting the network's arity census.
func requireCensus(t *testing.T, n *Network, want map[string]int) {
	t.Helper()
	got := network.ArityCensus(n)
	if len(got) != len(want) {
		t.Fatalf("%s: census %v, want %v", n.Name(), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: census %v, want %v", n.Name(), got, want)
		}
	}
}

// Fig. 1 left: a (4,6)-balancer distributing 13 tokens as 3,2,2,2,2,2.
func TestFig1Balancer46(t *testing.T) {
	b, in := NewBuilder("(4,6)", 4)
	out := b.Balancer(in, 6)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatal(err)
	}
	y, err := n.Quiescent([]int64{4, 2, 3, 4}) // 13 tokens, any split
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(y, []int64{3, 2, 2, 2, 2, 2}) {
		t.Fatalf("(4,6)-balancer on 13 tokens: %v", y)
	}
}

// Fig. 1 right: C(4,8) — input width 4, output width 8, the irregular
// example network. 8 tokens in the depicted distribution exit one per wire.
func TestFig1NetworkC48(t *testing.T) {
	n, err := NewCWT(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireCensus(t, n, map[string]int{"(2,2)": 6, "(2,4)": 2})
	y, err := n.Quiescent([]int64{2, 3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(y, []int64{1, 1, 1, 1, 1, 1, 1, 1}) {
		t.Fatalf("C(4,8) on 8 tokens: %v", y)
	}
}

// Fig. 2: the regular networks C(4,4) and C(8,8) built from (2,2)s.
func TestFig2RegularNetworks(t *testing.T) {
	c44, err := NewCWT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireCensus(t, c44, map[string]int{"(2,2)": 6})
	if c44.Depth() != 3 {
		t.Fatalf("C(4,4) depth %d", c44.Depth())
	}
	c88, err := NewCWT(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireCensus(t, c88, map[string]int{"(2,2)": 24})
	if c88.Depth() != 6 {
		t.Fatalf("C(8,8) depth %d", c88.Depth())
	}
}

// Fig. 3: C(8,16) block partition: Na (2 layers x 4), Nb (1 x 4 of (2,4)),
// Nc (3 layers x 8).
func TestFig3BlockPartition(t *testing.T) {
	n, err := NewCWT(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	b := Decompose(n)
	if b.Na.Balancers != 8 || b.Na.Layers != 2 {
		t.Fatalf("Na = %+v", b.Na)
	}
	if b.Nb.Balancers != 4 || b.Nb.Layers != 1 || b.Nb.Arities["(2,4)"] != 4 {
		t.Fatalf("Nb = %+v", b.Nb)
	}
	if b.Nc.Balancers != 24 || b.Nc.Layers != 3 {
		t.Fatalf("Nc = %+v", b.Nc)
	}
}

// Fig. 5 top: M(t,2) is one layer of t/2 balancers with the b0 wraparound
// (x0 with y_{t/2-1} -> z0 and z_{t-1}).
func TestFig5BaseMergerWiring(t *testing.T) {
	n, err := NewMerger(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() != 1 || n.Size() != 4 {
		t.Fatalf("M(8,2): depth %d size %d", n.Depth(), n.Size())
	}
	// b0 consumes input wires 0 (x0) and 7 (y3) and feeds outputs 0 and 7.
	b0in0, _ := n.InputDest(0)
	b0in7, _ := n.InputDest(7)
	if b0in0 != b0in7 {
		t.Fatalf("x0 and y_{t/2-1} do not meet: nodes %d, %d", b0in0, b0in7)
	}
	src0, _ := n.OutputSource(0)
	src7, _ := n.OutputSource(7)
	if src0 != b0in0 || src7 != b0in0 {
		t.Fatalf("b0 does not feed z0 and z7 (got %d, %d)", src0, src7)
	}
	// b_i (i=1..3) consumes y_{i-1} (wire 4+i-1) and x_i (wire i) and
	// feeds z_{2i-1}, z_{2i}.
	for i := 1; i < 4; i++ {
		a, _ := n.InputDest(i)
		bnode, _ := n.InputDest(4 + i - 1)
		if a != bnode {
			t.Fatalf("merger b%d inputs disagree", i)
		}
		s1, _ := n.OutputSource(2*i - 1)
		s2, _ := n.OutputSource(2 * i)
		if s1 != a || s2 != a {
			t.Fatalf("merger b%d outputs misrouted", i)
		}
	}
}

// Fig. 6: M(8,4) and M(16,4): two M(t/2,2) sub-mergers plus an M(t,2)
// output layer; depth 2, all (2,2).
func TestFig6Mergers(t *testing.T) {
	for _, tt := range []int{8, 16} {
		n, err := NewMerger(tt, 4)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != 2 {
			t.Fatalf("M(%d,4) depth %d", tt, n.Depth())
		}
		requireCensus(t, n, map[string]int{"(2,2)": tt})
		layers := n.Layers()
		if len(layers[0]) != tt/2 || len(layers[1]) != tt/2 {
			t.Fatalf("M(%d,4) layer sizes %d/%d", tt, len(layers[0]), len(layers[1]))
		}
	}
}

// Fig. 10: the recursive skeleton of C(w,t): first layer is the ladder
// L(w) pairing input wires i and i+w/2.
func TestFig10LadderFirst(t *testing.T) {
	n, err := NewCWT(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a, pa := n.InputDest(i)
		b, pb := n.InputDest(i + 8)
		if a != b {
			t.Fatalf("inputs %d and %d do not share a ladder balancer", i, i+8)
		}
		if pa != 0 || pb != 1 {
			t.Fatalf("ladder port order wrong for pair (%d,%d)", i, i+8)
		}
	}
}

// Figs 11-13: the straightened networks C(4,4), C(4,8), C(8,8), C(8,16)
// all verify as counting networks with the figure's geometry; their brick
// renderings (where regular) exist.
func TestFigs11to13Geometry(t *testing.T) {
	cases := []struct{ w, tt, depth, size int }{
		{4, 4, 3, 6}, {4, 8, 3, 8}, {8, 8, 6, 24}, {8, 16, 6, 36},
	}
	for _, c := range cases {
		n, err := NewCWT(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != c.depth || n.Size() != c.size {
			t.Fatalf("C(%d,%d): depth %d size %d, want %d/%d",
				c.w, c.tt, n.Depth(), n.Size(), c.depth, c.size)
		}
		if c.w == c.tt {
			if _, err := BrickDiagram(n); err != nil {
				t.Fatalf("C(%d,%d) brick: %v", c.w, c.tt, err)
			}
		}
		d := Diagram(n)
		if !strings.Contains(d, "layer 1:") {
			t.Fatalf("diagram missing layers:\n%s", d)
		}
	}
}

// Fig. 14: D(8) and E(8) both have 3 layers of 4 balancers; D ends with a
// ladder (outputs i, i+4 share a balancer), E starts with one (inputs i,
// i+4 share a balancer).
func TestFig14Butterflies(t *testing.T) {
	d, err := NewForwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBackwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Network{d, e} {
		if n.Depth() != 3 || n.Size() != 12 {
			t.Fatalf("%s: depth %d size %d", n.Name(), n.Depth(), n.Size())
		}
	}
	for i := 0; i < 4; i++ {
		a, _ := d.OutputSource(i)
		b, _ := d.OutputSource(i + 4)
		if a != b {
			t.Fatalf("D(8): outputs %d,%d not ladder-paired", i, i+4)
		}
		a2, _ := e.InputDest(i)
		b2, _ := e.InputDest(i + 4)
		if a2 != b2 {
			t.Fatalf("E(8): inputs %d,%d not ladder-paired", i, i+4)
		}
	}
}

// Fig. 16: C'(w,t) has depth lgw with (2,2p) last layer; C″(w) is all
// (2,2) and is a backward butterfly (same census and layer profile as
// E(w)).
func TestFig16PrefixNetworks(t *testing.T) {
	p, err := NewCWTPrefix(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 3 || p.OutWidth() != 16 {
		t.Fatalf("C'(8,16): depth %d out %d", p.Depth(), p.OutWidth())
	}
	requireCensus(t, p, map[string]int{"(2,2)": 8, "(2,4)": 4})

	e, err := NewBackwardButterfly(8)
	if err != nil {
		t.Fatal(err)
	}
	// C″(8) mirrors E(8) structurally.
	requireCensus(t, e, map[string]int{"(2,2)": 12})
}
