// Execution certification: record a fully concurrent run of C(8,16),
// reconstruct a legal serial schedule from the per-balancer sequence
// indices, and replay it against the network semantics — a machine-checked
// proof that the lock-free execution was linearizable to a legal
// transition sequence (§2.2's execution model, certified end to end).
package main

import (
	"fmt"
	"log"
	"sync"

	countnet "repro"
)

func main() {
	net, err := countnet.NewCWT(8, 16)
	if err != nil {
		log.Fatal(err)
	}
	rec := countnet.NewTraceRecorder()

	const procs, per = 8, 500
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Traverse(net, pid%net.InWidth(), pid*per+i)
			}
		}(pid)
	}
	wg.Wait()
	fmt.Printf("recorded %d tokens x depth %d = %d balancer transitions\n",
		procs*per, net.Depth(), procs*per*net.Depth())

	tr, err := rec.Linearize()
	if err != nil {
		log.Fatalf("no legal serialization exists: %v", err)
	}
	fmt.Printf("linearized into a legal serial schedule of %d events\n", len(tr.Events))

	fresh, err := countnet.NewCWT(8, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Replay(fresh); err != nil {
		log.Fatalf("replay diverged: %v", err)
	}
	fmt.Println("replay against fresh network semantics: OK")

	census := tr.ExitCensus(net.OutWidth())
	fmt.Printf("exit census: %v\n", census)
	fmt.Println("the concurrent run is certified equivalent to a legal sequential execution")
}
