// Load balancing with a counting network — one of the motivating
// applications in the paper's introduction. Concurrent producers push jobs
// through C(4,16); each job lands on one of 16 worker queues. Because the
// network counts, the queue lengths satisfy the step property at
// quiescence: no worker is ever more than one job ahead of another,
// with no central dispatcher and no lock.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	countnet "repro"
)

type worker struct {
	jobs atomic.Int64
}

func main() {
	const producers = 12
	const jobsPerProducer = 2500

	net, err := countnet.NewCWT(4, 16)
	if err != nil {
		log.Fatal(err)
	}
	workers := make([]worker, net.OutWidth())

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			wire := p % net.InWidth()
			for j := 0; j < jobsPerProducer; j++ {
				w := net.Traverse(wire) // route the job
				workers[w].jobs.Add(1)
			}
		}(p)
	}
	wg.Wait()

	var min, max int64 = 1 << 62, -1
	fmt.Println("worker loads after", producers*jobsPerProducer, "jobs:")
	for i := range workers {
		n := workers[i].jobs.Load()
		fmt.Printf("  worker %2d: %d\n", i, n)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("spread: max-min = %d (step property: upper wires may hold one extra)\n", max-min)
	if max-min > 1 {
		log.Fatal("load imbalance exceeds the step property bound")
	}
}
