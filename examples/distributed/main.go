// Distributed deployment: every balancer of C(8,24) runs as its own
// server goroutine with channel links — the shape of the 10-workstation
// system in the paper's experimental companion (refs [19,20]). Clients
// inject tokens as messages, per-hop latency is configurable, and the
// counter values remain dense across the whole deployment.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	countnet "repro"
)

func main() {
	net, err := countnet.NewCWT(8, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deploying %s: %d balancer servers, depth %d\n",
		net.Name(), net.Size(), net.Depth())

	// A small per-hop latency makes the "remote object" cost visible.
	ctr := countnet.NewDistributedCounter(net, countnet.DistributedConfig{
		LinkBuffer: 4,
		HopLatency: 100 * time.Microsecond,
	})
	defer ctr.Stop()

	const clients, per = 12, 100
	vals := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < clients; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], ctr.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("distributed counter not dense at %d: %d", i, v)
		}
	}
	fmt.Printf("%d increments across %d clients in %v — all values dense\n",
		len(all), clients, elapsed.Round(time.Millisecond))
	fmt.Printf("pipeline effect: %d tokens x depth %d x 100µs/hop would cost %v serially;\n",
		len(all), net.Depth(), time.Duration(len(all)*net.Depth())*100*time.Microsecond)
	fmt.Printf("the %d parallel servers overlap the hops.\n", net.Size())
}
