// Distributed deployment: every balancer of C(8,24) runs as its own
// server goroutine with channel links — the shape of the 10-workstation
// system in the paper's experimental companion (refs [19,20]). Clients
// inject tokens as messages, per-hop latency is configurable, and the
// counter values remain dense across the whole deployment.
//
// The deployment speaks the batched message protocol: concurrent clients
// entering on the same input wire coalesce into shared pipeline
// wavefronts (one message per balancer touched per batch), so the
// message bill falls far below tokens x depth.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	countnet "repro"
)

func main() {
	net, err := countnet.NewCWT(8, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deploying %s: %d balancer servers, depth %d\n",
		net.Name(), net.Size(), net.Depth())

	// A small per-hop latency makes the "remote object" cost visible —
	// and opens the coalescing windows: while one flight is in the
	// network, later arrivals pool into the next batch.
	ctr := countnet.NewDistributedCounter(net, countnet.DistributedConfig{
		LinkBuffer: 4,
		HopLatency: 100 * time.Microsecond,
	})
	defer ctr.Stop()

	const clients, per = 40, 30
	vals := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < clients; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], ctr.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("distributed counter not dense at %d: %d", i, v)
		}
	}
	fmt.Printf("%d increments across %d clients in %v — all values dense\n",
		len(all), clients, elapsed.Round(time.Millisecond))
	uncoalesced := int64(len(all)) * int64(net.Depth())
	fmt.Printf("messages: %d for %d tokens (%.2f msgs/token; uncoalesced protocol would send %d)\n",
		ctr.Messages(), len(all), float64(ctr.Messages())/float64(len(all)), uncoalesced)

	// Explicit batching goes further still: one wavefront carries a whole
	// group, one message per balancer touched, whatever k is.
	before := ctr.Messages()
	batch := ctr.IncBatch(0, 512, nil)
	batchMsgs := ctr.Messages() - before
	fmt.Printf("IncBatch(k=512): %d values in %d messages (%.3f msgs/token)\n",
		len(batch), batchMsgs, float64(batchMsgs)/float64(len(batch)))

	// And antitokens ride the same protocol: revoke the whole batch.
	before = ctr.Messages()
	revoked := ctr.DecBatch(0, 512, nil)
	fmt.Printf("DecBatch(k=512): revoked %d values in %d messages\n",
		len(revoked), ctr.Messages()-before)

	// Scaling out: S independent deployments with pid striping. Each
	// stripe keeps its own coalescing windows and batched flights, values
	// land in disjoint residue classes (stripe s hands out v·S + s), and
	// the read side aggregates so exact-count accounting survives
	// sharding.
	const stripes = 4
	sh, err := countnet.NewShardedDistributedCounter(stripes,
		func() (*countnet.Network, error) { return countnet.NewCWT(8, 24) },
		countnet.DistributedConfig{LinkBuffer: 4, HopLatency: 100 * time.Microsecond})
	if err != nil {
		log.Fatal(err)
	}
	defer sh.Stop()
	var shWG sync.WaitGroup
	uniq := make([][]int64, clients)
	for pid := 0; pid < clients; pid++ {
		shWG.Add(1)
		go func(pid int) {
			defer shWG.Done()
			for i := 0; i < per; i++ {
				uniq[pid] = append(uniq[pid], sh.Inc(pid))
			}
		}(pid)
	}
	shWG.Wait()
	seen := make(map[int64]bool, clients*per)
	for _, vs := range uniq {
		for _, v := range vs {
			if seen[v] {
				log.Fatalf("sharded counter duplicated value %d", v)
			}
			seen[v] = true
		}
	}
	if got := sh.Read(); got != int64(clients*per) {
		log.Fatalf("aggregate read %d != %d ops", got, clients*per)
	}
	fmt.Printf("sharded x%d: %d increments, all unique, aggregate read matches; %.2f msgs/op across the fleet\n",
		stripes, clients*per, float64(sh.Messages())/float64(clients*per))
}
