// The Section 7 byproduct: C(w,w) as a sorting network. The example
// converts C(16,16) into a comparator network, proves it sorts via the 0-1
// principle (all 2^16 binary inputs), sorts some data, and compares its
// depth with the bitonic (Batcher) sorter derived the same way.
package main

import (
	"fmt"
	"log"
	"math/rand"

	countnet "repro"
)

func main() {
	const w = 16

	cwt, err := countnet.NewCWT(w, w)
	if err != nil {
		log.Fatal(err)
	}
	ours, err := countnet.NewSortingNetwork(cwt)
	if err != nil {
		log.Fatal(err)
	}

	bit, err := countnet.NewBitonic(w)
	if err != nil {
		log.Fatal(err)
	}
	batcher, err := countnet.NewSortingNetwork(bit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorting networks of width %d derived from counting networks:\n", w)
	fmt.Printf("  from %-14s depth %2d, %3d comparators\n", cwt.Name(), ours.Depth(), ours.Size())
	fmt.Printf("  from %-14s depth %2d, %3d comparators\n", bit.Name(), batcher.Depth(), batcher.Size())

	fmt.Printf("\nverifying 0-1 principle over all %d binary inputs... ", 1<<w)
	if err := ours.IsSortingNetwork(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok — C(16,16) sorts")

	rng := rand.New(rand.NewSource(7))
	in := make([]int, w)
	for i := range in {
		in[i] = rng.Intn(1000)
	}
	out, err := ours.Sort(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample:  %v\nsorted:  %v\n", in, out)

	fmt.Println("\nnote: every comparison is data-independent, so the network sorts")
	fmt.Println("in depth O(lg²w) on parallel hardware — the balancing network's")
	fmt.Println("step property is exactly 'sortedness' under the 0-1 principle.")
}
