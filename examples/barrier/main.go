// Barrier synchronization via a shared counter — the second classic
// counting-network application named in the paper's introduction.
//
// Each of n goroutines increments the counter once per phase. Counter
// values are dense (0,1,2,...), so the goroutine that receives value
// (r+1)*n - 1 is provably the last arriver of phase r; it releases the
// barrier for everyone. The example validates the barrier invariant: when
// the barrier for phase r opens, all n phase-r work items are complete.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	countnet "repro"
)

const (
	procs  = 16
	phases = 50
)

func main() {
	net, err := countnet.NewCWT(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	ctr := countnet.NewCounter(net)

	var work [phases]atomic.Int64 // completed work items per phase
	var released atomic.Int64     // number of fully released phases
	var violations atomic.Int64

	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for r := 0; r < phases; r++ {
				work[r].Add(1) // the phase-r "work"

				// Arrive: the counter value tells us our global arrival
				// rank. The last arriver of this phase opens the barrier.
				v := ctr.Inc(pid)
				if v == int64((r+1)*procs-1) {
					// Invariant check at release time: every phase-r work
					// item must already be done.
					if work[r].Load() != procs {
						violations.Add(1)
					}
					released.Store(int64(r + 1))
				} else {
					for released.Load() <= int64(r) {
						runtime.Gosched()
					}
				}
			}
		}(pid)
	}
	wg.Wait()

	if v := violations.Load(); v != 0 {
		log.Fatalf("barrier violated %d times", v)
	}
	fmt.Printf("%d goroutines crossed %d barrier phases; release invariant held every time\n", procs, phases)
	fmt.Printf("counter issued %d dense values through %s (depth %d)\n",
		procs*phases, net.Name(), net.Depth())
}
