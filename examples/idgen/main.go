// Distributed unique-ID generation: the Fetch&Increment service the paper
// targets, compared across counter implementations — a central atomic
// word, a lock, the bitonic network, and C(w,t) with t = w and t = w·lgw.
//
// The example issues a burst of IDs from many goroutines through each
// implementation, verifies uniqueness and density, and reports wall-clock
// throughput plus (for network counters) the measured stall count, the
// §1.2 contention signal.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"time"

	countnet "repro"
)

const (
	procs = 32
	perG  = 2000
)

func main() {
	fmt.Printf("issuing %d IDs from %d goroutines (GOMAXPROCS=%d)\n\n",
		procs*perG, procs, runtime.GOMAXPROCS(0))

	type candidate struct {
		name string
		inc  func(pid int) int64
	}
	var cands []candidate

	central := countnet.NewCentralCounter()
	cands = append(cands, candidate{"central atomic", central.Inc})

	locked := countnet.NewLockedCounter()
	cands = append(cands, candidate{"mutex", locked.Inc})

	for _, cfg := range []struct {
		name string
		make func() (*countnet.Network, error)
	}{
		{"bitonic w=16", func() (*countnet.Network, error) { return countnet.NewBitonic(16) }},
		{"C(16,16)", func() (*countnet.Network, error) { return countnet.NewCWT(16, 16) }},
		{"C(16,64) [t=w·lgw]", func() (*countnet.Network, error) { return countnet.NewCWT(16, 64) }},
	} {
		net, err := cfg.make()
		if err != nil {
			log.Fatal(err)
		}
		ctr := countnet.NewCounter(net)
		cands = append(cands, candidate{cfg.name, ctr.Inc})
	}

	for _, c := range cands {
		ids := make([][]int64, procs)
		var wg sync.WaitGroup
		start := time.Now()
		for pid := 0; pid < procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ids[pid] = make([]int64, 0, perG)
				for i := 0; i < perG; i++ {
					ids[pid] = append(ids[pid], c.inc(pid))
				}
			}(pid)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var all []int64
		for _, s := range ids {
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i, v := range all {
			if v != int64(i) {
				log.Fatalf("%s: IDs not dense at %d: %d", c.name, i, v)
			}
		}
		fmt.Printf("  %-22s %8.0f IDs/ms   (all %d unique and dense)\n",
			c.name, float64(len(all))/(float64(elapsed.Microseconds())/1000), len(all))
	}

	fmt.Println("\non a single-socket host the central counter wins on raw rate;")
	fmt.Println("the counting networks trade latency for contention-freedom, which")
	fmt.Println("pays off with many true CPUs — see EXPERIMENTS.md E10/E11 for the")
	fmt.Println("adversarial stall counts where C(16,64) dominates.")
}
