// Quickstart: build the paper's counting network C(8,16), wrap it as a
// shared counter, and hammer it from 16 goroutines. Every goroutine gets
// globally unique, dense counter values, and the per-wire exit counts obey
// the step property.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	countnet "repro"
)

func main() {
	// 1. Construct C(w,t): 8 input wires, 16 output wires.
	net, err := countnet.NewCWT(8, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: depth %d (= (lg²w+lgw)/2 = %d), %d balancers\n",
		net.Name(), net.Depth(), countnet.CWTDepth(8), net.Size())

	// 2. Wrap it as a Fetch&Increment counter.
	ctr := countnet.NewCounter(net)

	// 3. Concurrent increments from 16 processes.
	const procs, per = 16, 1000
	results := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[pid] = append(results[pid], ctr.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()

	// 4. Validate: the multiset of returned values is exactly {0..m-1}.
	var all []int64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("counter broke: position %d holds %d", i, v)
		}
	}
	fmt.Printf("%d concurrent increments returned exactly {0..%d}\n", len(all), len(all)-1)

	fmt.Println("\nnetwork structure:")
	fmt.Print(countnet.Summary(net))
}
