// TCP-sharded deployment of C(4,8) — the refs [19,20] workstation
// experiment in miniature: three shard servers each own a third of the
// balancers and exit cells; every balancer crossing is one TCP round trip;
// concurrent client sessions still receive perfectly dense counter values.
//
// All servers run in this process on loopback for the demo; pointing the
// shard addresses at other machines distributes the network for real.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	countnet "repro"
)

func main() {
	topo, err := countnet.NewCWT(4, 8)
	if err != nil {
		log.Fatal(err)
	}

	const shards = 3
	addrs := make([]string, shards)
	var servers []*countnet.TCPShard
	for i := 0; i < shards; i++ {
		s, err := countnet.StartTCPShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	fmt.Printf("deployed %s across %d TCP shards: %v\n", topo.Name(), shards, addrs)

	cluster := countnet.NewTCPCluster(topo, addrs)
	fmt.Printf("each Fetch&Increment costs %d round trips (depth %d + exit cell)\n",
		cluster.Hops(), topo.Depth())

	const clients, per = 8, 250
	vals := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < clients; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				log.Fatal(err)
			}
			defer sess.Close()
			for i := 0; i < per; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					log.Fatal(err)
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("distributed counter broke: position %d holds %d", i, v)
		}
	}
	fmt.Printf("%d increments from %d clients in %v — all values dense across the cluster\n",
		len(all), clients, elapsed.Round(time.Millisecond))
}
