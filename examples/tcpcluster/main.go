// TCP-sharded deployment of C(4,8) — the refs [19,20] workstation
// experiment in miniature: three shard servers each own a third of the
// balancers and exit cells; a single-token balancer crossing is one TCP
// round trip; concurrent client sessions still receive perfectly dense
// counter values.
//
// The wire protocol also carries batched frames: a session shepherds k
// tokens (or antitokens) as ONE pipeline — a STEPN round trip per
// balancer touched instead of k round trips per layer — and the
// coalescing Counter client merges concurrent Inc callers into shared
// pipelines automatically. That client (coalescing windows, pooled
// health-probed sessions, tape-driven exactly-once retries) is not
// TCP code: it is the shared transport-seam core in internal/xport,
// and the identical stack serves the UDP and in-memory transports —
// see DESIGN.md's "The transport seam" and `make conformance`.
//
// All servers run in this process on loopback for the demo; pointing the
// shard addresses at other machines distributes the network for real.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	countnet "repro"
)

func main() {
	topo, err := countnet.NewCWT(4, 8)
	if err != nil {
		log.Fatal(err)
	}

	const shards = 3
	addrs := make([]string, shards)
	var servers []*countnet.TCPShard
	for i := 0; i < shards; i++ {
		s, err := countnet.StartTCPShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	fmt.Printf("deployed %s across %d TCP shards: %v\n", topo.Name(), shards, addrs)

	cluster := countnet.NewTCPCluster(topo, addrs)
	fmt.Printf("each single-token Fetch&Increment costs %d round trips (depth %d + exit cell)\n",
		cluster.Hops(), topo.Depth())

	// The coalescing counter client: concurrent callers on the same input
	// wire share batched pipelines.
	ctr := cluster.NewCounter()
	defer ctr.Close()

	const clients, per = 16, 125
	vals := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < clients; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v, err := ctr.Inc(pid)
				if err != nil {
					log.Fatal(err)
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("distributed counter broke: position %d holds %d", i, v)
		}
	}
	fmt.Printf("%d increments from %d clients in %v — all values dense across the cluster\n",
		len(all), clients, elapsed.Round(time.Millisecond))
	uncoalesced := len(all) * cluster.Hops()
	fmt.Printf("round trips: %d for %d ops (%.2f rpcs/op; uncoalesced cost %d)\n",
		ctr.RPCs(), len(all), float64(ctr.RPCs())/float64(len(all)), uncoalesced)

	// Explicit batching: one session, one pipeline, k=512 values.
	sess, err := cluster.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	batch, err := sess.IncBatch(0, 512, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IncBatch(k=512): %d values in %d round trips (%.3f rpcs/token)\n",
		len(batch), sess.RPCs(), float64(sess.RPCs())/float64(len(batch)))
	if _, err := sess.DecBatch(0, 512, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DecBatch(k=512): the whole batch revoked through the same frames")

	// Scaling out: a fleet of S independent deployments with pid
	// striping, each stripe's wires served from a pooled, self-healing
	// session pool (idle sessions health-probed at checkout; a
	// connection that dies mid-flight is evicted and the flight retried
	// exactly-once — seq-numbered frames are deduped server-side, so no
	// value is ever gapped or duplicated). Values land in disjoint
	// residue classes and the read side aggregates across stripes.
	const stripes = 2
	fleet, stopFleet, err := countnet.StartTCPShardedCluster(topo, stripes, shards)
	if err != nil {
		log.Fatal(err)
	}
	defer stopFleet()
	fctr := countnet.NewShardedClusterCounter(fleet, 2)
	defer fctr.Close()
	var fleetWG sync.WaitGroup
	uniq := make([][]int64, clients)
	for pid := 0; pid < clients; pid++ {
		fleetWG.Add(1)
		go func(pid int) {
			defer fleetWG.Done()
			for i := 0; i < per; i++ {
				v, err := fctr.Inc(pid)
				if err != nil {
					log.Fatal(err)
				}
				uniq[pid] = append(uniq[pid], v)
			}
		}(pid)
	}
	fleetWG.Wait()
	seen := make(map[int64]bool, clients*per)
	for _, vs := range uniq {
		for _, v := range vs {
			if seen[v] {
				log.Fatalf("fleet duplicated value %d", v)
			}
			seen[v] = true
		}
	}
	agg, err := fctr.Read()
	if err != nil {
		log.Fatal(err)
	}
	if agg != int64(clients*per) {
		log.Fatalf("aggregate read %d != %d ops", agg, clients*per)
	}
	fmt.Printf("sharded x%d fleet: %d increments, all unique, aggregate read matches; %.2f rpcs/op\n",
		stripes, clients*per, float64(fctr.RPCs())/float64(clients*per))

	// The control plane: one admin endpoint fronts the whole fleet with
	// /health (liveness + quiescence), /status (topology, residue
	// classes) and /metrics (Prometheus text format), served from
	// read-side closures over counters the data path already maintains —
	// attaching it adds zero frames to any flight. Per-stripe load shows
	// up under stripe="i" labels. See OPERATIONS.md for the manual.
	adm, err := countnet.ServeControlPlane("127.0.0.1:0", fctr)
	if err != nil {
		log.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr() + "/health")
	if err != nil {
		log.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("control plane /health (%d): %s\n", resp.StatusCode, strings.TrimSpace(string(health)))
	resp, err = http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "countnet_client_rpcs_total{") {
			fmt.Printf("control plane /metrics: %s\n", line)
		}
	}
	// In a real deployment, wire SIGTERM into the quiescent drain so a
	// rolling restart never loses or duplicates a value:
	//
	//	done, cancel := countnet.DrainOnSignal(fctr.Close, syscall.SIGTERM)
	//	defer cancel()
}
