// UDP-sharded deployment of C(4,8) — the counting network served over a
// transport that loses, duplicates and reorders packets, and counting
// EXACTLY anyway.
//
// The trick is that the exactly-once wire protocol (v2) built for
// tcpnet's retry path is precisely what an unreliable transport needs:
// every mutating frame carries a client id and a sequence number, the
// shards keep bounded per-client dedup windows replaying recorded
// replies, and the client simply retransmits unacknowledged datagrams
// under a jittered exponential timer. However many copies of a frame
// arrive, in whatever order, it executes exactly once.
//
// Datagrams also pack several frames (up to a safe MTU budget), so a
// batched pipeline costs the SAME frame bill as TCP — one STEPN per
// balancer touched, one CELLN per exit cell — in several times fewer
// packets. The bill is identical by construction, not coincidence:
// the counter client driving this demo is the same transport-agnostic
// core (internal/xport) that drives the TCP and in-memory transports,
// and the conformance suite asserts the integer equality — see
// DESIGN.md's "The transport seam" and `make conformance`.
//
// All servers run in this process on loopback; the final section turns
// on a deterministic fault injector (10% loss each way, duplication,
// reordering) and counts through it.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	countnet "repro"
)

func main() {
	topo, err := countnet.NewCWT(4, 8)
	if err != nil {
		log.Fatal(err)
	}

	const shards = 3
	cluster, stop, err := countnet.StartUDPCluster(topo, shards)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("deployed %s across %d UDP shards\n", topo.Name(), shards)
	fmt.Printf("a single-token Fetch&Increment exchanges %d frames (depth %d + exit cell), like TCP\n",
		cluster.Hops(), topo.Depth())

	// The coalescing counter client: concurrent callers on the same
	// input wire share batched pipelines; packet loss is handled below
	// this API entirely.
	ctr := countnet.NewUDPClusterCounter(cluster, 0)
	defer ctr.Close()

	const clients, per = 16, 125
	vals := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < clients; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v, err := ctr.Inc(pid)
				if err != nil {
					log.Fatal(err)
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("distributed counter broke: position %d holds %d", i, v)
		}
	}
	fmt.Printf("%d increments from %d clients in %v — all values dense across the cluster\n",
		len(all), clients, elapsed.Round(time.Millisecond))
	fmt.Printf("cost: %d frames in %d datagrams (%.1f frames/packet), %d retransmits on loopback\n",
		ctr.RPCs(), ctr.Packets(), float64(ctr.RPCs())/float64(ctr.Packets()), ctr.Retransmits())

	// Explicit batching: one session, one pipeline, k=512 values — the
	// layered walk packs each topology layer's frames per shard.
	sess, err := cluster.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	batch, err := sess.IncBatch(0, 512, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IncBatch(k=512): %d values, %d frames in just %d datagrams\n",
		len(batch), sess.RPCs(), sess.Packets())
	if _, err := sess.DecBatch(0, 512, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DecBatch(k=512): the whole batch revoked through the same frames")

	// Now the point of the exercise: a deliberately bad network. Ten
	// percent of datagrams vanish in each direction, some are
	// duplicated, some arrive out of order — and the count stays exact,
	// because retransmitted frames are replayed from the shards' dedup
	// windows, never re-executed.
	lossy, lstop, err := countnet.StartUDPCluster(topo, shards)
	if err != nil {
		log.Fatal(err)
	}
	defer lstop()
	lossy.SetDialWrapper(countnet.UDPFaults{
		Drop: 0.10, Dup: 0.10, Reorder: 0.10, Seed: 42,
	}.Wrapper())
	lctr := countnet.NewUDPClusterCounter(lossy, 0)
	defer lctr.Close()
	var lwg sync.WaitGroup
	luniq := make([][]int64, clients)
	lstart := time.Now()
	for pid := 0; pid < clients; pid++ {
		lwg.Add(1)
		go func(pid int) {
			defer lwg.Done()
			for i := 0; i < per/5; i++ {
				v, err := lctr.Inc(pid)
				if err != nil {
					log.Fatal(err)
				}
				luniq[pid] = append(luniq[pid], v)
			}
		}(pid)
	}
	lwg.Wait()
	seen := make(map[int64]bool)
	for _, vs := range luniq {
		for _, v := range vs {
			if seen[v] {
				log.Fatalf("lossy run duplicated value %d", v)
			}
			seen[v] = true
		}
	}
	total, err := lctr.Read()
	if err != nil {
		log.Fatal(err)
	}
	if total != int64(len(seen)) {
		log.Fatalf("lossy run leaked: read %d, issued %d", total, len(seen))
	}
	fmt.Printf("lossy fabric (10%% drop + dup + reorder): %d increments in %v, all unique, read matches\n",
		len(seen), time.Since(lstart).Round(time.Millisecond))
	fmt.Printf("reliability bill: %d/%d datagrams were retransmits (%.1f%%)\n",
		lctr.Retransmits(), lctr.Packets(),
		100*float64(lctr.Retransmits())/float64(lctr.Packets()))

	// The same reliability bill, as an operator would see it: attach the
	// control plane to the lossy counter and scrape /metrics — the
	// retransmit and packet totals above are Prometheus counters, so a
	// loss spike shows up as a rate change on a dashboard rather than a
	// line in a demo. See OPERATIONS.md for the fault-triage recipes.
	adm, err := countnet.ServeControlPlane("127.0.0.1:0", lctr)
	if err != nil {
		log.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "countnet_client_retransmits_total{") ||
			strings.HasPrefix(line, "countnet_client_packets_total{") {
			fmt.Printf("control plane /metrics: %s\n", line)
		}
	}
}
