// Package smoothing studies smoothing networks and the impact of
// randomization, the Section 7 discussion of the paper (refs [17]
// Herlihy–Tirthapura, [24] Mavronicolas–Sauerwald): a balancing network is
// k-smoothing if every quiescent output is k-smooth, and randomizing the
// balancers' initial states can improve the *typical* smoothness well
// below the worst-case guarantee.
//
// The package measures worst-observed smoothness across input sweeps and
// across random initializations, quantifying how much randomization buys
// on the paper's butterfly (which is exactly lgw-smoothing in the worst
// case, Lemma 5.2).
package smoothing

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/stats"
)

// WorstObserved returns the maximum output spread (Max-Min) of the network
// over `trials` random input count vectors with entries below bound.
func WorstObserved(n *network.Network, trials int, bound int64, rng *rand.Rand) (int64, error) {
	var worst int64
	x := make([]int64, n.InWidth())
	for trial := 0; trial < trials; trial++ {
		for i := range x {
			x[i] = rng.Int63n(bound)
		}
		y, err := n.Quiescent(x)
		if err != nil {
			return 0, err
		}
		lo, hi := y[0], y[0]
		for _, v := range y[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > worst {
			worst = hi - lo
		}
	}
	return worst, nil
}

// RandomInitReport summarizes a randomized-initialization study.
type RandomInitReport struct {
	// Deterministic is the worst spread observed with zeroed initial
	// states over the input sweep.
	Deterministic int64
	// Mean and Worst summarize the per-initialization worst spreads
	// across random initial states.
	Mean  float64
	Worst int64
	Inits int
}

// RandomInitStudy measures the worst-observed smoothness of the network
// under `inits` random initializations, `trials` random inputs each, and
// compares with the deterministic (all-zero) initialization. The build
// function must return a fresh network each call.
func RandomInitStudy(build func() (*network.Network, error), inits, trials int, bound int64, seed int64) (RandomInitReport, error) {
	rng := rand.New(rand.NewSource(seed))
	det, err := build()
	if err != nil {
		return RandomInitReport{}, err
	}
	rep := RandomInitReport{Inits: inits}
	rep.Deterministic, err = WorstObserved(det, trials, bound, rng)
	if err != nil {
		return rep, err
	}
	var s stats.Stream
	for i := 0; i < inits; i++ {
		n, err := build()
		if err != nil {
			return rep, err
		}
		n.RandomizeInitialStates(rng)
		w, err := WorstObserved(n, trials, bound, rng)
		if err != nil {
			return rep, err
		}
		s.Add(float64(w))
		if w > rep.Worst {
			rep.Worst = w
		}
	}
	rep.Mean = s.Mean()
	return rep, nil
}

// String renders the report.
func (r RandomInitReport) String() string {
	return fmt.Sprintf("deterministic worst %d | random init (%d draws): mean %.2f, worst %d",
		r.Deterministic, r.Inits, r.Mean, r.Worst)
}

// CascadePreservesSmoothness is the Lemma 2.5 corollary at network scale:
// cascading a regular all-equal-width network after a k-smoothing stage
// cannot worsen the k-smoothness. The function verifies it empirically for
// the concrete pair (stage, rest) over `trials` random inputs, returning a
// counterexample error if the composed spread ever exceeds the stage
// spread.
func CascadePreservesSmoothness(stage, rest *network.Network, trials int, bound int64, seed int64) error {
	if stage.OutWidth() != rest.InWidth() || rest.InWidth() != rest.OutWidth() {
		return fmt.Errorf("smoothing: need stage.out == rest.in == rest.out, have %d/%d/%d",
			stage.OutWidth(), rest.InWidth(), rest.OutWidth())
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]int64, stage.InWidth())
	for trial := 0; trial < trials; trial++ {
		for i := range x {
			x[i] = rng.Int63n(bound)
		}
		mid, err := stage.Quiescent(x)
		if err != nil {
			return err
		}
		out, err := rest.Quiescent(mid)
		if err != nil {
			return err
		}
		if spread(out) > spread(mid) {
			return fmt.Errorf("smoothing: composition worsened spread %d -> %d on input %v",
				spread(mid), spread(out), x)
		}
	}
	return nil
}

func spread(x []int64) int64 {
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
