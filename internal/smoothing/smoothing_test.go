package smoothing

import (
	"math/rand"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/network"
)

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

func TestWorstObservedButterflyWithinLemma52(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32} {
		n, err := butterfly.NewForward(w)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := WorstObserved(n, 2000, 200, rand.New(rand.NewSource(int64(w))))
		if err != nil {
			t.Fatal(err)
		}
		if worst > int64(log2(w)) {
			t.Errorf("D(%d): observed smoothness %d exceeds lgw", w, worst)
		}
		if worst == 0 && w > 2 {
			t.Errorf("D(%d): suspiciously perfect smoothness", w)
		}
	}
}

// E23: randomized initial states keep the butterfly within its
// deterministic worst-case bound, and on average do no worse.
func TestRandomInitStudyButterfly(t *testing.T) {
	const w = 16
	rep, err := RandomInitStudy(func() (*network.Network, error) {
		return butterfly.NewForward(w)
	}, 20, 400, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	// The randomized worst must stay within lgw + 1 (randomization may
	// cost at most the one extra level seen in E16).
	if rep.Worst > int64(log2(w))+1 {
		t.Errorf("randomized worst %d far above lgw", rep.Worst)
	}
	if rep.Deterministic > int64(log2(w)) {
		t.Errorf("deterministic worst %d above Lemma 5.2 bound", rep.Deterministic)
	}
	if rep.Mean <= 0 {
		t.Error("degenerate study")
	}
}

// The C(w,t) prefix study: randomization across the whole counting
// network keeps outputs within 2 of step on the sweep (E16 again through
// the study API).
func TestRandomInitStudyCWT(t *testing.T) {
	rep, err := RandomInitStudy(func() (*network.Network, error) {
		return core.New(8, 8)
	}, 10, 400, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic > 1 {
		t.Errorf("deterministic counting network spread %d > 1", rep.Deterministic)
	}
	if rep.Worst > 3 {
		t.Errorf("randomized counting network spread %d > 3", rep.Worst)
	}
}

func TestCascadePreservesSmoothness(t *testing.T) {
	stage, err := butterfly.NewForward(8)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := butterfly.NewBackward(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CascadePreservesSmoothness(stage, rest, 500, 100, 3); err != nil {
		t.Fatal(err)
	}
}

func TestCascadePreservesSmoothnessWidthCheck(t *testing.T) {
	stage, err := butterfly.NewForward(8)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CascadePreservesSmoothness(stage, rest, 10, 10, 1); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
