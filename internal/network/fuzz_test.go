package network

import (
	"testing"

	"repro/internal/seq"
)

// Native fuzz targets. The seed corpus runs in ordinary `go test`;
// `go test -fuzz=FuzzQuiescentStep ./internal/network` explores further.

// fuzzNet builds a fixed C(8,16)-shaped network without importing core
// (avoiding an import cycle): ladder, two (2,4) base balancers per half,
// merger layers — actually we just exercise the framework invariants on a
// ladder cascade, which is enough for sum preservation and determinism.
func fuzzNet(tb testing.TB) *Network {
	tb.Helper()
	b, in := NewBuilder("fuzz-cascade", 8)
	cur := in
	for layer := 0; layer < 3; layer++ {
		next := make([]Port, 8)
		for i := 0; i < 4; i++ {
			o := b.Balancer([]Port{cur[i], cur[i+4]}, 2)
			next[i], next[i+4] = o[0], o[1]
		}
		cur = next
	}
	n, err := b.Finalize(cur)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// FuzzQuiescentSum: for arbitrary input counts, quiescent evaluation
// preserves the token sum and is deterministic.
func FuzzQuiescentSum(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint16(3), uint16(4), uint16(5), uint16(6), uint16(7), uint16(8))
	f.Add(uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(1000))
	n := fuzzNet(f)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i uint16) {
		x := []int64{int64(a), int64(b), int64(c), int64(d), int64(e), int64(g), int64(h), int64(i)}
		y1, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(y1, y2) {
			t.Fatal("quiescent evaluation nondeterministic")
		}
		if seq.Sum(y1) != seq.Sum(x) {
			t.Fatalf("sum not preserved: %d -> %d", seq.Sum(x), seq.Sum(y1))
		}
	})
}

// FuzzSequentialMatchesQuiescent: pushing tokens one by one through the
// live balancers reaches exactly the arithmetic prediction.
func FuzzSequentialMatchesQuiescent(f *testing.F) {
	f.Add(uint8(3), uint8(0), uint8(7), uint8(1), uint8(0), uint8(2), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i uint8) {
		n := fuzzNet(t)
		x := []int64{int64(a % 32), int64(b % 32), int64(c % 32), int64(d % 32),
			int64(e % 32), int64(g % 32), int64(h % 32), int64(i % 32)}
		exits := make([]int64, n.OutWidth())
		for wire, cnt := range x {
			for k := int64(0); k < cnt; k++ {
				exits[n.Traverse(wire)]++
			}
		}
		fresh := fuzzNet(t)
		want, err := fresh.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(exits, want) {
			t.Fatalf("live run %v != prediction %v for %v", exits, want, x)
		}
	})
}
