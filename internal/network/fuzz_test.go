package network

import (
	"testing"

	"repro/internal/seq"
)

// Native fuzz targets. The seed corpus runs in ordinary `go test`;
// `go test -fuzz=FuzzQuiescentStep ./internal/network` explores further.

// fuzzNet builds a fixed C(8,16)-shaped network without importing core
// (avoiding an import cycle): ladder, two (2,4) base balancers per half,
// merger layers — actually we just exercise the framework invariants on a
// ladder cascade, which is enough for sum preservation and determinism.
func fuzzNet(tb testing.TB) *Network {
	tb.Helper()
	b, in := NewBuilder("fuzz-cascade", 8)
	cur := in
	for layer := 0; layer < 3; layer++ {
		next := make([]Port, 8)
		for i := 0; i < 4; i++ {
			o := b.Balancer([]Port{cur[i], cur[i+4]}, 2)
			next[i], next[i+4] = o[0], o[1]
		}
		cur = next
	}
	n, err := b.Finalize(cur)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// FuzzQuiescentSum: for arbitrary input counts, quiescent evaluation
// preserves the token sum and is deterministic.
func FuzzQuiescentSum(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint16(3), uint16(4), uint16(5), uint16(6), uint16(7), uint16(8))
	f.Add(uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint16(1000))
	n := fuzzNet(f)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i uint16) {
		x := []int64{int64(a), int64(b), int64(c), int64(d), int64(e), int64(g), int64(h), int64(i)}
		y1, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(y1, y2) {
			t.Fatal("quiescent evaluation nondeterministic")
		}
		if seq.Sum(y1) != seq.Sum(x) {
			t.Fatalf("sum not preserved: %d -> %d", seq.Sum(x), seq.Sum(y1))
		}
	})
}

// FuzzTraverseBatch: for arbitrary batch sizes on arbitrary wires, the
// batched fast path (one fetch-add per balancer touched) is
// indistinguishable from single-token traversal — same exit tallies, same
// balancer states. The seed corpus pins the shapes the batched counter
// relies on (k == width, k >> width, alternating wires).
func FuzzTraverseBatch(f *testing.F) {
	f.Add(uint8(8), uint8(0), uint8(8), uint8(4), uint8(1), uint8(7), uint8(0), uint8(3))
	f.Add(uint8(200), uint8(1), uint8(16), uint8(1), uint8(16), uint8(1), uint8(16), uint8(1))
	f.Add(uint8(0), uint8(0), uint8(1), uint8(2), uint8(3), uint8(5), uint8(8), uint8(13))
	f.Fuzz(func(t *testing.T, k0, w0, k1, w1, k2, w2, k3, w3 uint8) {
		batched := fuzzNet(t)
		singles := fuzzNet(t)
		got := make([]int64, batched.OutWidth())
		want := make([]int64, singles.OutWidth())
		for _, op := range [][2]uint8{{k0, w0}, {k1, w1}, {k2, w2}, {k3, w3}} {
			k, wire := int64(op[0]), int(op[1])%batched.InWidth()
			batched.TraverseBatchInto(wire, k, got)
			for i := int64(0); i < k; i++ {
				want[singles.Traverse(wire)]++
			}
		}
		if !seq.Equal(got, want) {
			t.Fatalf("batched tallies %v != single-token tallies %v", got, want)
		}
		for i := 0; i < batched.Size(); i++ {
			if batched.Node(i).Balancer().Count() != singles.Node(i).Balancer().Count() {
				t.Fatalf("balancer %d state diverged", i)
			}
		}
	})
}

// FuzzTraverseAntiBatch: arbitrary interleavings of token and antitoken
// batches (the anti bit of each op selects the direction) stay quiescently
// consistent: the batched fast paths leave exactly the exit tallies and
// balancer states of the equivalent single-token/-antitoken schedule, and
// the residue (token exits minus antitoken exits) preserves the net token
// sum — on a counting network the residue of such a quiescent state is
// step, which TestDecBatch pins at counter level.
func FuzzTraverseAntiBatch(f *testing.F) {
	f.Add(uint8(8), uint8(0), uint8(8), uint8(4|128), uint8(1), uint8(7|128), uint8(0), uint8(3))
	f.Add(uint8(200), uint8(1), uint8(16), uint8(1|128), uint8(16), uint8(1), uint8(16), uint8(1|128))
	f.Add(uint8(0), uint8(128), uint8(1), uint8(2|128), uint8(3), uint8(5), uint8(8), uint8(13|128))
	f.Fuzz(func(t *testing.T, k0, w0, k1, w1, k2, w2, k3, w3 uint8) {
		batched := fuzzNet(t)
		singles := fuzzNet(t)
		gotTok := make([]int64, batched.OutWidth())
		gotAnti := make([]int64, batched.OutWidth())
		wantTok := make([]int64, singles.OutWidth())
		wantAnti := make([]int64, singles.OutWidth())
		var netSum int64
		for _, op := range [][2]uint8{{k0, w0}, {k1, w1}, {k2, w2}, {k3, w3}} {
			k, wire := int64(op[0]), int(op[1]&127)%batched.InWidth()
			if op[1]&128 != 0 { // high wire bit selects the antitoken direction
				batched.TraverseAntiBatchInto(wire, k, gotAnti)
				for i := int64(0); i < k; i++ {
					wantAnti[singles.TraverseAnti(wire)]++
				}
				netSum -= k
			} else {
				batched.TraverseBatchInto(wire, k, gotTok)
				for i := int64(0); i < k; i++ {
					wantTok[singles.Traverse(wire)]++
				}
				netSum += k
			}
		}
		if !seq.Equal(gotTok, wantTok) {
			t.Fatalf("batched token tallies %v != single-token tallies %v", gotTok, wantTok)
		}
		if !seq.Equal(gotAnti, wantAnti) {
			t.Fatalf("batched antitoken tallies %v != single-antitoken tallies %v", gotAnti, wantAnti)
		}
		var residue int64
		for i := range gotTok {
			residue += gotTok[i] - gotAnti[i]
		}
		if residue != netSum {
			t.Fatalf("residue %d != net injected sum %d", residue, netSum)
		}
		for i := 0; i < batched.Size(); i++ {
			if batched.Node(i).Balancer().Count() != singles.Node(i).Balancer().Count() {
				t.Fatalf("balancer %d state diverged", i)
			}
		}
	})
}

// FuzzSequentialMatchesQuiescent: pushing tokens one by one through the
// live balancers reaches exactly the arithmetic prediction.
func FuzzSequentialMatchesQuiescent(f *testing.F) {
	f.Add(uint8(3), uint8(0), uint8(7), uint8(1), uint8(0), uint8(2), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i uint8) {
		n := fuzzNet(t)
		x := []int64{int64(a % 32), int64(b % 32), int64(c % 32), int64(d % 32),
			int64(e % 32), int64(g % 32), int64(h % 32), int64(i % 32)}
		exits := make([]int64, n.OutWidth())
		for wire, cnt := range x {
			for k := int64(0); k < cnt; k++ {
				exits[n.Traverse(wire)]++
			}
		}
		fresh := fuzzNet(t)
		want, err := fresh.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(exits, want) {
			t.Fatalf("live run %v != prediction %v for %v", exits, want, x)
		}
	})
}
