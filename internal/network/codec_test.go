package network

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig, err := RandomCascadeProbe("probe", 8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetLabel(2, "Na")
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.Depth() != orig.Depth() ||
		back.Size() != orig.Size() || back.InWidth() != orig.InWidth() ||
		back.OutWidth() != orig.OutWidth() {
		t.Fatal("geometry lost in round trip")
	}
	if back.Label(2) != "Na" {
		t.Fatal("labels lost in round trip")
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]int64, 8)
		for i := range x {
			x[i] = rng.Int63n(40)
		}
		a, err := orig.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(a, b) {
			t.Fatalf("behaviour lost in round trip on %v", x)
		}
	}
}

func TestSpecPreservesInitialStates(t *testing.T) {
	n := buildSingle(t, 4)
	n.RandomizeInitialStates(rand.New(rand.NewSource(11)))
	want := n.Node(0).Balancer().Init()
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Node(0).Balancer().Init(); got != want {
		t.Fatalf("init = %d, want %d", got, want)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Dangling reference: balancer 0 consumes a port that does not exist.
	spec := Spec{
		Name:    "bad",
		InWidth: 2,
		Balancers: []BalSpec{
			{Ins: []PortSpec{{Node: 5, Port: 0}, {Node: -1, Port: 1}}, Out: 2},
		},
		Outputs: []PortSpec{{Node: 0, Port: 0}, {Node: 0, Port: 1}},
	}
	if _, err := FromSpec(spec); err == nil {
		t.Fatal("unknown port reference accepted")
	}
	// Port reused twice.
	spec2 := Spec{
		Name:    "bad2",
		InWidth: 1,
		Balancers: []BalSpec{
			{Ins: []PortSpec{{Node: -1, Port: 0}, {Node: -1, Port: 0}}, Out: 2},
		},
		Outputs: []PortSpec{{Node: 0, Port: 0}, {Node: 0, Port: 1}},
	}
	if _, err := FromSpec(spec2); err == nil {
		t.Fatal("double-consumed port accepted")
	}
}

func TestDOT(t *testing.T) {
	n := buildLadder4(t)
	n.SetLabel(0, "Na")
	dot := DOT(n)
	for _, want := range []string{"digraph", "b0", "rank=same", "in0", "out3", "Na"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge count: inputs + all balancer output ports.
	if got := strings.Count(dot, "->"); got != 4+4 {
		t.Fatalf("DOT has %d edges, want 8", got)
	}
}
