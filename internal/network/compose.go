package network

import (
	"fmt"
	"math/rand"
)

// Clone returns a fresh copy of the network with all balancers in their
// initial states. The topology is shared-nothing: traversals of the clone
// never touch the original. Labels are copied.
func (n *Network) Clone() *Network {
	b, in := NewBuilder(n.name, n.inWidth)
	// Recreate nodes in their original (topological) order, mapping old
	// output ports to new Ports.
	ports := make(map[endpoint]Port, len(n.nodes)*2)
	for i := range in {
		ports[endpoint{node: External, port: int32(i)}] = in[i]
	}
	for id := range n.nodes {
		nd := &n.nodes[id]
		inPorts := make([]Port, nd.In())
		for p := range inPorts {
			inPorts[p] = ports[nd.in[p]]
		}
		outs := b.BalancerInit(inPorts, nd.Out(), nd.bal.Init())
		for p, op := range outs {
			ports[endpoint{node: int32(id), port: int32(p)}] = op
		}
	}
	outs := make([]Port, n.outWidth)
	for i := range outs {
		outs[i] = ports[n.sources[i]]
	}
	clone, err := b.Finalize(outs)
	if err != nil {
		panic(fmt.Sprintf("network: Clone of %s failed: %v", n.name, err))
	}
	if n.labels != nil {
		clone.labels = append([]string(nil), n.labels...)
	}
	return clone
}

// Cascade composes networks in series: the output wires of each feed the
// input wires of the next, in order. Widths must chain (out of stage i ==
// in of stage i+1). The periodic counting network, for example, is a
// cascade of lgw butterfly blocks. The input networks are only read; the
// result is fresh.
func Cascade(name string, stages ...*Network) (*Network, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("network: Cascade of zero stages")
	}
	for i := 1; i < len(stages); i++ {
		if stages[i-1].OutWidth() != stages[i].InWidth() {
			return nil, fmt.Errorf("network: Cascade width mismatch between stage %d (out %d) and %d (in %d)",
				i-1, stages[i-1].OutWidth(), i, stages[i].InWidth())
		}
	}
	b, in := NewBuilder(name, stages[0].InWidth())
	cur := in
	for _, st := range stages {
		next := appendStage(b, st, cur)
		cur = next
	}
	return b.Finalize(cur)
}

// appendStage replays the topology of st onto the builder, consuming cur
// as its input wires, and returns its output wires.
func appendStage(b *Builder, st *Network, cur []Port) []Port {
	ports := make(map[endpoint]Port, st.Size()*2)
	for i, p := range cur {
		ports[endpoint{node: External, port: int32(i)}] = p
	}
	for id := 0; id < st.Size(); id++ {
		nd := st.Node(id)
		inPorts := make([]Port, nd.In())
		for p := range inPorts {
			inPorts[p] = ports[nd.in[p]]
		}
		outs := b.BalancerInit(inPorts, nd.Out(), nd.bal.Init())
		for p, op := range outs {
			ports[endpoint{node: int32(id), port: int32(p)}] = op
		}
	}
	out := make([]Port, st.OutWidth())
	for i := range out {
		out[i] = ports[st.sources[i]]
	}
	return out
}

// Mirror returns the network with its input wires permuted by pi: input
// wire i of the result maps to input wire pi[i] of the original. Output
// order is unchanged. Useful for testing isomorphism hypotheses
// (§2.3) and for constructing permuted variants.
func Mirror(n *Network, pi []int) (*Network, error) {
	if len(pi) != n.InWidth() {
		return nil, fmt.Errorf("network: Mirror permutation length %d, want %d", len(pi), n.InWidth())
	}
	seen := make([]bool, len(pi))
	for _, v := range pi {
		if v < 0 || v >= len(pi) || seen[v] {
			return nil, fmt.Errorf("network: Mirror permutation %v is not a bijection", pi)
		}
		seen[v] = true
	}
	b, in := NewBuilder(n.name+"~", n.inWidth)
	permuted := make([]Port, len(in))
	for i := range in {
		// New input wire i plays the role of original wire pi[i].
		permuted[pi[i]] = in[i]
	}
	out := appendStage(b, n, permuted)
	return b.Finalize(out)
}

// RandomCascadeProbe builds `stages` random-width-preserving ladder-like
// shuffled layers for fuzz tests: each stage pairs wires randomly with
// (2,2)-balancers (width must be even). Exposed for test reuse.
func RandomCascadeProbe(name string, width, stages int, rng *rand.Rand) (*Network, error) {
	if width < 2 || width%2 != 0 {
		return nil, fmt.Errorf("network: probe width %d must be even and >= 2", width)
	}
	b, in := NewBuilder(name, width)
	cur := in
	for s := 0; s < stages; s++ {
		perm := rng.Perm(width)
		next := make([]Port, width)
		for i := 0; i < width/2; i++ {
			o := b.Balancer([]Port{cur[perm[2*i]], cur[perm[2*i+1]]}, 2)
			if o == nil {
				return nil, b.Err()
			}
			next[2*i], next[2*i+1] = o[0], o[1]
		}
		cur = next
	}
	return b.Finalize(cur)
}
