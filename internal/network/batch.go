package network

import (
	"repro/internal/balancer"
)

// Batched traversal: the high-throughput fast path.
//
// A (p,q)-balancer hands consecutive tokens to consecutive output wires
// round-robin, so k tokens that cross a balancer back-to-back can be
// processed with ONE atomic fetch-add of k (balancer.StepN) instead of k
// separate fetch-adds: the first token of the group takes wire
// (init+s) mod q where s is the pre-add count, the next takes
// (init+s+1) mod q, and so on. The groups exiting each output port are
// again consecutive at the next balancer, so the whole batch flows through
// the network with at most one atomic operation per *balancer touched*
// rather than one per balancer per token. For a batch of k tokens on a
// network of depth d this replaces k·d atomic operations with at most
// min(size, k·d) — amortized O(size/k + d) per token, a large win whenever
// k is at or above the network width.
//
// Interleaving with concurrent Traverse / TraverseAnti / TraverseBatch
// calls is safe: every balancer crossing is still a single atomic RMW, so
// any concurrent execution is equivalent to one in which the batch's
// tokens crossed each balancer back-to-back, which is a legal schedule of
// k individual tokens. In particular every quiescent state reached after
// a mix of batched and single-token traversals is identical to one
// reachable by single-token traversals alone, and the step/counting
// properties are preserved.

// batchScratch holds the per-call working state of TraverseBatch, pooled
// on the Network so steady-state batched traversal does not allocate.
type batchScratch struct {
	pending []int64 // tokens queued at each node's inputs
	dist    []int64 // per-port split of the node currently processed
}

// TraverseBatch shepherds k tokens entering on input wire `wire` through
// the network using one atomic fetch-add per balancer touched, and returns
// the number of those tokens that exited on each output wire (a slice of
// length OutWidth whose entries sum to k). Safe for concurrent use with
// itself and with the single-token traversal methods; see the package
// notes above for why batching preserves the network's semantics.
//
// k = 0 returns all-zero counts; k < 0 panics.
func (n *Network) TraverseBatch(wire int, k int64) []int64 {
	return n.TraverseBatchInto(wire, k, make([]int64, n.outWidth))
}

// TraverseBatchInto is TraverseBatch accumulating into out, which must
// have length OutWidth (entries are ADDED to, not reset — callers chaining
// several batches can reuse one tally slice). It returns out.
func (n *Network) TraverseBatchInto(wire int, k int64, out []int64) []int64 {
	if len(out) != n.outWidth {
		panic("network: TraverseBatchInto tally length mismatch")
	}
	if k < 0 {
		panic("network: TraverseBatch of negative batch size")
	}
	if k == 0 {
		return out
	}
	if k == 1 { // no splitting possible: take the lean single-token path
		out[n.Traverse(wire)]++
		return out
	}
	return n.batchSweep(wire, k, out, false)
}

// TraverseAntiBatch shepherds k antitokens entering on input wire `wire`
// through the network using one atomic fetch-add per balancer touched —
// the Fetch&Decrement mirror of TraverseBatch — and returns the number of
// those antitokens that exited on each output wire. A balancer processing
// n consecutive antitokens retracts its n most recent token slots
// (balancer.StepAntiN), so the group again splits arithmetically into
// consecutive sub-groups per output port and the whole batch drains in
// one topological sweep. Every quiescent state reached after any mix of
// batched and single token/antitoken traversals is identical to one
// reachable by single traversals alone.
//
// k = 0 returns all-zero counts; k < 0 panics.
func (n *Network) TraverseAntiBatch(wire int, k int64) []int64 {
	return n.TraverseAntiBatchInto(wire, k, make([]int64, n.outWidth))
}

// TraverseAntiBatchInto is TraverseAntiBatch accumulating into out, which
// must have length OutWidth (entries are ADDED to, not reset). It returns
// out.
func (n *Network) TraverseAntiBatchInto(wire int, k int64, out []int64) []int64 {
	if len(out) != n.outWidth {
		panic("network: TraverseAntiBatchInto tally length mismatch")
	}
	if k < 0 {
		panic("network: TraverseAntiBatch of negative batch size")
	}
	if k == 0 {
		return out
	}
	if k == 1 { // no splitting possible: take the lean single-token path
		out[n.TraverseAnti(wire)]++
		return out
	}
	return n.batchSweep(wire, k, out, true)
}

// batchSweep is the shared topological sweep behind TraverseBatchInto and
// TraverseAntiBatchInto: only the balancer transition differs (StepN
// claims the group's k next slots, StepAntiN retracts its k most recent —
// both return the group's first sequence index, so the split arithmetic
// is identical).
func (n *Network) batchSweep(wire int, k int64, out []int64, anti bool) []int64 {
	sc, _ := n.batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{pending: make([]int64, len(n.nodes))}
	}
	pending := sc.pending
	// Nodes were created in topological order by the Builder, and every
	// edge leads to a strictly later node or to a network output, so one
	// increasing-id sweep from the entry point drains the whole batch.
	first := len(n.nodes)
	ep := n.inputs[wire]
	if ep.node == External {
		out[ep.port] += k
	} else {
		pending[ep.node] = k
		first = int(ep.node)
	}
	for id := first; id < len(n.nodes); id++ {
		c := pending[id]
		if c == 0 {
			continue
		}
		pending[id] = 0
		nd := &n.nodes[id]
		q := nd.Out()
		if cap(sc.dist) < q {
			sc.dist = make([]int64, q)
		}
		var start int64
		if anti {
			start = nd.bal.StepAntiN(c)
		} else {
			start = nd.bal.StepN(c)
		}
		counts := balancer.DistributeInto(nd.bal.Init()+start, c, sc.dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			dst := nd.out[p]
			if dst.node == External {
				out[dst.port] += cnt
			} else {
				pending[dst.node] += cnt
			}
		}
	}
	n.batchPool.Put(sc)
	return out
}
