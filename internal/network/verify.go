package network

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// Verification of quiescent-state behaviour (§2.2 network families).
//
// The quiescent output of a balancing network is a pure function of the
// per-wire input counts, so the families of §2.2 (counting, k-smoothing,
// difference merging) can be checked by evaluating Quiescent over input
// count vectors: exhaustively over small totals, and randomized beyond.

// CheckCounting verifies the counting-network property (every quiescent
// output is a step sequence) over an exhaustive enumeration of input count
// vectors with totals up to exhaustiveSum, plus `trials` random vectors
// with entries below 1000, drawn from rng. It returns nil or a descriptive
// counterexample error.
func CheckCounting(n *Network, exhaustiveSum int, trials int, rng *rand.Rand) error {
	check := func(x []int64) error {
		y, err := n.Quiescent(x)
		if err != nil {
			return err
		}
		if !seq.IsStep(y) {
			return fmt.Errorf("network %s: input %v yields non-step output %v", n.Name(), x, y)
		}
		if seq.Sum(y) != seq.Sum(x) {
			return fmt.Errorf("network %s: input %v sum %d but output sum %d", n.Name(), x, seq.Sum(x), seq.Sum(y))
		}
		return nil
	}
	return sweep(n, exhaustiveSum, trials, rng, check)
}

// CheckSmoothing verifies the k-smoothing property over the same input
// sweep as CheckCounting.
func CheckSmoothing(n *Network, k int64, exhaustiveSum int, trials int, rng *rand.Rand) error {
	check := func(x []int64) error {
		y, err := n.Quiescent(x)
		if err != nil {
			return err
		}
		if !seq.IsKSmooth(y, k) {
			return fmt.Errorf("network %s: input %v yields output %v with smoothness %d > %d",
				n.Name(), x, y, seq.Smoothness(y), k)
		}
		return nil
	}
	return sweep(n, exhaustiveSum, trials, rng, check)
}

// MaxObservedSmoothness returns the largest Max-Min spread observed on the
// outputs over the standard sweep; useful for measuring (rather than
// asserting) smoothing behaviour.
func MaxObservedSmoothness(n *Network, exhaustiveSum int, trials int, rng *rand.Rand) (int64, error) {
	var worst int64
	err := sweep(n, exhaustiveSum, trials, rng, func(x []int64) error {
		y, err := n.Quiescent(x)
		if err != nil {
			return err
		}
		if s := seq.Smoothness(y); s > worst {
			worst = s
		}
		return nil
	})
	return worst, err
}

// CheckDifferenceMerger verifies the difference-merging property (§2.2)
// with merging parameter delta: whenever the first and second halves of the
// input are step sequences with sum difference in [0, delta], the output
// must be step. Inputs are generated directly as pairs of step sequences:
// exhaustively over second-half sums up to exhaustiveSum with every
// feasible difference, plus `trials` random pairs.
func CheckDifferenceMerger(n *Network, delta int64, exhaustiveSum int, trials int, rng *rand.Rand) error {
	if n.InWidth()%2 != 0 {
		return fmt.Errorf("network %s: difference merger needs even input width, have %d", n.Name(), n.InWidth())
	}
	half := n.InWidth() / 2
	check := func(sx, sy int64) error {
		x := append(seq.MakeStep(sx, half), seq.MakeStep(sy, half)...)
		y, err := n.Quiescent(x)
		if err != nil {
			return err
		}
		if !seq.IsStep(y) {
			return fmt.Errorf("network %s: step halves (sums %d, %d, delta %d) yield non-step output %v",
				n.Name(), sx, sy, delta, y)
		}
		return nil
	}
	for sy := int64(0); sy <= int64(exhaustiveSum); sy++ {
		for d := int64(0); d <= delta; d++ {
			if err := check(sy+d, sy); err != nil {
				return err
			}
		}
	}
	for i := 0; i < trials; i++ {
		sy := rng.Int63n(100000)
		if err := check(sy+rng.Int63n(delta+1), sy); err != nil {
			return err
		}
	}
	return nil
}

// sweep enumerates input count vectors and applies check to each: all
// vectors with total <= exhaustiveSum (compositions of the total into
// InWidth parts), then `trials` random vectors.
func sweep(n *Network, exhaustiveSum, trials int, rng *rand.Rand, check func([]int64) error) error {
	w := n.InWidth()
	x := make([]int64, w)
	var rec func(i int, left int64) error
	rec = func(i int, left int64) error {
		if i == w-1 {
			x[i] = left
			defer func() { x[i] = 0 }()
			return check(x)
		}
		for v := int64(0); v <= left; v++ {
			x[i] = v
			if err := rec(i+1, left-v); err != nil {
				return err
			}
		}
		x[i] = 0
		return nil
	}
	for total := int64(0); total <= int64(exhaustiveSum); total++ {
		if err := rec(0, total); err != nil {
			return err
		}
	}
	for trial := 0; trial < trials; trial++ {
		for i := range x {
			x[i] = rng.Int63n(1000)
		}
		if err := check(x); err != nil {
			return err
		}
	}
	return nil
}

// ArityCensus counts balancers by (in,out) arity, e.g. {"(2,2)": 12}.
func ArityCensus(n *Network) map[string]int {
	m := make(map[string]int)
	for i := 0; i < n.Size(); i++ {
		nd := n.Node(i)
		m[fmt.Sprintf("(%d,%d)", nd.In(), nd.Out())]++
	}
	return m
}

// LayerWidths returns, for each layer, the total number of output wires of
// that layer's balancers (the width of the network at that depth).
func LayerWidths(n *Network) []int {
	out := make([]int, n.Depth())
	for d, layer := range n.Layers() {
		for _, id := range layer {
			out[d] += n.Node(int(id)).Out()
		}
	}
	return out
}

// LayerArities returns, per layer, the census of balancer arities.
func LayerArities(n *Network) []map[string]int {
	out := make([]map[string]int, n.Depth())
	for d, layer := range n.Layers() {
		m := make(map[string]int)
		for _, id := range layer {
			nd := n.Node(int(id))
			m[fmt.Sprintf("(%d,%d)", nd.In(), nd.Out())]++
		}
		out[d] = m
	}
	return out
}
