package network

import (
	"fmt"
	"sort"
	"strings"
)

// Summary returns a one-paragraph structural description of the network:
// widths, depth, balancer count, arity census and per-layer widths. This is
// the textual regeneration of the paper's construction figures.
func Summary(n *Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: in=%d out=%d depth=%d balancers=%d\n",
		n.Name(), n.InWidth(), n.OutWidth(), n.Depth(), n.Size())
	fmt.Fprintf(&b, "  arities: %s\n", formatCensus(ArityCensus(n)))
	widths := LayerWidths(n)
	arities := LayerArities(n)
	for d := 0; d < n.Depth(); d++ {
		fmt.Fprintf(&b, "  layer %2d: %3d balancers, width %3d, %s\n",
			d+1, len(n.Layers()[d]), widths[d], formatCensus(arities[d]))
	}
	return b.String()
}

func formatCensus(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d x %s", m[k], k)
	}
	return strings.Join(parts, ", ")
}

// wireName names the edge leaving a source endpoint.
func wireName(src endpoint) string {
	if src.node == External {
		return fmt.Sprintf("in%d", src.port)
	}
	return fmt.Sprintf("b%d.%d", src.node, src.port)
}

// destName names the consumer of an edge.
func destName(dst endpoint) string {
	if dst.node == External {
		return fmt.Sprintf("out%d", dst.port)
	}
	return fmt.Sprintf("b%d[%d]", dst.node, dst.port)
}

// Diagram returns a full layer-by-layer wiring listing: every balancer with
// the named wires entering and leaving it, e.g.
//
//	layer 1:
//	  b0 (2,2)  in: in0 in4   out: ->b2[0] ->b3[0]
//
// It is exact (the network can be reconstructed from it) and is what
// cmd/netviz prints for the figure-reproduction experiments (E9).
func Diagram(n *Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (in=%d, out=%d, depth=%d)\n", n.Name(), n.InWidth(), n.OutWidth(), n.Depth())
	for d, layer := range n.Layers() {
		fmt.Fprintf(&b, "layer %d:\n", d+1)
		ids := append([]int32(nil), layer...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			nd := n.Node(int(id))
			ins := make([]string, nd.In())
			for p := range ins {
				ins[p] = wireName(nd.in[p])
			}
			outs := make([]string, nd.Out())
			for p := range outs {
				outs[p] = "->" + destName(nd.out[p])
			}
			label := ""
			if l := n.Label(int(id)); l != "" {
				label = " [" + l + "]"
			}
			fmt.Fprintf(&b, "  b%-3d (%d,%d)%s  in: %s   out: %s\n",
				id, nd.In(), nd.Out(), label, strings.Join(ins, " "), strings.Join(outs, " "))
		}
	}
	// Output wire sources.
	outs := make([]string, n.OutWidth())
	for i := range outs {
		outs[i] = fmt.Sprintf("out%d<-%s", i, wireName(n.sources[i]))
	}
	fmt.Fprintf(&b, "outputs: %s\n", strings.Join(outs, " "))
	return b.String()
}

// BrickDiagram renders a classic horizontal-wire diagram for networks whose
// balancers are all (2,2) (the style of Fig. 2 of the paper). Wires are
// drawn as rows; each balancer is a vertical connector between the two rows
// its endpoints occupy in the straightened drawing, where row identity is
// inherited from output position. Networks with irregular balancers are
// rendered by Diagram instead; BrickDiagram returns an error for them.
func BrickDiagram(n *Network) (string, error) {
	for i := 0; i < n.Size(); i++ {
		nd := n.Node(i)
		if nd.In() != 2 || nd.Out() != 2 {
			return "", fmt.Errorf("network %s: BrickDiagram requires all (2,2) balancers, found (%d,%d)",
				n.Name(), nd.In(), nd.Out())
		}
	}
	if n.InWidth() != n.OutWidth() {
		return "", fmt.Errorf("network %s: BrickDiagram requires equal widths", n.Name())
	}
	w := n.OutWidth()
	// Assign each node a pair of rows by propagating rows backward from the
	// outputs: a node's output port p occupies the row of whatever consumes
	// it. Consumers are either network outputs (row = wire index) or later
	// nodes whose rows are already known (process layers back to front).
	rows := make([][2]int, n.Size())
	resolved := make([]bool, n.Size())
	rowOf := func(dst endpoint) (int, bool) {
		if dst.node == External {
			return int(dst.port), true
		}
		if !resolved[dst.node] {
			return 0, false
		}
		return rows[dst.node][dst.port], true
	}
	for d := n.Depth() - 1; d >= 0; d-- {
		for _, id := range n.Layers()[d] {
			nd := n.Node(int(id))
			r0, ok0 := rowOf(nd.out[0])
			r1, ok1 := rowOf(nd.out[1])
			if !ok0 || !ok1 {
				return "", fmt.Errorf("network %s: cannot straighten wires for brick diagram", n.Name())
			}
			rows[id] = [2]int{r0, r1}
			resolved[id] = true
		}
	}
	// Columns: each layer gets enough sub-columns that overlapping balancer
	// spans are drawn side by side. Wires are '-' rows, balancers are
	// vertical 'o...|...o' spans.
	type span struct{ lo, hi int }
	layerSpans := make([][]span, n.Depth())
	subCols := make([]int, n.Depth())
	for d := 0; d < n.Depth(); d++ {
		var spans []span
		for _, id := range n.Layers()[d] {
			lo, hi := rows[id][0], rows[id][1]
			if lo > hi {
				lo, hi = hi, lo
			}
			spans = append(spans, span{lo, hi})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		layerSpans[d] = spans
		// Greedy interval partitioning into non-overlapping sub-columns.
		var colEnds []int
		for _, s := range spans {
			placed := false
			for c := range colEnds {
				if colEnds[c] < s.lo {
					colEnds[c] = s.hi
					placed = true
					break
				}
			}
			if !placed {
				colEnds = append(colEnds, s.hi)
			}
		}
		subCols[d] = len(colEnds)
		if subCols[d] == 0 {
			subCols[d] = 1
		}
	}
	colStart := make([]int, n.Depth()+1)
	colStart[0] = 2
	for d := 0; d < n.Depth(); d++ {
		colStart[d+1] = colStart[d] + 2*subCols[d] + 2
	}
	total := colStart[n.Depth()] + 2
	grid := make([][]byte, w)
	for r := range grid {
		grid[r] = []byte(strings.Repeat("-", total))
	}
	for d := 0; d < n.Depth(); d++ {
		colEnds := make([]int, 0, subCols[d])
		for _, s := range layerSpans[d] {
			c := -1
			for i := range colEnds {
				if colEnds[i] < s.lo {
					c, colEnds[i] = i, s.hi
					break
				}
			}
			if c == -1 {
				c = len(colEnds)
				colEnds = append(colEnds, s.hi)
			}
			col := colStart[d] + 2*c
			grid[s.lo][col] = 'o'
			grid[s.hi][col] = 'o'
			for r := s.lo + 1; r < s.hi; r++ {
				grid[r][col] = '|'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (w=%d, depth=%d)\n", n.Name(), w, n.Depth())
	for r := 0; r < w; r++ {
		fmt.Fprintf(&b, "%2d %s %2d\n", r, string(grid[r]), r)
	}
	return b.String(), nil
}
