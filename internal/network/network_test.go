package network

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/seq"
)

// buildSingle builds a network that is one (2,q)-balancer.
func buildSingle(t *testing.T, q int) *Network {
	t.Helper()
	b, in := NewBuilder("single", 2)
	out := b.Balancer(in, q)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return n
}

// buildLadder4 builds the ladder L(4): balancers pairing wires (0,2), (1,3).
func buildLadder4(t *testing.T) *Network {
	t.Helper()
	b, in := NewBuilder("L(4)", 4)
	o0 := b.Balancer([]Port{in[0], in[2]}, 2)
	o1 := b.Balancer([]Port{in[1], in[3]}, 2)
	n, err := b.Finalize([]Port{o0[0], o1[0], o0[1], o1[1]})
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return n
}

func TestSingleBalancerBasics(t *testing.T) {
	n := buildSingle(t, 2)
	if n.InWidth() != 2 || n.OutWidth() != 2 || n.Depth() != 1 || n.Size() != 1 {
		t.Fatalf("geometry wrong: in=%d out=%d depth=%d size=%d",
			n.InWidth(), n.OutWidth(), n.Depth(), n.Size())
	}
	// Tokens alternate 0,1,0,1 regardless of input wire.
	want := []int{0, 1, 0, 1, 0}
	for i, w := range want {
		if got := n.Traverse(i % 2); got != w {
			t.Fatalf("token %d exited on %d, want %d", i, got, w)
		}
	}
}

func TestSingleBalancerWideOutput(t *testing.T) {
	n := buildSingle(t, 6)
	for i := 0; i < 13; i++ {
		if got := n.Traverse(0); got != i%6 {
			t.Fatalf("token %d exited on %d, want %d", i, got, i%6)
		}
	}
	n.Reset()
	y, err := n.Quiescent([]int64{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(y, []int64{2, 2, 2, 1, 1, 1}) {
		t.Fatalf("Quiescent = %v", y)
	}
}

func TestTraverseAntiCancelsToken(t *testing.T) {
	n := buildSingle(t, 4)
	for i := 0; i < 7; i++ {
		n.Traverse(0)
	}
	// The 7th token exited on wire 6%4=2; an antitoken should exit there
	// and restore the state for the next token.
	if got := n.TraverseAnti(0); got != 2 {
		t.Fatalf("antitoken exited on %d, want 2", got)
	}
	if got := n.Traverse(1); got != 2 {
		t.Fatalf("token after cancel exited on %d, want 2", got)
	}
}

func TestLadderQuiescent(t *testing.T) {
	n := buildLadder4(t)
	cases := []struct{ x, want []int64 }{
		{[]int64{0, 0, 0, 0}, []int64{0, 0, 0, 0}},
		{[]int64{1, 0, 0, 0}, []int64{1, 0, 0, 0}},
		{[]int64{3, 0, 1, 0}, []int64{2, 0, 2, 0}},
		{[]int64{2, 3, 2, 3}, []int64{2, 3, 2, 3}},
		{[]int64{5, 0, 0, 1}, []int64{3, 1, 2, 0}}, // b0 gets 5 -> (3,2); b1 gets 1 -> (1,0)
	}
	for _, c := range cases {
		y, err := n.Quiescent(c.x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(y, c.want) {
			t.Errorf("Quiescent(%v) = %v, want %v", c.x, y, c.want)
		}
	}
}

func TestQuiescentErrors(t *testing.T) {
	n := buildLadder4(t)
	if _, err := n.Quiescent([]int64{1, 2}); err == nil {
		t.Error("wrong-length input accepted")
	}
	if _, err := n.Quiescent([]int64{1, -1, 0, 0}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestBuilderErrorDoubleConsume(t *testing.T) {
	b, in := NewBuilder("bad", 2)
	b.Balancer([]Port{in[0], in[1]}, 2)
	b.Balancer([]Port{in[0], in[1]}, 2) // reuse: error
	if _, err := b.Finalize(nil); err == nil {
		t.Fatal("double consumption not detected")
	}
}

func TestBuilderErrorDangling(t *testing.T) {
	b, in := NewBuilder("bad", 2)
	out := b.Balancer([]Port{in[0], in[1]}, 2)
	if _, err := b.Finalize(out[:1]); err == nil {
		t.Fatal("dangling balancer output not detected")
	}

	b2, in2 := NewBuilder("bad2", 3)
	out2 := b2.Balancer([]Port{in2[0], in2[1]}, 2)
	if _, err := b2.Finalize(out2); err == nil {
		t.Fatal("dangling network input not detected")
	}
}

func TestBuilderErrorForeignPort(t *testing.T) {
	b1, in1 := NewBuilder("a", 2)
	_, in2 := NewBuilder("b", 2)
	b1.Balancer([]Port{in1[0], in2[0]}, 2)
	if _, err := b1.Finalize([]Port{in1[1]}); err == nil {
		t.Fatal("foreign port not detected")
	}
}

func TestBuilderErrorBadWidths(t *testing.T) {
	b, in := NewBuilder("bad", 2)
	b.Balancer(in, 0)
	if _, err := b.Finalize(nil); err == nil {
		t.Fatal("zero output width not detected")
	}
	if b2, _ := NewBuilder("bad2", 0); b2.Err() == nil {
		t.Fatal("zero input width not detected")
	}
}

func TestBuilderSpentAfterFinalize(t *testing.T) {
	b, in := NewBuilder("spent", 2)
	out := b.Balancer(in, 2)
	if _, err := b.Finalize(out); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finalize(nil); err == nil {
		t.Fatal("reuse after Finalize not detected")
	}
}

func TestDepthAndLayers(t *testing.T) {
	// Two layers: ladder into a second layer of adjacent balancers.
	b, in := NewBuilder("twolayer", 4)
	a0 := b.Balancer([]Port{in[0], in[2]}, 2)
	a1 := b.Balancer([]Port{in[1], in[3]}, 2)
	c0 := b.Balancer([]Port{a0[0], a1[0]}, 2)
	c1 := b.Balancer([]Port{a0[1], a1[1]}, 2)
	n, err := b.Finalize([]Port{c0[0], c0[1], c1[0], c1[1]})
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", n.Depth())
	}
	layers := n.Layers()
	if len(layers[0]) != 2 || len(layers[1]) != 2 {
		t.Fatalf("layer sizes = %d, %d", len(layers[0]), len(layers[1]))
	}
	for _, id := range layers[0] {
		if n.Node(int(id)).Depth() != 1 {
			t.Fatal("layer 1 node with wrong depth")
		}
	}
	if got := LayerWidths(n); got[0] != 4 || got[1] != 4 {
		t.Fatalf("LayerWidths = %v", got)
	}
}

func TestWiringInspection(t *testing.T) {
	n := buildLadder4(t)
	if node, port := n.InputDest(2); node != 0 || port != 1 {
		t.Fatalf("InputDest(2) = (%d,%d), want (0,1)", node, port)
	}
	if node, port := n.OutputSource(1); node != 1 || port != 0 {
		t.Fatalf("OutputSource(1) = (%d,%d), want (1,0)", node, port)
	}
	if node, port := n.Dest(0, 1); node != External2() || port != 2 {
		t.Fatalf("Dest(0,1) = (%d,%d), want (-1,2)", node, port)
	}
	if node, port := n.Source(1, 0); node != External2() || port != 1 {
		t.Fatalf("Source(1,0) = (%d,%d), want (-1,1)", node, port)
	}
}

// External2 re-exports the sentinel for readability in tests.
func External2() int { return int(External) }

func TestTraverseTrace(t *testing.T) {
	n := buildLadder4(t)
	out, path := n.TraverseTrace(2)
	if len(path) != 1 || path[0].Node != 0 {
		t.Fatalf("path = %v", path)
	}
	if out != 0 { // first token through b0 exits port 0 -> out0
		t.Fatalf("exit = %d, want 0", out)
	}
}

// Concurrent determinism (§2.2): the quiescent output counts after a fully
// concurrent run must equal the arithmetic prediction for the same per-wire
// input counts.
func TestConcurrentMatchesQuiescent(t *testing.T) {
	n := buildLadder4(t)
	const perWire = 500
	var wg sync.WaitGroup
	exits := make([][]int64, 4)
	for g := 0; g < 4; g++ {
		exits[g] = make([]int64, n.OutWidth())
		wg.Add(1)
		go func(wire int) {
			defer wg.Done()
			for i := 0; i < perWire; i++ {
				exits[wire][n.Traverse(wire)]++
			}
		}(g)
	}
	wg.Wait()
	got := make([]int64, n.OutWidth())
	for _, e := range exits {
		for i, c := range e {
			got[i] += c
		}
	}
	n2 := buildLadder4(t)
	want, err := n2.Quiescent([]int64{perWire, perWire, perWire, perWire})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(got, want) {
		t.Fatalf("concurrent exits %v != quiescent prediction %v", got, want)
	}
}

func TestTraverseStallsCountsSomething(t *testing.T) {
	n := buildSingle(t, 2)
	var stalls int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(wire int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n.TraverseStalls(wire, &stalls)
			}
		}(g % 2)
	}
	wg.Wait()
	if stalls < 0 {
		t.Fatalf("negative stalls %d", stalls)
	}
	// All 8000 tokens went through one balancer; the exit distribution must
	// still be exact.
	if c := n.Node(0).Balancer().Count(); c != 8000 {
		t.Fatalf("balancer count = %d, want 8000", c)
	}
}

func TestRandomizeInitialStates(t *testing.T) {
	n := buildSingle(t, 4)
	n.RandomizeInitialStates(rand.New(rand.NewSource(7)))
	s0 := int64(n.Node(0).Balancer().State())
	y, err := n.Quiescent([]int64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5 tokens starting from s0: rotation of the step sequence.
	for i := int64(0); i < 5; i++ {
		w := (s0 + i) % 4
		y[w]--
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("distribution mismatch at wire %d: %v", i, y)
		}
	}
}

func TestCheckCountingOnSingleBalancer(t *testing.T) {
	n := buildSingle(t, 4)
	rng := rand.New(rand.NewSource(1))
	if err := CheckCounting(n, 6, 200, rng); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCountingDetectsFailure(t *testing.T) {
	// The ladder alone is NOT a counting network.
	n := buildLadder4(t)
	rng := rand.New(rand.NewSource(2))
	if err := CheckCounting(n, 4, 100, rng); err == nil {
		t.Fatal("ladder accepted as counting network")
	}
}

func TestCheckSmoothing(t *testing.T) {
	n := buildLadder4(t)
	rng := rand.New(rand.NewSource(3))
	// A single ladder layer on 4 wires is not 1-smoothing in general, but
	// every balancer output pair is 1-smooth, so inputs concentrated on one
	// balancer stay within ... just verify the checker wiring: smoothness
	// bounded by max input spread in the exhaustive region.
	if err := CheckSmoothing(n, 6, 6, 0, rng); err != nil {
		t.Fatal(err)
	}
	if err := CheckSmoothing(n, 0, 2, 0, rng); err == nil {
		t.Fatal("0-smoothing accepted for ladder")
	}
}

func TestArityCensus(t *testing.T) {
	n := buildSingle(t, 6)
	m := ArityCensus(n)
	if m["(2,6)"] != 1 || len(m) != 1 {
		t.Fatalf("census = %v", m)
	}
}

func TestLabels(t *testing.T) {
	n := buildLadder4(t)
	if n.Label(0) != "" {
		t.Fatal("unexpected default label")
	}
	n.SetLabel(1, "Na")
	if n.Label(1) != "Na" || n.Label(0) != "" {
		t.Fatal("label assignment broken")
	}
}

func TestSummaryAndDiagram(t *testing.T) {
	n := buildLadder4(t)
	s := Summary(n)
	if s == "" {
		t.Fatal("empty summary")
	}
	d := Diagram(n)
	if d == "" {
		t.Fatal("empty diagram")
	}
}

func TestBrickDiagram(t *testing.T) {
	n := buildLadder4(t)
	s, err := BrickDiagram(n)
	if err != nil {
		t.Fatal(err)
	}
	if s == "" {
		t.Fatal("empty brick diagram")
	}
	// Irregular network refused.
	wide := buildSingle(t, 6)
	if _, err := BrickDiagram(wide); err == nil {
		t.Fatal("irregular network accepted by BrickDiagram")
	}
}
