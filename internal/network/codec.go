package network

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Wire-format types for network topology interchange. A serialized network
// can be rebuilt byte-identically on another machine — used to ship
// topologies to distributed deployments and to freeze regression fixtures.

// Spec is the serializable description of a balancing network.
type Spec struct {
	Name      string     `json:"name"`
	InWidth   int        `json:"in_width"`
	Balancers []BalSpec  `json:"balancers"`
	Outputs   []PortSpec `json:"outputs"`
	Labels    []string   `json:"labels,omitempty"`
}

// BalSpec describes one balancer: its ordered input sources, output width
// and initial state. Balancers appear in topological order.
type BalSpec struct {
	Ins  []PortSpec `json:"ins"`
	Out  int        `json:"out"`
	Init int64      `json:"init,omitempty"`
}

// PortSpec names a wire source: balancer Node's output Port, or a network
// input wire (Node == -1, Port = wire index).
type PortSpec struct {
	Node int `json:"node"`
	Port int `json:"port"`
}

// ToSpec extracts the serializable topology of a network.
func ToSpec(n *Network) Spec {
	s := Spec{
		Name:    n.name,
		InWidth: n.inWidth,
	}
	for id := 0; id < n.Size(); id++ {
		nd := n.Node(id)
		bs := BalSpec{Out: nd.Out(), Init: nd.bal.Init()}
		for p := 0; p < nd.In(); p++ {
			src := nd.in[p]
			bs.Ins = append(bs.Ins, PortSpec{Node: int(src.node), Port: int(src.port)})
		}
		s.Balancers = append(s.Balancers, bs)
	}
	for i := 0; i < n.OutWidth(); i++ {
		src := n.sources[i]
		s.Outputs = append(s.Outputs, PortSpec{Node: int(src.node), Port: int(src.port)})
	}
	if n.labels != nil {
		s.Labels = append([]string(nil), n.labels...)
	}
	return s
}

// FromSpec rebuilds a network from its serialized topology, validating the
// wiring through the normal Builder checks.
func FromSpec(s Spec) (*Network, error) {
	b, in := NewBuilder(s.Name, s.InWidth)
	ports := make(map[endpoint]Port, len(s.Balancers)*2)
	for i, p := range in {
		ports[endpoint{node: External, port: int32(i)}] = p
	}
	lookup := func(ps PortSpec) (Port, error) {
		p, ok := ports[endpoint{node: int32(ps.Node), port: int32(ps.Port)}]
		if !ok {
			return Port{}, fmt.Errorf("network: spec references unknown or reused port (node %d, port %d)", ps.Node, ps.Port)
		}
		return p, nil
	}
	for id, bs := range s.Balancers {
		ins := make([]Port, len(bs.Ins))
		for i, ps := range bs.Ins {
			p, err := lookup(ps)
			if err != nil {
				return nil, err
			}
			ins[i] = p
		}
		outs := b.BalancerInit(ins, bs.Out, bs.Init)
		if outs == nil {
			return nil, b.Err()
		}
		for p, op := range outs {
			ports[endpoint{node: int32(id), port: int32(p)}] = op
		}
	}
	outs := make([]Port, len(s.Outputs))
	for i, ps := range s.Outputs {
		p, err := lookup(ps)
		if err != nil {
			return nil, err
		}
		outs[i] = p
	}
	n, err := b.Finalize(outs)
	if err != nil {
		return nil, err
	}
	if len(s.Labels) == len(s.Balancers) {
		for i, l := range s.Labels {
			if l != "" {
				n.SetLabel(i, l)
			}
		}
	}
	return n, nil
}

// Marshal encodes the network topology as indented JSON.
func Marshal(n *Network) ([]byte, error) {
	return json.MarshalIndent(ToSpec(n), "", "  ")
}

// Unmarshal decodes a network topology produced by Marshal.
func Unmarshal(data []byte) (*Network, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("network: bad topology JSON: %w", err)
	}
	return FromSpec(s)
}

// DOT renders the network as a Graphviz digraph: balancers as boxes
// (rank = layer), wires as edges labelled with port indices.
func DOT(n *Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", n.Name())
	for i := 0; i < n.InWidth(); i++ {
		fmt.Fprintf(&b, "  in%d [shape=plaintext];\n", i)
	}
	for i := 0; i < n.OutWidth(); i++ {
		fmt.Fprintf(&b, "  out%d [shape=plaintext];\n", i)
	}
	for id := 0; id < n.Size(); id++ {
		nd := n.Node(id)
		label := fmt.Sprintf("b%d (%d,%d)", id, nd.In(), nd.Out())
		if l := n.Label(id); l != "" {
			label += "\\n" + l
		}
		fmt.Fprintf(&b, "  b%d [label=%q];\n", id, label)
	}
	// Group balancers of a layer at equal rank.
	for d, layer := range n.Layers() {
		fmt.Fprintf(&b, "  { rank=same;")
		for _, id := range layer {
			fmt.Fprintf(&b, " b%d;", id)
		}
		fmt.Fprintf(&b, " } // layer %d\n", d+1)
	}
	edge := func(srcName, dstName string, port int) {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%d\"];\n", srcName, dstName, port)
	}
	for i := 0; i < n.InWidth(); i++ {
		dst := n.inputs[i]
		if dst.node == External {
			edge(fmt.Sprintf("in%d", i), fmt.Sprintf("out%d", dst.port), 0)
		} else {
			edge(fmt.Sprintf("in%d", i), fmt.Sprintf("b%d", dst.node), int(dst.port))
		}
	}
	for id := 0; id < n.Size(); id++ {
		nd := n.Node(id)
		for p := 0; p < nd.Out(); p++ {
			dst := nd.out[p]
			if dst.node == External {
				edge(fmt.Sprintf("b%d", id), fmt.Sprintf("out%d", dst.port), p)
			} else {
				edge(fmt.Sprintf("b%d", id), fmt.Sprintf("b%d", dst.node), p)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
