package network

import (
	"sync"
	"testing"

	"repro/internal/seq"
)

// drainStates snapshots every balancer's net count (the full live state).
func drainStates(n *Network) []int64 {
	out := make([]int64, n.Size())
	for i := range out {
		out[i] = n.Node(i).Balancer().Count()
	}
	return out
}

// TestTraverseBatchMatchesSingles: a batch of k tokens leaves the network
// (exit tallies AND balancer states) exactly as k successive single-token
// traversals do, for every wire and a spread of batch sizes.
func TestTraverseBatchMatchesSingles(t *testing.T) {
	for _, k := range []int64{0, 1, 2, 3, 5, 8, 17, 64, 1000} {
		for wire := 0; wire < 8; wire++ {
			batched := fuzzNet(t)
			singles := fuzzNet(t)
			got := batched.TraverseBatch(wire, k)
			want := make([]int64, singles.OutWidth())
			for i := int64(0); i < k; i++ {
				want[singles.Traverse(wire)]++
			}
			if !seq.Equal(got, want) {
				t.Fatalf("wire %d k=%d: batch tallies %v, singles %v", wire, k, got, want)
			}
			if !seq.Equal(drainStates(batched), drainStates(singles)) {
				t.Fatalf("wire %d k=%d: balancer states diverge", wire, k)
			}
			if seq.Sum(got) != k {
				t.Fatalf("wire %d k=%d: tallies sum to %d", wire, k, seq.Sum(got))
			}
		}
	}
}

// TestTraverseBatchInterleaved: batches interleaved with single tokens and
// antitokens still land on the arithmetic quiescent prediction.
func TestTraverseBatchInterleaved(t *testing.T) {
	live := fuzzNet(t)
	exits := make([]int64, live.OutWidth())
	x := make([]int64, live.InWidth())

	schedule := []struct {
		wire int
		k    int64
	}{{0, 5}, {3, 1}, {7, 12}, {0, 1}, {2, 9}, {5, 30}, {1, 2}, {7, 7}}
	for _, s := range schedule {
		live.TraverseBatchInto(s.wire, s.k, exits)
		x[s.wire] += s.k
		exits[live.Traverse(s.wire)]++ // single token chaser on the same wire
		x[s.wire]++
	}

	fresh := fuzzNet(t)
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(exits, want) {
		t.Fatalf("interleaved run %v != quiescent prediction %v for %v", exits, want, x)
	}
}

// TestTraverseBatchConcurrent: concurrent batches from many goroutines
// preserve the token sum and reach the same quiescent state as the
// equivalent single-token workload (run under -race in CI).
func TestTraverseBatchConcurrent(t *testing.T) {
	const (
		goroutines = 8
		batches    = 25
		k          = 7
	)
	live := fuzzNet(t)
	tallies := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int64, live.OutWidth())
			for b := 0; b < batches; b++ {
				live.TraverseBatchInto((g+b)%live.InWidth(), k, out)
			}
			tallies[g] = out
		}(g)
	}
	wg.Wait()

	total := make([]int64, live.OutWidth())
	for _, tl := range tallies {
		for i, c := range tl {
			total[i] += c
		}
	}
	if got, want := seq.Sum(total), int64(goroutines*batches*k); got != want {
		t.Fatalf("token sum %d, want %d", got, want)
	}

	// The quiescent state depends only on per-wire entry counts.
	x := make([]int64, live.InWidth())
	for g := 0; g < goroutines; g++ {
		for b := 0; b < batches; b++ {
			x[(g+b)%live.InWidth()] += k
		}
	}
	fresh := fuzzNet(t)
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(total, want) {
		t.Fatalf("concurrent batch tallies %v != quiescent prediction %v", total, want)
	}
}

func TestTraverseBatchPanics(t *testing.T) {
	n := fuzzNet(t)
	for name, f := range map[string]func(){
		"negative":         func() { n.TraverseBatch(0, -1) },
		"wrong-tally":      func() { n.TraverseBatchInto(0, 2, make([]int64, 1)) },
		"anti-negative":    func() { n.TraverseAntiBatch(0, -1) },
		"anti-wrong-tally": func() { n.TraverseAntiBatchInto(0, 2, make([]int64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestTraverseAntiBatchMatchesSingles: a batch of k antitokens leaves the
// network (exit tallies AND balancer states) exactly as k successive
// TraverseAnti calls do — with and without a token preload, so both the
// retraction and the negative-count regimes are covered.
func TestTraverseAntiBatchMatchesSingles(t *testing.T) {
	for _, preload := range []int64{0, 40} {
		for _, k := range []int64{0, 1, 2, 3, 5, 8, 17, 64, 1000} {
			for wire := 0; wire < 8; wire++ {
				batched := fuzzNet(t)
				singles := fuzzNet(t)
				for i := int64(0); i < preload; i++ {
					batched.Traverse(int(i) % 8)
					singles.Traverse(int(i) % 8)
				}
				got := batched.TraverseAntiBatch(wire, k)
				want := make([]int64, singles.OutWidth())
				for i := int64(0); i < k; i++ {
					want[singles.TraverseAnti(wire)]++
				}
				if !seq.Equal(got, want) {
					t.Fatalf("pre=%d wire %d k=%d: anti batch tallies %v, singles %v",
						preload, wire, k, got, want)
				}
				if !seq.Equal(drainStates(batched), drainStates(singles)) {
					t.Fatalf("pre=%d wire %d k=%d: balancer states diverge", preload, wire, k)
				}
				if seq.Sum(got) != k {
					t.Fatalf("pre=%d wire %d k=%d: tallies sum to %d", preload, wire, k, seq.Sum(got))
				}
			}
		}
	}
}

// TestTraverseAntiBatchCancelsBatch: k tokens followed by k antitokens on
// the same wire restore every balancer to its initial state, and the
// antitokens exit exactly where the tokens did (the ref [2] cancellation,
// batched on both sides).
func TestTraverseAntiBatchCancelsBatch(t *testing.T) {
	for _, k := range []int64{1, 7, 64} {
		n := fuzzNet(t)
		tokens := n.TraverseBatch(3, k)
		antis := n.TraverseAntiBatch(3, k)
		if !seq.Equal(tokens, antis) {
			t.Fatalf("k=%d: token exits %v, antitoken exits %v", k, tokens, antis)
		}
		for i := 0; i < n.Size(); i++ {
			if c := n.Node(i).Balancer().Count(); c != 0 {
				t.Fatalf("k=%d: balancer %d count %d after cancellation", k, i, c)
			}
		}
	}
}

// TestTraverseAntiBatchConcurrent: concurrent token and antitoken batches
// from many goroutines reach the same quiescent balancer states as the
// equivalent sequential workload (run under -race in CI). Exit tallies of
// tokens and antitokens need not match pairwise mid-flight, but the net
// per-wire exits must equal the arithmetic prediction for the net counts.
func TestTraverseAntiBatchConcurrent(t *testing.T) {
	const (
		goroutines = 8 // even: half inject tokens, half antitokens
		batches    = 25
		kTok       = 9
		kAnti      = 4
	)
	live := fuzzNet(t)
	tok := make([][]int64, goroutines)
	anti := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int64, live.OutWidth())
			for b := 0; b < batches; b++ {
				wire := (g + b) % live.InWidth()
				if g%2 == 0 {
					live.TraverseBatchInto(wire, kTok, out)
				} else {
					live.TraverseAntiBatchInto(wire, kAnti, out)
				}
			}
			if g%2 == 0 {
				tok[g] = out
			} else {
				anti[g] = out
			}
		}(g)
	}
	wg.Wait()

	net := make([]int64, live.OutWidth())
	for g := 0; g < goroutines; g++ {
		if g%2 == 0 {
			for i, c := range tok[g] {
				net[i] += c
			}
		} else {
			for i, c := range anti[g] {
				net[i] -= c
			}
		}
	}
	// Replay the same net entry counts sequentially on a fresh network:
	// quiescent states depend only on those counts (§2.2), for antitokens
	// included.
	fresh := fuzzNet(t)
	want := make([]int64, fresh.OutWidth())
	scratch := make([]int64, fresh.OutWidth())
	for g := 0; g < goroutines; g++ {
		for b := 0; b < batches; b++ {
			wire := (g + b) % fresh.InWidth()
			clear(scratch)
			if g%2 == 0 {
				fresh.TraverseBatchInto(wire, kTok, scratch)
				for i, c := range scratch {
					want[i] += c
				}
			} else {
				fresh.TraverseAntiBatchInto(wire, kAnti, scratch)
				for i, c := range scratch {
					want[i] -= c
				}
			}
		}
	}
	if !seq.Equal(drainStates(live), drainStates(fresh)) {
		t.Fatal("concurrent mixed batches reach different balancer states than sequential replay")
	}
	if !seq.Equal(net, want) {
		t.Fatalf("net exits %v != sequential replay %v", net, want)
	}
}
