package network

import (
	"sync"
	"testing"

	"repro/internal/seq"
)

// drainStates snapshots every balancer's net count (the full live state).
func drainStates(n *Network) []int64 {
	out := make([]int64, n.Size())
	for i := range out {
		out[i] = n.Node(i).Balancer().Count()
	}
	return out
}

// TestTraverseBatchMatchesSingles: a batch of k tokens leaves the network
// (exit tallies AND balancer states) exactly as k successive single-token
// traversals do, for every wire and a spread of batch sizes.
func TestTraverseBatchMatchesSingles(t *testing.T) {
	for _, k := range []int64{0, 1, 2, 3, 5, 8, 17, 64, 1000} {
		for wire := 0; wire < 8; wire++ {
			batched := fuzzNet(t)
			singles := fuzzNet(t)
			got := batched.TraverseBatch(wire, k)
			want := make([]int64, singles.OutWidth())
			for i := int64(0); i < k; i++ {
				want[singles.Traverse(wire)]++
			}
			if !seq.Equal(got, want) {
				t.Fatalf("wire %d k=%d: batch tallies %v, singles %v", wire, k, got, want)
			}
			if !seq.Equal(drainStates(batched), drainStates(singles)) {
				t.Fatalf("wire %d k=%d: balancer states diverge", wire, k)
			}
			if seq.Sum(got) != k {
				t.Fatalf("wire %d k=%d: tallies sum to %d", wire, k, seq.Sum(got))
			}
		}
	}
}

// TestTraverseBatchInterleaved: batches interleaved with single tokens and
// antitokens still land on the arithmetic quiescent prediction.
func TestTraverseBatchInterleaved(t *testing.T) {
	live := fuzzNet(t)
	exits := make([]int64, live.OutWidth())
	x := make([]int64, live.InWidth())

	schedule := []struct {
		wire int
		k    int64
	}{{0, 5}, {3, 1}, {7, 12}, {0, 1}, {2, 9}, {5, 30}, {1, 2}, {7, 7}}
	for _, s := range schedule {
		live.TraverseBatchInto(s.wire, s.k, exits)
		x[s.wire] += s.k
		exits[live.Traverse(s.wire)]++ // single token chaser on the same wire
		x[s.wire]++
	}

	fresh := fuzzNet(t)
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(exits, want) {
		t.Fatalf("interleaved run %v != quiescent prediction %v for %v", exits, want, x)
	}
}

// TestTraverseBatchConcurrent: concurrent batches from many goroutines
// preserve the token sum and reach the same quiescent state as the
// equivalent single-token workload (run under -race in CI).
func TestTraverseBatchConcurrent(t *testing.T) {
	const (
		goroutines = 8
		batches    = 25
		k          = 7
	)
	live := fuzzNet(t)
	tallies := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int64, live.OutWidth())
			for b := 0; b < batches; b++ {
				live.TraverseBatchInto((g+b)%live.InWidth(), k, out)
			}
			tallies[g] = out
		}(g)
	}
	wg.Wait()

	total := make([]int64, live.OutWidth())
	for _, tl := range tallies {
		for i, c := range tl {
			total[i] += c
		}
	}
	if got, want := seq.Sum(total), int64(goroutines*batches*k); got != want {
		t.Fatalf("token sum %d, want %d", got, want)
	}

	// The quiescent state depends only on per-wire entry counts.
	x := make([]int64, live.InWidth())
	for g := 0; g < goroutines; g++ {
		for b := 0; b < batches; b++ {
			x[(g+b)%live.InWidth()] += k
		}
	}
	fresh := fuzzNet(t)
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(total, want) {
		t.Fatalf("concurrent batch tallies %v != quiescent prediction %v", total, want)
	}
}

func TestTraverseBatchPanics(t *testing.T) {
	n := fuzzNet(t)
	for name, f := range map[string]func(){
		"negative":    func() { n.TraverseBatch(0, -1) },
		"wrong-tally": func() { n.TraverseBatchInto(0, 2, make([]int64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
