// Package network provides the balancing-network substrate of the paper
// (§1.1, §2.2): acyclic networks of (p,q)-balancers with ordered wires,
// built through a Builder whose API mirrors the paper's "directly-connected
// sequences" style, supporting
//
//   - lock-free concurrent token (and antitoken) traversal,
//   - O(#balancers) quiescent-state evaluation from input token counts,
//   - depth / layer decomposition (§2.2),
//   - structural analysis and verification (counting, smoothing,
//     difference-merging behaviour in quiescent states),
//   - stall-instrumented traversal for measured contention.
//
// Networks are immutable after Builder.Finalize except for balancer states.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
)

// External marks a port endpoint on the network boundary rather than on a
// balancer node.
const External = int32(-1)

// endpoint identifies where a wire leads: either input port `port` of node
// `node`, or (node == External) network output wire `port`. Symmetrically
// for sources: either output port of a node or a network input wire.
type endpoint struct {
	node int32
	port int32
}

// Node is one balancer inside a network.
type Node struct {
	bal   *balancer.PQ
	out   []endpoint // destination of each output port
	in    []endpoint // source of each input port
	depth int32      // 1-based layer index (§2.2)
	id    int32
}

// In returns the node's input width.
func (n *Node) In() int { return n.bal.In() }

// Out returns the node's output width.
func (n *Node) Out() int { return n.bal.Out() }

// Depth returns the node's 1-based depth (layer index).
func (n *Node) Depth() int { return int(n.depth) }

// ID returns the node's index within its network.
func (n *Node) ID() int { return int(n.id) }

// Balancer exposes the node's balancer state machine.
func (n *Node) Balancer() *balancer.PQ { return n.bal }

// Network is a finalized balancing network.
type Network struct {
	name     string
	inWidth  int
	outWidth int
	nodes    []Node
	inputs   []endpoint // per input wire: the consumer it feeds
	sources  []endpoint // per output wire: the producer feeding it
	depth    int
	layers   [][]int32 // node ids grouped by depth, 0-indexed by depth-1

	occ    []atomic.Int64 // per-node occupancy, for instrumented traversal
	labels []string       // optional per-node block labels

	batchPool sync.Pool // *batchScratch, reused across TraverseBatch calls
}

// Name returns the network's descriptive name.
func (n *Network) Name() string { return n.name }

// InWidth returns the number of network input wires (w in the paper).
func (n *Network) InWidth() int { return n.inWidth }

// OutWidth returns the number of network output wires (t in the paper).
func (n *Network) OutWidth() int { return n.outWidth }

// Depth returns the network depth: the maximum number of balancers on any
// input-to-output path (§2.2). A balancer-free network has depth 0.
func (n *Network) Depth() int { return n.depth }

// Size returns the number of balancers.
func (n *Network) Size() int { return len(n.nodes) }

// Node returns balancer i.
func (n *Network) Node(i int) *Node { return &n.nodes[i] }

// Layers returns the node ids of each layer, layer 1 first. The slices are
// shared; callers must not modify them.
func (n *Network) Layers() [][]int32 { return n.layers }

// Reset restores every balancer to its initial state. Not safe to call
// concurrently with traversals.
func (n *Network) Reset() {
	for i := range n.nodes {
		n.nodes[i].bal.Reset()
	}
}

// Traverse shepherds one token from input wire `wire` through the network
// and returns the output wire it exits on. Safe for concurrent use by any
// number of goroutines; each balancer crossing is a single atomic add.
func (n *Network) Traverse(wire int) int {
	ep := n.inputs[wire]
	for ep.node != External {
		nd := &n.nodes[ep.node]
		ep = nd.out[nd.bal.Step()]
	}
	return int(ep.port)
}

// TraverseAnti shepherds one antitoken (Fetch&Decrement traffic, ref [2])
// from input wire `wire` and returns the output wire it exits on.
func (n *Network) TraverseAnti(wire int) int {
	ep := n.inputs[wire]
	for ep.node != External {
		nd := &n.nodes[ep.node]
		ep = nd.out[nd.bal.StepAnti()]
	}
	return int(ep.port)
}

// TraverseStalls is Traverse with measured-contention instrumentation: for
// each balancer crossing it adds to *stalls the number of other tokens
// concurrently present at that balancer (the §1.2 stall measure, observed
// rather than adversarially scheduled).
func (n *Network) TraverseStalls(wire int, stalls *int64) int {
	ep := n.inputs[wire]
	for ep.node != External {
		nd := &n.nodes[ep.node]
		waiting := n.occ[ep.node].Add(1) - 1
		if waiting > 0 {
			atomic.AddInt64(stalls, waiting)
		}
		port := nd.bal.Step()
		n.occ[ep.node].Add(-1)
		ep = nd.out[port]
	}
	return int(ep.port)
}

// Quiescent computes the network's output sequence in the quiescent state
// reached after x[i] tokens have entered on each input wire i (§2.2: the
// output sequence depends only on these counts). It does not disturb the
// live balancer states; initial balancer states are honoured.
func (n *Network) Quiescent(x []int64) ([]int64, error) {
	if len(x) != n.inWidth {
		return nil, fmt.Errorf("network %s: input length %d, want %d", n.name, len(x), n.inWidth)
	}
	for i, v := range x {
		if v < 0 {
			return nil, fmt.Errorf("network %s: negative token count %d on wire %d", n.name, v, i)
		}
	}
	y := make([]int64, n.outWidth)
	in := make([]int64, len(n.nodes)) // accumulated input count per node
	route := func(ep endpoint, c int64) {
		if ep.node == External {
			y[ep.port] += c
		} else {
			in[ep.node] += c
		}
	}
	for i, v := range x {
		route(n.inputs[i], v)
	}
	// Nodes were created in topological order by the Builder.
	for i := range n.nodes {
		nd := &n.nodes[i]
		counts := balancer.Distribute(nd.bal.Init(), in[i], nd.Out())
		for p, c := range counts {
			if c != 0 {
				route(nd.out[p], c)
			}
		}
	}
	return y, nil
}

// TraceStep is a single balancer crossing in a token's path.
type TraceStep struct {
	Node int // balancer id
	Port int // output port taken
}

// TraverseObserve is Traverse with an observation callback invoked for
// every balancer crossing: the node id, the token's sequence index k at
// that balancer (it was the k-th token the balancer processed), and the
// exit port. The callback runs on the traversing goroutine; execution
// tracing builds on this hook.
func (n *Network) TraverseObserve(wire int, obs func(node int, k int64, port int)) int {
	ep := n.inputs[wire]
	for ep.node != External {
		nd := &n.nodes[ep.node]
		k, port := nd.bal.StepK()
		obs(int(ep.node), k, port)
		ep = nd.out[port]
	}
	return int(ep.port)
}

// TraverseTrace is Traverse that also records the token's full path. It is
// intended for tests and debugging, not hot paths.
func (n *Network) TraverseTrace(wire int) (int, []TraceStep) {
	var path []TraceStep
	ep := n.inputs[wire]
	for ep.node != External {
		nd := &n.nodes[ep.node]
		p := nd.bal.Step()
		path = append(path, TraceStep{Node: int(ep.node), Port: p})
		ep = nd.out[p]
	}
	return int(ep.port), path
}

// Wiring inspection -----------------------------------------------------

// InputDest returns, for network input wire i, the node id and input port
// it feeds; node == -1 means it connects straight to output wire port.
func (n *Network) InputDest(i int) (node, port int) {
	ep := n.inputs[i]
	return int(ep.node), int(ep.port)
}

// OutputSource returns, for network output wire i, the node id and output
// port feeding it; node == -1 means it is fed straight from input wire port.
func (n *Network) OutputSource(i int) (node, port int) {
	ep := n.sources[i]
	return int(ep.node), int(ep.port)
}

// Dest returns where output port p of node id leads: a (node, inPort) pair,
// or node == -1 and the network output wire index.
func (n *Network) Dest(id, p int) (node, port int) {
	ep := n.nodes[id].out[p]
	return int(ep.node), int(ep.port)
}

// Source returns what feeds input port p of node id: a (node, outPort)
// pair, or node == -1 and the network input wire index.
func (n *Network) Source(id, p int) (node, port int) {
	ep := n.nodes[id].in[p]
	return int(ep.node), int(ep.port)
}

// Label returns the block label assigned to node id ("" if none).
func (n *Network) Label(id int) string {
	if n.labels == nil {
		return ""
	}
	return n.labels[id]
}

// SetLabel assigns a block label (e.g. "Na", "Nb", "Nc") to node id.
func (n *Network) SetLabel(id int, label string) {
	if n.labels == nil {
		n.labels = make([]string, len(n.nodes))
	}
	n.labels[id] = label
}

// RandomizeInitialStates rebuilds every balancer with a uniformly random
// initial state drawn from rng (the Section 7 randomization ablation).
// Not safe to call concurrently with traversals.
func (n *Network) RandomizeInitialStates(rng *rand.Rand) {
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.bal = balancer.NewInit(nd.In(), nd.Out(), rng.Int63n(int64(nd.Out())))
	}
}

// Builder ----------------------------------------------------------------

// Port is a dangling wire end produced by the Builder: either a network
// input wire or an output port of an already-created balancer. Each Port
// must be consumed exactly once (by Balancer or Finalize).
type Port struct {
	src endpoint
	b   *Builder
	seq int64 // creation sequence, for error messages
}

// Builder incrementally constructs a balancing network. Balancers must be
// created in dependency order (a balancer can only consume already-existing
// ports), which makes creation order a topological order.
type Builder struct {
	name     string
	inWidth  int
	nodes    []Node
	inputs   []endpoint
	consumed map[endpoint]bool
	seq      int64
	err      error
}

// NewBuilder starts a network with inWidth input wires.
func NewBuilder(name string, inWidth int) (*Builder, []Port) {
	b := &Builder{
		name:     name,
		inWidth:  inWidth,
		inputs:   make([]endpoint, inWidth),
		consumed: make(map[endpoint]bool),
	}
	if inWidth < 1 {
		b.fail(fmt.Errorf("network %s: input width %d < 1", name, inWidth))
	}
	ports := make([]Port, inWidth)
	for i := range ports {
		ports[i] = Port{src: endpoint{node: External, port: int32(i)}, b: b}
	}
	return b, ports
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Balancer adds a (len(in), outWidth)-balancer consuming the given ports in
// order, and returns its output ports in order. A nil return indicates a
// construction error (recorded; surfaced by Finalize).
func (b *Builder) Balancer(in []Port, outWidth int) []Port {
	return b.BalancerInit(in, outWidth, 0)
}

// BalancerInit is Balancer with an explicit initial state s0.
func (b *Builder) BalancerInit(in []Port, outWidth int, s0 int64) []Port {
	if b.err != nil {
		return nil
	}
	if len(in) < 1 || outWidth < 1 {
		b.fail(fmt.Errorf("network %s: balancer widths (%d,%d) invalid", b.name, len(in), outWidth))
		return nil
	}
	id := int32(len(b.nodes))
	node := Node{
		bal: balancer.NewInit(len(in), outWidth, s0),
		out: make([]endpoint, outWidth),
		in:  make([]endpoint, len(in)),
		id:  id,
	}
	depth := int32(0)
	for p, port := range in {
		if !b.consume(port, endpoint{node: id, port: int32(p)}) {
			return nil
		}
		node.in[p] = port.src
		if port.src.node != External {
			if d := b.nodes[port.src.node].depth; d > depth {
				depth = d
			}
		}
	}
	node.depth = depth + 1
	b.nodes = append(b.nodes, node)
	outs := make([]Port, outWidth)
	for p := range outs {
		b.seq++
		outs[p] = Port{src: endpoint{node: id, port: int32(p)}, b: b, seq: b.seq}
	}
	return outs
}

// consume marks a port used and records its wiring; false on error.
func (b *Builder) consume(p Port, dest endpoint) bool {
	if b.consumed == nil {
		b.fail(ErrSpent)
		return false
	}
	if p.b != b {
		b.fail(fmt.Errorf("network %s: port from a different builder", b.name))
		return false
	}
	if b.consumed[p.src] {
		b.fail(fmt.Errorf("network %s: port %v consumed twice", b.name, p.src))
		return false
	}
	b.consumed[p.src] = true
	if p.src.node == External {
		b.inputs[p.src.port] = dest
	} else {
		b.nodes[p.src.node].out[p.src.port] = dest
	}
	return true
}

// Finalize declares the given ports to be the network's output wires, in
// order, validates that every port in the network was consumed exactly
// once, and returns the immutable Network.
func (b *Builder) Finalize(outputs []Port) (*Network, error) {
	if b.err == nil {
		for i, p := range outputs {
			b.consume(p, endpoint{node: External, port: int32(i)})
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	// Completeness: every node output port and every network input must be
	// consumed.
	for i := 0; i < b.inWidth; i++ {
		if !b.consumed[endpoint{node: External, port: int32(i)}] {
			return nil, fmt.Errorf("network %s: input wire %d left dangling", b.name, i)
		}
	}
	for id := range b.nodes {
		for p := 0; p < b.nodes[id].Out(); p++ {
			if !b.consumed[endpoint{node: int32(id), port: int32(p)}] {
				return nil, fmt.Errorf("network %s: balancer %d output %d left dangling", b.name, id, p)
			}
		}
	}
	n := &Network{
		name:     b.name,
		inWidth:  b.inWidth,
		outWidth: len(outputs),
		nodes:    b.nodes,
		inputs:   b.inputs,
		occ:      make([]atomic.Int64, len(b.nodes)),
	}
	n.sources = make([]endpoint, len(outputs))
	for i, p := range outputs {
		n.sources[i] = p.src
	}
	for i := range n.nodes {
		if d := int(n.nodes[i].depth); d > n.depth {
			n.depth = d
		}
	}
	n.layers = make([][]int32, n.depth)
	for i := range n.nodes {
		d := n.nodes[i].depth - 1
		n.layers[d] = append(n.layers[d], int32(i))
	}
	b.consumed = nil // builder is spent
	return n, nil
}

// ErrSpent is returned when a Builder is reused after Finalize.
var ErrSpent = errors.New("network: builder already finalized")
