package network

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestCloneIndependentState(t *testing.T) {
	n := buildLadder4(t)
	n.Traverse(0)
	n.Traverse(0)
	c := n.Clone()
	// Clone starts fresh: first token through b0 exits port 0.
	if got := c.Traverse(0); got != 0 {
		t.Fatalf("clone first traverse = %d, want 0", got)
	}
	// Original state unaffected by the clone's traffic.
	if got := n.Traverse(0); got != 0 {
		t.Fatalf("original third traverse = %d, want 0", got)
	}
	if c.Depth() != n.Depth() || c.Size() != n.Size() || c.InWidth() != n.InWidth() {
		t.Fatal("clone geometry differs")
	}
}

func TestCloneKeepsInitialStates(t *testing.T) {
	n := buildSingle(t, 4)
	n.RandomizeInitialStates(rand.New(rand.NewSource(5)))
	want := n.Node(0).Balancer().Init()
	c := n.Clone()
	if got := c.Node(0).Balancer().Init(); got != want {
		t.Fatalf("clone init = %d, want %d", got, want)
	}
}

func TestCloneKeepsLabels(t *testing.T) {
	n := buildLadder4(t)
	n.SetLabel(1, "Na")
	c := n.Clone()
	if c.Label(1) != "Na" {
		t.Fatal("labels not cloned")
	}
}

func TestCloneBehaviourIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, err := RandomCascadeProbe("probe", 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	for trial := 0; trial < 100; trial++ {
		x := make([]int64, 8)
		for i := range x {
			x[i] = rng.Int63n(30)
		}
		a, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(a, b) {
			t.Fatalf("clone diverges on %v: %v vs %v", x, a, b)
		}
	}
}

func TestCascadeWidthMismatch(t *testing.T) {
	a := buildLadder4(t)
	b := buildSingle(t, 2) // in width 2 != out width 4
	if _, err := Cascade("bad", a, b); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := Cascade("empty"); err == nil {
		t.Fatal("empty cascade accepted")
	}
}

func TestCascadeEquivalentToSequentialEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, err := RandomCascadeProbe("a", 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCascadeProbe("b", 8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cas, err := Cascade("a;b", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cas.Depth() != a.Depth()+b.Depth() {
		t.Fatalf("cascade depth %d, want %d", cas.Depth(), a.Depth()+b.Depth())
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]int64, 8)
		for i := range x {
			x[i] = rng.Int63n(25)
		}
		mid, err := a.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := b.Quiescent(mid)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cas.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(got, want) {
			t.Fatalf("cascade(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMirrorPermutesInputs(t *testing.T) {
	n := buildLadder4(t)
	pi := []int{2, 0, 3, 1}
	m, err := Mirror(n, pi)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		x := make([]int64, 4)
		for i := range x {
			x[i] = rng.Int63n(20)
		}
		// Mirror input wire i plays original wire pi[i]: so feeding x to
		// the mirror equals feeding y to the original with y[pi[i]]=x[i].
		y := make([]int64, 4)
		for i := range x {
			y[pi[i]] = x[i]
		}
		got, err := m.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := n.Quiescent(y)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(got, want) {
			t.Fatalf("mirror mismatch on %v", x)
		}
	}
}

func TestMirrorRejectsBadPermutation(t *testing.T) {
	n := buildLadder4(t)
	if _, err := Mirror(n, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Mirror(n, []int{0, 0, 1, 2}); err == nil {
		t.Fatal("non-bijection accepted")
	}
}

func TestRandomCascadeProbeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := RandomCascadeProbe("x", 3, 1, rng); err == nil {
		t.Fatal("odd width accepted")
	}
}
