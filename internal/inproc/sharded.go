package inproc

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/xport"
)

// ShardedCluster composes S independent in-memory deployments the way
// the socket transports do: each stripe is a full Cluster (its own
// shards, balancer states and exit cells), a caller is routed by the
// shared shard.StripeOf pid hash, and stripe s maps its local values v
// to the global residue class v·S + s.
//
// The sub-deployments may share one topology object: a Cluster only
// reads it; the mutable balancer state lives on the stripe's shards.
type ShardedCluster struct {
	clusters []*Cluster
	n        int64
	name     string
}

// NewShardedCluster wires S independent deployments into one sharded
// fleet; clusters[i] serves stripe i.
func NewShardedCluster(clusters []*Cluster) (*ShardedCluster, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("inproc: NewShardedCluster with no clusters")
	}
	name := clusters[0].net.Name()
	for i, c := range clusters {
		if c == nil {
			return nil, fmt.Errorf("inproc: NewShardedCluster cluster %d is nil", i)
		}
		if c.net.InWidth() != clusters[0].net.InWidth() ||
			c.net.OutWidth() != clusters[0].net.OutWidth() {
			return nil, fmt.Errorf("inproc: NewShardedCluster cluster %d shape differs", i)
		}
	}
	return &ShardedCluster{
		clusters: clusters,
		n:        int64(len(clusters)),
		name:     fmt.Sprintf("inprocshard%d:%s", len(clusters), name),
	}, nil
}

// StartCluster builds one in-memory deployment of topo partitioned
// across `shards` shards and returns the client cluster plus a stop
// function closing every shard — the same harness shape as the socket
// transports, so conformance fixtures swap transports freely.
func StartCluster(topo *network.Network, shards int) (*Cluster, func(), error) {
	return StartClusterConfig(topo, shards, ShardConfig{})
}

// StartClusterConfig is StartCluster with per-deployment shard tuning
// (dedup-window sizing).
func StartClusterConfig(topo *network.Network, shards int, cfg ShardConfig) (*Cluster, func(), error) {
	servers := make([]*Shard, shards)
	for i := 0; i < shards; i++ {
		servers[i] = newShard(topo, i, shards, cfg)
	}
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return NewCluster(topo, servers), stop, nil
}

// StartShardedCluster builds S independent deployments of topo, each
// partitioned across `shards` shards, and returns the fleet plus a stop
// function closing every shard.
func StartShardedCluster(topo *network.Network, deployments, shards int) (*ShardedCluster, func(), error) {
	return StartShardedClusterConfig(topo, deployments, shards, ShardConfig{})
}

// StartShardedClusterConfig is StartShardedCluster with per-deployment
// shard tuning threaded to every shard of every stripe.
func StartShardedClusterConfig(topo *network.Network, deployments, shards int, cfg ShardConfig) (*ShardedCluster, func(), error) {
	var stops []func()
	stop := func() {
		for _, f := range stops {
			f()
		}
	}
	clusters := make([]*Cluster, deployments)
	for d := 0; d < deployments; d++ {
		c, cstop, err := StartClusterConfig(topo, shards, cfg)
		if err != nil {
			stop()
			return nil, nil, err
		}
		stops = append(stops, cstop)
		clusters[d] = c
	}
	sc, err := NewShardedCluster(clusters)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return sc, stop, nil
}

// Shards returns the stripe count S.
func (sc *ShardedCluster) Shards() int { return int(sc.n) }

// Cluster returns stripe i's deployment.
func (sc *ShardedCluster) Cluster(i int) *Cluster { return sc.clusters[i] }

// Name identifies the fleet in benchmark tables.
func (sc *ShardedCluster) Name() string { return sc.name }

// NewCounter builds the fleet-wide counter: one pooled coalescing
// Counter per stripe (width <= 0 defaults per stripe to its input
// width), composed by the shared xport.ShardedCounter striping core.
func (sc *ShardedCluster) NewCounter(poolWidth int) *ShardedCounter {
	ctrs := make([]*Counter, len(sc.clusters))
	for i, c := range sc.clusters {
		ctrs[i] = c.NewCounterPool(poolWidth)
	}
	return xport.NewShardedCounter(sc.name, ctrs)
}

// ShardedCounter is the fleet-wide client: pid-striped routing over S
// per-stripe pooled coalescing Counters — the shared xport core.
type ShardedCounter = xport.ShardedCounter

// StripeStatus is one stripe's slot in a sharded counter's /status.
type StripeStatus = xport.StripeStatus

// ShardedStatus is the fleet-wide /status document.
type ShardedStatus = xport.ShardedStatus
