// Package inproc deploys a counting network across in-memory shards —
// the third transport behind the xport seam, and the proof that the
// seam is real: there is no socket anywhere in this package, yet the
// full client stack (coalescing Counter, health-probed session pool,
// exactly-once seq-tape retries, pid striping, control-plane sources)
// runs over it unchanged, because all of it lives in internal/xport and
// this package only supplies the link.
//
// A shard owns the same state as a tcpnet/udpnet shard (balancers,
// exit cells, per-client dedup windows) and serves the same frame
// semantics; an exchange is a function call instead of a round trip.
// That makes the transport ideal for the conformance suite, soak
// harnesses and multicore benches: deterministic, dependency-free, and
// with injectable Faults that lose calls or replies at exact frame
// boundaries — the in-memory analogue of cut connections and dropped
// datagrams, exercising the identical retry/replay machinery.
package inproc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
	"repro/internal/xport"
)

// ErrClosed is returned by Counter operations once Close has been
// called. It is the shared xport sentinel, so errors.Is matches across
// transports.
var ErrClosed = xport.ErrClosed

// errShardClosed is what an exchange against a closed shard returns —
// the in-memory analogue of a connection refused.
var errShardClosed = errors.New("inproc: shard closed")

// errInjected is the error a Faults-injected loss surfaces to the
// session — the analogue of a cut connection mid-frame.
var errInjected = errors.New("inproc: injected fault")

// Default retry budget the Cluster link advertises: like TCP, a failed
// in-memory exchange fails instantly, so the flight-level window is
// short.
const (
	DefaultRetryAttempts = xport.DefaultRetryAttempts
	DefaultRetryBudget   = 2 * time.Second
)

// DefaultRetryBackoff paces the pause between flight retries — the
// shared xport schedule.
var DefaultRetryBackoff = xport.DefaultRetryBackoff

// ShardConfig tunes a shard; the zero value is the production default
// (wire dedup bounds).
type ShardConfig struct {
	// Dedup sizes the per-client exactly-once windows; zero fields take
	// the wire defaults.
	Dedup wire.DedupConfig
}

// Shard is one in-memory balancer server: it owns the balancers and
// counter cells assigned to it and serves the same STEP/CELL/STEPN/
// CELLN/READ semantics as a tcpnet shard, deduplicating seq-numbered
// frames per client. Exchanges are direct calls; the balancer and cell
// state is safe for concurrent sessions exactly like the socket
// transports' shared server state.
type Shard struct {
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	dedup *wire.Dedup

	closed atomic.Bool

	// Control-plane state, mirroring the socket shards: the shard's
	// slot in the partition, its registry of read-side metric views,
	// and atomics the exchange path bumps.
	index     int
	shards    int
	netName   string
	reg       *ctlplane.Registry
	frames    atomic.Int64
	sessions  atomic.Int64 // currently bound sessions (the conns gauge)
	sessTotal atomic.Int64
}

// newShard builds the shard owning every node and cell ≡ index (mod
// shards); cells are initialized to their wire index per §1.1.
func newShard(topo *network.Network, index, shards int, cfg ShardConfig) *Shard {
	s := &Shard{
		bals:    make(map[int32]*balancer.PQ),
		cells:   make(map[int32]*atomic.Int64),
		dedup:   wire.NewDedup(cfg.Dedup),
		index:   index,
		shards:  shards,
		netName: topo.Name(),
		reg:     ctlplane.NewRegistry(),
	}
	labels := []ctlplane.Label{{Key: "transport", Value: "inproc"}, {Key: "shard", Value: strconv.Itoa(index)}}
	s.reg.Counter(wire.MetricShardFrames, wire.HelpShardFrames, s.frames.Load, labels...)
	s.reg.Gauge(wire.MetricShardConnsOpen, wire.HelpShardConnsOpen, s.sessions.Load, labels...)
	s.reg.Counter(wire.MetricShardConns, wire.HelpShardConns, s.sessTotal.Load, labels...)
	s.dedup.RegisterMetrics(s.reg, labels...)
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for w := 0; w < topo.OutWidth(); w++ {
		if w%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(w))
			s.cells[int32(w)] = c
		}
	}
	return s
}

// Addr returns the shard's synthetic endpoint name, for /status parity
// with the socket transports.
func (s *Shard) Addr() string {
	return fmt.Sprintf("inproc://%s/%d", s.netName, s.index)
}

// Close stops the shard: every subsequent exchange fails (and idle
// sessions bound to it probe unhealthy). Idempotent.
func (s *Shard) Close() { s.closed.Store(true) }

// ShardStatus is a shard's /status document.
type ShardStatus struct {
	Transport string `json:"transport"`
	Addr      string `json:"addr"`
	Shard     int    `json:"shard"`
	Shards    int    `json:"shards"`
	Network   string `json:"network"`
	Balancers int    `json:"balancers"`
	Cells     int    `json:"cells"`
	Sessions  int    `json:"sessions"` // client sessions currently bound
}

// Health implements ctlplane.Source: the shard is live until Close and
// quiescent while no session is bound.
func (s *Shard) Health() ctlplane.Health {
	if s.closed.Load() {
		return ctlplane.Health{Detail: "closed"}
	}
	open := s.sessions.Load()
	return ctlplane.Health{
		Live:      true,
		Quiescent: open == 0,
		Detail:    fmt.Sprintf("%d bound sessions", open),
	}
}

// Status implements ctlplane.Source with the shard's topology slot.
func (s *Shard) Status() any {
	return ShardStatus{
		Transport: "inproc",
		Addr:      s.Addr(),
		Shard:     s.index,
		Shards:    s.shards,
		Network:   s.netName,
		Balancers: len(s.bals),
		Cells:     len(s.cells),
		Sessions:  int(s.sessions.Load()),
	}
}

// Gather implements ctlplane.Source, evaluating the shard's registered
// metric views.
func (s *Shard) Gather() []ctlplane.Sample { return s.reg.Gather() }

// apply executes one frame against the shard's balancer and cell state;
// ok=false is a protocol violation (unowned id, empty batch). The
// semantics are identical to the socket shards' apply — including the
// CELL id packing id = wire | stride<<16.
func (s *Shard) apply(f *wire.Frame) (val int64, ok bool) {
	switch f.Op {
	case wire.OpStep, wire.OpStep2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		return int64(b.Step()), true
	case wire.OpStepN, wire.OpStepN2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		if f.N > 0 {
			return b.StepN(f.N), true
		}
		return b.StepAntiN(-f.N), true
	case wire.OpRead:
		c, ok := s.cells[f.ID]
		if !ok {
			return 0, false
		}
		return c.Load(), true
	case wire.OpCell, wire.OpCell2, wire.OpCellN, wire.OpCellN2:
		cw := f.ID & 0xffff
		stride := int64(f.ID >> 16)
		c, ok := s.cells[cw]
		if !ok {
			return 0, false
		}
		if f.Op == wire.OpCell || f.Op == wire.OpCell2 {
			return c.Add(stride) - stride, true
		}
		return c.Add(stride * f.N), true
	}
	return 0, false
}

// serve handles one frame under the session's dedup binding: mutating
// frames go through the client's exactly-once window (an
// already-applied sequence is answered from the record instead of
// re-executed), READ applies directly.
func (s *Shard) serve(cl *wire.DedupEntry, f *wire.Frame) (int64, error) {
	if s.closed.Load() {
		return 0, errShardClosed
	}
	s.frames.Add(1)
	switch f.Op {
	case wire.OpStepN, wire.OpCellN, wire.OpStepN2, wire.OpCellN2:
		if f.N == 0 || f.N == math.MinInt64 {
			return 0, fmt.Errorf("inproc: protocol violation: count %d", f.N)
		}
	}
	var val int64
	var ok bool
	switch f.Op {
	case wire.OpStep2, wire.OpCell2, wire.OpStepN2, wire.OpCellN2:
		val, ok = cl.Do(f.Seq, func() (int64, bool) { return s.apply(f) })
	default:
		val, ok = s.apply(f)
	}
	if !ok {
		return 0, fmt.Errorf("inproc: protocol violation: op %d id %d", f.Op, f.ID)
	}
	return val, nil
}

// Faults injects loss into the in-memory link, the analogue of
// udpnet.Faults for a transport with no packets: probabilities are
// evaluated per exchange under a seeded deterministic source.
type Faults struct {
	// CallLoss is the probability an exchange is lost BEFORE the shard
	// applies it (a request that never arrived): the frame has no
	// effect and the session sees an error.
	CallLoss float64
	// ReplyLoss is the probability an exchange is lost AFTER the shard
	// applied it (a reply that never arrived): the mutation landed but
	// the session sees an error — the exactly-once crunch case, since
	// the retry MUST be replayed, not re-executed.
	ReplyLoss float64
	// Seed seeds the fault source; runs with the same seed and
	// schedule draw the same losses.
	Seed int64
}

// Cluster is a client-side view of an in-memory deployment: the
// topology plus its shards. It implements xport.Link, so the shared
// Counter/pool/retry/striping stack runs over it unchanged.
type Cluster struct {
	net    *network.Network
	shards []*Shard

	fmu    sync.Mutex
	faults Faults
	rng    *rand.Rand

	// loseReplies is the deterministic fault arm: the next n mutating
	// exchanges apply server-side but report failure.
	loseReplies atomic.Int64
}

// NewCluster wires a topology to in-memory shards (shard i owns nodes
// and cells ≡ i mod len(shards)).
func NewCluster(n *network.Network, shards []*Shard) *Cluster {
	return &Cluster{net: n, shards: shards}
}

// Shard returns the i-th shard of the deployment — the control plane
// scrapes its registry and health the way it scrapes a socket shard's.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// SetFaults installs probabilistic call/reply loss on every subsequent
// exchange (the zero value clears). Safe to call while sessions run.
func (c *Cluster) SetFaults(f Faults) {
	c.fmu.Lock()
	c.faults = f
	if f.CallLoss > 0 || f.ReplyLoss > 0 {
		c.rng = rand.New(rand.NewSource(f.Seed))
	} else {
		c.rng = nil
	}
	c.fmu.Unlock()
}

// LoseReplies arms the deterministic fault: the next n mutating
// exchanges are applied by their shard but reported lost to the
// session, forcing the flight onto its exactly-once retry path at an
// exact frame boundary.
func (c *Cluster) LoseReplies(n int64) { c.loseReplies.Add(n) }

// inject decides whether this exchange is lost, and at which side.
// applied=true means the frame must still reach the shard (reply
// loss); applied=false means it must not (call loss).
func (c *Cluster) inject(mutating bool) (lose, applied bool) {
	if mutating {
		for {
			n := c.loseReplies.Load()
			if n <= 0 {
				break
			}
			if c.loseReplies.CompareAndSwap(n, n-1) {
				return true, true
			}
		}
	}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if c.rng == nil {
		return false, false
	}
	if c.faults.CallLoss > 0 && c.rng.Float64() < c.faults.CallLoss {
		return true, false
	}
	if c.faults.ReplyLoss > 0 && c.rng.Float64() < c.faults.ReplyLoss {
		return true, true
	}
	return false, false
}

// Hops returns the number of exchanges one single-token Inc costs.
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// Transport implements xport.Link: the metrics label and /status
// discriminator.
func (c *Cluster) Transport() string { return "inproc" }

// Addrs implements xport.Link with the shards' synthetic endpoints.
func (c *Cluster) Addrs() []string {
	addrs := make([]string, len(c.shards))
	for i, s := range c.shards {
		addrs[i] = s.Addr()
	}
	return addrs
}

// InWidth implements xport.Link with the topology's input width.
func (c *Cluster) InWidth() int { return c.net.InWidth() }

// OutWidth implements xport.Link with the topology's output width.
func (c *Cluster) OutWidth() int { return c.net.OutWidth() }

// RetryBudget implements xport.Link: in-memory exchanges fail
// instantly, so the flight-level retry window is short, like TCP's.
func (c *Cluster) RetryBudget() time.Duration { return DefaultRetryBudget }

// Dial implements xport.Link: a session bound (and pinned) to the given
// client id's dedup window on every shard.
func (c *Cluster) Dial(client uint64) (xport.Session, error) {
	return c.newSession(client)
}

// NewSession binds a standalone session under a fresh client id. Unlike
// the socket transports there is no v1 mode: binding a dedup window is
// a map entry, not a connection, so every session speaks the
// seq-numbered protocol.
func (c *Cluster) NewSession() (*Session, error) {
	return c.newSession(wire.NextClientID())
}

func (c *Cluster) newSession(client uint64) (*Session, error) {
	s := &Session{
		c:       c,
		client:  client,
		entries: make([]*wire.DedupEntry, len(c.shards)),
		walk:    xport.NewWalk(c.net, len(c.shards)),
	}
	for i, sh := range c.shards {
		if sh.closed.Load() {
			s.release(i)
			return nil, fmt.Errorf("inproc: dial shard %d: %w", i, errShardClosed)
		}
		s.entries[i] = sh.dedup.Bind(client)
		sh.sessions.Add(1)
		sh.sessTotal.Add(1)
	}
	return s, nil
}

// Session is a single-goroutine client: one pinned dedup binding per
// shard (the analogue of tcpnet's one connection per shard — the
// binding is what keeps the client's exactly-once windows safe from
// LRU eviction while the session lives). The protocol logic lives in
// the shared xport.Walk; this type supplies only the in-memory link.
type Session struct {
	c       *Cluster
	client  uint64
	entries []*wire.DedupEntry
	rpcs    atomic.Int64
	seqs    atomic.Uint64
	tape    *wire.SeqTape
	walk    *xport.Walk
	closed  bool
}

// release unbinds the first n shard entries (all of them for n =
// len(entries)).
func (s *Session) release(n int) {
	for i := 0; i < n; i++ {
		if s.entries[i] != nil {
			s.c.shards[i].dedup.Release(s.entries[i])
			s.c.shards[i].sessions.Add(-1)
			s.entries[i] = nil
		}
	}
}

// Close unbinds the session from every shard's dedup window.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.release(len(s.entries))
}

// RPCs returns the exchanges this session has completed — the same
// per-frame cost unit as the socket transports' RPCs, counted on
// success only, so the frame bill is integer-identical to TCP's.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// SetTape points the session's mutating-frame sequence source at a
// flight's rewindable tape (nil restores the session's own counter).
func (s *Session) SetTape(tape *wire.SeqTape) { s.tape = tape }

// Healthy implements the xport pool's checkout probe: an idle session
// is stale once any of its shards closed — the analogue of the TCP
// probe seeing a FIN.
func (s *Session) Healthy() bool {
	for _, sh := range s.c.shards {
		if sh.closed.Load() {
			return false
		}
	}
	return true
}

// nextSeq draws the next mutating-frame sequence number: from the
// owning Counter's tape during a flight (replayable on retry), from the
// session's own counter otherwise.
func (s *Session) nextSeq() uint64 {
	if s.tape != nil {
		return s.tape.Take()
	}
	return s.seqs.Add(1)
}

// Exchange implements xport.Exchanger: one frame served by the owning
// shard, through the cluster's fault injection. Mutating ops are
// seq-numbered and deduplicated; READ is non-mutating and carries no
// sequence number.
func (s *Session) Exchange(shard int, op byte, id int32, n int64) (int64, error) {
	var f wire.Frame
	mutating := op != wire.OpRead
	if mutating {
		f = wire.Frame{Op: wire.V2Op(op), ID: id, Seq: s.nextSeq(), N: n}
	} else {
		f = wire.Frame{Op: wire.OpRead, ID: id}
	}
	lose, applied := s.c.inject(mutating)
	if lose && !applied {
		return 0, errInjected
	}
	v, err := s.c.shards[shard].serve(s.entries[shard], &f)
	if err != nil {
		return 0, err
	}
	if lose {
		return 0, errInjected
	}
	s.rpcs.Add(1)
	return v, nil
}

// Inc shepherds one token through the network and returns its counter
// value — depth exchanges for the balancer crossings plus one for the
// exit cell, via the shared walk.
func (s *Session) Inc(pid int) (int64, error) { return s.walk.Inc(s, pid) }

// Batch shepherds k tokens (anti: antitokens) entering on input wire
// `in` as one batched pipeline, via the shared walk (implements
// xport.Session).
func (s *Session) Batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	return s.walk.Batch(s, in, k, anti, dst)
}

// IncBatch claims k values entering on wire pid mod w, appending them
// to dst — the standalone-session convenience mirroring the socket
// transports.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.Batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch revokes k values as one batched antitoken pipeline.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.Batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// ReadCell returns exit cell w's current value without modifying it.
func (s *Session) ReadCell(w int) (int64, error) { return s.walk.ReadCell(s, w) }

// Read sums the exit cells into the deployment's quiescent net count.
func (s *Session) Read() (int64, error) { return s.walk.Read(s) }

// Counter is the deployment-wide coalescing Fetch&Increment client: the
// shared transport-agnostic core (see xport.Counter) over the in-memory
// link.
type Counter = xport.Counter

// CounterStatus is a pooled counter client's /status document.
type CounterStatus = xport.CounterStatus

// NewCounter builds the coalescing counter client with the default pool
// width (one session slot per input wire).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session
// pool retaining at most width idle sessions (width <= 0 defaults to
// the input width) — the one shared implementation in xport.
func (c *Cluster) NewCounterPool(width int) *Counter {
	return xport.NewCounter(c, width)
}
