// Package xport is the transport-agnostic client core of the
// distributed deployments: the ONE implementation of everything a
// counting-network transport needs above its link layer. The coalescing
// single-flight Counter (concurrent Inc callers entering on the same
// input wire merge into one in-flight batched pipeline), the per-counter
// session pool with health-probed checkout and pool-wide eviction, the
// rewindable seq-tape retry loop under a RetryPolicy+Backoff budget, the
// pid-striped ShardedCounter fleet composition, the drain/ErrClosed
// shutdown semantics and the ctlplane Source registrations all live
// here, written once — internal/tcpnet, internal/udpnet and
// internal/inproc are thin link adapters underneath.
//
// The seam is two small interfaces. A Link is a client-side view of one
// deployment that can dial sessions under a client id; a Session is a
// single-goroutine protocol walker the pool checks in and out. The
// exactly-once machinery (HELLO client ids, seq-numbered v2 frames,
// dedup windows, the rewindable tape) lives in internal/wire and is
// shared by every transport's frames, so the Counter's retry loop —
// rewind the tape, re-run the operation on a fresh session, let the
// shards replay already-applied sequences — is correct for any Link
// whose sessions draw their sequence numbers from the tape.
//
// Adding a transport therefore means implementing Link+Session over the
// new medium (framing for a stream, packing for datagrams, streams for
// QUIC) and nothing else: the conformance suite in internal/conformance
// asserts the chaos exact-count, exactly-once replay, close/drain and
// frame-bill invariants against every registered transport through this
// package alone.
package xport

import (
	"errors"
	"time"

	"repro/internal/wire"
)

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. Callers never see
// a raw link error caused by their own Counter shutting down. Every
// transport's exported ErrClosed aliases this one sentinel, so
// errors.Is works across the seam.
var ErrClosed = errors.New("countnet: counter closed")

// Default flight-retry bounds, the single source of truth for every
// transport: a failed flight is re-run on fresh sessions up to
// DefaultRetryAttempts total tries, the redials paced by
// DefaultRetryBackoff. The time budget is the one knob that is genuinely
// per-transport (a TCP redial fails in milliseconds; a UDP flight only
// fails after its whole retransmit budget drained), so it comes from
// Link.RetryBudget instead of a constant here.
const DefaultRetryAttempts = 4

// DefaultRetryBackoff paces redials between retry attempts: jittered
// exponential from 2ms, capped at 250ms. Without it every Counter that
// watched the same shard flap redials in lockstep — a dial storm.
var DefaultRetryBackoff = wire.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond}

// Session is one checked-out protocol walker: a single-goroutine client
// holding whatever per-shard state its transport needs (one TCP
// connection per shard, one UDP socket per shard, one pinned dedup
// binding per in-memory shard). The pool serializes use — a session is
// held by at most one flight at a time.
type Session interface {
	// Inc shepherds one token through the network and returns its
	// counter value.
	Inc(pid int) (int64, error)
	// Batch shepherds k tokens (anti=false) or antitokens (anti=true)
	// entering on input wire `in` as one batched pipeline, appending the
	// k claimed (or revoked) values to dst. The walk must be
	// deterministic in (in, k, anti) so a retried flight re-sends the
	// identical frame sequence.
	Batch(in int, k int64, anti bool, dst []int64) ([]int64, error)
	// Read sums the exit cells into the deployment's quiescent net
	// count without mutating them.
	Read() (int64, error)
	// RPCs returns the request frames this session has sent — the
	// shared per-frame cost unit (E25–E28); lossy transports count
	// retransmitted copies.
	RPCs() int64
	// SetTape points the session's mutating-frame sequence source at a
	// flight's rewindable tape (nil restores the session's own
	// counter). Called by the pool around every flight attempt.
	SetTape(*wire.SeqTape)
	// Healthy probes the session without a round trip; the pool evicts
	// sessions that fail it at checkout. Transports whose sessions
	// cannot go stale (a UDP socket has no peer state) return true.
	Healthy() bool
	// Close releases the session's link resources.
	Close()
}

// PacketSession is the optional datagram extension of Session: the
// link-level cost counters only a packet transport pays. The pool folds
// them into the Counter's monotone Packets/Retransmits totals when the
// sessions implement it; stream transports simply don't.
type PacketSession interface {
	Session
	// Packets returns request datagrams sent, first sends plus
	// retransmits.
	Packets() int64
	// Retransmits returns how many of those were retransmissions.
	Retransmits() int64
	// Outstanding returns request datagrams currently in flight.
	Outstanding() int64
}

// Link is the transport seam: the client-side view of one deployment
// (topology + shard endpoints) that the Counter core drives. Implement
// it plus Session and the whole coalescing/pooling/retry/striping stack
// above comes for free.
type Link interface {
	// Transport names the link type ("tcp", "udp", "inproc") — the
	// metrics label and /status discriminator.
	Transport() string
	// Addrs returns the shard endpoints, for /status.
	Addrs() []string
	// InWidth and OutWidth are the deployment topology's widths: the
	// coalescing comb count and the Read stride respectively.
	InWidth() int
	OutWidth() int
	// Dial opens a session announcing the given client id; pooled
	// sessions of one Counter share the Counter's id, which is what
	// lets a retry on a fresh session hit the original attempt's dedup
	// records.
	Dial(client uint64) (Session, error)
	// RetryBudget is the transport's default flight-retry time budget
	// (see SetRetryPolicy): how long after the first failure retries
	// keep being attempted. TCP redials fail fast (2s); a UDP flight
	// failure already consumed a retransmit budget (8s).
	RetryBudget() time.Duration
}
