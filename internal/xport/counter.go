package xport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/wire"
)

// Counter is a deployment-wide coalescing Fetch&Increment client over
// any Link: concurrent Inc callers entering on the same input wire merge
// into one in-flight batched pipeline (a single-flight window per wire,
// the same trick as distnet.Counter), so wide workloads pay one pipeline
// per window rather than depth+1 round trips per token.
//
// Flights run on sessions checked out of a shared pool (round-robin,
// configurable width — see NewCounter) instead of one pinned session per
// wire. The pool self-heals twice over: idle sessions are health-probed
// at checkout (Session.Healthy, no round trip), so a long-dead link is
// evicted before a flight discovers it; and a session that fails
// mid-flight is evicted pool-wide (a partial frame may have desynced its
// streams) while the flight retries on fresh sessions under a bounded
// attempt/deadline budget (SetRetryPolicy). Retries are EXACTLY-ONCE:
// every pooled session announces the counter's client id, every
// mutating frame carries a sequence number recorded on the flight's
// tape, and a retry re-sends the identical (client, seq) pairs so the
// shards' dedup windows replay frames the dead session had already
// applied instead of re-executing them. Values stay dense through any
// absorbed link loss — no gaps, no duplicates.
type Counter struct {
	link  Link
	id    uint64        // client id every pooled session announces
	seqs  atomic.Uint64 // mutating-frame sequence source, shared by flights
	combs []comb
	pool  *pool

	mu          sync.Mutex
	closed      bool
	maxAttempts int
	budget      time.Duration
	backoff     wire.Backoff   // jittered redial pacing between attempts
	inflight    sync.WaitGroup // flights holding pool sessions

	// Control-plane state: a lifecycle word for /health (0 live,
	// 1 draining, 2 closed), bare atomics the flight and landing paths
	// bump, and the registry of read-side views /metrics evaluates.
	state        atomic.Int32
	flights      atomic.Int64
	retries      atomic.Int64
	inflightN    atomic.Int64
	windows      atomic.Int64
	windowTokens atomic.Int64
	reg          *ctlplane.Registry

	// Latency observability: lock-free log-bucketed histograms observed
	// on the flight path (zero frames, zero allocations — the bill stays
	// bit-identical to the uninstrumented counter) plus the bounded
	// ring of recent flights /debug/flights serves.
	histFlight   *ctlplane.Histogram // end-to-end flight latency
	histAttempt  *ctlplane.Histogram // per-attempt wire RTT
	histCoalesce *ctlplane.Histogram // Inc caller wait inside a window
	histCheckout *ctlplane.Histogram // pool checkout, probes + dials
	histAttempts *ctlplane.Histogram // tries per completed flight
	ring         *ctlplane.FlightRing
}

// flightMeta labels one flight for the /debug/flights ring: which
// operation, on which input wire (-1 for reads), moving how many
// tokens.
type flightMeta struct {
	op     string
	wire   int
	tokens int64
}

// flightStats accumulates what one flight actually cost across its
// attempts — filled by attempt(), recorded into the ring at landing.
type flightStats struct {
	attempts int
	rpcs     int64
	retrans  int64
}

// Counter lifecycle states (Counter.state).
const (
	stateLive     = 0
	stateDraining = 1
	stateClosed   = 2
)

// comb is the per-input-wire coalescing state.
type comb struct {
	mu     sync.Mutex
	flying bool
	next   *cwindow
	_      [4]int64
}

// cwindow is one pooled group of coalesced Inc calls.
type cwindow struct {
	k    int64
	vals []int64
	err  error
	done chan struct{}
}

// NewCounter builds the coalescing counter client over a session pool
// retaining at most `width` idle sessions (width <= 0 defaults to the
// link's input width — one session slot per input wire, the resource
// envelope of the pre-pool one-session-per-wire clients). Flights check
// sessions out round-robin; bursts beyond the width dial extra sessions
// that are retired on return. The counter owns a fresh client id that
// every pooled session announces, keying its exactly-once dedup windows
// on the shards. The retry budget defaults to the link's RetryBudget;
// attempts and backoff to the shared xport defaults.
func NewCounter(link Link, width int) *Counter {
	id := wire.NextClientID()
	t := &Counter{
		link:        link,
		id:          id,
		combs:       make([]comb, link.InWidth()),
		pool:        newPool(link, width, id),
		maxAttempts: DefaultRetryAttempts,
		budget:      link.RetryBudget(),
		backoff:     DefaultRetryBackoff,
		reg:         ctlplane.NewRegistry(),

		histFlight:   ctlplane.NewLatencyHistogram(),
		histAttempt:  ctlplane.NewLatencyHistogram(),
		histCoalesce: ctlplane.NewLatencyHistogram(),
		histCheckout: ctlplane.NewLatencyHistogram(),
		histAttempts: ctlplane.NewHistogram(1, 1, 2, 3, 4, 6, 8, 12, 16),
		ring:         ctlplane.NewFlightRing(ctlplane.DefaultFlightEvents),
	}
	t.registerMetrics(link.Transport())
	return t
}

// registerMetrics wires the counter's read-side views into its
// registry; every closure reads atomics the operation paths maintain
// anyway, so a scrape never contends with a flight.
func (t *Counter) registerMetrics(transport string) {
	labels := []ctlplane.Label{{Key: "transport", Value: transport}}
	t.reg.Counter(wire.MetricClientRPCs, wire.HelpClientRPCs, t.RPCs, labels...)
	t.reg.Counter(wire.MetricClientFlights, wire.HelpClientFlights, t.flights.Load, labels...)
	t.reg.Counter(wire.MetricClientRetries, wire.HelpClientRetries, t.retries.Load, labels...)
	t.reg.Gauge(wire.MetricClientInflight, wire.HelpClientInflight, t.inflightN.Load, labels...)
	t.reg.Counter(wire.MetricClientWindows, wire.HelpClientWindows, t.windows.Load, labels...)
	t.reg.Counter(wire.MetricClientWindowTokens, wire.HelpClientWindowTokens, t.windowTokens.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolCheckouts, wire.HelpClientPoolCheckouts, t.pool.checkouts.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolDials, wire.HelpClientPoolDials, t.pool.dials.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolEvictions, wire.HelpClientPoolEvictions, t.pool.evictions.Load, labels...)
	t.reg.Gauge(wire.MetricClientPoolIdle, wire.HelpClientPoolIdle, func() int64 {
		t.pool.mu.Lock()
		defer t.pool.mu.Unlock()
		return int64(len(t.pool.idle))
	}, labels...)
	t.reg.Histogram(wire.MetricClientFlightSeconds, wire.HelpClientFlightSeconds, t.histFlight, labels...)
	t.reg.Histogram(wire.MetricClientAttemptSeconds, wire.HelpClientAttemptSeconds, t.histAttempt, labels...)
	t.reg.Histogram(wire.MetricClientCoalesceSeconds, wire.HelpClientCoalesceSeconds, t.histCoalesce, labels...)
	t.reg.Histogram(wire.MetricClientCheckoutSeconds, wire.HelpClientCheckoutSeconds, t.histCheckout, labels...)
	t.reg.Histogram(wire.MetricClientFlightAttempts, wire.HelpClientFlightAttempts, t.histAttempts, labels...)
	t.reg.Gauge(wire.MetricClientFlightEvents, wire.HelpClientFlightEvents, func() int64 {
		return int64(t.ring.Len())
	}, labels...)
}

// Flights implements ctlplane.FlightSource: the last-N completed
// flights, newest first — what /debug/flights serves for this counter.
func (t *Counter) Flights() []ctlplane.FlightEvent { return t.ring.Events() }

// Registry exposes the counter's metric registry so a link adapter can
// register transport-specific extras (udpnet adds packet, retransmit,
// pipeline-depth and outstanding series) next to the shared client
// views. Registrations race Gather, so adapters register before the
// counter is handed out.
func (t *Counter) Registry() *ctlplane.Registry { return t.reg }

// CounterStatus is a pooled counter client's /status document.
type CounterStatus struct {
	Transport  string   `json:"transport"`
	State      string   `json:"state"` // live, draining, closed
	ClientID   uint64   `json:"client_id"`
	PoolWidth  int      `json:"pool_width"`
	InWidth    int      `json:"in_width"`
	OutWidth   int      `json:"out_width"`
	ShardAddrs []string `json:"shard_addrs"`
}

func stateName(s int32) string {
	switch s {
	case stateDraining:
		return "draining"
	case stateClosed:
		return "closed"
	}
	return "live"
}

// Health implements ctlplane.Source: live until Close starts draining
// (load balancers stop routing on the 503 this turns into), quiescent
// when no flight holds a pool session — the precondition for an
// exact-count Read.
func (t *Counter) Health() ctlplane.Health {
	st := t.state.Load()
	return ctlplane.Health{
		Live:      st == stateLive,
		Quiescent: t.inflightN.Load() == 0,
		Detail:    stateName(st),
	}
}

// Status implements ctlplane.Source with the counter's client-side
// topology: its exactly-once client id, pool width, and the shard
// addresses it fans out to.
func (t *Counter) Status() any {
	return CounterStatus{
		Transport:  t.link.Transport(),
		State:      stateName(t.state.Load()),
		ClientID:   t.id,
		PoolWidth:  t.pool.width,
		InWidth:    t.link.InWidth(),
		OutWidth:   t.link.OutWidth(),
		ShardAddrs: t.link.Addrs(),
	}
}

// Gather implements ctlplane.Source, evaluating the counter's
// registered metric views.
func (t *Counter) Gather() []ctlplane.Sample { return t.reg.Gather() }

// SetRetryPolicy bounds the self-healing path: a failed flight is
// retried on fresh sessions for at most `attempts` total tries
// (including the first), as long as the time since the first failure
// stays within `budget` (budget <= 0 removes the time bound; attempts
// are always enforced). attempts < 1 is clamped to 1, disabling
// retries. Applies to flights started after the call.
func (t *Counter) SetRetryPolicy(attempts int, budget time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	t.mu.Lock()
	t.maxAttempts = attempts
	t.budget = budget
	t.mu.Unlock()
}

// SetRetryBackoff replaces the jittered exponential schedule pacing the
// redials between retry attempts (the zero value restores the wire
// defaults). Applies to flights started after the call.
func (t *Counter) SetRetryBackoff(b wire.Backoff) {
	t.mu.Lock()
	t.backoff = b
	t.mu.Unlock()
}

// Inc returns the next counter value. A lone caller pays the single-token
// round trips; concurrent callers on the same wire coalesce.
func (t *Counter) Inc(pid int) (int64, error) {
	in := pid % t.link.InWidth()
	cb := &t.combs[in]
	cb.mu.Lock()
	if cb.flying {
		w := cb.next
		if w == nil {
			w = &cwindow{done: make(chan struct{})}
			cb.next = w
		}
		idx := w.k
		w.k++
		cb.mu.Unlock()
		parked := time.Now()
		<-w.done
		t.histCoalesce.Observe(time.Since(parked).Nanoseconds())
		if w.err != nil {
			return 0, w.err
		}
		return w.vals[idx], nil
	}
	cb.flying = true
	cb.mu.Unlock()
	var v int64
	err := t.flight(flightMeta{op: "inc", wire: in, tokens: 1}, func(sess Session) error {
		var ferr error
		v, ferr = sess.Inc(pid)
		return ferr
	})
	t.land(cb, in)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Dec revokes the counter's most recent increment on the antitoken's exit
// wire (a one-element batched pipeline on a pooled session).
func (t *Counter) Dec(pid int) (int64, error) {
	vals, err := t.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch claims k values as one batched pipeline on a pooled session,
// with the same retry resilience as Inc.
func (t *Counter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, false, dst)
}

// DecBatch revokes k values as one batched antitoken pipeline on a pooled
// session.
func (t *Counter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, true, dst)
}

func (t *Counter) batch(pid, k int, anti bool, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	in := pid % t.link.InWidth()
	base := len(dst)
	op := "inc-batch"
	if anti {
		op = "dec-batch"
	}
	err := t.flight(flightMeta{op: op, wire: in, tokens: int64(k)}, func(sess Session) error {
		var ferr error
		dst, ferr = sess.Batch(in, int64(k), anti, dst[:base])
		return ferr
	})
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// Read returns the deployment's quiescent net count by summing the exit
// cells over a pooled session — the exact-count read side.
func (t *Counter) Read() (int64, error) {
	var total int64
	err := t.flight(flightMeta{op: "read", wire: -1}, func(sess Session) error {
		var ferr error
		total, ferr = sess.Read()
		return ferr
	})
	return total, err
}

// flight runs one pooled operation: check a session out, run op, and on
// a link failure evict the session pool-wide and retry on fresh
// sessions under the counter's attempt/deadline budget — the transparent
// self-healing path. Sequence numbers are drawn through a tape so every
// retry re-sends the same (client, seq) pairs and the shards' dedup
// windows make the retry exactly-once. Close fails new flights with
// ErrClosed, waits for running ones, and a flight mid-retry observes it
// between attempts.
//
// Every completed flight lands in the latency histograms and the
// /debug/flights ring. Both are local atomics/mutexed memory — no
// frames, so the wire bill is bit-identical to the uninstrumented
// counter (pinned by the conformance frame-bill gate).
func (t *Counter) flight(meta flightMeta, op func(Session) error) (err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	attempts, budget, backoff := t.maxAttempts, t.budget, t.backoff
	t.inflight.Add(1)
	t.mu.Unlock()
	t.flights.Add(1)
	t.inflightN.Add(1)
	defer t.inflightN.Add(-1)
	defer t.inflight.Done()

	var fs flightStats
	start := time.Now()
	defer func() {
		d := time.Since(start)
		t.histFlight.Observe(d.Nanoseconds())
		t.histAttempts.Observe(int64(fs.attempts))
		outcome := "ok"
		if err != nil {
			outcome = err.Error()
		}
		t.ring.Record(ctlplane.FlightEvent{
			Start:       start,
			DurationNs:  d.Nanoseconds(),
			Op:          meta.op,
			Wire:        meta.wire,
			Tokens:      meta.tokens,
			Attempts:    fs.attempts,
			RPCs:        fs.rpcs,
			Retransmits: fs.retrans,
			Outcome:     outcome,
		})
	}()

	tape := wire.NewSeqTape(&t.seqs)
	var deadline time.Time
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			t.retries.Add(1)
		}
		fs.attempts = attempt
		err = t.attempt(op, tape, &fs)
		if err == nil || errors.Is(err, ErrClosed) {
			return err
		}
		// A window racing Close must observe it here and hand its
		// callers the sentinel, never a raw dial or link error from a
		// replacement session it was never going to get.
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if attempt >= attempts {
			return err
		}
		if budget > 0 {
			if deadline.IsZero() {
				deadline = time.Now().Add(budget)
			} else if time.Now().After(deadline) {
				return err
			}
		}
		// Jittered exponential pause before redialing, so a fleet of
		// counters that watched the same shard die does not storm it
		// back down the moment it returns.
		time.Sleep(backoff.Delay(attempt))
	}
}

func (t *Counter) attempt(op func(Session) error, tape *wire.SeqTape, fs *flightStats) error {
	checkoutStart := time.Now()
	sess, err := t.pool.checkout()
	t.histCheckout.Observe(time.Since(checkoutStart).Nanoseconds())
	if err != nil {
		return err
	}
	rpcs0 := sess.RPCs()
	ps, isPacket := sess.(PacketSession)
	var retrans0 int64
	if isPacket {
		retrans0 = ps.Retransmits()
	}
	tape.Rewind()
	sess.SetTape(tape)
	attemptStart := time.Now()
	err = op(sess)
	t.histAttempt.Observe(time.Since(attemptStart).Nanoseconds())
	sess.SetTape(nil)
	// Bill the attempt while the session is still exclusively ours —
	// after checkin another flight may bump its counters.
	fs.rpcs += sess.RPCs() - rpcs0
	if isPacket {
		fs.retrans += ps.Retransmits() - retrans0
	}
	if err != nil {
		t.pool.evict(sess)
		return err
	}
	t.pool.checkin(sess)
	return nil
}

// land drains the windows that pooled up behind the owner's flight, one
// batched pipeline per window, then releases the wire. Windows stranded
// by Close fail with ErrClosed rather than a raw link error.
func (t *Counter) land(cb *comb, in int) {
	for {
		cb.mu.Lock()
		w := cb.next
		cb.next = nil
		if w == nil {
			cb.flying = false
			cb.mu.Unlock()
			return
		}
		cb.mu.Unlock()
		t.windows.Add(1)
		t.windowTokens.Add(w.k)
		w.err = t.flight(flightMeta{op: "window", wire: in, tokens: w.k}, func(sess Session) error {
			var ferr error
			w.vals, ferr = sess.Batch(in, w.k, false, w.vals[:0])
			return ferr
		})
		close(w.done)
	}
}

// RPCs returns the total request frames performed across the counter's
// sessions, evicted and retired ones included — the count is monotone;
// divide by operations for the E25 msgs/op metric.
func (t *Counter) RPCs() int64 { return t.pool.rpcs() }

// Packets returns the total request datagrams sent across the counter's
// sessions (monotone through retirement); 0 on stream transports whose
// sessions are not PacketSessions.
func (t *Counter) Packets() int64 { return t.pool.packets() }

// Retransmits returns the total retransmitted datagrams across the
// counter's sessions (monotone); 0 on stream transports.
func (t *Counter) Retransmits() int64 { return t.pool.retransmits() }

// Outstanding returns the request datagrams currently in flight across
// the counter's live sessions — a gauge, so retired sessions (which by
// definition have nothing outstanding) contribute nothing.
func (t *Counter) Outstanding() int64 { return t.pool.outstanding() }

// PoolIdle snapshots the pool's idle sessions, head (next checkout)
// first — a test hook for fault injection on the exact session the next
// flight will use.
func (t *Counter) PoolIdle() []Session {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	return append([]Session(nil), t.pool.idle...)
}

// PoolLive returns how many dialed sessions the pool currently tracks
// (idle plus checked out) — a test hook for eviction accounting.
func (t *Counter) PoolLive() int {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	return len(t.pool.live)
}

// Close shuts the counter down: new flights (and windows stranded behind
// a closing flight) fail with ErrClosed, running flights are waited for,
// and every pooled session is then retired with its cost counters folded
// into the monotone totals. Idempotent.
func (t *Counter) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.state.Store(stateDraining)
	t.mu.Unlock()
	t.inflight.Wait()
	t.pool.close()
	t.state.Store(stateClosed)
}

// pool is the Counter's session pool: up to `width` idle sessions reused
// round-robin across flights, every dialed session announcing the
// counter's client id, every dialed session tracked in `live` so the
// cost bills stay monotone through eviction and retirement.
type pool struct {
	link   Link
	width  int
	id     uint64 // the owning Counter's client id
	mu     sync.Mutex
	idle   []Session
	live   map[Session]struct{}
	closed bool

	// Cost counters of retired sessions, folded in at retirement so the
	// exported totals stay monotone.
	lost        int64 // RPCs
	lostPackets int64
	lostRetrans int64

	// Control-plane counters: checkouts by flights, fresh dials, and
	// evictions (probe failures at checkout plus mid-flight deaths —
	// NOT retirements at the width cap or at close).
	checkouts atomic.Int64
	dials     atomic.Int64
	evictions atomic.Int64
}

func newPool(link Link, width int, id uint64) *pool {
	if width < 1 {
		width = link.InWidth()
	}
	return &pool{link: link, width: width, id: id, live: make(map[Session]struct{})}
}

// checkout hands the caller exclusive use of a session: the least
// recently returned idle one (round-robin across the pool) that passes
// the health probe, or a fresh dial when none is idle. A long-dead idle
// link is evicted here, at checkout, instead of being discovered by a
// flight — Session.Healthy is a local probe, not a round trip.
func (p *pool) checkout() (Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	for len(p.idle) > 0 {
		sess := p.idle[0]
		n := len(p.idle)
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:n-1]
		if sess.Healthy() {
			p.mu.Unlock()
			p.checkouts.Add(1)
			return sess, nil
		}
		p.evictions.Add(1)
		p.retireLocked(sess)
	}
	p.mu.Unlock()
	sess, err := p.link.Dial(p.id)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		sess.Close()
		return nil, ErrClosed
	}
	p.live[sess] = struct{}{}
	p.mu.Unlock()
	p.checkouts.Add(1)
	return sess, nil
}

// checkin returns a healthy session to the idle list; beyond the pool
// width (or after close) it is retired instead.
func (p *pool) checkin(sess Session) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.width {
		p.idle = append(p.idle, sess)
		p.mu.Unlock()
		return
	}
	p.retireLocked(sess)
	p.mu.Unlock()
}

// evict retires a session that failed pool-wide: it leaves the live
// set, its cost counters fold into the monotone totals, and every
// future checkout gets a different (or freshly dialed) session.
func (p *pool) evict(sess Session) {
	p.evictions.Add(1)
	p.mu.Lock()
	p.retireLocked(sess)
	p.mu.Unlock()
}

func (p *pool) retireLocked(sess Session) {
	if _, ok := p.live[sess]; !ok {
		return
	}
	delete(p.live, sess)
	p.lost += sess.RPCs()
	if ps, ok := sess.(PacketSession); ok {
		p.lostPackets += ps.Packets()
		p.lostRetrans += ps.Retransmits()
	}
	sess.Close()
}

// rpcs returns the monotone request-frame total across live and retired
// sessions.
func (p *pool) rpcs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lost
	for sess := range p.live {
		total += sess.RPCs()
	}
	return total
}

// packets returns the monotone request-datagram total across live and
// retired sessions (0 for stream transports).
func (p *pool) packets() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lostPackets
	for sess := range p.live {
		if ps, ok := sess.(PacketSession); ok {
			total += ps.Packets()
		}
	}
	return total
}

// retransmits returns the monotone retransmission total across live and
// retired sessions (0 for stream transports).
func (p *pool) retransmits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lostRetrans
	for sess := range p.live {
		if ps, ok := sess.(PacketSession); ok {
			total += ps.Retransmits()
		}
	}
	return total
}

// outstanding sums the in-flight datagrams over the live sessions — a
// gauge, not folded through retirement.
func (p *pool) outstanding() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for sess := range p.live {
		if ps, ok := sess.(PacketSession); ok {
			total += ps.Outstanding()
		}
	}
	return total
}

// close retires every idle session and marks the pool closed; sessions
// still checked out are retired by their flight's checkin. (Counter.Close
// waits for flights first, so by the time it closes the pool every
// session is idle.)
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, sess := range p.idle {
		p.retireLocked(sess)
	}
	p.idle = nil
	p.mu.Unlock()
}
