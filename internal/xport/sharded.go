package xport

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/shard"
	"repro/internal/wire"
)

// ShardedCounter is the fleet-wide client over any transport:
// pid-striped routing (shard.StripeOf) over S per-stripe pooled
// coalescing Counters, values mapped into per-stripe residue classes
// (stripe s hands out v·S + s), and the read side (RPCs, Packets,
// Retransmits, Read) aggregated across stripes so exact-count
// accounting stays monotone — striping ∘ coalescing ∘ batching,
// written once for every link type.
type ShardedCounter struct {
	name  string
	ctrs  []*Counter
	n     int64
	plane *ctlplane.Fleet // per-stripe aggregation behind one Source
}

// NewShardedCounter composes per-stripe Counters (ctrs[i] serves stripe
// i — typically one per independent deployment of the same topology)
// into the fleet-wide client, registering each stripe with the
// control-plane fleet under its stripe index. Each stripe's Counter
// owns its own client id, so the stripes' exactly-once dedup windows —
// and their retry budgets — are fully independent.
func NewShardedCounter(name string, ctrs []*Counter) *ShardedCounter {
	t := &ShardedCounter{
		name:  name,
		ctrs:  ctrs,
		n:     int64(len(ctrs)),
		plane: ctlplane.NewFleet(name, "stripe"),
	}
	for i, c := range ctrs {
		t.plane.Add(strconv.Itoa(i), c)
	}
	return t
}

// StripeStatus is one stripe's slot in a sharded counter's /status.
type StripeStatus struct {
	Stripe       int             `json:"stripe"`
	ResidueClass string          `json:"residue_class"` // global values this stripe hands out
	Health       ctlplane.Health `json:"health"`
	Status       CounterStatus   `json:"status"`
}

// ShardedStatus is the fleet-wide /status document.
type ShardedStatus struct {
	Name    string         `json:"name"`
	Stripes []StripeStatus `json:"stripes"`
}

// Health implements ctlplane.Source: the fleet is live (and quiescent)
// only when every stripe is.
func (t *ShardedCounter) Health() ctlplane.Health { return t.plane.Health() }

// Status implements ctlplane.Source: every stripe's topology plus the
// residue class its values land in — the document an operator reads to
// see which stripe a global value came from.
func (t *ShardedCounter) Status() any {
	st := ShardedStatus{Name: t.name}
	for i, c := range t.ctrs {
		st.Stripes = append(st.Stripes, StripeStatus{
			Stripe:       i,
			ResidueClass: fmt.Sprintf("v*%d+%d", t.n, i),
			Health:       c.Health(),
			Status:       c.Status().(CounterStatus),
		})
	}
	return st
}

// Gather implements ctlplane.Source: every stripe's samples under a
// stripe="i" label, so per-stripe load (rpcs, retries, windows) sits
// side by side in one scrape and skew across the StripeOf hash is
// visible directly.
func (t *ShardedCounter) Gather() []ctlplane.Sample { return t.plane.Gather() }

// Flights implements ctlplane.FlightSource: every stripe's recent
// flights merged newest first, each stamped with its stripe label — the
// fleet-wide /debug/flights sampler.
func (t *ShardedCounter) Flights() []ctlplane.FlightEvent { return t.plane.Flights() }

// Name identifies the fleet in benchmark tables and /status.
func (t *ShardedCounter) Name() string { return t.name }

// Stripes returns the stripe count S.
func (t *ShardedCounter) Stripes() int { return int(t.n) }

// Counter returns stripe i's underlying pooled Counter (for inspection).
func (t *ShardedCounter) Counter(i int) *Counter { return t.ctrs[i] }

// stripe routes a pid to its per-stripe counter.
func (t *ShardedCounter) stripe(pid int) (int64, *Counter) {
	i := shard.StripeOf(pid, int(t.n))
	return int64(i), t.ctrs[i]
}

// Inc returns the next value in pid's stripe residue class; coalescing,
// pooling and retry resilience apply within the stripe.
func (t *ShardedCounter) Inc(pid int) (int64, error) {
	i, c := t.stripe(pid)
	v, err := c.Inc(pid)
	if err != nil {
		return 0, err
	}
	return v*t.n + i, nil
}

// Dec revokes pid's stripe's most recent increment on the antitoken's
// exit wire.
func (t *ShardedCounter) Dec(pid int) (int64, error) {
	i, c := t.stripe(pid)
	v, err := c.Dec(pid)
	if err != nil {
		return 0, err
	}
	return v*t.n + i, nil
}

// IncBatch claims k values as one batched pipeline on pid's stripe,
// appending the k globally-mapped values to dst.
func (t *ShardedCounter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	i, c := t.stripe(pid)
	base := len(dst)
	dst, err := c.IncBatch(pid, k, dst)
	if err != nil {
		return dst, err
	}
	return t.remap(dst, base, i), nil
}

// DecBatch revokes k values as one batched antitoken pipeline on pid's
// stripe, appending the k globally-mapped revoked values to dst.
func (t *ShardedCounter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	i, c := t.stripe(pid)
	base := len(dst)
	dst, err := c.DecBatch(pid, k, dst)
	if err != nil {
		return dst, err
	}
	return t.remap(dst, base, i), nil
}

// remap rewrites the values a stripe appended past `from` into its global
// residue class.
func (t *ShardedCounter) remap(vals []int64, from int, stripe int64) []int64 {
	for j := from; j < len(vals); j++ {
		vals[j] = vals[j]*t.n + stripe
	}
	return vals
}

// SetRetryPolicy bounds every stripe's self-healing retry path (see
// Counter.SetRetryPolicy).
func (t *ShardedCounter) SetRetryPolicy(attempts int, budget time.Duration) {
	for _, c := range t.ctrs {
		c.SetRetryPolicy(attempts, budget)
	}
}

// SetRetryBackoff replaces every stripe's flight-retry pacing.
func (t *ShardedCounter) SetRetryBackoff(b wire.Backoff) {
	for _, c := range t.ctrs {
		c.SetRetryBackoff(b)
	}
}

// RPCs sums the monotone request-frame totals of every stripe — the
// aggregate E26/E28 cost numerator.
func (t *ShardedCounter) RPCs() int64 {
	var total int64
	for _, c := range t.ctrs {
		total += c.RPCs()
	}
	return total
}

// Packets sums the monotone request-datagram totals of every stripe
// (0 on stream transports).
func (t *ShardedCounter) Packets() int64 {
	var total int64
	for _, c := range t.ctrs {
		total += c.Packets()
	}
	return total
}

// Retransmits sums the monotone retransmission totals of every stripe
// (0 on stream transports).
func (t *ShardedCounter) Retransmits() int64 {
	var total int64
	for _, c := range t.ctrs {
		total += c.Retransmits()
	}
	return total
}

// Read sums the stripes' quiescent net counts (increments minus
// decrements) — which is how the exact-count equivalence tests reconcile
// sharded runs against sequential totals.
func (t *ShardedCounter) Read() (int64, error) {
	var total int64
	for _, c := range t.ctrs {
		v, err := c.Read()
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// Close shuts every stripe's counter down (ErrClosed to stranded
// callers; cost totals stay counted).
func (t *ShardedCounter) Close() {
	for _, c := range t.ctrs {
		c.Close()
	}
}
