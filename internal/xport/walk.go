package xport

import (
	"repro/internal/balancer"
	"repro/internal/network"
	"repro/internal/wire"
)

// Exchanger is one request/response round trip on a shard: the only
// primitive a frame-per-round-trip transport (TCP, inproc) must supply
// for Walk to implement the whole client-side protocol. For mutating
// ops the implementation builds the v1 or seq-numbered v2 frame from
// the op/id/n triple (see tcpnet.Session.Exchange); OpRead is
// non-mutating and carries no sequence number.
type Exchanger interface {
	Exchange(shard int, op byte, id int32, n int64) (int64, error)
}

// Walk is the shared client-side protocol walker for transports that
// spend one round trip per frame: the single-token path, the batched
// topological pipeline, and the exact-count read side, with the split
// arithmetic and CELL id packing (id = wire | stride<<16) implemented
// once. A Walk belongs to one session (its scratch is reused across
// calls, so it is single-goroutine like the session itself); datagram
// transports pack many frames per packet and keep their own layer walk.
type Walk struct {
	net    *network.Network
	shards int
	stride int64

	// Batch walk scratch, reused across calls.
	pending []int64
	tally   []int64
	dist    []int64
}

// NewWalk builds a walker over the topology partitioned across `shards`
// servers (shard i owns nodes and cells ≡ i mod shards).
func NewWalk(n *network.Network, shards int) *Walk {
	return &Walk{net: n, shards: shards, stride: int64(n.OutWidth())}
}

// Inc shepherds one token through the network and returns its counter
// value: depth round trips for the balancer crossings plus one for the
// exit cell. A retried Inc walks the identical path — the dedup windows
// replay the original ports for already-applied sequences.
func (w *Walk) Inc(x Exchanger, pid int) (int64, error) {
	in := pid % w.net.InWidth()
	node, port := w.net.InputDest(in)
	for node >= 0 {
		p, err := x.Exchange(node%w.shards, wire.OpStep, int32(node), 0)
		if err != nil {
			return 0, err
		}
		node, port = w.net.Dest(node, int(p))
	}
	// port now names the exit wire; fetch the cell value with the stride
	// packed into the id's upper bits.
	return x.Exchange(port%w.shards, wire.OpCell, int32(port)|int32(w.stride)<<16, 0)
}

// Batch walks the topology in topological order exactly like
// network.TraverseBatch, but every balancer transition is one STEPN round
// trip to the owning shard; the split arithmetic runs client-side from
// the replied first index and the known initial states. The walk is
// deterministic in (in, k, anti), so a retried window re-sends the
// identical frame sequence and the dedup windows make it exactly-once.
func (w *Walk) Batch(x Exchanger, in int, k int64, anti bool, dst []int64) ([]int64, error) {
	n := w.net
	if w.pending == nil {
		w.pending = make([]int64, n.Size())
		w.tally = make([]int64, n.OutWidth())
	}
	pending, tally := w.pending, w.tally
	clear(tally)
	first := n.Size()
	nd, port := n.InputDest(in)
	if nd < 0 {
		tally[port] += k
	} else {
		pending[nd] = k
		first = nd
	}
	for id := first; id < n.Size(); id++ {
		c := pending[id]
		if c == 0 {
			continue
		}
		pending[id] = 0
		node := n.Node(id)
		q := node.Out()
		sendN := c
		if anti {
			sendN = -c
		}
		start, err := x.Exchange(id%w.shards, wire.OpStepN, int32(id), sendN)
		if err != nil {
			clear(pending) // leave the scratch reusable
			return dst, err
		}
		if cap(w.dist) < q {
			w.dist = make([]int64, q)
		}
		counts := balancer.DistributeInto(node.Balancer().Init()+start, c, w.dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			dnd, dport := n.Dest(id, p)
			if dnd < 0 {
				tally[dport] += cnt
			} else {
				pending[dnd] += cnt
			}
		}
	}
	stride := w.stride
	for wireOut, cnt := range tally {
		if cnt == 0 {
			continue
		}
		sendN := cnt
		if anti {
			sendN = -cnt
		}
		end, err := x.Exchange(wireOut%w.shards, wire.OpCellN, int32(wireOut)|int32(stride)<<16, sendN)
		if err != nil {
			return dst, err
		}
		if anti {
			for v := end + stride*(cnt-1); v >= end; v -= stride {
				dst = append(dst, v)
			}
		} else {
			for v := end - stride*cnt; v < end; v += stride {
				dst = append(dst, v)
			}
		}
	}
	return dst, nil
}

// ReadCell returns exit cell ID cw's current value without modifying it
// (op READ) — the building block of deployment-wide exact-count reads.
func (w *Walk) ReadCell(x Exchanger, cw int) (int64, error) {
	return x.Exchange(cw%w.shards, wire.OpRead, int32(cw), 0)
}

// Read sums the exit cells into the deployment's net count (increments
// minus decrements), one READ round trip per wire. Only meaningful while
// the deployment is quiescent, like counter.Network.Issued.
func (w *Walk) Read(x Exchanger) (int64, error) {
	var total int64
	for cw := 0; cw < w.net.OutWidth(); cw++ {
		v, err := w.ReadCell(x, cw)
		if err != nil {
			return 0, err
		}
		total += (v - int64(cw)) / w.stride
	}
	return total, nil
}
