package trace

import (
	"sync"
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/seq"
)

func TestSequentialRecordAndReplay(t *testing.T) {
	net, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	for tok := 0; tok < 20; tok++ {
		rec.Traverse(net, tok%4, tok)
	}
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 20*net.Depth() {
		t.Fatalf("events = %d, want %d", len(tr.Events), 20*net.Depth())
	}
	fresh, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(fresh); err != nil {
		t.Fatal(err)
	}
	if census := tr.ExitCensus(8); !seq.IsStep(census) {
		t.Fatalf("census %v not step", census)
	}
}

// The certification pipeline on a fully concurrent run: record, linearize,
// replay — every concurrent execution of the lock-free network must be
// equivalent to some legal serial schedule.
func TestConcurrentCertification(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	const procs, per = 8, 300
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				token := pid*per + i
				rec.Traverse(net, pid%8, token)
			}
		}(pid)
	}
	wg.Wait()
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(fresh); err != nil {
		t.Fatal(err)
	}
	census := tr.ExitCensus(16)
	if !seq.IsStep(census) {
		t.Fatalf("census %v not step", census)
	}
	if seq.Sum(census) != procs*per {
		t.Fatalf("token conservation broken: %d", seq.Sum(census))
	}
}

func TestConcurrentCertificationBitonic(t *testing.T) {
	net, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	const procs, per = 6, 200
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Traverse(net, pid%8, pid*per+i)
			}
		}(pid)
	}
	wg.Wait()
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(fresh); err != nil {
		t.Fatal(err)
	}
}

// Corrupted traces must be rejected by Replay.
func TestReplayRejectsCorruption(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	for tok := 0; tok < 10; tok++ {
		rec.Traverse(net, tok%4, tok)
	}
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt a port.
	bad := *tr
	bad.Events = append([]Event(nil), tr.Events...)
	bad.Events[3].Port ^= 1
	if err := bad.Replay(fresh); err == nil {
		t.Fatal("port corruption accepted")
	}

	// Corrupt a sequence index.
	bad2 := *tr
	bad2.Events = append([]Event(nil), tr.Events...)
	bad2.Events[0].K += 5
	if err := bad2.Replay(fresh); err == nil {
		t.Fatal("sequence corruption accepted")
	}

	// Swap two same-balancer events (breaks K monotonicity at replay).
	bad3 := *tr
	bad3.Events = append([]Event(nil), tr.Events...)
	found := false
	for i := 0; i < len(bad3.Events) && !found; i++ {
		for j := i + 1; j < len(bad3.Events); j++ {
			if bad3.Events[i].Node == bad3.Events[j].Node {
				bad3.Events[i], bad3.Events[j] = bad3.Events[j], bad3.Events[i]
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no same-balancer pair to corrupt")
	}
	if err := bad3.Replay(fresh); err == nil {
		t.Fatal("order corruption accepted")
	}
}

// Linearize must reject duplicate (node, K) pairs — an impossible record.
func TestLinearizeRejectsDuplicates(t *testing.T) {
	rec := NewRecorder()
	rec.events = []Event{
		{Token: 0, Node: 0, K: 0, Port: 0},
		{Token: 1, Node: 0, K: 0, Port: 0},
	}
	if _, err := rec.Linearize(); err == nil {
		t.Fatal("duplicate sequence index accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	rec := NewRecorder()
	tr, err := rec.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(net); err != nil {
		t.Fatal(err)
	}
}
