// Package trace records concurrent executions of balancing networks,
// reconstructs a legal sequential schedule from the per-balancer sequence
// indices (§2.2: an execution is a sequence of transitions whose order is
// constrained by causality), and replays the schedule against the network
// semantics. The pipeline gives machine-checked certificates that a live
// lock-free run was equivalent to some legal serial execution:
//
//	rec := trace.NewRecorder()
//	... goroutines call rec.Traverse(net, wire, token) ...
//	tr, err := rec.Linearize()     // topological certificate
//	err = tr.Replay(net)           // re-validate against semantics
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/network"
)

// Event is one balancer transition: token Token crossed balancer Node as
// its K-th customer and left on Port.
type Event struct {
	Token int
	Node  int
	K     int64
	Port  int
}

// Trace is a linearized execution: Events in a legal sequential order.
type Trace struct {
	Net    string
	Events []Event
	// Exits maps token -> network output wire.
	Exits map[int]int
}

// Recorder collects events from concurrent traversals.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	exits  map[int]int
	name   string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{exits: make(map[int]int)}
}

// Traverse shepherds one token through the network, recording every
// balancer crossing. Token ids must be unique per recorder. Returns the
// exit wire.
func (r *Recorder) Traverse(net *network.Network, wire, token int) int {
	// Collect into a local buffer first: the per-token order is the path
	// order, and appending under one lock at the end keeps the hot loop
	// contention low.
	local := make([]Event, 0, net.Depth())
	out := net.TraverseObserve(wire, func(node int, k int64, port int) {
		local = append(local, Event{Token: token, Node: node, K: k, Port: port})
	})
	r.mu.Lock()
	r.name = net.Name()
	r.events = append(r.events, local...)
	r.exits[token] = out
	r.mu.Unlock()
	return out
}

// Linearize reconstructs a legal total order of the recorded transitions:
// it must respect (a) each balancer's sequence indices in increasing order
// and (b) each token's path order. A cycle would certify an impossible
// execution (an implementation bug); the recorded orders of a correct
// lock-free network always linearize.
func (r *Recorder) Linearize() (*Trace, error) {
	r.mu.Lock()
	events := append([]Event(nil), r.events...)
	exits := make(map[int]int, len(r.exits))
	for k, v := range r.exits {
		exits[k] = v
	}
	name := r.name
	r.mu.Unlock()

	n := len(events)
	// Edges: successor lists by event index.
	succ := make([][]int32, n)
	indeg := make([]int32, n)
	addEdge := func(a, b int) {
		succ[a] = append(succ[a], int32(b))
		indeg[b]++
	}
	// (a) Per-node K order.
	byNode := map[int][]int{}
	for i, e := range events {
		byNode[e.Node] = append(byNode[e.Node], i)
	}
	for node, idxs := range byNode {
		sort.Slice(idxs, func(a, b int) bool { return events[idxs[a]].K < events[idxs[b]].K })
		for j := 1; j < len(idxs); j++ {
			if events[idxs[j]].K == events[idxs[j-1]].K {
				return nil, fmt.Errorf("trace: balancer %d served two tokens with the same index %d", node, events[idxs[j]].K)
			}
			addEdge(idxs[j-1], idxs[j])
		}
	}
	// (b) Per-token path order (recorded order is path order because the
	// events were appended by the traversing goroutine itself).
	byToken := map[int][]int{}
	for i, e := range events {
		byToken[e.Token] = append(byToken[e.Token], i)
	}
	for _, idxs := range byToken {
		for j := 1; j < len(idxs); j++ {
			addEdge(idxs[j-1], idxs[j])
		}
	}
	// Kahn topological sort.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]Event, 0, n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, events[i])
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, int(j))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("trace: recorded orders are cyclic (%d of %d events linearized) — impossible execution", len(order), n)
	}
	return &Trace{Net: name, Events: order, Exits: exits}, nil
}

// Replay validates the trace against the network's semantics: executing
// the events in order, every event's K must equal the balancer's running
// count, its Port must equal the balancer function (init+K) mod q, each
// token's hops must follow the wiring, and each token's final hop must
// land on its recorded exit wire. The network is only read (topology).
func (tr *Trace) Replay(net *network.Network) error {
	count := make([]int64, net.Size())
	// Expected location per token: start unset; first event must be at the
	// entry node of some input wire (we don't know the wire, so we only
	// check continuity after the first hop).
	where := map[int]int{} // token -> expected next node (-1 none yet)
	for i, e := range tr.Events {
		if e.Node < 0 || e.Node >= net.Size() {
			return fmt.Errorf("trace: event %d names unknown balancer %d", i, e.Node)
		}
		if count[e.Node] != e.K {
			return fmt.Errorf("trace: event %d: balancer %d expected customer %d, trace says %d",
				i, e.Node, count[e.Node], e.K)
		}
		nd := net.Node(e.Node)
		q := int64(nd.Out())
		wantPort := int((nd.Balancer().Init() + e.K) % q)
		if e.Port != wantPort {
			return fmt.Errorf("trace: event %d: balancer %d customer %d must exit port %d, trace says %d",
				i, e.Node, e.K, wantPort, e.Port)
		}
		if expect, ok := where[e.Token]; ok && expect != e.Node {
			return fmt.Errorf("trace: event %d: token %d expected at balancer %d, trace says %d",
				i, e.Token, expect, e.Node)
		}
		count[e.Node]++
		next, nport := net.Dest(e.Node, e.Port)
		if next >= 0 {
			where[e.Token] = next
		} else {
			delete(where, e.Token)
			if exit, ok := tr.Exits[e.Token]; ok && exit != nport {
				return fmt.Errorf("trace: token %d recorded exit %d but replay exits %d", e.Token, exit, nport)
			}
		}
	}
	if len(where) != 0 {
		return fmt.Errorf("trace: %d tokens never exited", len(where))
	}
	return nil
}

// ExitCensus tallies exits per output wire.
func (tr *Trace) ExitCensus(outWidth int) []int64 {
	out := make([]int64, outWidth)
	for _, wire := range tr.Exits {
		out[wire]++
	}
	return out
}
