package conformance

import (
	"testing"

	"repro/internal/core"
)

// TestLatencyFrameBillUnchanged is the observability zero-cost gate:
// the latency histograms, the flight ring and the /debug/flights
// surface instrument the xport flight path, and this test proves they
// add ZERO frames by replaying E31's exact workload (C(4,8), 2 shards,
// 512 single Incs at k=1 and 32 batches at k=64) and asserting the
// absolute integer bill recorded BEFORE the instrumentation landed:
// 2048 rpcs at k=1 and 480 rpcs at k=64 (0.234 rpcs/token, under the
// 1.05 floor), bit-identical on every transport. If instrumentation —
// or anything else — ever adds a frame, retries a flight, or changes
// the walk, this fails with the exact delta.
func TestLatencyFrameBillUnchanged(t *testing.T) {
	// The E31 bill for C(4,8): depth 3, so k=1 costs depth+1 = 4 rpcs
	// per token; the batched walk costs 15 rpcs per 64-token batch
	// (balancers touched + non-empty exit cells).
	const (
		wantK1Bill  = 2048 // 512 tokens x (depth+1)
		wantK64Bill = 480  // 32 batches x 15 rpcs
	)
	for _, fx := range transports {
		t.Run(fx.name, func(t *testing.T) {
			topo, err := core.New(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			inst := fx.mk(t, topo, 2)
			ctr := inst.counter(1)
			for i := 0; i < 512; i++ {
				if _, err := ctr.Inc(i); err != nil {
					t.Fatal(err)
				}
			}
			if got := ctr.RPCs(); got != wantK1Bill {
				t.Fatalf("k=1 bill = %d rpcs for 512 tokens, want the pre-instrumentation %d", got, wantK1Bill)
			}
			var scratch []int64
			for i := 0; i < 32; i++ {
				if scratch, err = ctr.IncBatch(i, 64, scratch[:0]); err != nil {
					t.Fatal(err)
				}
			}
			batched := ctr.RPCs() - wantK1Bill
			if batched != wantK64Bill {
				t.Fatalf("k=64 bill = %d rpcs for 2048 tokens, want the pre-instrumentation %d", batched, wantK64Bill)
			}
			if 1000*batched > 235*2048 {
				t.Fatalf("k=64 bill %d rpcs breaks the E31 0.234 rpcs/token floor", batched)
			}
			// The instrumentation the bill just proved free must actually
			// be populated: every flight observed, every flight ringed.
			if got, err := ctr.Read(); err != nil || got != 512+32*64 {
				t.Fatalf("Read = %d, %v; want %d", got, err, 512+32*64)
			}
			if flights := ctr.Flights(); len(flights) == 0 {
				t.Fatal("flight ring empty after 544 flights")
			}
			ctr.Close()
		})
	}
}
