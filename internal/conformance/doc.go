// Package conformance holds the transport conformance suite: one set
// of behavioural tests run identically against every transport that
// plugs into the internal/xport seam — tcpnet (stream sockets), udpnet
// (datagrams with retransmit) and inproc (the dependency-free in-memory
// link with injectable faults).
//
// The suite is the executable contract a new transport must satisfy
// before it ships:
//
//   - Exact counts under chaos: with transport-appropriate faults
//     injected (connection kills, datagram loss/duplication/reordering,
//     lost calls and replies), a striped fleet still hands out dense,
//     gap-free, duplicate-free values and reads back the exact total.
//   - Exactly-once retry/replay: a flight that dies mid-window replays
//     its sequence tape on a fresh session and the shard-side dedup
//     absorbs every duplicate — no value leaks, no double-steps.
//   - Close semantics: Close during concurrent flights drains cleanly,
//     every caller observes xport.ErrClosed (the one shared sentinel),
//     and the control-plane health flips live -> closed.
//   - Identical wire bills: the per-token RPC cost is integer-equal
//     across transports at k=1 and k=64 — the frame count is a property
//     of the walk, not the link — and batched amortisation stays under
//     the 1.05 rpcs/token budget.
//   - Single-source defaults: retry attempts, backoff and pool-width
//     defaults come from xport alone; the per-transport aliases cannot
//     drift.
//
// The package has no non-test code beyond this doc; `make conformance`
// (and the CI job of the same name) runs it under the race detector.
package conformance
