package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/inproc"
	"repro/internal/network"
	"repro/internal/tcpnet"
	"repro/internal/udpnet"
	"repro/internal/xport"
)

// instance is one booted deployment of a transport, with the suite's
// two fault hooks bound to whatever injection mechanism that transport
// has: chaos(true) turns on sustained random faults (and chaos(false)
// quiesces them for the exact-read phase), arm() injects one
// deterministic burst of failures guaranteed to force a mid-window
// retry/replay on the next flight.
type instance struct {
	counter func(width int) *xport.Counter
	chaos   func(on bool)
	arm     func()
}

type fixture struct {
	name string
	mk   func(t *testing.T, topo *network.Network, shards int) *instance
}

var transports = []fixture{
	{name: "tcp", mk: mkTCP},
	{name: "udp", mk: mkUDP},
	{name: "inproc", mk: mkInproc},
}

// failAfter is a net.Conn that dies — closes and errors — when its
// write allowance runs out, killing a TCP session at an exact frame
// boundary mid-window.
type failAfter struct {
	net.Conn
	allow atomic.Int32
}

func newFailAfter(conn net.Conn, allow int32) *failAfter {
	f := &failAfter{Conn: conn}
	f.allow.Store(allow)
	return f
}

func (f *failAfter) Write(b []byte) (int, error) {
	if f.allow.Add(-1) < 0 {
		f.Conn.Close()
		return 0, errors.New("conformance: injected connection death")
	}
	return f.Conn.Write(b)
}

func mkTCP(t *testing.T, topo *network.Network, shards int) *instance {
	t.Helper()
	addrs := make([]string, shards)
	var servers []*tcpnet.Shard
	for i := 0; i < shards; i++ {
		s, err := tcpnet.StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	c := tcpnet.NewCluster(topo, addrs)
	rng := rand.New(rand.NewSource(42))
	var mu sync.Mutex
	return &instance{
		counter: c.NewCounterPool,
		chaos: func(on bool) {
			if !on {
				c.SetDialWrapper(nil)
				return
			}
			c.SetDialWrapper(func(conn net.Conn) net.Conn {
				mu.Lock()
				allow := 25 + rng.Intn(35)
				mu.Unlock()
				return newFailAfter(conn, int32(allow))
			})
		},
		// Kill the next dialed connection after 3 frames (HELLO plus a
		// couple of STEPNs) — mid-window, after part of it applied —
		// then dial clean so the retry replays against live shards.
		arm: func() {
			var used atomic.Bool
			c.SetDialWrapper(func(conn net.Conn) net.Conn {
				if used.CompareAndSwap(false, true) {
					return newFailAfter(conn, 3)
				}
				return conn
			})
		},
	}
}

func mkUDP(t *testing.T, topo *network.Network, shards int) *instance {
	t.Helper()
	c, stop, err := udpnet.StartCluster(topo, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return &instance{
		counter: c.NewCounterPool,
		chaos: func(on bool) {
			if !on {
				c.SetDialWrapper(nil)
				return
			}
			c.SetDialWrapper(udpnet.Faults{Drop: 0.15, Dup: 0.15, Reorder: 0.15, Seed: 7}.Wrapper())
		},
		// Every request datagram sent twice: the shard's dedup must
		// absorb the duplicate of every mutating frame.
		arm: func() {
			c.SetDialWrapper(udpnet.Faults{Dup: 1, Seed: 7}.Wrapper())
		},
	}
}

func mkInproc(t *testing.T, topo *network.Network, shards int) *instance {
	t.Helper()
	c, stop, err := inproc.StartCluster(topo, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return &instance{
		counter: c.NewCounterPool,
		chaos: func(on bool) {
			if !on {
				c.SetFaults(inproc.Faults{})
				return
			}
			// Per-FRAME loss compounds over a whole window's frames per
			// flight attempt, so these stay low enough that 16 attempts
			// make flight exhaustion vanishingly unlikely.
			c.SetFaults(inproc.Faults{CallLoss: 0.01, ReplyLoss: 0.01, Seed: 7})
		},
		// Lose the replies of the next three mutating frames AFTER the
		// shard applied them — the pure replay case: the client must
		// retry and the dedup must answer from the recorded replies.
		arm: func() { c.LoseReplies(3) },
	}
}

// checkDense asserts the claimed values are exactly {0..total-1} as
// seen through S stripes: within every residue class v ≡ s (mod S) the
// sorted values are s, s+S, s+2S, ... with zero gaps and zero
// duplicates — the end-to-end exactly-once property.
func checkDense(t *testing.T, vals []int64, S int, total int64) {
	t.Helper()
	if int64(len(vals)) != total {
		t.Fatalf("claimed %d values, want %d", len(vals), total)
	}
	classes := make(map[int64][]int64, S)
	for _, v := range vals {
		classes[v%int64(S)] = append(classes[v%int64(S)], v)
	}
	for s, vs := range classes {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for i, v := range vs {
			if v != int64(i)*int64(S)+s {
				t.Fatalf("stripe %d values gapped or duplicated at rank %d: %v", s, i, vs)
			}
		}
	}
}

// The chaos grid, identical for every transport: sessions die, packets
// vanish, duplicate and reorder, calls and replies get lost — per the
// transport's own failure model — while a striped fleet serves a
// concurrent workload across every (stripes × pool width × batch size)
// cell, and the counts must come out EXACT: Read() equals the
// sequential total and the claimed values are dense within every
// stripe's residue class.
func TestConformanceChaosExactCountGrid(t *testing.T) {
	for _, fx := range transports {
		for _, S := range []int{1, 2} {
			for _, width := range []int{1, 2} {
				for _, k := range []int{1, 5} {
					t.Run(fmt.Sprintf("%s/S=%d/width=%d/k=%d", fx.name, S, width, k), func(t *testing.T) {
						topo, err := core.New(4, 8)
						if err != nil {
							t.Fatal(err)
						}
						insts := make([]*instance, S)
						stripes := make([]*xport.Counter, S)
						for i := 0; i < S; i++ {
							insts[i] = fx.mk(t, topo, 2)
							insts[i].chaos(true)
							stripes[i] = insts[i].counter(width)
						}
						ctr := xport.NewShardedCounter("conformance:"+fx.name, stripes)
						defer ctr.Close()
						ctr.SetRetryPolicy(16, 30*time.Second)

						const procs, per = 4, 6
						vals := make([][]int64, procs)
						var wg sync.WaitGroup
						for pid := 0; pid < procs; pid++ {
							wg.Add(1)
							go func(pid int) {
								defer wg.Done()
								for i := 0; i < per; i++ {
									var err error
									if k == 1 {
										var v int64
										v, err = ctr.Inc(pid)
										vals[pid] = append(vals[pid], v)
									} else {
										vals[pid], err = ctr.IncBatch(pid+i, k, vals[pid])
									}
									if err != nil {
										t.Errorf("pid %d op %d: %v", pid, i, err)
										return
									}
								}
							}(pid)
						}
						wg.Wait()
						if t.Failed() {
							return
						}
						// Quiesce the faults for the read phase, then
						// verify exactness.
						for _, inst := range insts {
							inst.chaos(false)
						}
						total := int64(procs * per * k)
						got, err := ctr.Read()
						if err != nil {
							t.Fatal(err)
						}
						if got != total {
							t.Fatalf("Read() = %d, want %d — values leaked under chaos", got, total)
						}
						var all []int64
						for _, vs := range vals {
							all = append(all, vs...)
						}
						checkDense(t, all, S, total)
					})
				}
			}
		}
	}
}

// Deterministic retry/replay: each transport's arm() hook forces the
// next flight to fail AFTER part of its window was applied (TCP: the
// connection dies after 3 frames; UDP: every datagram is sent twice;
// inproc: three replies are lost post-apply). The retried window must
// replay the sequence tape and land exactly once: dense values, exact
// Read.
func TestConformanceRetryReplayExactlyOnce(t *testing.T) {
	for _, fx := range transports {
		t.Run(fx.name, func(t *testing.T) {
			topo, err := core.New(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			inst := fx.mk(t, topo, 1)
			ctr := inst.counter(1)
			defer ctr.Close()
			ctr.SetRetryPolicy(8, 10*time.Second)

			inst.arm()
			const k = 10
			vals, err := ctr.IncBatch(0, k, nil)
			if err != nil {
				t.Fatalf("armed fault surfaced instead of retrying: %v", err)
			}
			checkDense(t, vals, 1, k)
			got, err := ctr.Read()
			if err != nil {
				t.Fatal(err)
			}
			if got != k {
				t.Fatalf("Read() = %d, want %d — the replay leaked values", got, k)
			}
		})
	}
}

// Close during concurrent flights: every caller that loses the race
// observes xport.ErrClosed — the one sentinel shared by all transports
// — and nothing else; afterwards the counter stays closed for Inc and
// Read alike.
func TestConformanceCloseDuringFlight(t *testing.T) {
	for _, fx := range transports {
		t.Run(fx.name, func(t *testing.T) {
			topo, err := core.New(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			inst := fx.mk(t, topo, 1)
			ctr := inst.counter(2)

			const procs = 4
			errs := make([]error, procs)
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for {
						if _, err := ctr.Inc(g); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			time.Sleep(20 * time.Millisecond)
			ctr.Close()
			wg.Wait()
			for g, err := range errs {
				if !errors.Is(err, xport.ErrClosed) {
					t.Fatalf("goroutine %d: error %v, want xport.ErrClosed", g, err)
				}
			}
			if _, err := ctr.Inc(0); !errors.Is(err, xport.ErrClosed) {
				t.Fatalf("Inc after Close: %v, want xport.ErrClosed", err)
			}
			if _, err := ctr.Read(); !errors.Is(err, xport.ErrClosed) {
				t.Fatalf("Read after Close: %v, want xport.ErrClosed", err)
			}
			// The transport aliases are the SAME sentinel, not copies.
			for name, sentinel := range map[string]error{
				"tcpnet": tcpnet.ErrClosed, "udpnet": udpnet.ErrClosed, "inproc": inproc.ErrClosed,
			} {
				if !errors.Is(errs[0], sentinel) {
					t.Fatalf("%s.ErrClosed is not the shared xport sentinel", name)
				}
			}
		})
	}
}

// The control-plane drain contract: a live counter reports
// Live+Quiescent, flips non-quiescent while flights are in the air,
// returns to quiescence when the load stops, and Close flips it to
// not-live with state "closed" — on every transport, because the state
// machine lives in xport, not the link.
func TestConformanceDrainHealthFlips(t *testing.T) {
	for _, fx := range transports {
		t.Run(fx.name, func(t *testing.T) {
			topo, err := core.New(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			inst := fx.mk(t, topo, 1)
			ctr := inst.counter(1)

			if h := ctr.Health(); !h.Live || !h.Quiescent || h.Detail != "live" {
				t.Fatalf("fresh counter health = %+v, want live+quiescent", h)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if _, err := ctr.IncBatch(0, 8, nil); err != nil {
							t.Errorf("load: %v", err)
							return
						}
					}
				}
			}()
			// Under sustained load the counter must be observably
			// non-quiescent: a flight holds a pool session.
			busy := false
			for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
				if h := ctr.Health(); !h.Quiescent {
					busy = true
					break
				}
			}
			close(stop)
			wg.Wait()
			if !busy {
				t.Fatal("counter never left quiescence under sustained load")
			}
			if h := ctr.Health(); !h.Quiescent {
				t.Fatalf("health after load stopped = %+v, want quiescent", h)
			}

			ctr.Close()
			h := ctr.Health()
			if h.Live || !h.Quiescent || h.Detail != "closed" {
				t.Fatalf("health after Close = %+v, want not-live, quiescent, closed", h)
			}
			st, ok := ctr.Status().(xport.CounterStatus)
			if !ok || st.State != "closed" {
				t.Fatalf("status after Close = %+v, want state closed", ctr.Status())
			}
		})
	}
}

// The wire bill is a property of the WALK, not the link: for the same
// topology and the same workload, every transport sends the same
// number of request frames, integer-exactly — TCP streams them one
// round trip each, UDP packs whole layers into datagrams, inproc calls
// straight through, and all three bill identically at zero loss. At
// k=64 the batched walk amortises to at most 1.05 rpcs/token
// (integer-checked as 100·rpcs ≤ 105·tokens).
func TestTransportFrameBillEquality(t *testing.T) {
	for _, k := range []int{1, 64} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			bills := make(map[string]int64, len(transports))
			var tokens int64
			for _, fx := range transports {
				topo, err := core.New(4, 8)
				if err != nil {
					t.Fatal(err)
				}
				inst := fx.mk(t, topo, 1)
				ctr := inst.counter(1)
				if k == 1 {
					tokens = 32
					for i := 0; i < int(tokens); i++ {
						if _, err := ctr.Inc(0); err != nil {
							t.Fatal(err)
						}
					}
				} else {
					tokens = int64(k)
					if _, err := ctr.IncBatch(0, k, nil); err != nil {
						t.Fatal(err)
					}
				}
				bills[fx.name] = ctr.RPCs()
				ctr.Close()
			}
			ref := bills[transports[0].name]
			for name, rpcs := range bills {
				if rpcs != ref {
					t.Fatalf("frame bills diverge: %v (want all == %d, got %s = %d)", bills, ref, name, rpcs)
				}
			}
			if k == 64 && 100*ref > 105*tokens {
				t.Fatalf("batched bill %d rpcs for %d tokens exceeds the 1.05 rpcs/token budget", ref, tokens)
			}
		})
	}
}

// The retry/backoff/pool defaults have exactly one source of truth —
// xport — and the per-transport names are aliases of it. A transport
// "tuning" its own copy is a drift this test turns into a failure. The
// retry BUDGET is the one deliberately per-transport knob (UDP absorbs
// loss below the flight layer, so its budget is wider).
func TestRetryDefaultsSingleSource(t *testing.T) {
	if tcpnet.DefaultRetryAttempts != xport.DefaultRetryAttempts ||
		udpnet.DefaultRetryAttempts != xport.DefaultRetryAttempts ||
		inproc.DefaultRetryAttempts != xport.DefaultRetryAttempts {
		t.Fatal("DefaultRetryAttempts drifted from xport")
	}
	if tcpnet.DefaultRetryBackoff != xport.DefaultRetryBackoff ||
		udpnet.DefaultRetryBackoff != xport.DefaultRetryBackoff ||
		inproc.DefaultRetryBackoff != xport.DefaultRetryBackoff {
		t.Fatal("DefaultRetryBackoff drifted from xport")
	}
	if tcpnet.DefaultRetryBudget != 2*time.Second ||
		udpnet.DefaultRetryBudget != 8*time.Second ||
		inproc.DefaultRetryBudget != 2*time.Second {
		t.Fatal("per-transport retry budgets changed; update OPERATIONS.md and this test together")
	}

	// Pool width defaults to the topology's input width on every
	// transport — the xport constructor's rule, observed through the
	// status document.
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range transports {
		inst := fx.mk(t, topo, 1)
		ctr := inst.counter(0)
		st := ctr.Status().(xport.CounterStatus)
		if st.PoolWidth != topo.InWidth() {
			t.Fatalf("%s: default pool width %d, want input width %d", fx.name, st.PoolWidth, topo.InWidth())
		}
		if st.Transport != fx.name {
			t.Fatalf("status transport %q, want %q", st.Transport, fx.name)
		}
		ctr.Close()
	}
}
