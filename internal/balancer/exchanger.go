package balancer

import (
	"runtime"
	"sync/atomic"
)

// Exchanger slot states, packed into the top bits of the slot word.
// The low 32 bits carry the value being exchanged.
const (
	slotEmpty   int64 = 0 << 32
	slotWaiting int64 = 1 << 32
	slotBusy    int64 = 2 << 32
	stateMask   int64 = ^int64(0) << 32
	valueMask   int64 = (1 << 32) - 1
)

// Exchanger lets two concurrent callers swap 32-bit values. It is the
// diffraction primitive of the diffracting tree (Shavit & Zemach, ref [26]):
// two tokens that meet in a prism slot "collide and eliminate" — one is
// sent left, the other right — without touching the tree's toggle.
//
// The zero value is ready to use.
type Exchanger struct {
	slot atomic.Int64
}

// Outcome of an exchange attempt.
type Outcome int

const (
	// Timeout: no partner arrived within the spin budget.
	Timeout Outcome = iota
	// First: a partner arrived; this caller was first into the slot.
	First
	// Second: this caller found a waiting partner in the slot.
	Second
)

// Exchange offers value v (must fit in 32 bits) and spins up to budget
// iterations for a partner. On First/Second it returns the partner's value.
func (e *Exchanger) Exchange(v uint32, budget int) (partner uint32, outcome Outcome) {
	for i := 0; i < budget; i++ {
		cur := e.slot.Load()
		switch cur & stateMask {
		case slotEmpty:
			// Try to install ourselves as the waiter.
			if !e.slot.CompareAndSwap(cur, slotWaiting|int64(v)) {
				continue
			}
			// Wait for a partner to flip us to BUSY. When goroutines
			// outnumber processors the partner may not even be running;
			// yield occasionally so large spin budgets translate into
			// real wall-clock pairing windows (same guard as the
			// eliminator in internal/shard/elim.go).
			for j := i; j < budget; j++ {
				now := e.slot.Load()
				if now&stateMask == slotBusy {
					e.slot.Store(slotEmpty)
					return uint32(now & valueMask), First
				}
				if j&1023 == 1023 {
					runtime.Gosched()
				}
			}
			// Withdraw; if the CAS fails a partner just arrived.
			if e.slot.CompareAndSwap(slotWaiting|int64(v), slotEmpty) {
				return 0, Timeout
			}
			now := e.slot.Load()
			if now&stateMask == slotBusy {
				e.slot.Store(slotEmpty)
				return uint32(now & valueMask), First
			}
			return 0, Timeout
		case slotWaiting:
			// A partner is waiting: claim it.
			if e.slot.CompareAndSwap(cur, slotBusy|int64(v)) {
				return uint32(cur & valueMask), Second
			}
		case slotBusy:
			// Two other tokens are completing an exchange; retry.
		}
	}
	return 0, Timeout
}
