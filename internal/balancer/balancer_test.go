package balancer

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStepSequence(t *testing.T) {
	b := New(2, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := b.Step(); got != w {
			t.Fatalf("step %d = %d, want %d", i, got, w)
		}
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.State() != 1 {
		t.Fatalf("State = %d, want 1", b.State())
	}
}

func TestStepAntiCancels(t *testing.T) {
	b := New(2, 4)
	b.Step() // exits 0
	b.Step() // exits 1
	if got := b.StepAnti(); got != 1 {
		t.Fatalf("antitoken exits %d, want 1 (cancelling last token)", got)
	}
	if got := b.Step(); got != 1 {
		t.Fatalf("next token exits %d, want 1", got)
	}
}

func TestAntiFirst(t *testing.T) {
	// Antitoken on a fresh balancer: state goes negative; wire wraps.
	b := New(1, 4)
	if got := b.StepAnti(); got != 3 {
		t.Fatalf("first antitoken exits %d, want 3", got)
	}
	if got := b.Step(); got != 3 {
		t.Fatalf("token after negative state exits %d, want 3", got)
	}
}

// StepAntiN(n) must be indistinguishable from n back-to-back StepAnti
// calls: same final count, and DistributeInto over the returned index
// yields exactly the exit multiset of the singles.
func TestStepAntiNMatchesSingles(t *testing.T) {
	for _, c := range []struct {
		q       int
		init    int64
		preload int64 // tokens processed before the anti batch
		n       int64 // anti batch size
	}{
		{3, 0, 7, 4},
		{4, 2, 2, 5}, // drives the count negative
		{5, 1, 0, 3}, // anti-first on a fresh balancer
		{1, 0, 9, 9},
	} {
		batched := NewInit(2, c.q, c.init)
		singles := NewInit(2, c.q, c.init)
		for i := int64(0); i < c.preload; i++ {
			batched.Step()
			singles.Step()
		}
		want := make([]int64, c.q)
		for i := int64(0); i < c.n; i++ {
			want[singles.StepAnti()]++
		}
		k := batched.StepAntiN(c.n)
		if k != c.preload-c.n {
			t.Fatalf("q=%d: StepAntiN returned %d, want %d", c.q, k, c.preload-c.n)
		}
		got := DistributeInto(batched.Init()+k, c.n, make([]int64, c.q))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d init=%d pre=%d n=%d: batch exits %v, singles %v",
					c.q, c.init, c.preload, c.n, got, want)
			}
		}
		if batched.Count() != singles.Count() {
			t.Fatalf("counts diverged: %d vs %d", batched.Count(), singles.Count())
		}
	}
}

func TestStepAntiNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepAntiN(0) did not panic")
		}
	}()
	New(2, 2).StepAntiN(0)
}

func TestInitialState(t *testing.T) {
	b := NewInit(2, 4, 6) // 6 mod 4 = 2
	if b.Init() != 2 {
		t.Fatalf("Init = %d, want 2", b.Init())
	}
	if got := b.Step(); got != 2 {
		t.Fatalf("first step = %d, want 2", got)
	}
	b2 := NewInit(2, 4, -1) // normalized to 3
	if b2.Init() != 3 {
		t.Fatalf("negative init normalized to %d, want 3", b2.Init())
	}
}

func TestReset(t *testing.T) {
	b := NewInit(2, 4, 1)
	b.Step()
	b.Step()
	b.Reset()
	if got := b.Step(); got != 1 {
		t.Fatalf("after reset first step = %d, want 1", got)
	}
}

func TestInvalidWidthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,2) did not panic")
		}
	}()
	New(0, 2)
}

func TestOutputCountsStep(t *testing.T) {
	b := New(2, 4)
	for i := 0; i < 11; i++ {
		b.Step()
	}
	got := b.OutputCounts()
	want := []int64{3, 3, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutputCounts = %v, want %v", got, want)
		}
	}
}

func TestDistribute(t *testing.T) {
	cases := []struct {
		s0, s int64
		q     int
		want  []int64
	}{
		{0, 0, 3, []int64{0, 0, 0}},
		{0, 7, 3, []int64{3, 2, 2}},
		{1, 7, 3, []int64{2, 3, 2}},
		{2, 2, 3, []int64{1, 0, 1}},
		{0, 1, 1, []int64{1}},
	}
	for _, c := range cases {
		got := Distribute(c.s0, c.s, c.q)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Distribute(%d,%d,%d) = %v, want %v", c.s0, c.s, c.q, got, c.want)
			}
		}
	}
}

// Property: Distribute sums to s and matches brute-force simulation.
func TestQuickDistribute(t *testing.T) {
	f := func(s0raw, sraw int64, qraw uint8) bool {
		q := int(qraw%8) + 1
		s0 := ((s0raw % int64(q)) + int64(q)) % int64(q)
		s := sraw % 200
		if s < 0 {
			s = -s
		}
		got := Distribute(s0, s, q)
		brute := make([]int64, q)
		for j := int64(0); j < s; j++ {
			brute[(s0+j)%int64(q)]++
		}
		var sum int64
		for i := range brute {
			if got[i] != brute[i] {
				return false
			}
			sum += got[i]
		}
		return sum == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Concurrent balancer: the output distribution over q wires must be exactly
// the step distribution of the total, whatever the interleaving.
func TestConcurrentStepDistribution(t *testing.T) {
	b := New(2, 5)
	const goroutines, per = 8, 2000
	counts := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		counts[g] = make([]int64, 5)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				counts[g][b.Step()]++
			}
		}(g)
	}
	wg.Wait()
	total := make([]int64, 5)
	for _, c := range counts {
		for i, v := range c {
			total[i] += v
		}
	}
	want := Distribute(0, goroutines*per, 5)
	for i := range want {
		if total[i] != want[i] {
			t.Fatalf("concurrent distribution %v, want %v", total, want)
		}
	}
}

// Mixed tokens and antitokens: net distribution equals Distribute of the
// net count when tokens never outnumber... (net >= 0 at the end). We only
// check the aggregate count here; the step-property-of-differences test
// lives at network level.
func TestConcurrentTokensAndAntitokens(t *testing.T) {
	b := New(2, 3)
	var wg sync.WaitGroup
	const per = 3000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Step()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.StepAnti()
			}
		}()
	}
	wg.Wait()
	if got := b.Count(); got != 2*per {
		t.Fatalf("net count = %d, want %d", got, 2*per)
	}
}

func TestToggle(t *testing.T) {
	var tg Toggle
	for i := 0; i < 10; i++ {
		if got := tg.Step(); got != i%2 {
			t.Fatalf("toggle step %d = %d", i, got)
		}
	}
	if got := tg.StepAnti(); got != 1 {
		t.Fatalf("toggle anti = %d, want 1", got)
	}
	tg.Reset()
	if tg.Count() != 0 || tg.Step() != 0 {
		t.Fatal("toggle reset broken")
	}
}

func TestExchangerPairsSwap(t *testing.T) {
	var ex Exchanger
	var wg sync.WaitGroup
	results := make([]struct {
		partner uint32
		out     Outcome
	}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				p, o := ex.Exchange(uint32(100+i), 100000)
				if o != Timeout {
					results[i].partner, results[i].out = p, o
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if results[0].out == results[1].out {
		t.Fatalf("both got outcome %v", results[0].out)
	}
	if results[0].partner != 101 || results[1].partner != 100 {
		t.Fatalf("partners = %d, %d", results[0].partner, results[1].partner)
	}
}

func TestExchangerTimeout(t *testing.T) {
	var ex Exchanger
	if _, o := ex.Exchange(1, 10); o != Timeout {
		t.Fatalf("lone exchange outcome = %v, want Timeout", o)
	}
	// Slot must be empty again: a second lone attempt also times out
	// rather than pairing with a ghost.
	if p, o := ex.Exchange(2, 10); o != Timeout {
		t.Fatalf("second lone exchange = (%d,%v), want Timeout", p, o)
	}
}

// Stress: many goroutines exchanging; every successful pair must agree.
func TestExchangerStress(t *testing.T) {
	var ex Exchanger
	const n = 8
	var wg sync.WaitGroup
	firsts := make([]map[uint32]int, n)
	seconds := make([]map[uint32]int, n)
	for g := 0; g < n; g++ {
		firsts[g] = map[uint32]int{}
		seconds[g] = map[uint32]int{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p, o := ex.Exchange(uint32(g), 200)
				switch o {
				case First:
					firsts[g][p]++
				case Second:
					seconds[g][p]++
				}
			}
		}(g)
	}
	wg.Wait()
	// Conservation: total First outcomes == total Second outcomes, since
	// every pairing has exactly one of each.
	var f, s int
	for g := 0; g < n; g++ {
		for _, c := range firsts[g] {
			f += c
		}
		for _, c := range seconds[g] {
			s += c
		}
	}
	if f != s {
		t.Fatalf("pair conservation broken: %d firsts vs %d seconds", f, s)
	}
}
