package balancer

import (
	"sync"
	"testing"
)

// White-box tests for Exchanger state transitions.

func TestExchangerBusySlotRetries(t *testing.T) {
	var ex Exchanger
	// Force the slot into BUSY: a third party mid-exchange.
	ex.slot.Store(slotBusy | 42)
	if _, o := ex.Exchange(7, 50); o != Timeout {
		t.Fatalf("exchange against busy slot = %v, want Timeout", o)
	}
	// Slot still busy (we must not have clobbered it).
	if ex.slot.Load()&stateMask != slotBusy {
		t.Fatal("busy slot clobbered")
	}
}

func TestExchangerSecondClaimsWaiting(t *testing.T) {
	var ex Exchanger
	ex.slot.Store(slotWaiting | 99)
	p, o := ex.Exchange(5, 10)
	if o != Second || p != 99 {
		t.Fatalf("= (%d,%v), want (99,Second)", p, o)
	}
	// Slot now BUSY with our value, awaiting the first party's pickup.
	if got := ex.slot.Load(); got != slotBusy|5 {
		t.Fatalf("slot = %x", got)
	}
}

func TestExchangerFirstPicksUpAfterClaim(t *testing.T) {
	var ex Exchanger
	done := make(chan struct{})
	var p1 uint32
	var o1 Outcome
	go func() {
		defer close(done)
		for {
			p1, o1 = ex.Exchange(1, 100000)
			if o1 != Timeout {
				return
			}
		}
	}()
	var p2 uint32
	var o2 Outcome
	for {
		p2, o2 = ex.Exchange(2, 100000)
		if o2 != Timeout {
			break
		}
	}
	<-done
	if o1 == o2 {
		t.Fatalf("both outcomes %v", o1)
	}
	if o1 == First && (p1 != 2 || p2 != 1) {
		t.Fatalf("values crossed wrong: %d, %d", p1, p2)
	}
	if o1 == Second && (p1 != 2 || p2 != 1) {
		t.Fatalf("values crossed wrong: %d, %d", p1, p2)
	}
	// Slot drained.
	if ex.slot.Load() != slotEmpty {
		t.Fatal("slot not drained")
	}
}

// Hammer: conservation holds across many concurrent exchanges on many
// slots (prism-like usage).
func TestExchangerArrayHammer(t *testing.T) {
	const slots, procs, per = 4, 6, 3000
	ex := make([]Exchanger, slots)
	var firsts, seconds, timeouts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var f, s, to int64
			for i := 0; i < per; i++ {
				_, o := ex[(g+i)%slots].Exchange(uint32(g), 64)
				switch o {
				case First:
					f++
				case Second:
					s++
				default:
					to++
				}
			}
			mu.Lock()
			firsts += f
			seconds += s
			timeouts += to
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if firsts != seconds {
		t.Fatalf("pair conservation broken: %d firsts, %d seconds", firsts, seconds)
	}
	if firsts+seconds+timeouts != procs*per {
		t.Fatalf("outcome conservation broken")
	}
}
