// Package balancer implements the asynchronous switch primitives of the
// paper: (p,q)-balancers (Section 1.1, Fig. 1) realized as single atomic
// memory words, supporting both tokens (Fetch&Increment traffic) and
// antitokens (Fetch&Decrement traffic, per Aiello et al., ref [2] of the
// paper), plus the randomized exchanger used by diffracting trees (§1.4.1).
//
// A (p,q)-balancer has state s in {0..q-1}: the i-th token to be processed
// atomically exits on output wire s_i = (s0 + i) mod q. On an MIMD machine
// the balancer is one shared memory word; contention arises from tokens
// serializing on that word (§1.2).
package balancer

import (
	"fmt"
	"sync/atomic"
)

// PQ is a (p,q)-balancer state machine. The input width p does not affect
// the transition behaviour (a balancer processes one token at a time
// regardless of which input wire it arrived on); it is recorded for
// structural bookkeeping. The zero value is a balancer with q unset and is
// not usable; create with New.
type PQ struct {
	count atomic.Int64 // net number of (tokens - antitokens) processed
	init  int64        // initial state s0 in [0, q)
	p, q  int32
}

// New returns a (p,q)-balancer with initial state 0.
func New(p, q int) *PQ {
	if p < 1 || q < 1 {
		panic(fmt.Sprintf("balancer: invalid widths (%d,%d)", p, q))
	}
	return &PQ{p: int32(p), q: int32(q)}
}

// NewInit returns a (p,q)-balancer whose first token exits on wire s0 mod q.
// Randomized initial states are the Section 7 open-problem ablation.
func NewInit(p, q int, s0 int64) *PQ {
	b := New(p, q)
	b.init = ((s0 % int64(q)) + int64(q)) % int64(q)
	return b
}

// In returns the input width p.
func (b *PQ) In() int { return int(b.p) }

// Init returns the configured initial state s0.
func (b *PQ) Init() int64 { return b.init }

// Out returns the output width q.
func (b *PQ) Out() int { return int(b.q) }

// Step atomically processes one token and returns the output wire it exits
// on. Safe for concurrent use; this is the single atomic transition
// alpha(tau, b) of §2.2.
func (b *PQ) Step() int {
	k := b.count.Add(1) - 1 // state consumed by this token
	return b.wire(k)
}

// StepK is Step that also returns the token's sequence index k at this
// balancer (the k-th token ever processed takes port (init+k) mod q).
// Used by execution tracing.
func (b *PQ) StepK() (k int64, port int) {
	k = b.count.Add(1) - 1
	return k, b.wire(k)
}

// StepN atomically processes n consecutive tokens with a single atomic
// fetch-add and returns the sequence index of the first of them: the
// batch's tokens take output wires (init+k) mod q, (init+k+1) mod q, ...,
// (init+k+n-1) mod q. Because a balancer hands consecutive tokens to
// consecutive wires round-robin, one fetch-add of n is indistinguishable
// (to every other process, and in every quiescent state) from n
// back-to-back Step calls — this is the batched-traversal primitive.
// It panics for n < 1.
func (b *PQ) StepN(n int64) (k int64) {
	if n < 1 {
		panic(fmt.Sprintf("balancer: StepN of non-positive count %d", n))
	}
	return b.count.Add(n) - n
}

// StepAnti atomically processes one antitoken: it decrements the balancer
// state and exits on the wire the most recent token would have used, so a
// token/antitoken pair cancels out (ref [2]).
func (b *PQ) StepAnti() int {
	k := b.count.Add(-1) // state after cancellation == wire of cancelled token
	return b.wire(k)
}

// StepAntiN atomically processes n consecutive antitokens with a single
// atomic fetch-add of -n and returns the sequence index of the LAST of
// them (the post-subtraction count): with a pre-call count of c, the
// batch's antitokens exit on the wires of indices c-1, c-2, ..., c-n —
// the same multiset DistributeInto(init+(c-n), n, out) describes. One
// fetch-add of -n is indistinguishable (to every other process, and in
// every quiescent state) from n back-to-back StepAnti calls, the
// antitoken mirror of StepN. It panics for n < 1.
func (b *PQ) StepAntiN(n int64) (k int64) {
	if n < 1 {
		panic(fmt.Sprintf("balancer: StepAntiN of non-positive count %d", n))
	}
	return b.count.Add(-n)
}

// wire maps a (possibly negative) step index to an output wire.
func (b *PQ) wire(k int64) int {
	q := int64(b.q)
	w := (b.init + k) % q
	if w < 0 {
		w += q
	}
	return int(w)
}

// State returns the current state (the wire the next token will take).
// Only meaningful in a quiescent state.
func (b *PQ) State() int { return b.wire(b.count.Load()) }

// Count returns the net number of tokens minus antitokens processed.
func (b *PQ) Count() int64 { return b.count.Load() }

// Reset restores the balancer to its initial state. Not safe for use
// concurrent with Step/StepAnti.
func (b *PQ) Reset() { b.count.Store(0) }

// OutputCounts returns, for a quiescent balancer, the number of tokens that
// have exited on each output wire, assuming the recorded initial state and
// a non-negative net count. The result always satisfies the step property
// after rotating by the initial state; with init 0 it is exactly the step
// sequence of §2.2.
func (b *PQ) OutputCounts() []int64 {
	return Distribute(b.init, b.count.Load(), int(b.q))
}

// Distribute returns how s tokens spread over q output wires when the first
// token exits on wire s0: wire i receives one token for every j in [0,s)
// with (s0+j) mod q == i. It panics for negative s.
func Distribute(s0, s int64, q int) []int64 {
	return DistributeInto(s0, s, make([]int64, q))
}

// DistributeInto is Distribute writing into the caller-provided slice
// (whose length is the output width q), for allocation-free hot paths such
// as batched traversal. It returns out.
func DistributeInto(s0, s int64, out []int64) []int64 {
	if s < 0 {
		panic(fmt.Sprintf("balancer: Distribute of negative count %d", s))
	}
	q := len(out)
	for i := range out {
		// First j >= 0 with (s0+j) mod q == i.
		d := (int64(i) - s0) % int64(q)
		if d < 0 {
			d += int64(q)
		}
		if d < s {
			out[i] = (s - d + int64(q) - 1) / int64(q)
		} else {
			out[i] = 0
		}
	}
	return out
}

// Toggle is the special case of a (p,2)-balancer, kept as a distinct type
// because diffracting trees and ladder layers use it on their hot path.
type Toggle struct {
	count atomic.Int64
}

// Step returns 0 or 1, alternating atomically starting with 0.
func (t *Toggle) Step() int { return int((t.count.Add(1) - 1) & 1) }

// StepAnti undoes the most recent step.
func (t *Toggle) StepAnti() int { return int(t.count.Add(-1) & 1) }

// Count returns the net number of tokens processed.
func (t *Toggle) Count() int64 { return t.count.Load() }

// Reset restores the initial state (not concurrency-safe).
func (t *Toggle) Reset() { t.count.Store(0) }
