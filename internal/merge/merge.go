// Package merge implements the difference merging network M(t,δ) of
// Section 3 of the paper: a regular balancing network of width t and depth
// lg δ that merges two step input sequences x (first t/2 wires) and y
// (second t/2 wires) into one step output sequence whenever
// 0 <= Sum(x) - Sum(y) <= δ.
//
// Valid parameters are t = p·2^i and δ = 2^j with p >= 1 and 1 <= j < i
// (paper §3). The construction is recursive on δ (Fig. 5):
//
//   - M(t,2) is a single layer of t/2 (2,2)-balancers: balancer b_i
//     (1 <= i < t/2) takes y_{i-1}, x_i and emits z_{2i-1}, z_{2i};
//     balancer b_0 takes x_0, y_{t/2-1} and emits z_0, z_{t-1}.
//   - M(t,δ) feeds the even subsequences of x and y to one M(t/2,δ/2) and
//     the odd subsequences to another, then combines their outputs with an
//     M(t,2) layer.
//
// The key difference from the bitonic merger (§3.3) is that the depth
// depends only on δ, not on t.
package merge

import (
	"fmt"

	"repro/internal/network"
)

// Valid reports whether (t, δ) is a valid parameter pair: t = p·2^i,
// δ = 2^j, p >= 1, 1 <= j < i.
func Valid(t, delta int) bool {
	if t < 4 || delta < 2 || delta&(delta-1) != 0 {
		return false
	}
	j := log2(delta)
	// Need t divisible by 2^i for some i > j, i.e. by 2^(j+1).
	return t%(1<<(j+1)) == 0
}

// log2 returns floor(lg x) for x >= 1.
func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// New constructs M(t,delta) as a standalone network.
func New(t, delta int) (*network.Network, error) {
	if !Valid(t, delta) {
		return nil, fmt.Errorf("merge: invalid parameters M(%d,%d): need t=p*2^i, delta=2^j, 1<=j<i", t, delta)
	}
	b, in := network.NewBuilder(fmt.Sprintf("M(%d,%d)", t, delta), t)
	out := Build(b, in, delta)
	return b.Finalize(out)
}

// Build appends M(len(in), delta) to an in-progress network, consuming the
// given ports (first half = x, second half = y) and returning the output
// ports z in order. Parameter validity is the caller's responsibility when
// composing (New validates for standalone use); Build panics on odd widths.
func Build(b *network.Builder, in []network.Port, delta int) []network.Port {
	t := len(in)
	if t%2 != 0 {
		panic(fmt.Sprintf("merge: Build with odd width %d", t))
	}
	if delta == 2 {
		return buildBase(b, in)
	}
	x, y := in[:t/2], in[t/2:]
	// Even and odd subsequences of each half (Fig. 5, sub-step 1).
	xe, xo := split(x)
	ye, yo := split(y)
	g := Build(b, concat(xe, ye), delta/2) // M0(t/2, δ/2)
	h := Build(b, concat(xo, yo), delta/2) // M1(t/2, δ/2)
	// Final M(t,2) layer on (g, h) (sub-step 2).
	return buildBase(b, concat(g, h))
}

// buildBase appends the single-layer M(t,2) network.
func buildBase(b *network.Builder, in []network.Port) []network.Port {
	t := len(in)
	x, y := in[:t/2], in[t/2:]
	z := make([]network.Port, t)
	// b_0: inputs x_0 and y_{t/2-1}; outputs z_0 and z_{t-1}.
	o := b.Balancer([]network.Port{x[0], y[t/2-1]}, 2)
	if o == nil {
		return make([]network.Port, t)
	}
	z[0], z[t-1] = o[0], o[1]
	// b_i for 1 <= i < t/2: inputs y_{i-1}, x_i; outputs z_{2i-1}, z_{2i}.
	for i := 1; i < t/2; i++ {
		o := b.Balancer([]network.Port{y[i-1], x[i]}, 2)
		if o == nil {
			return make([]network.Port, t)
		}
		z[2*i-1], z[2*i] = o[0], o[1]
	}
	return z
}

// split returns the even- and odd-indexed ports of s.
func split(s []network.Port) (even, odd []network.Port) {
	for i, p := range s {
		if i%2 == 0 {
			even = append(even, p)
		} else {
			odd = append(odd, p)
		}
	}
	return even, odd
}

func concat(a, b []network.Port) []network.Port {
	out := make([]network.Port, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
