package merge

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

func TestValid(t *testing.T) {
	cases := []struct {
		t, delta int
		want     bool
	}{
		{4, 2, true},   // t=1*4, δ=2: j=1 < i=2
		{8, 2, true},   // Fig. 5 top
		{8, 4, true},   // Fig. 6 left
		{16, 4, true},  // Fig. 6 right
		{16, 8, true},  //
		{12, 2, true},  // t=3*4
		{12, 4, false}, // δ=4 needs 8 | t
		{24, 4, true},  // t=3*8
		{4, 4, false},  // j=2 not < i=2
		{2, 2, false},  // too narrow
		{8, 3, false},  // δ not a power of two
		{8, 1, false},  // δ < 2
		{6, 2, false},  // t=6 not divisible by 4
		{10, 2, false}, // not divisible by 4
		{64, 16, true}, //
		{64, 32, true}, // 64 = 1*2^6, δ=2^5: j=5 < i=6
	}
	for _, c := range cases {
		if got := Valid(c.t, c.delta); got != c.want {
			t.Errorf("Valid(%d,%d) = %v, want %v", c.t, c.delta, got, c.want)
		}
	}
}

func TestDepthIsLogDelta(t *testing.T) {
	// Lemma 3.1: depth(M(t,δ)) = lg δ, independent of t.
	for _, c := range []struct{ t, delta, want int }{
		{4, 2, 1}, {8, 2, 1}, {8, 4, 2}, {16, 2, 1}, {16, 4, 2}, {16, 8, 3},
		{32, 4, 2}, {32, 8, 3}, {32, 16, 4}, {64, 16, 4}, {24, 4, 2}, {48, 8, 3},
	} {
		n, err := New(c.t, c.delta)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.t, c.delta, err)
		}
		if n.Depth() != c.want {
			t.Errorf("depth(M(%d,%d)) = %d, want %d", c.t, c.delta, n.Depth(), c.want)
		}
	}
}

func TestSizeFormula(t *testing.T) {
	// Each layer has t/2 balancers, so size = (t/2) * lg δ.
	for _, c := range []struct{ t, delta int }{{8, 4}, {16, 8}, {32, 16}, {64, 4}} {
		n, err := New(c.t, c.delta)
		if err != nil {
			t.Fatal(err)
		}
		want := c.t / 2 * n.Depth()
		if n.Size() != want {
			t.Errorf("size(M(%d,%d)) = %d, want %d", c.t, c.delta, n.Size(), want)
		}
	}
}

func TestAllBalancersAre22(t *testing.T) {
	n, err := New(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	census := network.ArityCensus(n)
	if len(census) != 1 || census["(2,2)"] != n.Size() {
		t.Fatalf("census = %v", census)
	}
}

func TestInvalidParameters(t *testing.T) {
	for _, c := range []struct{ t, delta int }{{6, 2}, {8, 3}, {4, 4}, {0, 2}, {8, 0}} {
		if _, err := New(c.t, c.delta); err == nil {
			t.Errorf("New(%d,%d) accepted", c.t, c.delta)
		}
	}
}

// Lemma 3.2 / Figs 7-9: M(t,2) merges step halves with sum difference in
// [0,2]. Exhaustive over the case analysis space.
func TestBaseMergerExhaustive(t *testing.T) {
	for _, width := range []int{4, 8, 12, 16} {
		n, err := New(width, 2)
		if err != nil {
			t.Fatal(err)
		}
		half := width / 2
		for sy := int64(0); sy <= int64(3*half); sy++ {
			for d := int64(0); d <= 2; d++ {
				x := append(seq.MakeStep(sy+d, half), seq.MakeStep(sy, half)...)
				y, err := n.Quiescent(x)
				if err != nil {
					t.Fatal(err)
				}
				if !seq.IsStep(y) {
					t.Fatalf("M(%d,2): sums (%d,%d) give non-step %v", width, sy+d, sy, y)
				}
			}
		}
	}
}

// The Fig. 7-9 case analysis, named case by case. For each case we build
// input halves with the prescribed step points and maxima and check the
// output is step.
func TestMergerCases(t *testing.T) {
	const half = 4 // t = 8
	n, err := New(2*half, 2)
	if err != nil {
		t.Fatal(err)
	}
	// stepSeq builds the step sequence of length half with max value a and
	// step point k (all entries a before k, a-1 after).
	stepSeq := func(a int64, k int) []int64 {
		s := make([]int64, half)
		for i := range s {
			if i < k {
				s[i] = a
			} else {
				s[i] = a - 1
			}
		}
		return s
	}
	cases := []struct {
		name      string
		a, b      int64 // maxima of x and y
		k, l      int   // step points
		wantPreOK bool  // whether 0 <= sum(x)-sum(y) <= 2 holds
	}{
		{"Fig7a k=l<t/2", 5, 5, 2, 2, true},
		{"Fig8a k=l=t/2", 5, 5, half, half, true},
		{"Fig7b k=l+1", 5, 5, 3, 2, true},
		{"Fig8b k=t/2,l=t/2-1", 5, 5, half, half - 1, true},
		{"Fig7c k=l+2", 5, 5, 3, 1, true},
		{"Fig8c k=t/2,l=t/2-2", 5, 5, half, half - 2, true},
		{"Fig9a a=b+1,k=1,l=t/2-1", 5, 4, 1, half - 1, true},
		{"Fig9b a=b+1,k=1,l=t/2", 5, 4, 1, half, true},
		{"Fig9c a=b+1,k=2,l=t/2", 5, 4, 2, half, true},
	}
	for _, c := range cases {
		x := stepSeq(c.a, c.k)
		y := stepSeq(c.b, c.l)
		d := seq.Sum(x) - seq.Sum(y)
		if (d >= 0 && d <= 2) != c.wantPreOK {
			t.Fatalf("%s: precondition setup wrong (diff=%d)", c.name, d)
		}
		out, err := n.Quiescent(append(seq.Clone(x), y...))
		if err != nil {
			t.Fatal(err)
		}
		if !seq.IsStep(out) {
			t.Errorf("%s: output %v not step (x=%v y=%v)", c.name, out, x, y)
		}
	}
}

// Lemma 3.3: M(t,δ) is a difference merging network for every valid (t,δ).
func TestDifferenceMergingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, c := range []struct{ t, delta int }{
		{4, 2}, {8, 2}, {8, 4}, {16, 4}, {16, 8}, {32, 8}, {32, 16}, {24, 4},
	} {
		n, err := New(c.t, c.delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckDifferenceMerger(n, int64(c.delta), 12, 300, rng); err != nil {
			t.Errorf("M(%d,%d): %v", c.t, c.delta, err)
		}
	}
}

// Outside the contract the merger may legitimately fail: difference > δ.
// Verify our checker (not the network) can see such failures, documenting
// that δ is tight for at least one width.
func TestDeltaIsMeaningful(t *testing.T) {
	n, err := New(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Find some step halves with difference > 2 that break the output.
	broken := false
	for sy := int64(0); sy <= 20 && !broken; sy++ {
		for d := int64(3); d <= 8 && !broken; d++ {
			x := append(seq.MakeStep(sy+d, 4), seq.MakeStep(sy, 4)...)
			out, err := n.Quiescent(x)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.IsStep(out) {
				broken = true
			}
		}
	}
	if !broken {
		t.Error("M(8,2) merged all halves differing by 3..8; delta bound looks vacuous")
	}
}

// Sum preservation through the merger.
func TestSumPreservation(t *testing.T) {
	n, err := New(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		x := make([]int64, 16)
		for i := range x {
			x[i] = rng.Int63n(50)
		}
		y, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Sum(y) != seq.Sum(x) {
			t.Fatalf("sum not preserved: in %d out %d", seq.Sum(x), seq.Sum(y))
		}
	}
}

func TestBuildPanicsOnOddWidth(t *testing.T) {
	b, in := network.NewBuilder("odd", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("odd width accepted")
		}
	}()
	Build(b, in, 2)
}
