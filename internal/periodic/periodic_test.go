package periodic

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

func TestDepth(t *testing.T) {
	// depth(Periodic[w]) = lg²w.
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		k := log2(w)
		if n.Depth() != k*k {
			t.Errorf("depth(Periodic(%d)) = %d, want %d", w, n.Depth(), k*k)
		}
	}
}

func TestBlockDepth(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := NewBlock(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != log2(w) {
			t.Errorf("depth(Block(%d)) = %d, want %d", w, n.Depth(), log2(w))
		}
	}
}

func TestCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range []struct {
		w          int
		exhaustive int
		trials     int
	}{
		{2, 10, 100}, {4, 6, 300}, {8, 4, 300}, {16, 0, 500}, {32, 0, 200},
	} {
		n, err := New(c.w)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckCounting(n, c.exhaustive, c.trials, rng); err != nil {
			t.Errorf("Periodic(%d): %v", c.w, err)
		}
	}
}

// A single block is not a counting network for w >= 4, which is why lgw of
// them are cascaded.
func TestSingleBlockNotCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, err := NewBlock(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := network.CheckCounting(n, 4, 300, rng); err == nil {
		t.Error("Block(8) accepted as counting network")
	}
}

// A block applied to a step-smooth-ish input preserves sums.
func TestSumPreservation(t *testing.T) {
	n, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		x := make([]int64, 16)
		for i := range x {
			x[i] = rng.Int63n(40)
		}
		y, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Sum(y) != seq.Sum(x) {
			t.Fatalf("sum %d -> %d", seq.Sum(x), seq.Sum(y))
		}
	}
}

func TestMirrorWiring(t *testing.T) {
	n, err := NewBlock(8)
	if err != nil {
		t.Fatal(err)
	}
	// First layer: inputs i and 7-i meet at the same balancer.
	for i := 0; i < 4; i++ {
		n1, _ := n.InputDest(i)
		n2, _ := n.InputDest(7 - i)
		if n1 != n2 {
			t.Errorf("inputs %d and %d do not meet", i, 7-i)
		}
	}
}

// The periodic network is behaviourally identical to a generic Cascade of
// lgw standalone blocks — cross-validating the Cascade combinator against
// the direct construction.
func TestEqualsCascadeOfBlocks(t *testing.T) {
	const w = 8
	direct, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*network.Network
	for i := 0; i < log2(w); i++ {
		blk, err := NewBlock(w)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}
	cascaded, err := network.Cascade("Periodic-cascade(8)", blocks...)
	if err != nil {
		t.Fatal(err)
	}
	if cascaded.Depth() != direct.Depth() || cascaded.Size() != direct.Size() {
		t.Fatalf("cascade geometry differs: depth %d/%d size %d/%d",
			cascaded.Depth(), direct.Depth(), cascaded.Size(), direct.Size())
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		x := make([]int64, w)
		for i := range x {
			x[i] = rng.Int63n(60)
		}
		a, err := direct.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cascaded.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(a, b) {
			t.Fatalf("cascade diverges from direct periodic on %v", x)
		}
	}
}

func TestInvalidWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 10} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%d) accepted", w)
		}
		if _, err := NewBlock(w); err == nil {
			t.Errorf("NewBlock(%d) accepted", w)
		}
	}
}
