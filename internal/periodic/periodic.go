// Package periodic implements the periodic counting network of Aspnes,
// Herlihy & Shavit (ref [5] of the paper, Section 4 there), the second
// regular baseline of §1.3.1: width w = 2^k, depth lg²w (lgw cascaded
// Block[w] networks of depth lgw each), amortized contention
// O(n·lg³w / w) (Dwork et al., ref [12], §3.4).
//
// Block[w] follows the balanced-merging blocks of Dowd, Perl, Rudolph &
// Saks that AHS adapt: the first layer joins mirror wires i and w-1-i;
// the block then recurses independently on the top and bottom halves.
// Cascading lgw blocks yields a counting network (verified empirically by
// this package's tests over exhaustive small inputs and randomized sweeps,
// since we re-derive the construction rather than port a proof).
package periodic

import (
	"fmt"

	"repro/internal/network"
)

// Valid reports whether w is a supported width (power of two >= 2).
func Valid(w int) bool { return w >= 2 && w&(w-1) == 0 }

// New constructs the periodic counting network of width w: lgw cascaded
// blocks.
func New(w int) (*network.Network, error) {
	if !Valid(w) {
		return nil, fmt.Errorf("periodic: width %d is not a power of two >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("Periodic(%d)", w), w)
	cur := in
	for i := w; i > 1; i >>= 1 {
		cur = BuildBlock(b, cur)
	}
	return b.Finalize(cur)
}

// NewBlock constructs a single Block[w] standalone.
func NewBlock(w int) (*network.Network, error) {
	if !Valid(w) {
		return nil, fmt.Errorf("periodic: width %d is not a power of two >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("Block(%d)", w), w)
	return b.Finalize(BuildBlock(b, in))
}

// BuildBlock appends Block[len(in)]: a mirror layer (balancer joins wires i
// and w-1-i, top output stays at i, bottom at w-1-i), then recursive
// blocks on each half.
func BuildBlock(b *network.Builder, in []network.Port) []network.Port {
	w := len(in)
	if w == 1 {
		return in
	}
	top := make([]network.Port, w/2)
	bot := make([]network.Port, w/2)
	for i := 0; i < w/2; i++ {
		o := b.Balancer([]network.Port{in[i], in[w-1-i]}, 2)
		if o == nil {
			return in
		}
		top[i] = o[0]
		bot[w/2-1-i] = o[1] // output w-1-i, i.e. position w/2-1-i within the bottom half
	}
	g := BuildBlock(b, top)
	h := BuildBlock(b, bot)
	return append(g, h...)
}
