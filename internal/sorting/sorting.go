// Package sorting implements the Section 7 byproduct of the paper: any
// regular balancing network built from (2,2)-balancers becomes a
// comparator network by replacing each balancer with a comparator, and if
// the balancing network counts, the comparator network sorts (Aspnes,
// Herlihy & Shavit, ref [5]). Applied to C(w,w) this yields a novel
// sorting network of depth O(lg²w).
//
// Balancer-to-comparator correspondence: a balancer's upper output wire
// (port 0) receives the larger share of tokens (ceil of the sum), so the
// corresponding comparator routes the *maximum* to port 0 — the network
// sorts into non-increasing order along the output wire index, exactly
// mirroring the step property "excess tokens emerge on the upper wires".
package sorting

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Comparator is a comparator network derived from a balancing network.
// The zero value is unusable; construct with FromNetwork.
type Comparator struct {
	name  string
	width int
	depth int
	// ops is the comparator list in topological order: each element
	// references the two value slots it compares in a flat working array
	// laid out as [input wires | one slot per balancer output port].
	ops []op
	// outSlot maps each output wire to its producing slot.
	outSlot []int
	slots   int
}

type op struct {
	a, b   int // input slots
	oa, ob int // output slots (max to oa, min to ob)
}

// FromNetwork converts a regular all-(2,2) balancing network into a
// comparator network. Returns an error if any balancer is not (2,2) or if
// the widths differ.
func FromNetwork(n *network.Network) (*Comparator, error) {
	if n.InWidth() != n.OutWidth() {
		return nil, fmt.Errorf("sorting: network %s has unequal widths %d and %d",
			n.Name(), n.InWidth(), n.OutWidth())
	}
	for i := 0; i < n.Size(); i++ {
		nd := n.Node(i)
		if nd.In() != 2 || nd.Out() != 2 {
			return nil, fmt.Errorf("sorting: network %s contains a (%d,%d)-balancer; only (2,2) convert to comparators",
				n.Name(), nd.In(), nd.Out())
		}
	}
	w := n.InWidth()
	c := &Comparator{
		name:    "Sort[" + n.Name() + "]",
		width:   w,
		depth:   n.Depth(),
		outSlot: make([]int, w),
		slots:   w + 2*n.Size(),
	}
	// Slot numbering: input wire i -> slot i; node id's output port p ->
	// slot w + 2*id + p.
	slotOfSource := func(node, port int) int {
		if node < 0 {
			return port // network input wire
		}
		return w + 2*node + port
	}
	for id := 0; id < n.Size(); id++ {
		c.ops = append(c.ops, op{
			a:  slotOfSource(n.Source(id, 0)),
			b:  slotOfSource(n.Source(id, 1)),
			oa: w + 2*id + 0,
			ob: w + 2*id + 1,
		})
	}
	for i := 0; i < w; i++ {
		c.outSlot[i] = slotOfSource(n.OutputSource(i))
	}
	return c, nil
}

// Width returns the number of values the network sorts.
func (c *Comparator) Width() int { return c.width }

// Depth returns the comparator depth (equals the balancing network's).
func (c *Comparator) Depth() int { return c.depth }

// Size returns the number of comparators.
func (c *Comparator) Size() int { return len(c.ops) }

// Name identifies the network.
func (c *Comparator) Name() string { return c.name }

// Apply routes the input values through the comparators and returns the
// output wire values (non-increasing if the source network counts).
func (c *Comparator) Apply(in []int) ([]int, error) {
	if len(in) != c.width {
		return nil, fmt.Errorf("sorting: %s expects %d values, got %d", c.name, c.width, len(in))
	}
	slots := make([]int, c.slots)
	copy(slots, in)
	for _, o := range c.ops {
		a, b := slots[o.a], slots[o.b]
		if a < b {
			a, b = b, a
		}
		slots[o.oa], slots[o.ob] = a, b // max up, min down
	}
	out := make([]int, c.width)
	for i := range out {
		out[i] = slots[c.outSlot[i]]
	}
	return out, nil
}

// Sort sorts values in ascending order using the network (the network's
// natural order is descending; Sort reverses it). The input is not
// modified.
func (c *Comparator) Sort(in []int) ([]int, error) {
	out, err := c.Apply(in)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// IsSortingNetwork verifies the 0-1 principle exhaustively: the network
// sorts every input iff it sorts all 2^w binary inputs. Feasible up to
// w ≈ 20. Returns a counterexample error or nil.
func (c *Comparator) IsSortingNetwork() error {
	if c.width > 24 {
		return fmt.Errorf("sorting: exhaustive 0-1 check infeasible for width %d", c.width)
	}
	in := make([]int, c.width)
	for mask := 0; mask < 1<<c.width; mask++ {
		ones := 0
		for i := 0; i < c.width; i++ {
			in[i] = (mask >> i) & 1
			ones += in[i]
		}
		out, err := c.Apply(in)
		if err != nil {
			return err
		}
		// Descending: the first `ones` wires carry 1, the rest 0.
		for i, v := range out {
			want := 0
			if i < ones {
				want = 1
			}
			if v != want {
				return fmt.Errorf("sorting: %s fails 0-1 input %0*b: output %v", c.name, c.width, mask, out)
			}
		}
	}
	return nil
}

// CheckRandom sorts `trials` random permutations plus duplicate-heavy
// inputs and verifies against sort.Ints.
func (c *Comparator) CheckRandom(trials int, next func(n int) int) error {
	for trial := 0; trial < trials; trial++ {
		in := make([]int, c.width)
		for i := range in {
			in[i] = next(100)
		}
		got, err := c.Sort(in)
		if err != nil {
			return err
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("sorting: %s mis-sorts %v -> %v", c.name, in, got)
			}
		}
	}
	return nil
}
