package sorting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/periodic"
)

// E14: C(w,w) converts to a sorting network (0-1 principle, exhaustive).
func TestCWTSorts(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		net, err := core.New(w, w)
		if err != nil {
			t.Fatal(err)
		}
		c, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.IsSortingNetwork(); err != nil {
			t.Errorf("w=%d: %v", w, err)
		}
		if c.Depth() != net.Depth() {
			t.Errorf("comparator depth %d != network depth %d", c.Depth(), net.Depth())
		}
	}
}

// The bitonic and periodic counting networks also convert to sorters
// (ref [5]); this cross-validates FromNetwork.
func TestBaselinesSort(t *testing.T) {
	bit, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	per, err := periodic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []*network.Network{bit, per} {
		c, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.IsSortingNetwork(); err != nil {
			t.Errorf("%s: %v", net.Name(), err)
		}
	}
}

func TestSortRandomLarge(t *testing.T) {
	net, err := core.New(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	if err := c.CheckRandom(500, rng.Intn); err != nil {
		t.Fatal(err)
	}
}

func TestSortAscending(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sort([]int{3, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sort = %v, want %v", got, want)
		}
	}
}

func TestApplyDescending(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Apply([]int{3, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply = %v, want %v (descending)", got, want)
		}
	}
}

// Property: Sort output is a sorted permutation of the input.
func TestQuickSortIsPermutation(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [8]int16) bool {
		in := make([]int, 8)
		hist := map[int]int{}
		for i, v := range vals {
			in[i] = int(v)
			hist[int(v)]++
		}
		out, err := c.Sort(in)
		if err != nil {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		for _, v := range out {
			hist[v]--
		}
		for _, c := range hist {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIrregularNetworkRejected(t *testing.T) {
	net, err := core.New(4, 8) // contains (2,4)-balancers, widths differ
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetwork(net); err == nil {
		t.Fatal("irregular network accepted")
	}
}

func TestWrongInputLength(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply([]int{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := c.Sort([]int{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("long input accepted")
	}
}

// A deliberately non-counting network must fail the 0-1 check: the ladder
// alone does not sort.
func TestNonSorterDetected(t *testing.T) {
	ladder, err := core.NewLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(ladder)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IsSortingNetwork(); err == nil {
		t.Fatal("ladder accepted as sorting network")
	}
}

func TestTooWideForExhaustive(t *testing.T) {
	net, err := core.New(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IsSortingNetwork(); err == nil {
		t.Fatal("width-32 exhaustive check should refuse")
	}
}

func TestSizeMatchesNetwork(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != net.Size() || c.Width() != 8 || c.Name() == "" {
		t.Fatalf("metadata: size=%d width=%d name=%q", c.Size(), c.Width(), c.Name())
	}
}
