package contention

import (
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/workload"
)

func TestLayerTargetFocusesStalls(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	target := 4 // a layer inside Nc
	res := Run(net, Config{N: 32, Rounds: 40, Adversary: LayerTarget{Depth: target}})
	if res.Tokens != 32*40 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
	// The targeted layer should carry a disproportionate stall share
	// relative to a uniform split across depth layers.
	var total int64
	for _, v := range res.PerLayer {
		total += v
	}
	if total == 0 {
		t.Skip("no stalls at all (degenerate host?)")
	}
	uniform := float64(total) / float64(len(res.PerLayer))
	if float64(res.PerLayer[target-1]) < uniform {
		t.Errorf("layer %d stalls %d below uniform share %.1f: %v",
			target, res.PerLayer[target-1], uniform, res.PerLayer)
	}
}

// Theorem 6.7 upper bound: no adversary may push the amortized contention
// of C(w,t) above 4n·lgw/w + n·lg²w/t + w·lg³w/t + 4lg²w + lgw. This is
// the strongest validation the simulator can give the theorem: every
// scheduling strategy stays below the proved bound.
func TestAdversariesBelowTheoremBound(t *testing.T) {
	lg := func(x int) float64 {
		k := 0.0
		for x > 1 {
			x >>= 1
			k++
		}
		return k
	}
	for _, c := range []struct{ w, tt int }{{8, 8}, {8, 32}, {16, 64}} {
		net, err := core.New(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		lw := lg(c.w)
		for _, n := range []int{16, 64, 128} {
			bound := 4*float64(n)*lw/float64(c.w) +
				float64(n)*lw*lw/float64(c.tt) +
				float64(c.w)*lw*lw*lw/float64(c.tt) +
				4*lw*lw + lw
			for _, adv := range AllAdversaries() {
				res := Run(net, Config{N: n, Rounds: 30, Adversary: adv, Seed: 11})
				if res.Amortized > bound {
					t.Errorf("C(%d,%d) n=%d %s: amortized %.2f exceeds Theorem 6.7 bound %.2f",
						c.w, c.tt, n, adv.Name(), res.Amortized, bound)
				}
			}
		}
	}
}

// The strongest observed strategy must extract at least as many stalls as
// plain greedy (it is included in the max).
func TestStrongestAtLeastGreedy(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 64, Rounds: 30, Seed: 1}
	g := Run(net, Config{N: 64, Rounds: 30, Adversary: Greedy{}, Seed: 1})
	best := Strongest(net, cfg)
	if best.Amortized < g.Amortized {
		t.Errorf("Strongest %.2f below greedy %.2f", best.Amortized, g.Amortized)
	}
	t.Logf("greedy=%.2f strongest=%.2f via %s", g.Amortized, best.Amortized, best.Adversary)
}

// Starver runners complete first and parked tokens still drain: the run
// terminates with full conservation.
func TestStarverCompletes(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(net, Config{N: 32, Rounds: 25, Adversary: Starver{Runners: 2}})
	if res.Tokens != 32*25 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
	if !seq.IsStep(res.Exits) {
		t.Error("starver exits not step")
	}
}

func TestHotspotAssignmentIncreasesContention(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	uniform := Run(net, Config{N: 64, Rounds: 40, Adversary: Greedy{},
		Assignment: workload.Uniform{}})
	hotspot := Run(net, Config{N: 64, Rounds: 40, Adversary: Greedy{},
		Assignment: workload.Hotspot{Percent: 100}})
	// All tokens through wire 0: the first balancer becomes a convoy
	// point, so contention must not be lower than uniform.
	if hotspot.Amortized < uniform.Amortized {
		t.Errorf("hotspot (%.2f) below uniform (%.2f)", hotspot.Amortized, uniform.Amortized)
	}
	if !seq.IsStep(hotspot.Exits) {
		t.Error("hotspot exits not step")
	}
}

func TestBurstyQuota(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.BurstyQuota{Mean: 10, Seed: 5}
	res := Run(net, Config{N: 16, Rounds: 1, Adversary: Random{}, Seed: 2, Quota: q})
	var want int64
	for pid := 0; pid < 16; pid++ {
		want += int64(q.Tokens(pid))
	}
	if res.Tokens != want {
		t.Fatalf("tokens = %d, want %d", res.Tokens, want)
	}
	if !seq.IsStep(res.Exits) {
		t.Error("bursty exits not step")
	}
}

func TestAdversaryNames(t *testing.T) {
	for _, c := range []struct {
		adv  Adversary
		want string
	}{
		{Greedy{}, "greedy"}, {Random{}, "random"}, {&RoundRobin{}, "roundrobin"},
		{LayerTarget{Depth: 2}, "layertarget"}, {Oblivious{}, "oblivious"},
		{Parking{}, "parking"}, {Starver{Runners: 2}, "starver"},
	} {
		if got := c.adv.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
