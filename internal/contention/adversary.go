package contention

import "repro/internal/network"

// Additional adversary strategies beyond the core three. These exercise
// structured worst-case schedules: targeting a specific layer, and a
// two-phase accumulate/drain convoy.

// LayerTarget herds tokens toward a chosen layer: tokens not yet at the
// target depth are advanced first (cheaply, while balancers are empty);
// once every in-flight token is at or past the layer, the most crowded
// balancer is drained. This focuses stalls into one layer, probing how
// much of the network's contention a single layer can be made to carry.
type LayerTarget struct {
	// Depth is the 1-based layer to target.
	Depth int
}

// Name implements Adversary.
func (a LayerTarget) Name() string { return "layertarget" }

// Pick implements Adversary.
func (a LayerTarget) Pick(s *Sim, active []int) int {
	// Phase 1: advance a token strictly before the target layer, if any,
	// preferring those at empty balancers (no stall spent).
	bestBefore, bestBeforeOcc := -1, int(^uint(0)>>1)
	for i, pid := range active {
		nd := s.tokens[pid].node
		d := s.net.Node(int(nd)).Depth()
		if d < a.Depth {
			if o := s.occ[nd]; o < bestBeforeOcc {
				bestBefore, bestBeforeOcc = i, o
			}
		}
	}
	if bestBefore >= 0 {
		return bestBefore
	}
	// Phase 2: all tokens at/after the layer — drain the biggest crowd.
	best, bestOcc := 0, -1
	for i, pid := range active {
		if o := s.occ[s.tokens[pid].node]; o > bestOcc {
			best, bestOcc = i, o
		}
	}
	return best
}

// Starver implements the reservoir schedule behind the DHW-style lower
// bounds: a small set of runner processes (pids < Runners) is driven
// through the network at full speed while every other token stays parked
// at its current balancer, so each runner crossing charges one stall per
// parked token it passes. Parked tokens drain only after the runners
// exhaust their quotas.
type Starver struct {
	// Runners is the number of processes allowed to move freely.
	Runners int
}

// Name implements Adversary.
func (a Starver) Name() string { return "starver" }

// Pick implements Adversary.
func (a Starver) Pick(s *Sim, active []int) int {
	runners := a.Runners
	if runners < 1 {
		runners = 1
	}
	for i, pid := range active {
		if pid < runners {
			return i
		}
	}
	// Runners done: drain the parked tokens LIFO from the largest crowd.
	return Parking{}.Pick(s, active)
}

// Oblivious replays a fixed pseudorandom schedule independent of network
// state — a baseline showing how much adaptivity (Greedy) buys the
// adversary.
type Oblivious struct{}

// Name implements Adversary.
func (Oblivious) Name() string { return "oblivious" }

// Pick implements Adversary.
func (Oblivious) Pick(s *Sim, active []int) int {
	// Deterministic low-discrepancy walk over the active set, using only
	// the transition counter (not occupancy or token positions).
	return int(uint64(s.transitions) * 2654435761 % uint64(len(active)))
}

// AllAdversaries returns one instance of every built-in strategy.
func AllAdversaries() []Adversary {
	return []Adversary{
		Greedy{}, Parking{}, Random{}, &RoundRobin{}, Oblivious{},
		Starver{Runners: 1}, Starver{Runners: 4},
		LayerTarget{Depth: 1},
	}
}

// Strongest runs the configuration under every built-in adversary and
// returns the result with the highest amortized contention — the
// simulator's best empirical lower bound on cont(B, n).
func Strongest(net *network.Network, cfg Config) Result {
	var best Result
	for i, adv := range AllAdversaries() {
		c := cfg
		c.Adversary = adv
		res := Run(net, c)
		if i == 0 || res.Amortized > best.Amortized {
			best = res
		}
	}
	return best
}
