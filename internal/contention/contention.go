// Package contention implements the Dwork–Herlihy–Waarts contention model
// used by the paper (§1.2, §6, ref [12]) as a discrete-event adversarial
// simulator over balancing networks.
//
// Model. n asynchronous processes each shepherd one token at a time
// through the network; process l enters tokens on input wire l mod w. An
// execution is a sequence of atomic balancer transitions chosen by an
// adversary scheduler. Every time a token passes through a balancer it
// causes one stall to each other token currently waiting at that balancer.
// cont(B,n,m) is the maximum total number of stalls over executions of m
// tokens; the amortized contention cont(B,n) is the limit of stalls/m.
//
// The simulator enumerates transitions exactly (no timing model — the
// paper stresses that none is needed), with pluggable Adversary strategies:
// greedy convoying (maximizes immediate stalls, approximating the
// adversarial supremum from below), uniform random, and round-robin
// (a fair scheduler, for the "typical" rather than adversarial regime).
package contention

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/workload"
)

// Sim is the mutable state of one simulated execution.
type Sim struct {
	net    *network.Network
	state  []int64 // per-node balancer state (token count)
	occ    []int   // tokens currently waiting at each node
	tokens []tokenState
	rng    *rand.Rand

	stalls      int64
	perLayer    []int64
	perLabel    map[string]int64
	maxOcc      int
	transitions int64
}

type tokenState struct {
	node  int32 // current node, or done if < 0
	wire  int32 // entry wire of the current token
	stamp int64 // transition count at arrival to the current node
}

const done = int32(-1)

// Occ returns the number of tokens currently waiting at node id.
func (s *Sim) Occ(id int) int { return s.occ[id] }

// TokenNode returns the node process pid's token is waiting at (-1 if the
// process has no in-flight token).
func (s *Sim) TokenNode(pid int) int { return int(s.tokens[pid].node) }

// Rand exposes the simulation's RNG (for randomized adversaries).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Network returns the simulated network topology.
func (s *Sim) Network() *network.Network { return s.net }

// Adversary chooses which in-flight token performs the next transition.
type Adversary interface {
	// Name identifies the strategy in reports.
	Name() string
	// Pick returns an index into active, the pids of processes with an
	// in-flight token (always non-empty).
	Pick(s *Sim, active []int) int
}

// Greedy always advances a token waiting at a most-occupied balancer,
// charging the maximum immediate stalls. It is myopic: it drains the
// crowds it creates, so Parking usually extracts more total stalls.
type Greedy struct{}

// Name implements Adversary.
func (Greedy) Name() string { return "greedy" }

// Pick implements Adversary.
func (Greedy) Pick(s *Sim, active []int) int {
	best, bestOcc := 0, -1
	for i, pid := range active {
		if o := s.occ[s.tokens[pid].node]; o > bestOcc {
			best, bestOcc = i, o
		}
	}
	return best
}

// Parking is the strongest built-in adversary: it keeps crowds intact. At
// the most crowded balancer it always advances the *newest* arrival,
// leaving long-term residents parked; every fresh token that flows through
// the crowd charges one stall per parked token, and the crowd only drains
// when no fresh tokens remain. This models the reservoir schedules behind
// the Dwork–Herlihy–Waarts lower bounds.
type Parking struct{}

// Name implements Adversary.
func (Parking) Name() string { return "parking" }

// Pick implements Adversary.
func (Parking) Pick(s *Sim, active []int) int {
	best := 0
	bestOcc, bestStamp := -1, int64(-1)
	for i, pid := range active {
		tok := &s.tokens[pid]
		o := s.occ[tok.node]
		if o > bestOcc || (o == bestOcc && tok.stamp > bestStamp) {
			best, bestOcc, bestStamp = i, o, tok.stamp
		}
	}
	return best
}

// Random picks a uniformly random in-flight token each step.
type Random struct{}

// Name implements Adversary.
func (Random) Name() string { return "random" }

// Pick implements Adversary.
func (Random) Pick(s *Sim, active []int) int { return s.rng.Intn(len(active)) }

// RoundRobin cycles through the processes fairly.
type RoundRobin struct{ next int }

// Name implements Adversary.
func (*RoundRobin) Name() string { return "roundrobin" }

// Pick implements Adversary.
func (a *RoundRobin) Pick(s *Sim, active []int) int {
	a.next++
	return (a.next - 1) % len(active)
}

// Config parameterizes a simulated execution.
type Config struct {
	// N is the concurrency: the number of processes.
	N int
	// Rounds is the number of tokens each process shepherds, so the total
	// token count is m = N * Rounds (with the default even quota).
	Rounds int
	// Adversary is the scheduling strategy; nil means Greedy.
	Adversary Adversary
	// Seed seeds the simulation RNG (used by randomized adversaries).
	Seed int64
	// Assignment maps processes to input wires; nil means the paper's
	// uniform rule (wire = pid mod w).
	Assignment workload.Assignment
	// Quota sets per-process token counts; nil means an even quota of
	// Rounds tokens per process.
	Quota workload.Quota
	// CrashPids lists processes that fail-stop immediately after their
	// first token enters the network: the token stays parked at its
	// balancer forever (it still receives stalls from passers-by) and the
	// process issues nothing more. This is the wait-freedom experiment
	// (§1.4.2: counting networks are wait-free — stuck tokens cannot block
	// others). When non-empty, the end-of-run determinism validation is
	// skipped (the network never quiesces).
	CrashPids []int
}

// Result reports the contention measured in one execution.
type Result struct {
	Net       string
	Adversary string
	N         int
	Tokens    int64
	Stalls    int64
	// Amortized is Stalls/Tokens — the empirical cont(B,n,m)/m.
	Amortized float64
	// PerLayer attributes stalls to network layers (index = depth-1).
	PerLayer []int64
	// PerLabel attributes stalls to node labels (e.g. the Na/Nb/Nc blocks
	// of C(w,t)); empty labels are aggregated under "".
	PerLabel map[string]int64
	// MaxOccupancy is the largest number of tokens ever waiting at one
	// balancer.
	MaxOccupancy int
	// Transitions is the number of balancer crossings (sanity: tokens x
	// mean path length).
	Transitions int64
	// Exits is the per-output-wire exit census, used for determinism
	// validation.
	Exits []int64
}

// Run executes m = cfg.N * cfg.Rounds tokens through net under the given
// adversary and returns the measured contention. The network's live
// balancer states are not touched; initial states are honoured. After the
// run, the exit census is validated against the arithmetic quiescent
// evaluation (§2.2 determinism); a mismatch is a simulator bug and panics.
func Run(net *network.Network, cfg Config) Result {
	if cfg.N < 1 || cfg.Rounds < 1 {
		panic(fmt.Sprintf("contention: invalid config N=%d Rounds=%d", cfg.N, cfg.Rounds))
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Greedy{}
	}
	s := &Sim{
		net:      net,
		state:    make([]int64, net.Size()),
		occ:      make([]int, net.Size()),
		tokens:   make([]tokenState, cfg.N),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		perLayer: make([]int64, net.Depth()),
		perLabel: make(map[string]int64),
	}
	for i := 0; i < net.Size(); i++ {
		s.state[i] = net.Node(i).Balancer().Init()
	}
	assign := cfg.Assignment
	if assign == nil {
		assign = workload.Uniform{}
	}
	var quotaOf workload.Quota = workload.EvenQuota{PerProcess: cfg.Rounds}
	if cfg.Quota != nil {
		quotaOf = cfg.Quota
	}
	quota := make([]int, cfg.N) // tokens remaining per process
	injected := make([]int64, net.InWidth())
	exits := make([]int64, net.OutWidth())
	var tokensDone int64

	inject := func(pid int) bool {
		for quota[pid] > 0 {
			quota[pid]--
			wire := assign.Wire(pid, net.InWidth())
			injected[wire]++
			nd, port := net.InputDest(wire)
			if nd < 0 {
				// Degenerate wire straight to an output.
				exits[port]++
				tokensDone++
				continue
			}
			s.tokens[pid] = tokenState{node: int32(nd), wire: int32(wire), stamp: s.transitions}
			s.occ[nd]++
			if s.occ[nd] > s.maxOcc {
				s.maxOcc = s.occ[nd]
			}
			return true
		}
		s.tokens[pid].node = done
		return false
	}

	crashed := make(map[int]bool, len(cfg.CrashPids))
	for _, pid := range cfg.CrashPids {
		if pid >= 0 && pid < cfg.N {
			crashed[pid] = true
		}
	}
	active := make([]int, 0, cfg.N)
	for pid := 0; pid < cfg.N; pid++ {
		quota[pid] = quotaOf.Tokens(pid)
		if crashed[pid] {
			quota[pid] = 1 // the one token that enters and parks forever
		}
		if inject(pid) && !crashed[pid] {
			active = append(active, pid)
		}
	}

	for len(active) > 0 {
		i := adv.Pick(s, active)
		pid := active[i]
		tok := &s.tokens[pid]
		id := int(tok.node)
		// The pass: stall every other waiting token.
		if waiting := int64(s.occ[id] - 1); waiting > 0 {
			s.stalls += waiting
			nd := s.net.Node(id)
			s.perLayer[nd.Depth()-1] += waiting
			s.perLabel[s.net.Label(id)] += waiting
		}
		s.transitions++
		nd := s.net.Node(id)
		q := int64(nd.Out())
		port := int(((s.state[id] % q) + q) % q)
		s.state[id]++
		s.occ[id]--
		next, nport := s.net.Dest(id, port)
		if next >= 0 {
			tok.node = int32(next)
			tok.stamp = s.transitions
			s.occ[next]++
			if s.occ[next] > s.maxOcc {
				s.maxOcc = s.occ[next]
			}
			continue
		}
		// Token exits the network.
		exits[nport]++
		tokensDone++
		if !inject(pid) {
			active = append(active[:i], active[i+1:]...)
		}
	}

	// Determinism validation (§2.2): exits must equal the arithmetic
	// quiescent output for the injected counts. Crashed tokens leave the
	// network non-quiescent, so the check only applies to crash-free runs.
	if len(crashed) == 0 {
		want, err := net.Quiescent(injected)
		if err != nil {
			panic(fmt.Sprintf("contention: quiescent evaluation failed: %v", err))
		}
		for i := range want {
			if want[i] != exits[i] {
				panic(fmt.Sprintf("contention: simulator diverged from quiescent semantics on wire %d: got %d want %d",
					i, exits[i], want[i]))
			}
		}
	}

	m := tokensDone
	res := Result{
		Net:          net.Name(),
		Adversary:    adv.Name(),
		N:            cfg.N,
		Tokens:       m,
		Stalls:       s.stalls,
		PerLayer:     s.perLayer,
		PerLabel:     s.perLabel,
		MaxOccupancy: s.maxOcc,
		Transitions:  s.transitions,
		Exits:        exits,
	}
	if m > 0 {
		res.Amortized = float64(s.stalls) / float64(m)
	}
	return res
}

// Amortized runs the simulation with increasing m (doubling rounds) until
// the amortized contention stabilizes within tol relative change or
// maxRounds is reached, returning the final Result. This estimates the
// lim sup of §1.2 empirically.
func Amortized(net *network.Network, n int, adv Adversary, seed int64, startRounds, maxRounds int, tol float64) Result {
	rounds := startRounds
	last := Run(net, Config{N: n, Rounds: rounds, Adversary: adv, Seed: seed})
	for rounds < maxRounds {
		rounds *= 2
		cur := Run(net, Config{N: n, Rounds: rounds, Adversary: adv, Seed: seed})
		rel := cur.Amortized - last.Amortized
		if rel < 0 {
			rel = -rel
		}
		if last.Amortized > 0 && rel/last.Amortized < tol {
			return cur
		}
		last = cur
	}
	return last
}
