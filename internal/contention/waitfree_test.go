package contention

import (
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/network"
	"repro/internal/seq"
)

// E21 / §1.4.2: counting networks are wait-free — tokens stuck forever at
// balancers cannot prevent other tokens from completing.
func TestWaitFreedomUnderCrashes(t *testing.T) {
	builds := []func() (*network.Network, error){
		func() (*network.Network, error) { return core.New(8, 16) },
		func() (*network.Network, error) { return bitonic.New(8) },
		func() (*network.Network, error) { return dtree.NewToggleNetwork(8) },
	}
	for _, build := range builds {
		net, err := build()
		if err != nil {
			t.Fatal(err)
		}
		const n, rounds = 24, 30
		crash := []int{1, 5, 9, 13} // 4 of 24 processes fail-stop
		for _, adv := range []Adversary{Greedy{}, Random{}, &RoundRobin{}} {
			res := Run(net, Config{
				N: n, Rounds: rounds, Adversary: adv, Seed: 3, CrashPids: crash,
			})
			// Every live process completes its full quota; each crashed
			// process contributes zero completed tokens.
			want := int64((n - len(crash)) * rounds)
			if res.Tokens != want {
				t.Errorf("%s under %s: completed %d tokens, want %d (live processes blocked?)",
					net.Name(), adv.Name(), res.Tokens, want)
			}
			if seq.Sum(res.Exits) != res.Tokens {
				t.Errorf("%s: exit conservation broken", net.Name())
			}
		}
	}
}

// With every process crashed there is nothing to schedule: zero tokens
// complete and the run still terminates.
func TestAllCrashedTerminates(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(net, Config{N: 4, Rounds: 10, CrashPids: []int{0, 1, 2, 3}})
	if res.Tokens != 0 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
}

// Crashed tokens still occupy balancers: live tokens passing them take
// stalls, so contention with parked wrecks is at least contention without.
func TestCrashedTokensStillCauseStalls(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	clean := Run(net, Config{N: 8, Rounds: 40, Adversary: &RoundRobin{}, Seed: 1})
	dirty := Run(net, Config{N: 12, Rounds: 40, Adversary: &RoundRobin{}, Seed: 1,
		CrashPids: []int{8, 9, 10, 11}})
	// Same 8 live processes; the 4 wrecks only add stalls.
	if dirty.Stalls < clean.Stalls {
		t.Errorf("wrecked run had fewer stalls (%d) than clean run (%d)", dirty.Stalls, clean.Stalls)
	}
}

// Out-of-range crash pids are ignored.
func TestCrashPidsOutOfRange(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(net, Config{N: 4, Rounds: 5, CrashPids: []int{-1, 99}})
	if res.Tokens != 20 {
		t.Fatalf("tokens = %d, want 20", res.Tokens)
	}
}
