package contention

import (
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/network"
	"repro/internal/seq"
)

func single(t *testing.T, q int) *network.Network {
	t.Helper()
	b, in := network.NewBuilder("single", 2)
	out := b.Balancer(in, q)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// One balancer, n tokens all present: the greedy adversary extracts the
// full convoy n(n-1)/2 stalls per generation of n tokens.
func TestSingleBalancerConvoy(t *testing.T) {
	n := single(t, 2)
	res := Run(n, Config{N: 8, Rounds: 1, Adversary: Greedy{}})
	if res.Tokens != 8 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
	if res.Stalls != 8*7/2 {
		t.Fatalf("stalls = %d, want 28", res.Stalls)
	}
	if res.MaxOccupancy != 8 {
		t.Fatalf("max occupancy = %d, want 8", res.MaxOccupancy)
	}
}

// With one process there is never anyone to stall.
func TestNoConcurrencyNoStalls(t *testing.T) {
	n, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(n, Config{N: 1, Rounds: 50, Adversary: Greedy{}})
	if res.Stalls != 0 {
		t.Fatalf("stalls = %d with n=1", res.Stalls)
	}
	if res.Tokens != 50 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
}

// Exits from the simulator must be step for counting networks (determinism
// validation already panics on divergence; this re-checks the property).
func TestSimulatedExitsAreStep(t *testing.T) {
	for _, build := range []func() (*network.Network, error){
		func() (*network.Network, error) { return core.New(8, 16) },
		func() (*network.Network, error) { return bitonic.New(8) },
	} {
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, adv := range []Adversary{Greedy{}, Random{}, &RoundRobin{}} {
			res := Run(n, Config{N: 12, Rounds: 20, Adversary: adv, Seed: 99})
			if !seq.IsStep(res.Exits) {
				t.Errorf("%s under %s: exits %v not step", n.Name(), adv.Name(), res.Exits)
			}
			if seq.Sum(res.Exits) != res.Tokens {
				t.Errorf("%s: token conservation broken", n.Name())
			}
		}
	}
}

// Transition count = tokens x path length for uniform-depth networks.
func TestTransitionAccounting(t *testing.T) {
	n, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(n, Config{N: 4, Rounds: 25, Adversary: Random{}, Seed: 1})
	want := res.Tokens * int64(n.Depth())
	if res.Transitions != want {
		t.Fatalf("transitions = %d, want %d", res.Transitions, want)
	}
}

// Stall attribution: per-layer and per-label sums must equal the total.
func TestStallAttribution(t *testing.T) {
	n, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(n, Config{N: 16, Rounds: 30, Adversary: Greedy{}})
	var layerSum, labelSum int64
	for _, v := range res.PerLayer {
		layerSum += v
	}
	for _, v := range res.PerLabel {
		labelSum += v
	}
	if layerSum != res.Stalls || labelSum != res.Stalls {
		t.Fatalf("attribution mismatch: layers %d labels %d total %d", layerSum, labelSum, res.Stalls)
	}
	// C(w,t) nodes are labelled Na/Nb/Nc; no unlabelled stalls.
	if res.PerLabel[""] != 0 {
		t.Fatalf("unlabelled stalls: %d", res.PerLabel[""])
	}
}

// E12: the diffracting (toggle) tree has amortized contention Θ(n) under
// the greedy adversary — the per-token stall count grows linearly in n —
// while C(w, w·lgw) grows much slower. We check the ratio pattern:
// doubling n roughly doubles the tree's amortized contention.
func TestDTreeAdversarialLinear(t *testing.T) {
	tree, err := dtree.NewToggleNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	amort := func(n int) float64 {
		return Run(tree, Config{N: n, Rounds: 40, Adversary: Greedy{}}).Amortized
	}
	a16, a32, a64 := amort(16), amort(32), amort(64)
	if a32 < a16*1.5 || a64 < a32*1.5 {
		t.Errorf("dtree contention not ~linear in n: %v %v %v", a16, a32, a64)
	}
	// And the absolute scale is a constant fraction of n.
	if a64 < 10 {
		t.Errorf("dtree amortized contention at n=64 suspiciously low: %v", a64)
	}
}

// E10 shape: for fixed w and n, increasing t decreases the contention of
// C(w,t) under both fair and adversarial scheduling.
func TestContentionShapeInT(t *testing.T) {
	const w, n = 8, 64
	var prev float64
	for i, tt := range []int{8, 32, 128} {
		net, err := core.New(w, tt)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(net, Config{N: n, Rounds: 60, Adversary: Random{}, Seed: 7})
		if i > 0 && res.Amortized > prev*1.05 {
			t.Errorf("contention did not fall when t grew: C(%d,%d)=%.2f after %.2f", w, tt, res.Amortized, prev)
		}
		prev = res.Amortized
	}
}

// E10/E11 shape: at high concurrency, C(w, w·lgw) has lower amortized
// contention than the bitonic network of the same width.
func TestWideOutputBeatsBitonic(t *testing.T) {
	const w, n = 16, 256
	bit, err := bitonic.New(w)
	if err != nil {
		t.Fatal(err)
	}
	cwt, err := core.New(w, w*4) // t = w lg w = 64
	if err != nil {
		t.Fatal(err)
	}
	ours := Run(cwt, Config{N: n, Rounds: 30, Adversary: Random{}, Seed: 3}).Amortized
	base := Run(bit, Config{N: n, Rounds: 30, Adversary: Random{}, Seed: 3}).Amortized
	if ours >= base {
		t.Errorf("C(16,64) amortized %.2f not below Bitonic(16) %.2f at n=%d", ours, base, n)
	}
}

// Observation 6.1: contention is monotone in n (within simulation noise,
// checked under the deterministic greedy adversary).
func TestMonotoneInN(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, n := range []int{4, 16, 64} {
		res := Run(net, Config{N: n, Rounds: 50, Adversary: Greedy{}})
		if i > 0 && res.Amortized+1e-9 < prev {
			t.Errorf("greedy contention fell from %.3f to %.3f as n grew to %d", prev, res.Amortized, n)
		}
		prev = res.Amortized
	}
}

func TestAmortizedConverges(t *testing.T) {
	net, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := Amortized(net, 8, Random{}, 5, 8, 256, 0.05)
	if res.Tokens < 8*8 {
		t.Fatalf("too few tokens: %d", res.Tokens)
	}
	if res.Amortized < 0 {
		t.Fatal("negative contention")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	net := single(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	Run(net, Config{N: 0, Rounds: 1})
}

// RoundRobin is fair: every process completes its quota.
func TestRoundRobinCompletes(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(net, Config{N: 6, Rounds: 10, Adversary: &RoundRobin{}})
	if res.Tokens != 60 {
		t.Fatalf("tokens = %d, want 60", res.Tokens)
	}
}
