package distnet

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/shard"
)

// The tentpole gate: for a grid of (stripes S, network width w, batch k),
// a concurrent sharded run hands out globally unique values in the right
// residue classes, and the sum of per-stripe reads equals the sequential
// total — exact-count equivalence across the whole fleet.
func TestShardedExactCount(t *testing.T) {
	for _, cse := range []struct{ S, w, t, k int }{
		{1, 4, 8, 1},
		{2, 4, 8, 4},
		{3, 8, 16, 8},
		{4, 8, 24, 64},
	} {
		sc, err := NewSharded(cse.S, func() (*network.Network, error) {
			return core.New(cse.w, cse.t)
		}, Config{LinkBuffer: 2})
		if err != nil {
			t.Fatal(err)
		}
		const procs = 8
		batches := 6
		vals := make([][]int64, procs)
		var wg sync.WaitGroup
		for pid := 0; pid < procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					vals[pid] = sc.IncBatch(pid+b*procs, cse.k, vals[pid])
					vals[pid] = append(vals[pid], sc.Inc(pid))
				}
			}(pid)
		}
		wg.Wait()

		var all []int64
		for _, v := range vals {
			all = append(all, v...)
		}
		total := int64(procs * batches * (cse.k + 1))
		if got := int64(len(all)); got != total {
			t.Fatalf("S=%d: %d values for %d ops", cse.S, got, total)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("S=%d: duplicate value %d", cse.S, all[i])
			}
		}
		// Residue discipline: the lone Inc of pid's last round lives in
		// stripe StripeOf(pid)'s residue class (batched rounds route by a
		// rotating pid, so only this value is pinned to pid's stripe).
		for pid := 0; pid < procs; pid++ {
			want := int64(shard.StripeOf(pid, cse.S))
			v := vals[pid][len(vals[pid])-1]
			if v%int64(cse.S) != want {
				t.Fatalf("S=%d: pid %d got value %d outside residue class %d",
					cse.S, pid, v, want)
			}
		}
		// Exact-count read-side aggregation: quiescent sum of stripe reads
		// equals the sequential total.
		if got := sc.Read(); got != total {
			t.Fatalf("S=%d: Read() = %d, want %d", cse.S, got, total)
		}
		var perStripe int64
		for i := 0; i < sc.Shards(); i++ {
			perStripe += sc.Counter(i).Read()
		}
		if perStripe != total {
			t.Fatalf("S=%d: per-stripe reads sum to %d, want %d", cse.S, perStripe, total)
		}
		if sc.Messages() <= 0 {
			t.Fatalf("S=%d: no messages billed", cse.S)
		}
		sc.Stop()
	}
}

// Fuzz-style mixed Inc/Dec run per family: random single and batched
// operations, tokens and antitokens, on random pids; the quiescent
// aggregate read must equal increments minus decrements exactly.
func TestShardedMixedIncDec(t *testing.T) {
	for _, fam := range []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"C(4,8)", func() (*network.Network, error) { return core.New(4, 8) }},
		{"C(8,16)", func() (*network.Network, error) { return core.New(8, 16) }},
	} {
		t.Run(fam.name, func(t *testing.T) {
			const S = 3
			sc, err := NewSharded(S, fam.build, Config{LinkBuffer: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Stop()
			rng := rand.New(rand.NewSource(7))
			var incs, decs int64
			for op := 0; op < 400; op++ {
				pid := rng.Intn(64)
				switch rng.Intn(4) {
				case 0:
					sc.Inc(pid)
					incs++
				case 1:
					sc.Dec(pid)
					decs++
				case 2:
					k := 1 + rng.Intn(9)
					sc.IncBatch(pid, k, nil)
					incs += int64(k)
				default:
					k := 1 + rng.Intn(9)
					sc.DecBatch(pid, k, nil)
					decs += int64(k)
				}
			}
			if got, want := sc.Read(), incs-decs; got != want {
				t.Fatalf("Read() = %d after %d incs / %d decs, want %d",
					got, incs, decs, want)
			}
		})
	}
}

// A stripe's batched values re-map into its residue class: IncBatch then
// DecBatch on one pid revoke exactly the claimed multiset.
func TestShardedBatchRevokes(t *testing.T) {
	sc, err := NewSharded(4, func() (*network.Network, error) {
		return core.New(4, 8)
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	claimed := sc.IncBatch(11, 40, nil)
	revoked := sc.DecBatch(11, 40, nil)
	sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
	sort.Slice(revoked, func(i, j int) bool { return revoked[i] < revoked[j] })
	for i := range claimed {
		if claimed[i] != revoked[i] {
			t.Fatalf("revoked %v != claimed %v", revoked, claimed)
		}
	}
	if got := sc.Read(); got != 0 {
		t.Fatalf("Read() = %d after full revocation, want 0", got)
	}
}

func TestNewShardedRejectsBadArgs(t *testing.T) {
	if _, err := NewSharded(0, nil, Config{}); err == nil {
		t.Fatal("NewSharded(0) succeeded")
	}
	calls := 0
	_, err := NewSharded(2, func() (*network.Network, error) {
		calls++
		if calls > 1 {
			return nil, errBuild
		}
		return core.New(2, 2)
	}, Config{})
	if err == nil {
		t.Fatal("NewSharded with failing build succeeded")
	}
}

var errBuild = &buildErr{}

type buildErr struct{}

func (*buildErr) Error() string { return "build failed" }
