package distnet

import (
	"fmt"
	"strconv"

	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/shard"
)

// Sharded composes S independent distributed deployments the way
// counter.Sharded composes S in-process networks: each stripe owns its own
// Counter (servers, wires, coalescing windows and exit cells), a caller is
// routed by the shared shard.StripeOf pid hash, and stripe s maps its
// local values v to the global residue class v·S + s. Values stay globally
// unique while the hot links, balancer inboxes and exit cells all multiply
// by S — sharding composes with the batched message protocol and per-wire
// coalescing each stripe already runs, for ×S on top of the E25 win.
//
// The read side aggregates: Messages sums the link-level bill of every
// stripe and Read sums the stripes' quiescent net counts, so exact-count
// accounting stays monotone across the whole fleet.
type Sharded struct {
	ctrs  []*Counter
	n     int64
	name  string
	plane *ctlplane.Fleet // per-stripe aggregation behind one Source
}

// NewSharded starts S independent deployments over fresh networks produced
// by build (called once per stripe; each stripe owns its network), all
// running the same emulation Config.
func NewSharded(shards int, build func() (*network.Network, error), cfg Config) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distnet: NewSharded with %d shards", shards)
	}
	s := &Sharded{ctrs: make([]*Counter, shards), n: int64(shards)}
	for i := range s.ctrs {
		net, err := build()
		if err != nil {
			for _, c := range s.ctrs[:i] {
				c.Stop()
			}
			return nil, fmt.Errorf("distnet: NewSharded shard %d: %w", i, err)
		}
		s.ctrs[i] = NewCounter(net, cfg)
		s.name = fmt.Sprintf("distshard%d:%s", shards, net.Name())
	}
	s.plane = ctlplane.NewFleet(s.name, "stripe")
	for i, c := range s.ctrs {
		s.plane.Add(strconv.Itoa(i), c)
	}
	return s, nil
}

// Health implements ctlplane.Source: the fleet is live (and quiescent)
// only when every stripe is.
func (s *Sharded) Health() ctlplane.Health { return s.plane.Health() }

// StripeStatus is one stripe's slot in a sharded deployment's /status.
type StripeStatus struct {
	Stripe       int             `json:"stripe"`
	ResidueClass string          `json:"residue_class"` // global values this stripe hands out
	Health       ctlplane.Health `json:"health"`
	Status       CounterStatus   `json:"status"`
}

// ShardedStatus is the fleet-wide /status document.
type ShardedStatus struct {
	Name    string         `json:"name"`
	Stripes []StripeStatus `json:"stripes"`
}

// Status implements ctlplane.Source: every stripe's shape plus the
// residue class its values land in.
func (s *Sharded) Status() any {
	st := ShardedStatus{Name: s.name}
	for i, c := range s.ctrs {
		st.Stripes = append(st.Stripes, StripeStatus{
			Stripe:       i,
			ResidueClass: fmt.Sprintf("v*%d+%d", s.n, i),
			Health:       c.Health(),
			Status:       c.Status().(CounterStatus),
		})
	}
	return st
}

// Gather implements ctlplane.Source: every stripe's samples under a
// stripe="i" label, so per-stripe message load sits side by side in
// one scrape.
func (s *Sharded) Gather() []ctlplane.Sample { return s.plane.Gather() }

// Shards returns the stripe count S.
func (s *Sharded) Shards() int { return int(s.n) }

// Counter returns stripe i's deployment (for quiescent inspection).
func (s *Sharded) Counter(i int) *Counter { return s.ctrs[i] }

// stripe routes a pid to its deployment.
func (s *Sharded) stripe(pid int) (int, *Counter) {
	i := shard.StripeOf(pid, int(s.n))
	return i, s.ctrs[i]
}

// Inc performs Fetch&Increment on pid's stripe; the stripe's coalescing
// window and batched flights apply as usual, and the local value lands in
// the stripe's residue class.
func (s *Sharded) Inc(pid int) int64 {
	i, c := s.stripe(pid)
	return c.Inc(pid)*s.n + int64(i)
}

// Dec performs Fetch&Decrement on pid's stripe, revoking the stripe's most
// recent increment on the exit wire the antitoken lands on.
func (s *Sharded) Dec(pid int) int64 {
	i, c := s.stripe(pid)
	return c.Dec(pid)*s.n + int64(i)
}

// IncBatch claims k values as one batched flight on pid's stripe,
// appending the k globally-mapped values to dst.
func (s *Sharded) IncBatch(pid, k int, dst []int64) []int64 {
	i, c := s.stripe(pid)
	return s.remap(c.IncBatch(pid, k, dst), len(dst), int64(i))
}

// DecBatch revokes k values as one batched antitoken flight on pid's
// stripe, appending the k globally-mapped revoked values to dst.
func (s *Sharded) DecBatch(pid, k int, dst []int64) []int64 {
	i, c := s.stripe(pid)
	return s.remap(c.DecBatch(pid, k, dst), len(dst), int64(i))
}

// remap rewrites the values a stripe appended past `from` into its global
// residue class.
func (s *Sharded) remap(vals []int64, from int, stripe int64) []int64 {
	for j := from; j < len(vals); j++ {
		vals[j] = vals[j]*s.n + stripe
	}
	return vals
}

// Messages sums the link-level message bill across all stripes — the
// aggregate E26 cost numerator. Monotone: stripes only ever add.
func (s *Sharded) Messages() int64 {
	var total int64
	for _, c := range s.ctrs {
		total += c.Messages()
	}
	return total
}

// Read sums the stripes' quiescent net counts (increments minus
// decrements) — which is how the exact-count equivalence tests reconcile
// sharded runs against sequential totals.
func (s *Sharded) Read() int64 {
	var total int64
	for _, c := range s.ctrs {
		total += c.Read()
	}
	return total
}

// Name identifies the deployment in benchmark tables.
func (s *Sharded) Name() string { return s.name }

// Stop shuts every stripe down. All in-flight operations must have
// returned.
func (s *Sharded) Stop() {
	for _, c := range s.ctrs {
		c.Stop()
	}
}
