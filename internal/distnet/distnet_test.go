package distnet

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/seq"
)

// Distributed execution must reach the same quiescent output counts as the
// arithmetic evaluation (§2.2 determinism, across process boundaries).
func TestMatchesQuiescent(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	defer sys.Stop()

	const procs, per = 16, 200
	exits := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		exits[pid] = make([]int64, net.OutWidth())
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exits[pid][sys.Inject(pid%8)]++
			}
		}(pid)
	}
	wg.Wait()
	got := make([]int64, net.OutWidth())
	for _, e := range exits {
		for i, v := range e {
			got[i] += v
		}
	}
	if !seq.IsStep(got) {
		t.Fatalf("distributed exits %v not step", got)
	}
	x := make([]int64, 8)
	for pid := 0; pid < procs; pid++ {
		x[pid%8] += per
	}
	fresh, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(got, want) {
		t.Fatalf("distributed %v != quiescent %v", got, want)
	}
}

func TestCounterUnique(t *testing.T) {
	net, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 4})
	defer c.Stop()
	const procs, per = 8, 300
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], c.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not {0..m-1} at %d: %d", i, v)
		}
	}
}

func TestHopLatency(t *testing.T) {
	net, err := core.New(2, 2) // depth 1
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{HopLatency: 5 * time.Millisecond})
	defer sys.Stop()
	start := time.Now()
	sys.Inject(0)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestStopIdempotent(t *testing.T) {
	net, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	sys.Inject(0)
	sys.Stop()
	sys.Stop() // must not panic
}

func TestString(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{LinkBuffer: 2})
	defer sys.Stop()
	if sys.String() == "" {
		t.Fatal("empty description")
	}
}
