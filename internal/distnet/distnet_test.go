package distnet

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bitonic"
	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/seq"
)

// distFamilies is the constructor matrix the batched protocol is gated
// on: the paper's C(w,t), the regular bitonic baseline, a smoothing
// butterfly, and a composed cascade.
func distFamilies(t *testing.T) []struct {
	name  string
	build func() (*network.Network, error)
} {
	t.Helper()
	return []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"C(8,16)", func() (*network.Network, error) { return core.New(8, 16) }},
		{"bitonic(8)", func() (*network.Network, error) { return bitonic.New(8) }},
		{"butterfly(8)", func() (*network.Network, error) { return butterfly.NewForward(8) }},
		{"composed", func() (*network.Network, error) {
			d, err := butterfly.NewForward(8)
			if err != nil {
				return nil, err
			}
			b, err := bitonic.New(8)
			if err != nil {
				return nil, err
			}
			return network.Cascade("composed", d, b)
		}},
	}
}

// Distributed execution must reach the same quiescent output counts as the
// arithmetic evaluation (§2.2 determinism, across process boundaries).
func TestMatchesQuiescent(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	defer sys.Stop()

	const procs, per = 16, 200
	exits := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		exits[pid] = make([]int64, net.OutWidth())
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exits[pid][sys.Inject(pid%8)]++
			}
		}(pid)
	}
	wg.Wait()
	got := make([]int64, net.OutWidth())
	for _, e := range exits {
		for i, v := range e {
			got[i] += v
		}
	}
	if !seq.IsStep(got) {
		t.Fatalf("distributed exits %v not step", got)
	}
	x := make([]int64, 8)
	for pid := 0; pid < procs; pid++ {
		x[pid%8] += per
	}
	fresh, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(got, want) {
		t.Fatalf("distributed %v != quiescent %v", got, want)
	}
}

func TestCounterUnique(t *testing.T) {
	net, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 4})
	defer c.Stop()
	const procs, per = 8, 300
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], c.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not {0..m-1} at %d: %d", i, v)
		}
	}
}

// The tentpole gate: a batched distributed run must reach exactly the
// quiescent output counts of k sequential tokens, for every constructor
// family, under concurrent batch injection on every wire.
func TestBatchMatchesQuiescentEveryFamily(t *testing.T) {
	for _, fam := range distFamilies(t) {
		t.Run(fam.name, func(t *testing.T) {
			net, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			sys := Start(net, Config{LinkBuffer: 2})
			defer sys.Stop()

			const per = 33 // tokens per (goroutine, wire) batch
			w := net.InWidth()
			tallies := make([][]int64, 2*w)
			var wg sync.WaitGroup
			for g := 0; g < 2*w; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tallies[g] = sys.InjectBatch(g%w, per)
				}(g)
			}
			wg.Wait()
			got := make([]int64, net.OutWidth())
			for _, tl := range tallies {
				for i, v := range tl {
					got[i] += v
				}
			}
			x := make([]int64, w)
			for i := range x {
				x[i] = 2 * per
			}
			fresh, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Quiescent(x)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Equal(got, want) {
				t.Fatalf("batched distributed exits %v != quiescent %v", got, want)
			}
		})
	}
}

// Antitoken batches cancel token batches: same exit multiset, and the
// deployment is back in its initial state afterwards (the next single
// token behaves as on a fresh system).
func TestAntiBatchCancels(t *testing.T) {
	for _, fam := range distFamilies(t) {
		t.Run(fam.name, func(t *testing.T) {
			net, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			sys := Start(net, Config{})
			defer sys.Stop()
			for _, k := range []int64{1, 7, 64} {
				tok := sys.InjectBatch(2, k)
				anti := sys.InjectAntiBatch(2, k)
				if !seq.Equal(tok, anti) {
					t.Fatalf("k=%d: token exits %v, antitoken exits %v", k, tok, anti)
				}
			}
			// All state cancelled: the next token exits where a fresh
			// network would send it.
			fresh, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sys.Inject(0), fresh.Traverse(0); got != want {
				t.Fatalf("after cancellation token exits %d, fresh network %d", got, want)
			}
		})
	}
}

// Batched flights interleaved with single tokens still land on the
// arithmetic prediction (mixed protocol traffic on the same deployment).
func TestBatchInterleavedWithSingles(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	defer sys.Stop()
	got := make([]int64, net.OutWidth())
	x := make([]int64, 8)
	for round := 0; round < 5; round++ {
		for wire := 0; wire < 8; wire++ {
			for i, v := range sys.InjectBatch(wire, int64(3+round)) {
				got[i] += v
			}
			x[wire] += int64(3 + round)
			got[sys.Inject(wire)]++
			x[wire]++
		}
	}
	fresh, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Quiescent(x)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(got, want) {
		t.Fatalf("mixed run %v != quiescent %v", got, want)
	}
}

// The headline economics: at k = 64 a batch crosses the deployment in at
// least 5x fewer messages per token than 64 single tokens (acceptance
// floor; the measured ratio is far higher). Message counts are exact and
// deterministic, not timing-dependent.
func TestBatchMessagesPerToken(t *testing.T) {
	build := func() (*System, *network.Network) {
		net, err := core.New(8, 24)
		if err != nil {
			t.Fatal(err)
		}
		return Start(net, Config{}), net
	}
	const k = 64
	singles, _ := build()
	defer singles.Stop()
	for i := int64(0); i < k; i++ {
		singles.Inject(0)
	}
	single := singles.Messages()

	batched, _ := build()
	defer batched.Stop()
	batched.InjectBatch(0, k)
	batch := batched.Messages()

	if batch*5 > single {
		t.Fatalf("msgs per token: batched %d/%d, singles %d/%d — less than the 5x floor",
			batch, k, single, k)
	}
	t.Logf("k=%d: %d msgs batched vs %d singles (%.1fx)", k, batch, single,
		float64(single)/float64(batch))
}

// Counter-level batching: IncBatch and DecBatch keep the deployment's
// value range dense, and DecBatch revokes exactly what IncBatch claimed.
func TestCounterBatchDense(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 2})
	defer c.Stop()

	var vals []int64
	for pid := 0; pid < 6; pid++ {
		vals = c.IncBatch(pid, 20, vals)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("IncBatch values not dense at %d: %d", i, v)
		}
	}
	revoked := c.DecBatch(3, 120, nil)
	sort.Slice(revoked, func(i, j int) bool { return revoked[i] < revoked[j] })
	if !seq.Equal(revoked, vals) {
		t.Fatalf("DecBatch revoked %v, IncBatch claimed %v", revoked, vals)
	}
	if v := c.Inc(0); v != 0 {
		t.Fatalf("counter not back at origin after full revocation: Inc = %d", v)
	}
	if got := c.IncBatch(0, 0, nil); len(got) != 0 {
		t.Fatalf("IncBatch k=0 returned %v", got)
	}
	if got := c.DecBatch(0, -3, nil); len(got) != 0 {
		t.Fatalf("DecBatch k<0 returned %v", got)
	}
}

// Coalescing: concurrent Inc callers sharing input wires merge into
// batched flights; the values must remain exactly {0..m-1}, and the
// deployment must spend fewer messages than the uncoalesced protocol
// does on the identical workload, proving windows actually formed. The
// concurrent system gets a hop latency so flights are genuinely in the
// network long enough for a backlog to pool (on one CPU a latency-free
// flight completes before the scheduler runs a second caller); the
// baseline runs latency-free since message counts don't depend on time.
func TestCounterCoalescedDense(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 4, HopLatency: 50 * time.Microsecond})
	defer c.Stop()
	const procs, per = 48, 10
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], c.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("coalesced values not {0..m-1} at %d: %d", i, v)
		}
	}
	// Baseline: the identical workload run sequentially, where no window
	// can form and every token pays its full per-hop message cost.
	net2, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCounter(net2, Config{LinkBuffer: 4})
	defer c2.Stop()
	for i := 0; i < per; i++ {
		for pid := 0; pid < procs; pid++ {
			c2.Inc(pid)
		}
	}
	if got, base := c.Messages(), c2.Messages(); got >= base {
		t.Fatalf("coalescing saved nothing: %d messages concurrent vs %d sequential", got, base)
	} else {
		t.Logf("messages: %d coalesced vs %d sequential (%.1fx fewer)", got, base,
			float64(base)/float64(got))
	}
}

func TestInjectBatchPanicsOnNegative(t *testing.T) {
	net, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	defer sys.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("InjectBatch(-1) did not panic")
		}
	}()
	sys.InjectBatch(0, -1)
}

func TestHopLatency(t *testing.T) {
	net, err := core.New(2, 2) // depth 1
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{HopLatency: 5 * time.Millisecond})
	defer sys.Stop()
	start := time.Now()
	sys.Inject(0)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestStopIdempotent(t *testing.T) {
	net, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{})
	sys.Inject(0)
	sys.Stop()
	sys.Stop() // must not panic
}

func TestString(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := Start(net, Config{LinkBuffer: 2})
	defer sys.Stop()
	if sys.String() == "" {
		t.Fatal("empty description")
	}
}
