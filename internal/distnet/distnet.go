// Package distnet emulates a distributed implementation of a balancing
// network, standing in for the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): each balancer runs as its
// own server goroutine owning its state; wires are channels; a token is a
// message routed hop by hop from an input wire to an output wire.
//
// The emulation preserves the distributed structure that produced the
// throughput results in [19,20] — a balancer is a remote shared object
// serializing one token at a time, a wire is a link with bounded capacity,
// and per-hop latency can be injected — while running on one machine.
package distnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/network"
)

// Config tunes the emulation.
type Config struct {
	// LinkBuffer is the channel capacity of each balancer's inbox
	// (default 1: a balancer accepts the next token while processing one).
	LinkBuffer int
	// HopLatency is an optional processing delay per balancer crossing,
	// emulating network round trips (0 for none).
	HopLatency time.Duration
}

// System is a running distributed emulation of one balancing network.
// Create with Start; Stop it when done (all tokens must have exited).
type System struct {
	net     *network.Network
	inboxes []chan token
	wg      sync.WaitGroup
	cfg     Config
	pool    sync.Pool // of chan int
	stopped bool
}

type token struct {
	done chan int // receives the network output wire on exit
}

// Start builds the server goroutines for the network. The network's
// balancer states are owned by the servers from now on via their own
// copies; the original network object is only read for topology.
func Start(net *network.Network, cfg Config) *System {
	if cfg.LinkBuffer < 1 {
		cfg.LinkBuffer = 1
	}
	s := &System{
		net:     net,
		inboxes: make([]chan token, net.Size()),
		cfg:     cfg,
	}
	s.pool.New = func() any { return make(chan int, 1) }
	for i := range s.inboxes {
		s.inboxes[i] = make(chan token, cfg.LinkBuffer)
	}
	for i := 0; i < net.Size(); i++ {
		nd := net.Node(i)
		s.wg.Add(1)
		go s.serve(i, nd.Out(), nd.Balancer().Init())
	}
	return s
}

// serve is the balancer server loop: single-threaded ownership of the
// balancer state, exactly one token processed at a time (§1.2's atomic
// memory location, as a process instead).
func (s *System) serve(id, q int, init int64) {
	defer s.wg.Done()
	state := init
	for tok := range s.inboxes[id] {
		if s.cfg.HopLatency > 0 {
			time.Sleep(s.cfg.HopLatency)
		}
		port := int(state % int64(q))
		state++
		next, nport := s.net.Dest(id, port)
		if next < 0 {
			tok.done <- nport
			continue
		}
		s.inboxes[next] <- tok
	}
}

// Inject shepherds one token in on the given input wire and blocks until
// it exits, returning the output wire. Safe for concurrent use.
func (s *System) Inject(wire int) int {
	nd, port := s.net.InputDest(wire)
	if nd < 0 {
		return port
	}
	done := s.pool.Get().(chan int)
	s.inboxes[nd] <- token{done: done}
	out := <-done
	s.pool.Put(done)
	return out
}

// Stop shuts down all servers. All injected tokens must have exited.
func (s *System) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, ch := range s.inboxes {
		close(ch)
	}
	s.wg.Wait()
}

// Counter layers Fetch&Increment cells over a distributed network, the
// full counter deployment of [19,20].
type Counter struct {
	sys   *System
	cells []cell
	w     int
	t     int64
	mu    sync.Mutex
}

type cell struct {
	mu sync.Mutex
	v  int64
	_  [6]int64
}

// NewCounter starts a distributed counter over the network.
func NewCounter(net *network.Network, cfg Config) *Counter {
	c := &Counter{
		sys:   Start(net, cfg),
		cells: make([]cell, net.OutWidth()),
		w:     net.InWidth(),
		t:     int64(net.OutWidth()),
	}
	for i := range c.cells {
		c.cells[i].v = int64(i)
	}
	return c
}

// Inc implements Fetch&Increment through the distributed network.
func (c *Counter) Inc(pid int) int64 {
	wire := pid % c.w
	i := c.sys.Inject(wire)
	cl := &c.cells[i]
	cl.mu.Lock()
	v := cl.v
	cl.v += c.t
	cl.mu.Unlock()
	return v
}

// Name identifies the counter in benchmark tables.
func (c *Counter) Name() string { return "dist:" + c.sys.net.Name() }

// Stop shuts the underlying system down.
func (c *Counter) Stop() { c.sys.Stop() }

// String describes the deployment.
func (s *System) String() string {
	return fmt.Sprintf("distnet(%s: %d servers, buffer %d, latency %v)",
		s.net.Name(), len(s.inboxes), s.cfg.LinkBuffer, s.cfg.HopLatency)
}
