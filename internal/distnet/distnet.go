// Package distnet emulates a distributed implementation of a balancing
// network, standing in for the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): each balancer runs as its
// own server goroutine owning its state; wires are channels; a token is a
// message routed hop by hop from an input wire to an output wire.
//
// The emulation preserves the distributed structure that produced the
// throughput results in [19,20] — a balancer is a remote shared object
// serializing one token at a time, a wire is a link with bounded capacity,
// and per-hop latency can be injected — while running on one machine.
//
// # Batched message protocol
//
// A message may carry a COUNT of k tokens (or antitokens) instead of a
// single token: a batch travels as a pipeline wavefront holding the
// per-balancer pending counts of the whole group. Each balancer server
// it visits applies its pending sub-group to its state with ONE
// transition (the StepN/StepAntiN split arithmetic: consecutive tokens
// take consecutive output wires round-robin), folds the split into the
// wavefront — so sub-groups that diverge re-merge at shared successors —
// and forwards the message to the next balancer with pending tokens in
// topological order. A batch of k tokens therefore crosses the network
// in exactly (balancers touched) ≤ min(size, k·depth) messages instead
// of k·depth, the distributed counterpart of network.TraverseBatch; the
// injector wakes when the wavefront has drained.
//
// On top of the protocol, Counter coalesces concurrent Inc callers that
// enter on the same input wire into one in-flight batch (a single-flight
// window per wire), so wide workloads pay one network round trip per
// window rather than per token.
package distnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
)

// Config tunes the emulation.
type Config struct {
	// LinkBuffer is the channel capacity of each balancer's inbox
	// (default 1: a balancer accepts the next token while processing one).
	LinkBuffer int
	// HopLatency is an optional processing delay per balancer crossing,
	// emulating network round trips (0 for none). A batched message pays
	// it once for its whole group — that is the point of batching.
	HopLatency time.Duration
}

// System is a running distributed emulation of one balancing network.
// Create with Start; Stop it when done (all tokens must have exited).
type System struct {
	net     *network.Network
	inboxes []chan msg
	wg      sync.WaitGroup
	cfg     Config
	pool    sync.Pool    // of chan int, for single-token replies
	msgs    atomic.Int64 // messages sent (injections + forwards)
	stopped bool
}

// msg is one link-level message: either a single token/antitoken with a
// direct reply channel (the latency path), or a batch wavefront.
type msg struct {
	anti bool     // antitoken traffic (Fetch&Decrement, ref [2])
	done chan int // single-token reply: receives the exit wire
	bat  *batch   // batch wavefront, nil on the single path
}

// batch is the state of one in-flight wavefront. It is owned exclusively
// by whichever server currently holds the message (channel handoff), so
// no field needs atomics.
type batch struct {
	pending []int64 // per balancer: tokens queued to cross it
	tally   []int64 // per network output wire: exits so far
	done    chan struct{}
}

// Start builds the server goroutines for the network. The network's
// balancer states are owned by the servers from now on via their own
// copies; the original network object is only read for topology.
func Start(net *network.Network, cfg Config) *System {
	if cfg.LinkBuffer < 1 {
		cfg.LinkBuffer = 1
	}
	s := &System{
		net:     net,
		inboxes: make([]chan msg, net.Size()),
		cfg:     cfg,
	}
	s.pool.New = func() any { return make(chan int, 1) }
	for i := range s.inboxes {
		s.inboxes[i] = make(chan msg, cfg.LinkBuffer)
	}
	for i := 0; i < net.Size(); i++ {
		nd := net.Node(i)
		s.wg.Add(1)
		go s.serve(i, nd.Out(), nd.Balancer().Init())
	}
	return s
}

// send delivers a message to a balancer inbox, counting it.
func (s *System) send(node int, m msg) {
	s.msgs.Add(1)
	s.inboxes[node] <- m
}

// wireOf maps a (possibly negative) step index to an output wire.
func wireOf(idx int64, q int) int {
	w := idx % int64(q)
	if w < 0 {
		w += int64(q)
	}
	return int(w)
}

// serve is the balancer server loop: single-threaded ownership of the
// balancer state (state = init + net tokens processed), one message at a
// time. A single-token message costs one transition; a batched message
// applies its whole group with one transition and the StepN/StepAntiN
// split arithmetic, forwarding at most one message per output port
// (§1.2's atomic memory location, as a process instead).
func (s *System) serve(id, q int, init int64) {
	defer s.wg.Done()
	state := init
	var dist []int64
	for m := range s.inboxes[id] {
		if s.cfg.HopLatency > 0 {
			time.Sleep(s.cfg.HopLatency)
		}
		if m.bat == nil {
			// Single token/antitoken: the latency path.
			var idx int64
			if m.anti {
				state--
				idx = state
			} else {
				idx = state
				state++
			}
			next, nport := s.net.Dest(id, wireOf(idx, q))
			if next < 0 {
				m.done <- nport
				continue
			}
			s.send(next, m)
			continue
		}
		// Batch wavefront: one state transition for this server's whole
		// pending sub-group, split folded back into the front.
		b := m.bat
		c := b.pending[id]
		b.pending[id] = 0
		var start int64
		if m.anti {
			state -= c
			start = state
		} else {
			start = state
			state += c
		}
		if cap(dist) < q {
			dist = make([]int64, q)
		}
		counts := balancer.DistributeInto(start, c, dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			next, nport := s.net.Dest(id, p)
			if next < 0 {
				b.tally[nport] += cnt
			} else {
				b.pending[next] += cnt
			}
		}
		// Hand the wavefront to the next balancer with pending tokens
		// (node ids are topological, so one forward pass drains it).
		forwarded := false
		for j := id + 1; j < len(b.pending); j++ {
			if b.pending[j] > 0 {
				s.send(j, m)
				forwarded = true
				break
			}
		}
		if !forwarded {
			close(b.done)
		}
	}
}

// Inject shepherds one token in on the given input wire and blocks until
// it exits, returning the output wire. Safe for concurrent use.
func (s *System) Inject(wire int) int { return s.inject(wire, false) }

// InjectAnti is Inject for one antitoken (Fetch&Decrement traffic).
func (s *System) InjectAnti(wire int) int { return s.inject(wire, true) }

func (s *System) inject(wire int, anti bool) int {
	nd, port := s.net.InputDest(wire)
	if nd < 0 {
		return port
	}
	done := s.pool.Get().(chan int)
	s.send(nd, msg{anti: anti, done: done})
	out := <-done
	s.pool.Put(done)
	return out
}

// InjectBatch shepherds k tokens entering on input wire `wire` through
// the deployment as batched messages — at most one message per balancer
// touched instead of one per token per hop — blocking until every
// token has exited. It returns the number of tokens that exited on each
// output wire (entries sum to k). Safe for concurrent use with itself and
// with Inject; the quiescent guarantees are those of k single tokens.
//
// k = 0 returns all-zero counts; k < 0 panics.
func (s *System) InjectBatch(wire int, k int64) []int64 {
	out := make([]int64, s.net.OutWidth())
	s.injectBatch(wire, k, false, out)
	return out
}

// InjectAntiBatch is InjectBatch for k antitokens.
func (s *System) InjectAntiBatch(wire int, k int64) []int64 {
	out := make([]int64, s.net.OutWidth())
	s.injectBatch(wire, k, true, out)
	return out
}

func (s *System) injectBatch(wire int, k int64, anti bool, out []int64) {
	if k < 0 {
		panic("distnet: InjectBatch of negative batch size")
	}
	if k == 0 {
		return
	}
	nd, port := s.net.InputDest(wire)
	if nd < 0 {
		out[port] += k
		return
	}
	b := &batch{
		pending: make([]int64, len(s.inboxes)),
		tally:   make([]int64, len(out)),
		done:    make(chan struct{}),
	}
	b.pending[nd] = k
	s.send(nd, msg{anti: anti, bat: b})
	<-b.done
	for i, v := range b.tally {
		out[i] += v
	}
}

// Messages returns the number of link-level messages sent so far
// (injections included) — the cost metric of the refs [19,20] deployments
// and the numerator of the E25 msgs-per-token tables.
func (s *System) Messages() int64 { return s.msgs.Load() }

// Stop shuts down all servers. All injected tokens must have exited.
func (s *System) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, ch := range s.inboxes {
		close(ch)
	}
	s.wg.Wait()
}

// Counter layers Fetch&Increment / Fetch&Decrement cells over a
// distributed network, the full counter deployment of [19,20]. Concurrent
// Inc callers entering on the same input wire coalesce into one in-flight
// batched message per single-flight window.
type Counter struct {
	sys   *System
	cells []cell
	combs []wireComb
	w     int
	t     int64

	// Control-plane state: read-side views over the emulation's message
	// bill and the coalescing windows, plus liveness for /health. The
	// two per-operation atomics are noise next to the channel hops each
	// operation already pays.
	stopped      atomic.Bool
	inflightN    atomic.Int64
	windows      atomic.Int64
	windowTokens atomic.Int64
	reg          *ctlplane.Registry
}

type cell struct {
	mu sync.Mutex
	v  int64
	_  [6]int64
}

// wireComb is the per-input-wire coalescing state: while one flight is in
// the network, later arrivals on the same wire pool into a window that
// the flight's owner executes as one batch when it lands.
type wireComb struct {
	mu     sync.Mutex
	flying bool
	next   *window
	_      [4]int64
}

// window is one pooled group of coalesced Inc calls.
type window struct {
	k    int64
	vals []int64
	done chan struct{}
}

// NewCounter starts a distributed counter over the network.
func NewCounter(net *network.Network, cfg Config) *Counter {
	c := &Counter{
		sys:   Start(net, cfg),
		cells: make([]cell, net.OutWidth()),
		combs: make([]wireComb, net.InWidth()),
		w:     net.InWidth(),
		t:     int64(net.OutWidth()),
	}
	for i := range c.cells {
		c.cells[i].v = int64(i)
	}
	c.reg = ctlplane.NewRegistry()
	labels := []ctlplane.Label{{Key: "transport", Value: "dist"}}
	c.reg.Counter(wire.MetricClientMsgs, wire.HelpClientMsgs, c.Messages, labels...)
	c.reg.Gauge(wire.MetricClientInflight, wire.HelpClientInflight, c.inflightN.Load, labels...)
	c.reg.Counter(wire.MetricClientWindows, wire.HelpClientWindows, c.windows.Load, labels...)
	c.reg.Counter(wire.MetricClientWindowTokens, wire.HelpClientWindowTokens, c.windowTokens.Load, labels...)
	return c
}

// CounterStatus is a distnet counter's /status document.
type CounterStatus struct {
	Transport  string `json:"transport"`
	State      string `json:"state"` // live or stopped
	Network    string `json:"network"`
	Servers    int    `json:"servers"` // balancer server goroutines
	InWidth    int    `json:"in_width"`
	OutWidth   int    `json:"out_width"`
	LinkBuffer int    `json:"link_buffer"`
	HopLatency string `json:"hop_latency"`
}

// Health implements ctlplane.Source: live until Stop, quiescent while
// no Inc/Dec/batch call is inside the network.
func (c *Counter) Health() ctlplane.Health {
	if c.stopped.Load() {
		return ctlplane.Health{Detail: "stopped"}
	}
	return ctlplane.Health{
		Live:      true,
		Quiescent: c.inflightN.Load() == 0,
		Detail:    "live",
	}
}

// Status implements ctlplane.Source with the emulation's shape.
func (c *Counter) Status() any {
	state := "live"
	if c.stopped.Load() {
		state = "stopped"
	}
	return CounterStatus{
		Transport:  "dist",
		State:      state,
		Network:    c.sys.net.Name(),
		Servers:    len(c.sys.inboxes),
		InWidth:    c.w,
		OutWidth:   int(c.t),
		LinkBuffer: c.sys.cfg.LinkBuffer,
		HopLatency: c.sys.cfg.HopLatency.String(),
	}
}

// Gather implements ctlplane.Source, evaluating the counter's
// registered metric views.
func (c *Counter) Gather() []ctlplane.Sample { return c.reg.Gather() }

// Inc implements Fetch&Increment through the distributed network. A lone
// caller pays the single-token latency path; concurrent callers on the
// same input wire coalesce into batched flights.
func (c *Counter) Inc(pid int) int64 {
	c.inflightN.Add(1)
	defer c.inflightN.Add(-1)
	wire := pid % c.w
	cb := &c.combs[wire]
	cb.mu.Lock()
	if cb.flying {
		w := cb.next
		if w == nil {
			w = &window{done: make(chan struct{})}
			cb.next = w
		}
		idx := w.k
		w.k++
		cb.mu.Unlock()
		<-w.done
		return w.vals[idx]
	}
	cb.flying = true
	cb.mu.Unlock()
	v := c.incOne(wire)
	c.land(cb, wire)
	return v
}

// incOne performs one uncoalesced Fetch&Increment on the given wire.
func (c *Counter) incOne(wire int) int64 {
	i := c.sys.Inject(wire)
	cl := &c.cells[i]
	cl.mu.Lock()
	v := cl.v
	cl.v += c.t
	cl.mu.Unlock()
	return v
}

// land drains the windows that pooled up behind the owner's flight, one
// batched round trip per window, then releases the wire.
func (c *Counter) land(cb *wireComb, wire int) {
	for {
		cb.mu.Lock()
		w := cb.next
		cb.next = nil
		if w == nil {
			cb.flying = false
			cb.mu.Unlock()
			return
		}
		cb.mu.Unlock()
		c.windows.Add(1)
		c.windowTokens.Add(w.k)
		w.vals = c.incBatchWire(wire, w.k, w.vals[:0])
		close(w.done)
	}
}

// IncBatch performs k Fetch&Increment operations as one batched flight
// entering on wire pid mod w, appending the k claimed values to dst.
func (c *Counter) IncBatch(pid, k int, dst []int64) []int64 {
	if k <= 0 {
		return dst
	}
	c.inflightN.Add(1)
	defer c.inflightN.Add(-1)
	return c.incBatchWire(pid%c.w, int64(k), dst)
}

func (c *Counter) incBatchWire(wire int, k int64, dst []int64) []int64 {
	tally := c.sys.InjectBatch(wire, k)
	for i, cnt := range tally {
		if cnt == 0 {
			continue
		}
		cl := &c.cells[i]
		cl.mu.Lock()
		v := cl.v
		cl.v += c.t * cnt
		cl.mu.Unlock()
		for j := int64(0); j < cnt; j++ {
			dst = append(dst, v+j*c.t)
		}
	}
	return dst
}

// Dec performs Fetch&Decrement via an antitoken (ref [2]): it undoes the
// most recent increment on its exit wire and returns the value that
// increment had handed out.
func (c *Counter) Dec(pid int) int64 {
	c.inflightN.Add(1)
	defer c.inflightN.Add(-1)
	i := c.sys.InjectAnti(pid % c.w)
	cl := &c.cells[i]
	cl.mu.Lock()
	cl.v -= c.t
	v := cl.v
	cl.mu.Unlock()
	return v
}

// DecBatch performs k Fetch&Decrement operations as one batched antitoken
// flight, appending the k revoked values to dst — the distributed
// counterpart of counter.Network.DecBatch.
func (c *Counter) DecBatch(pid, k int, dst []int64) []int64 {
	if k <= 0 {
		return dst
	}
	c.inflightN.Add(1)
	defer c.inflightN.Add(-1)
	tally := c.sys.InjectAntiBatch(pid%c.w, int64(k))
	for i, cnt := range tally {
		if cnt == 0 {
			continue
		}
		cl := &c.cells[i]
		cl.mu.Lock()
		cl.v -= c.t * cnt
		end := cl.v
		cl.mu.Unlock()
		for v := end + c.t*(cnt-1); v >= end; v -= c.t {
			dst = append(dst, v)
		}
	}
	return dst
}

// Messages reports the deployment's link-level message count.
func (c *Counter) Messages() int64 { return c.sys.Messages() }

// Read returns the counter's net value (increments minus decrements) by
// summing the exit cells — the deployment-wide exact-count read. Only
// meaningful in a quiescent state, like counter.Network.Issued.
func (c *Counter) Read() int64 {
	var total int64
	for i := range c.cells {
		cl := &c.cells[i]
		cl.mu.Lock()
		total += (cl.v - int64(i)) / c.t
		cl.mu.Unlock()
	}
	return total
}

// Name identifies the counter in benchmark tables.
func (c *Counter) Name() string { return "dist:" + c.sys.net.Name() }

// Stop shuts the underlying system down.
func (c *Counter) Stop() {
	c.stopped.Store(true)
	c.sys.Stop()
}

// String describes the deployment.
func (s *System) String() string {
	return fmt.Sprintf("distnet(%s: %d servers, buffer %d, latency %v)",
		s.net.Name(), len(s.inboxes), s.cfg.LinkBuffer, s.cfg.HopLatency)
}
