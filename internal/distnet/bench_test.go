package distnet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
)

// E25: messages and wall-clock per token of the batched message protocol
// as the batch size grows. msgs/token is the deployment's cost metric —
// watch it collapse from ~depth towards size/k as k rises.
func BenchmarkInjectBatch(b *testing.B) {
	for _, k := range []int64{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("CWT8x24/k=%d", k), func(b *testing.B) {
			net, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			sys := Start(net, Config{LinkBuffer: 4})
			defer sys.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.InjectBatch(i%8, k)
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(k)
			b.ReportMetric(float64(sys.Messages())/tokens, "msgs/token")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E26: sharded deployments — S independent systems with pid striping;
// per-shard msgs/token must hold the E25 batched floor while the hot
// links multiply by S.
func BenchmarkShardedIncBatch(b *testing.B) {
	for _, S := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("CWT8x24/S=%d/k=64", S), func(b *testing.B) {
			sc, err := NewSharded(S, func() (*network.Network, error) {
				return core.New(8, 24)
			}, Config{LinkBuffer: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer sc.Stop()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals = sc.IncBatch(i, 64, vals[:0])
			}
			b.StopTimer()
			tokens := float64(b.N) * 64
			b.ReportMetric(float64(sc.Messages())/tokens, "msgs/token")
		})
	}
}

// E25: the coalescing counter under parallel load — concurrent Inc
// callers on the same input wire share flights, so msgs/op falls below
// the per-token hop count whenever the workload is wide.
func BenchmarkCounterCoalesced(b *testing.B) {
	net, err := core.New(8, 24)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 4})
	defer c.Stop()
	var pids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1))
		for pb.Next() {
			c.Inc(pid)
		}
	})
	b.ReportMetric(float64(c.Messages())/float64(b.N), "msgs/op")
}
