package distnet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// E25: messages and wall-clock per token of the batched message protocol
// as the batch size grows. msgs/token is the deployment's cost metric —
// watch it collapse from ~depth towards size/k as k rises.
func BenchmarkInjectBatch(b *testing.B) {
	for _, k := range []int64{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("CWT8x24/k=%d", k), func(b *testing.B) {
			net, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			sys := Start(net, Config{LinkBuffer: 4})
			defer sys.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.InjectBatch(i%8, k)
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(k)
			b.ReportMetric(float64(sys.Messages())/tokens, "msgs/token")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E25: the coalescing counter under parallel load — concurrent Inc
// callers on the same input wire share flights, so msgs/op falls below
// the per-token hop count whenever the workload is wide.
func BenchmarkCounterCoalesced(b *testing.B) {
	net, err := core.New(8, 24)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCounter(net, Config{LinkBuffer: 4})
	defer c.Stop()
	var pids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1))
		for pb.Next() {
			c.Inc(pid)
		}
	})
	b.ReportMetric(float64(c.Messages())/float64(b.N), "msgs/op")
}
