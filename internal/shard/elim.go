package shard

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// Elimination front-end: concurrent Inc/Dec pairs cancel at the door.
//
// A Fetch&Increment (token) followed immediately by a Fetch&Decrement
// (antitoken) is the identity on the counter state: per Aiello et al.
// (ref [2] of the paper) the antitoken retraces the token's path,
// cancelling it at every balancer, and returns the very value the token
// was handed. The Eliminator exploits this at the entrance, the way the
// diffracting tree's prism (§1.4.1) pairs tokens before its toggles: an
// Inc and a Dec that meet in an exchange slot linearize as that adjacent
// Inc;Dec pair and return the same value to both callers — and neither
// operation enters the network, so a balanced Inc/Dec workload generates
// almost no balancer traffic at all.
//
// The pair's common value is drawn from the slot's private sequence. That
// is sound for this package's counter contract — which constrains
// *quiescent* states only (counting networks are not linearizable, ref
// [16]) — because the value is issued by the Inc and revoked by the Dec
// in one linearization step: no quiescent state ever observes it, exactly
// as if the pair had traversed the network and cancelled at the exit cell.
// The flip side, surfaced in the facade docs: a pair's value may coincide
// with a value some concurrent non-eliminated Inc is holding, so Inc
// results from an eliminated counter are not unique live tickets.

// IncDec is the contract for counters supporting both operations, e.g.
// counter.Network (Inc traverses a token, Dec an antitoken).
type IncDec interface {
	Inc(pid int) int64
	Dec(pid int) int64
}

// EliminatorOptions tunes the exchange-slot array.
type EliminatorOptions struct {
	// Slots is the number of exchange slots (0 = DefaultEliminatorSlots).
	// Each operation parks in a uniformly random slot; more slots cut
	// same-type collisions under high concurrency at the cost of a lower
	// chance that two opposite operations pick the same slot.
	Slots int
	// Spin is the number of polling iterations a parked operation waits
	// for an opposite-type partner before giving up and entering the
	// network (0 = DefaultEliminatorSpin).
	Spin int
}

// Default elimination parameters, mirroring dtree.DefaultOptions.
const (
	DefaultEliminatorSlots = 8
	DefaultEliminatorSpin  = 64
)

// Eliminator wraps an IncDec counter with an elimination slot array.
type Eliminator struct {
	inner IncDec
	slots []elimSlot
	spin  int

	pairs  atomic.Int64 // successful eliminations (each saves two traversals)
	misses atomic.Int64 // operations that fell through to the inner counter
}

// Slot states, packed into the top bits of the slot word; the low 32 bits
// carry the pair value (the same packing as balancer.Exchanger).
const (
	elimEmpty   int64 = 0 << 32
	elimIncWait int64 = 1 << 32
	elimDecWait int64 = 2 << 32
	elimPaired  int64 = 3 << 32
	elimState   int64 = ^int64(0) << 32
	elimValue   int64 = (1 << 32) - 1
)

type elimSlot struct {
	word atomic.Int64 // state | pair value
	seq  atomic.Int64 // private value sequence for pairs formed here
	_    [6]int64
}

// NewEliminator wraps inner with an elimination layer.
func NewEliminator(inner IncDec, opts EliminatorOptions) (*Eliminator, error) {
	if inner == nil {
		return nil, fmt.Errorf("shard: NewEliminator of nil counter")
	}
	if opts.Slots == 0 {
		opts.Slots = DefaultEliminatorSlots
	}
	if opts.Spin == 0 {
		opts.Spin = DefaultEliminatorSpin
	}
	if opts.Slots < 0 || opts.Spin < 0 {
		return nil, fmt.Errorf("shard: invalid eliminator options %+v", opts)
	}
	return &Eliminator{inner: inner, slots: make([]elimSlot, opts.Slots), spin: opts.Spin}, nil
}

// Pairs returns the number of Inc/Dec pairs eliminated so far.
func (e *Eliminator) Pairs() int64 { return e.pairs.Load() }

// Misses returns the number of operations that entered the inner counter.
func (e *Eliminator) Misses() int64 { return e.misses.Load() }

// Inner returns the wrapped counter (for quiescent inspection).
func (e *Eliminator) Inner() IncDec { return e.inner }

// Name identifies the counter in benchmark tables.
func (e *Eliminator) Name() string {
	if n, ok := e.inner.(interface{ Name() string }); ok {
		return "elim:" + n.Name()
	}
	return "elim"
}

// Inc performs Fetch&Increment, first offering to cancel against a
// concurrent Dec.
func (e *Eliminator) Inc(pid int) int64 {
	if v, ok := e.exchange(elimIncWait, elimDecWait); ok {
		return v
	}
	e.misses.Add(1)
	return e.inner.Inc(pid)
}

// Dec performs Fetch&Decrement, first offering to cancel against a
// concurrent Inc.
func (e *Eliminator) Dec(pid int) int64 {
	if v, ok := e.exchange(elimDecWait, elimIncWait); ok {
		return v
	}
	e.misses.Add(1)
	return e.inner.Dec(pid)
}

// exchange tries to pair an operation that would park as `mine` with a
// partner parked as `theirs`. It returns the pair value on success.
func (e *Eliminator) exchange(mine, theirs int64) (int64, bool) {
	if len(e.slots) == 0 {
		return 0, false
	}
	// Slot choice must be randomized per attempt (rand/v2's global source
	// is lock-free per-P): any static pid-to-slot map would segregate the
	// Inc and Dec populations into disjoint slots, and no pair would ever
	// meet — the same reason the diffracting tree draws prism slots from
	// an rng.
	// An operation that keeps finding slots it cannot pair with (same-type
	// waiters, pairs awaiting acknowledgement) gives up quickly: progress
	// is impossible until the scheduler runs someone else, so burning the
	// full spin budget on loads would only delay the network fallback.
	busyBudget := 8
	for i := 0; i < e.spin; i++ {
		s := &e.slots[rand.IntN(len(e.slots))]
		cur := s.word.Load()
		switch cur & elimState {
		case theirs:
			// An opposite operation is parked: form the pair. The CAS
			// winner owns the slot, so the private sequence advances
			// race-free per pair.
			v := (s.seq.Add(1) - 1) & elimValue
			if s.word.CompareAndSwap(cur, elimPaired|v) {
				e.pairs.Add(1)
				return v, true
			}
		case elimEmpty:
			// Park and wait for an opposite operation.
			if !s.word.CompareAndSwap(cur, mine) {
				continue
			}
			for j := i; j < e.spin; j++ {
				now := s.word.Load()
				if now&elimState == elimPaired {
					s.word.Store(elimEmpty)
					return now & elimValue, true
				}
				// When goroutines outnumber processors the partner may not
				// even be running; yield occasionally so large spin budgets
				// translate into real wall-clock pairing windows.
				if j&1023 == 1023 {
					runtime.Gosched()
				}
			}
			// Withdraw; if the CAS fails a partner just paired with us.
			if s.word.CompareAndSwap(mine, elimEmpty) {
				return 0, false
			}
			now := s.word.Load()
			if now&elimState == elimPaired {
				s.word.Store(elimEmpty)
				return now & elimValue, true
			}
			return 0, false
		default:
			// Same-type waiter or a completing pair in this slot: try
			// another random slot a few times rather than queueing behind
			// an operation we can never pair with.
			busyBudget--
			if busyBudget <= 0 {
				return 0, false
			}
		}
	}
	return 0, false
}
