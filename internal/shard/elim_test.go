package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stubIncDec is a central Inc/Dec counter that counts how often the
// eliminator actually reached it.
type stubIncDec struct {
	v    atomic.Int64
	incs atomic.Int64
	decs atomic.Int64
}

func (s *stubIncDec) Inc(int) int64 { s.incs.Add(1); return s.v.Add(1) - 1 }
func (s *stubIncDec) Dec(int) int64 { s.decs.Add(1); return s.v.Add(-1) }
func (s *stubIncDec) Name() string  { return "stub" }

// TestEliminatorPairs: a parked Dec and an arriving Inc cancel — both get
// the same value and the inner counter is never touched.
func TestEliminatorPairs(t *testing.T) {
	inner := &stubIncDec{}
	// A spin budget far beyond what the pairing handshake needs, so the
	// parked Dec cannot time out before the main goroutine pairs with it
	// (this box may have a single CPU).
	e, err := NewEliminator(inner, EliminatorOptions{Slots: 1, Spin: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	decV := make(chan int64)
	go func() { decV <- e.Dec(0) }()
	// Wait until the Dec is parked in the slot, then pair with it.
	for e.slots[0].word.Load()&elimState != elimDecWait {
		runtime.Gosched()
	}
	incV := e.Inc(0)
	if got := <-decV; got != incV {
		t.Fatalf("pair disagreed: Inc got %d, Dec got %d", incV, got)
	}
	if e.Pairs() != 1 {
		t.Fatalf("Pairs() = %d, want 1", e.Pairs())
	}
	if inner.incs.Load() != 0 || inner.decs.Load() != 0 {
		t.Fatalf("eliminated pair reached the inner counter (%d incs, %d decs)",
			inner.incs.Load(), inner.decs.Load())
	}
	// The slot must be reusable afterwards.
	if e.slots[0].word.Load()&elimState != elimEmpty {
		t.Fatal("slot not returned to empty")
	}
}

// TestEliminatorTimeout: a lone operation falls through to the inner
// counter once its spin budget expires.
func TestEliminatorTimeout(t *testing.T) {
	inner := &stubIncDec{}
	e, err := NewEliminator(inner, EliminatorOptions{Slots: 2, Spin: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v := e.Inc(0); v != 0 {
		t.Fatalf("Inc = %d, want 0", v)
	}
	if v := e.Inc(0); v != 1 {
		t.Fatalf("Inc = %d, want 1", v)
	}
	if e.Pairs() != 0 || e.Misses() != 2 {
		t.Fatalf("pairs=%d misses=%d, want 0/2", e.Pairs(), e.Misses())
	}
	if e.Name() != "elim:stub" {
		t.Fatalf("Name() = %q", e.Name())
	}
}

// TestEliminatorSameTypeNoPair: two Incs must never eliminate each other.
func TestEliminatorSameTypeNoPair(t *testing.T) {
	inner := &stubIncDec{}
	e, err := NewEliminator(inner, EliminatorOptions{Slots: 1, Spin: 32})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				e.Inc(0)
			}
		}()
	}
	wg.Wait()
	if e.Pairs() != 0 {
		t.Fatalf("Inc-only workload eliminated %d pairs", e.Pairs())
	}
	if inner.incs.Load() != 4*n {
		t.Fatalf("inner saw %d incs, want %d", inner.incs.Load(), 4*n)
	}
}

// TestEliminatorConcurrent: under a balanced mixed workload the books
// stay consistent: every operation either paired or reached the inner
// counter, and the inner counter's net value matches the misses (run
// with -race in CI).
func TestEliminatorConcurrent(t *testing.T) {
	inner := &stubIncDec{}
	e, err := NewEliminator(inner, EliminatorOptions{Slots: 4, Spin: 256})
	if err != nil {
		t.Fatal(err)
	}
	const (
		pairsOfGoroutines = 4
		per               = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < pairsOfGoroutines; g++ {
		wg.Add(2)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Inc(pid)
			}
		}(g)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Dec(pid)
			}
		}(g)
	}
	wg.Wait()

	total := int64(2 * pairsOfGoroutines * per)
	if got := 2*e.Pairs() + e.Misses(); got != total {
		t.Fatalf("2*pairs + misses = %d, want %d ops", got, total)
	}
	if got := inner.incs.Load() + inner.decs.Load(); got != e.Misses() {
		t.Fatalf("inner saw %d ops, misses = %d", got, e.Misses())
	}
	// Balanced workload: the inner counter's net value is incs - decs.
	if got := inner.v.Load(); got != inner.incs.Load()-inner.decs.Load() {
		t.Fatalf("inner value %d inconsistent", got)
	}
}
