package shard

// StripeOf maps a process id to one of `shards` stripes — the routing
// discipline every sharded layer in the repository shares (the in-process
// shard.Counter and the distributed distnet.Sharded / tcpnet.ShardedCluster
// deployments), so a pid lands on the same stripe index at every layer.
//
// Fibonacci hashing spreads dense pid ranges (0,1,2,... as issued by
// benchmark harnesses) uniformly before reduction, so neighbouring pids do
// not pile onto neighbouring stripes. shards must be >= 1.
func StripeOf(pid, shards int) int {
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(shards))
}
