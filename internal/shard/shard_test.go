package shard

import (
	"sync"
	"testing"
)

func padded(n int) []Inner {
	inners := make([]Inner, n)
	for i := range inners {
		inners[i] = NewPadded()
	}
	return inners
}

func TestShardedResidueClasses(t *testing.T) {
	const shards = 4
	c, err := New("test", padded(shards))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != shards {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	// Sequential Incs from one pid stay in one residue class and are dense
	// within it.
	s := c.ShardOf(42)
	for i := 0; i < 10; i++ {
		v := c.Inc(42)
		if int(v)%shards != s {
			t.Fatalf("value %d escaped residue class %d", v, s)
		}
		if want := int64(i*shards + s); v != want {
			t.Fatalf("value %d, want %d", v, want)
		}
	}
	if got := c.Issued(); got != 10 {
		t.Fatalf("Issued() = %d, want 10", got)
	}
}

func TestShardOfSpreads(t *testing.T) {
	c, err := New("test", padded(8))
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[int]bool)
	for pid := 0; pid < 64; pid++ {
		s := c.ShardOf(pid)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d) = %d out of range", pid, s)
		}
		if s != c.ShardOf(pid) {
			t.Fatalf("ShardOf(%d) unstable", pid)
		}
		hit[s] = true
	}
	// Dense pid ranges must not collapse onto a few shards.
	if len(hit) < 6 {
		t.Fatalf("64 pids hit only %d of 8 shards", len(hit))
	}
}

func TestShardedErrors(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("expected error for zero shards")
	}
	if _, err := New("x", []Inner{nil}); err == nil {
		t.Fatal("expected error for nil shard")
	}
}

// TestShardedConcurrentUnique: under concurrent load every value is handed
// out exactly once (run with -race in CI).
func TestShardedConcurrentUnique(t *testing.T) {
	const (
		goroutines = 8
		per        = 500
	)
	c, err := New("test", padded(4))
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				vals = append(vals, c.Inc(g))
			}
			got[g] = vals
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, goroutines*per)
	for _, vals := range got {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %d issued twice", v)
			}
			seen[v] = true
		}
	}
	if c.Issued() != goroutines*per {
		t.Fatalf("Issued() = %d, want %d", c.Issued(), goroutines*per)
	}
}
