package shard

import "testing"

// StripeOf is the routing discipline shared across every sharded layer:
// it must agree with Counter.ShardOf, stay in range, be deterministic,
// and spread dense pid ranges across all stripes.
func TestStripeOf(t *testing.T) {
	inners := make([]Inner, 5)
	for i := range inners {
		inners[i] = NewPadded()
	}
	c, err := New("stripes", inners)
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]int, 5)
	for pid := 0; pid < 1000; pid++ {
		s := StripeOf(pid, 5)
		if s < 0 || s >= 5 {
			t.Fatalf("StripeOf(%d, 5) = %d out of range", pid, s)
		}
		if s != StripeOf(pid, 5) {
			t.Fatalf("StripeOf(%d, 5) not deterministic", pid)
		}
		if got := c.ShardOf(pid); got != s {
			t.Fatalf("ShardOf(%d) = %d, StripeOf = %d", pid, got, s)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("stripe %d never hit over 1000 dense pids: %v", s, hits)
		}
	}
}
