// Package shard provides the scale-out layers that turn one counting
// network into a counter fit for very high concurrency:
//
//   - Counter stripes Fetch&Increment traffic over several independent
//     sub-counters ("shards", typically per-shard counting networks with
//     cache-line-padded exit cells), selecting a shard by hashing the
//     calling process id. Each shard hands out a disjoint residue class of
//     values (shard s of S returns v·S + s), so values stay globally
//     unique while the hot atomic words multiply by S. This trades the
//     global density of a single counting network (quiescent values are
//     dense per shard, not across shards) for another factor-of-S drop in
//     contention — the same trade ref [26]'s diffracting trees make.
//
//   - Eliminator (see elim.go) is a combining/elimination front-end in the
//     spirit of the diffracting tree's prism: concurrent Inc/Dec pairs
//     meet in an exchange slot and cancel without entering the network at
//     all.
//
// The package deliberately depends on nothing but the standard library:
// the per-shard sub-counters are injected through the Inner interface, so
// internal/counter can wire counting networks in without an import cycle.
package shard

import (
	"fmt"
	"sync/atomic"
)

// Inner is the contract a per-shard sub-counter must satisfy: a shared
// Fetch&Increment handing out 0, 1, 2, ... (dense in quiescent states).
type Inner interface {
	Inc(pid int) int64
}

// slotPad keeps adjacent shard headers on distinct cache lines so the
// (read-only) shard table itself never false-shares.
type innerSlot struct {
	inner Inner
	_     [6]uint64
}

// Counter is a sharded Fetch&Increment counter over S independent inners.
type Counter struct {
	shards []innerSlot
	n      int64
	name   string
}

// New builds a sharded counter over the given sub-counters. Shard s maps
// its inner's value v to the global value v*len(inners) + s.
func New(name string, inners []Inner) (*Counter, error) {
	if len(inners) == 0 {
		return nil, fmt.Errorf("shard: need at least one shard")
	}
	c := &Counter{shards: make([]innerSlot, len(inners)), n: int64(len(inners)), name: name}
	for i, in := range inners {
		if in == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
		c.shards[i].inner = in
	}
	return c, nil
}

// Shards returns the shard count S.
func (c *Counter) Shards() int { return int(c.n) }

// ShardOf returns the shard index pid's operations are routed to: the
// shared StripeOf discipline, so in-process and distributed sharding route
// a pid identically.
func (c *Counter) ShardOf(pid int) int { return StripeOf(pid, int(c.n)) }

// Inc implements Fetch&Increment: globally unique values, dense within
// each shard's residue class in quiescent states.
func (c *Counter) Inc(pid int) int64 {
	s := c.ShardOf(pid)
	return c.shards[s].inner.Inc(pid)*c.n + int64(s)
}

// Name identifies the counter in benchmark tables.
func (c *Counter) Name() string { return c.name }

// Issued returns the total number of values handed out, if every inner
// reports its own issued count through the optional Issuer interface;
// otherwise it returns -1. Only meaningful in a quiescent state.
func (c *Counter) Issued() int64 {
	var total int64
	for i := range c.shards {
		iss, ok := c.shards[i].inner.(Issuer)
		if !ok {
			return -1
		}
		total += iss.Issued()
	}
	return total
}

// Issuer is the optional introspection interface inners may implement.
type Issuer interface {
	Issued() int64
}

// Padded is a cache-line-padded central atomic counter, the minimal Inner
// (and the baseline the paper's networks are measured against). It also
// serves as the padded cell primitive other packages build on.
type Padded struct {
	v atomic.Int64
	_ [7]int64
}

// NewPadded returns a padded central counter starting at 0.
func NewPadded() *Padded { return &Padded{} }

// Inc implements Inner.
func (p *Padded) Inc(int) int64 { return p.v.Add(1) - 1 }

// Issued implements Issuer.
func (p *Padded) Issued() int64 { return p.v.Load() }
