package ctlplane

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a lock-free, log-bucketed latency/size distribution.
//
// The record path is Observe: one binary search over an immutable bound
// slice plus two atomic adds — no locks, no allocations, no branches
// that depend on scrape activity. That keeps the control-plane promise
// the counters and gauges already make (the hot path never pays for
// observability) while adding the one thing monotone atomics cannot
// express: the shape of a distribution, so tail latency is visible.
//
// Observations are raw int64 units (nanoseconds for durations, plain
// counts for e.g. attempts); Scale divides them back into the exposed
// unit at scrape time, so a latency histogram records ns and exposes
// seconds without any floating point on the record path.
//
// Bounds are inclusive upper bounds in ascending order. An implicit
// +Inf bucket catches everything above the last bound, so no value is
// ever dropped. Bounds are fixed at construction — log-spaced bounds
// (see ExpBuckets) cover µs..tens-of-seconds in ~26 buckets with a
// constant relative error, which is why the buckets are logarithmic
// rather than linear.
type Histogram struct {
	bounds []int64        // ascending inclusive upper bounds, immutable
	scale  float64        // exposed value = recorded value / scale
	counts []atomic.Int64 // len(bounds)+1; last slot is the +Inf bucket
	sum    atomic.Int64   // total of raw observed values
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// scale divides raw observations into the exposed unit (1e9 turns
// recorded nanoseconds into exposed seconds; 1 exposes raw counts).
// Malformed bounds are programmer errors and panic, matching the
// registry's registration contract.
func NewHistogram(scale float64, bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("ctlplane: histogram needs at least one bucket bound")
	}
	if !(scale > 0) {
		panic(fmt.Sprintf("ctlplane: histogram scale %v must be positive", scale))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("ctlplane: histogram bounds not strictly ascending at %d (%d <= %d)",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		scale:  scale,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor (each step at least +1, so bounds stay strictly ascending even
// when the factor rounds to a no-op at small values).
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("ctlplane: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]int64, n)
	cur := start
	for i := 0; i < n; i++ {
		out[i] = cur
		next := int64(float64(cur) * factor)
		if next <= cur {
			next = cur + 1
		}
		cur = next
	}
	return out
}

// LatencyBuckets is the standard bound set for wire latency histograms:
// power-of-two nanosecond bounds from 1µs to ~34s (26 buckets + the
// implicit +Inf). Factor-2 spacing bounds the relative quantile error
// at 2x, which is plenty to tell a 100µs RTT from a retry-induced
// multi-second stall.
func LatencyBuckets() []int64 {
	return ExpBuckets(1024, 2, 26) // 2^10 ns .. 2^35 ns
}

// NewLatencyHistogram returns a histogram recording nanoseconds over
// LatencyBuckets and exposing seconds.
func NewLatencyHistogram() *Histogram { return NewHistogram(1e9, LatencyBuckets()...) }

// Observe records one raw value. Lock-free and allocation-free: a
// binary search over the immutable bounds plus two atomic adds.
func (h *Histogram) Observe(v int64) {
	// sort.Search is inlined-friendly but takes a func; open-code the
	// binary search so the record path provably never allocates.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// HistBucket is one cumulative bucket of a snapshot: the count of
// observations <= LE (in exposed units; the final bucket's LE is +Inf).
type HistBucket struct {
	LE    float64
	Count int64
}

// HistSnapshot is one consistent-enough reading of a histogram, the
// unit Gather attaches to histogram Samples and WritePrometheus
// renders.
//
// Count is derived from the bucket counts (not a separate atomic), so
// the +Inf bucket always equals Count exactly, even when the snapshot
// races concurrent Observes, and both are monotone across successive
// snapshots. Sum is read separately and may lead or trail Count by the
// observations in flight during the snapshot — the same torn-read
// window every Prometheus client library accepts.
type HistSnapshot struct {
	Buckets []HistBucket // ascending LE, cumulative; last entry is +Inf
	Sum     float64      // total of observations, in exposed units
	Count   int64        // == Buckets[len-1].Count
}

// Snapshot evaluates the histogram into cumulative exposed-unit form.
// This is the scrape path; it allocates, Observe never does.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]HistBucket, len(h.counts))}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = float64(h.bounds[i]) / h.scale
		}
		s.Buckets[i] = HistBucket{LE: le, Count: cum}
	}
	s.Count = cum
	s.Sum = float64(h.sum.Load()) / h.scale
	return s
}

// Count returns the total number of observations so far.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// exposed units: the smallest bucket bound whose cumulative count
// covers q of the observations. Returns NaN on an empty histogram and
// +Inf when the quantile lands in the overflow bucket — a log-bucketed
// histogram can bound a quantile only to within one bucket's width.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	i := sort.Search(len(s.Buckets), func(i int) bool { return s.Buckets[i].Count >= rank })
	if i >= len(s.Buckets) {
		return math.Inf(1)
	}
	return s.Buckets[i].LE
}
