package ctlplane

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Health is the two-bit liveness contract the /health endpoint serves.
// Live means the target accepts new work (false once draining or
// closed — what a load balancer keys on); Quiescent means no operation
// is currently in flight, the precondition for the exact-count Read
// (§1.1's quiescent-state counting) and for a safe final drain.
type Health struct {
	Live      bool   `json:"live"`
	Quiescent bool   `json:"quiescent"`
	Detail    string `json:"detail,omitempty"`
}

// Source is anything the control plane can front: a shard server, a
// pooled counter client, or a Fleet of either. Status returns a
// JSON-serializable topology snapshot; Gather returns evaluated metric
// samples. Implementations must not block on the data path — every
// provided implementation reads atomics or takes only registration
// locks.
type Source interface {
	Health() Health
	Status() any
	Gather() []Sample
}

// Fleet aggregates member Sources under a distinguishing label — the
// cluster-level view of a sharded deployment. Gather prefixes every
// member sample with labelKey="value" so per-member (per-stripe,
// per-shard) load sits side by side in one scrape and skew is visible;
// Health is the conjunction of member healths; Status nests member
// statuses.
type Fleet struct {
	name     string
	labelKey string
	mu       sync.Mutex
	members  []fleetMember
}

type fleetMember struct {
	value string
	src   Source
}

// NewFleet builds an empty aggregate named name; member samples gain
// the label labelKey="<member value>".
func NewFleet(name, labelKey string) *Fleet {
	if !labelNameRe.MatchString(labelKey) {
		panic(fmt.Sprintf("ctlplane: fleet %s: invalid label name %q", name, labelKey))
	}
	return &Fleet{name: name, labelKey: labelKey}
}

// Add registers a member under its label value.
func (f *Fleet) Add(value string, src Source) {
	f.mu.Lock()
	f.members = append(f.members, fleetMember{value: value, src: src})
	f.mu.Unlock()
}

func (f *Fleet) snapshot() []fleetMember {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]fleetMember(nil), f.members...)
}

// Health is live (and quiescent) only when every member is.
func (f *Fleet) Health() Health {
	h := Health{Live: true, Quiescent: true}
	for _, m := range f.snapshot() {
		mh := m.src.Health()
		if !mh.Live {
			h.Live = false
			h.Detail = fmt.Sprintf("%s=%s not live: %s", f.labelKey, m.value, mh.Detail)
		}
		if !mh.Quiescent {
			h.Quiescent = false
		}
	}
	return h
}

// FleetMemberStatus is one member's slot in a FleetStatus.
type FleetMemberStatus struct {
	Label  string `json:"label"`
	Health Health `json:"health"`
	Status any    `json:"status"`
}

// FleetStatus is the aggregate /status document.
type FleetStatus struct {
	Name     string              `json:"name"`
	LabelKey string              `json:"label_key"`
	Members  []FleetMemberStatus `json:"members"`
}

// Status nests every member's health and status.
func (f *Fleet) Status() any {
	members := f.snapshot()
	st := FleetStatus{Name: f.name, LabelKey: f.labelKey}
	for _, m := range members {
		st.Members = append(st.Members, FleetMemberStatus{
			Label:  m.value,
			Health: m.src.Health(),
			Status: m.src.Status(),
		})
	}
	return st
}

// Gather concatenates member samples, prefixing each with the fleet's
// distinguishing label.
func (f *Fleet) Gather() []Sample {
	var out []Sample
	for _, m := range f.snapshot() {
		lbl := Label{Key: f.labelKey, Value: m.value}
		for _, s := range m.src.Gather() {
			s.Labels = append([]Label{lbl}, s.Labels...)
			out = append(out, s)
		}
	}
	return out
}

// HandlerOptions configures the optional debug surface of the admin
// mux. The zero value is the safe production default: flight tracing
// on (it is dependency-free and bounded), pprof off.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ (profile, heap,
	// goroutine, trace, ...). Opt-in: profiling endpoints can stall a
	// busy process and leak internals, so they are off unless a
	// deployment asks for them.
	Pprof bool
}

// Handler returns the admin mux for a Source: /health (JSON; HTTP 200
// while live, 503 once draining or closed), /status (JSON topology),
// /metrics (Prometheus text exposition format), and — when the Source
// also implements FlightSource — /debug/flights (JSON, last-N
// completed flights, newest first).
func Handler(src Source) http.Handler { return HandlerOpts(src, HandlerOptions{}) }

// HandlerOpts is Handler plus the opt-in debug surface.
func HandlerOpts(src Source, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	if fs, ok := src.(FlightSource); ok {
		mux.HandleFunc("/debug/flights", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(fs.Flights()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		h := src.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Live {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(src.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src.Gather())
	})
	return mux
}

// Server is one listening admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the admin surface for src on addr (use "127.0.0.1:0" in
// tests and read back Addr).
func Serve(addr string, src Source) (*Server, error) {
	return ServeOpts(addr, src, HandlerOptions{})
}

// ServeOpts is Serve with the opt-in debug surface configured.
func ServeOpts(addr string, src Source, opts HandlerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: HandlerOpts(src, opts)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the admin server (the fronted Source is untouched —
// draining it is the job of the DrainOnSignal hook or the caller).
func (s *Server) Close() error { return s.srv.Close() }

// DrainOnSignal runs drain once when one of the given signals arrives
// (default SIGTERM and SIGINT) — the graceful-shutdown hook: pass a
// closure that Closes the counters (failing new flights, waiting out
// in-flight ones) and then the shards, and the fleet lands with exact
// counts, no token lost or duplicated. The returned done channel
// closes after drain finishes; cancel unregisters the handler without
// draining (for a clean programmatic shutdown that already drained).
func DrainOnSignal(drain func(), signals ...os.Signal) (done <-chan struct{}, cancel func()) {
	if len(signals) == 0 {
		signals = []os.Signal{syscall.SIGTERM, os.Interrupt}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, signals...)
	finished := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			signal.Stop(ch)
			close(stop)
		})
	}
	go func() {
		select {
		case <-ch:
			signal.Stop(ch)
			drain()
			close(finished)
		case <-stop:
		}
	}()
	return finished, cancel
}
