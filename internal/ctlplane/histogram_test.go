package ctlplane

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramRejectsBadConstruction(t *testing.T) {
	mustPanic(t, "no bounds", func() { NewHistogram(1) })
	mustPanic(t, "zero scale", func() { NewHistogram(0, 1, 2) })
	mustPanic(t, "non-ascending bounds", func() { NewHistogram(1, 1, 1, 2) })
	mustPanic(t, "nil histogram registration", func() {
		NewRegistry().Histogram("countnet_h_seconds", "h", nil)
	})
	// Non-countnet name so the registry-level check is exercised on its
	// own (the countlint metricname rule covers countnet_ names).
	mustPanic(t, "histogram family ending _total", func() {
		NewRegistry().Histogram("other_h_total", "h", NewHistogram(1, 1))
	})
	mustPanic(t, "metric colliding with histogram expansion", func() {
		r := NewRegistry()
		r.Histogram("countnet_h_seconds", "h", NewHistogram(1, 1))
		r.Gauge("countnet_h_seconds_count", "clash", func() int64 { return 0 })
	})
	mustPanic(t, "histogram expanding over existing metric", func() {
		r := NewRegistry()
		r.Gauge("countnet_h_seconds_sum", "taken", func() int64 { return 0 })
		r.Histogram("countnet_h_seconds", "h", NewHistogram(1, 1))
	})
}

// TestHistogramBucketBoundaries is the boundary property test: every
// observed value lands in exactly one non-cumulative step, and that
// step is the first bucket whose (inclusive) upper bound covers it.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []int64{10, 100, 1000, 10000}
	expectedBucket := func(v int64) int {
		for i, b := range bounds {
			if v <= b {
				return i
			}
		}
		return len(bounds) // +Inf
	}
	probe := []int64{-5, 0, 1, 9, 10, 11, 99, 100, 101, 999, 1000, 1001, 9999, 10000, 10001, 1 << 40}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		probe = append(probe, rng.Int63n(20000))
	}
	for _, v := range probe {
		h := NewHistogram(1, bounds...)
		h.Observe(v)
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("Observe(%d): snapshot count = %d, want 1", v, s.Count)
		}
		// Exactly one cumulative step: counts are 0...0,1...1 with the
		// step at the expected bucket.
		step := -1
		var prev int64
		for j, b := range s.Buckets {
			if d := b.Count - prev; d != 0 {
				if d != 1 || step != -1 {
					t.Fatalf("Observe(%d): more than one cumulative step: %+v", v, s.Buckets)
				}
				step = j
			}
			prev = b.Count
		}
		if want := expectedBucket(v); step != want {
			t.Fatalf("Observe(%d) landed in bucket %d, want %d (bounds %v)", v, step, want, bounds)
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := NewHistogram(1000, 1000, 2000, 4000) // exposes units of 1k
	for _, v := range []int64{500, 1000, 1500, 3000, 9000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantLE := []float64{1, 2, 4, math.Inf(1)}
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.LE != wantLE[i] || b.Count != wantCum[i] {
			t.Fatalf("bucket %d = {%v %d}, want {%v %d}", i, b.LE, b.Count, wantLE[i], wantCum[i])
		}
	}
	if s.Count != 5 || s.Sum != 15 {
		t.Fatalf("snapshot count/sum = %d/%v, want 5/15", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want bucket bound 2", q)
	}
	if q := s.Quantile(0.79); q != 4 {
		t.Fatalf("p79 = %v, want bucket bound 4", q)
	}
	if q := s.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf (value above the last bound)", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty-histogram quantile = %v, want NaN", q)
	}
}

// TestPrometheusHistogramFormat pins the exposition shape end to end:
// registry -> Gather -> WritePrometheus -> the strict validator, plus
// exact series values for a known observation set, under labels and
// under a fleet prefix.
func TestPrometheusHistogramFormat(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(1000, 1000, 2000, 4000)
	for _, v := range []int64{500, 1500, 9000} {
		h.Observe(v)
	}
	reg.Histogram("countnet_test_latency_seconds", "Test latency.", h,
		Label{"transport", "tcp"})
	reg.Counter("countnet_test_ops_total", "Test operations.", func() int64 { return 7 })

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	values := validatePrometheusText(t, text)

	series := func(s string) float64 {
		v, ok := values[s]
		if !ok {
			t.Fatalf("series %q missing from:\n%s", s, text)
		}
		return v
	}
	if v := series(`countnet_test_latency_seconds_bucket{transport="tcp",le="1"}`); v != 1 {
		t.Fatalf("le=1 bucket = %v, want 1:\n%s", v, text)
	}
	if v := series(`countnet_test_latency_seconds_bucket{transport="tcp",le="2"}`); v != 2 {
		t.Fatalf("le=2 bucket = %v, want 2:\n%s", v, text)
	}
	if v := series(`countnet_test_latency_seconds_bucket{transport="tcp",le="+Inf"}`); v != 3 {
		t.Fatalf("+Inf bucket = %v, want 3:\n%s", v, text)
	}
	if v := series(`countnet_test_latency_seconds_count{transport="tcp"}`); v != 3 {
		t.Fatalf("_count = %v, want 3:\n%s", v, text)
	}
	if v := series(`countnet_test_latency_seconds_sum{transport="tcp"}`); v != 11 {
		t.Fatalf("_sum = %v, want 11:\n%s", v, text)
	}
	if n := strings.Count(text, "# TYPE countnet_test_latency_seconds"); n != 1 {
		t.Fatalf("histogram family announced %d times, want 1:\n%s", n, text)
	}
	if !strings.Contains(text, "# TYPE countnet_test_latency_seconds histogram\n") {
		t.Fatalf("family not typed histogram:\n%s", text)
	}

	// The same samples through a fleet keep the le label composable:
	// fleet labels prefix, le stays on the bucket series.
	fl := NewFleet("f", "stripe")
	fl.Add("3", &fakeSource{health: Health{Live: true}, reg: reg})
	b.Reset()
	if err := WritePrometheus(&b, fl.Gather()); err != nil {
		t.Fatal(err)
	}
	fleetValues := validatePrometheusText(t, b.String())
	if v := fleetValues[`countnet_test_latency_seconds_bucket{stripe="3",transport="tcp",le="+Inf"}`]; v != 3 {
		t.Fatalf("fleet-prefixed +Inf bucket = %v, want 3:\n%s", v, b.String())
	}
}

// TestHistogramRaceConsistency hammers Observe from many goroutines
// while a scraper keeps snapshotting: every snapshot must be internally
// consistent (cumulative buckets monotone, +Inf == Count) and Count
// must be monotone across snapshots; after the writers quiesce the
// totals must be exact. Run under -race via make resilience.
func TestHistogramRaceConsistency(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	h := NewHistogram(1, 10, 100, 1000)

	stop := make(chan struct{})
	scraped := make(chan error, 1)
	go func() {
		var lastCount int64
		defer close(scraped)
		for {
			s := h.Snapshot()
			var prev int64
			for i, b := range s.Buckets {
				if b.Count < prev {
					t.Errorf("snapshot bucket %d not cumulative: %d < %d", i, b.Count, prev)
					return
				}
				prev = b.Count
			}
			if s.Buckets[len(s.Buckets)-1].Count != s.Count {
				t.Errorf("+Inf bucket %d != Count %d", s.Buckets[len(s.Buckets)-1].Count, s.Count)
				return
			}
			if s.Count < lastCount {
				t.Errorf("Count went backwards: %d after %d", s.Count, lastCount)
				return
			}
			lastCount = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(2000))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-scraped

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
	// Replay the deterministic observation stream for the exact sum and
	// per-bucket totals.
	var wantSum float64
	wantBuckets := make([]int64, 4)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			v := rng.Int63n(2000)
			wantSum += float64(v)
			switch {
			case v <= 10:
				wantBuckets[0]++
			case v <= 100:
				wantBuckets[1]++
			case v <= 1000:
				wantBuckets[2]++
			default:
				wantBuckets[3]++
			}
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("final sum = %v, want %v", s.Sum, wantSum)
	}
	var cum int64
	for i, want := range wantBuckets {
		cum += want
		if s.Buckets[i].Count != cum {
			t.Fatalf("final bucket %d = %d, want %d", i, s.Buckets[i].Count, cum)
		}
	}
}

// TestHistogramObserveAllocs pins the zero-allocation record path
// directly (BenchmarkHistogramObserve carries the same claim in
// bench-smoke).
func TestHistogramObserveAllocs(t *testing.T) {
	h := NewLatencyHistogram()
	var v int64
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 977)
	}
}

func TestFlightRingBufferBounded(t *testing.T) {
	r := NewFlightRing(8)
	base := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		r.Record(FlightEvent{Start: base.Add(time.Duration(i) * time.Second), Tokens: int64(i)})
	}
	if n := r.Len(); n != 8 {
		t.Fatalf("ring len = %d, want capacity 8", n)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events returned %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(99 - i); ev.Tokens != want {
			t.Fatalf("event %d tokens = %d, want %d (newest first, oldest evicted)", i, ev.Tokens, want)
		}
	}
	// Partial fill: no zero-value padding events.
	r2 := NewFlightRing(0) // default capacity
	r2.Record(FlightEvent{Tokens: 1})
	r2.Record(FlightEvent{Tokens: 2})
	if evs := r2.Events(); len(evs) != 2 || evs[0].Tokens != 2 || evs[1].Tokens != 1 {
		t.Fatalf("partial ring events = %+v, want [2 1]", evs)
	}
}

func TestFleetFlightsAggregation(t *testing.T) {
	mk := func(tokens int64, at time.Time) *flightFakeSource {
		r := NewFlightRing(4)
		r.Record(FlightEvent{Start: at, Tokens: tokens})
		return &flightFakeSource{fakeSource: fakeSource{health: Health{Live: true}, reg: NewRegistry()}, ring: r}
	}
	base := time.Unix(2000, 0)
	fl := NewFleet("f", "stripe")
	fl.Add("0", mk(10, base.Add(time.Second)))
	fl.Add("1", mk(11, base.Add(2*time.Second)))
	fl.Add("2", &fakeSource{health: Health{Live: true}, reg: NewRegistry()}) // not a FlightSource

	evs := fl.Flights()
	if len(evs) != 2 {
		t.Fatalf("fleet flights = %d events, want 2", len(evs))
	}
	if evs[0].Tokens != 11 || evs[0].Source != "stripe=1" {
		t.Fatalf("newest event = %+v, want tokens 11 from stripe=1", evs[0])
	}
	if evs[1].Source != "stripe=0" {
		t.Fatalf("second event = %+v, want stripe=0", evs[1])
	}
}

// flightFakeSource is a fakeSource that also retains flights.
type flightFakeSource struct {
	fakeSource
	ring *FlightRing
}

func (f *flightFakeSource) Flights() []FlightEvent { return f.ring.Events() }

func TestDebugFlightsEndpoint(t *testing.T) {
	// A plain Source gets no /debug/flights.
	plain := &fakeSource{health: Health{Live: true}, reg: NewRegistry()}
	srv, err := Serve("127.0.0.1:0", plain)
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := httpGet(t, "http://"+srv.Addr()+"/debug/flights")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/debug/flights on a flightless source = %d, want 404", code)
	}

	// A FlightSource serves its ring as JSON, newest first.
	ring := NewFlightRing(4)
	ring.Record(FlightEvent{Op: "inc", Wire: 2, Tokens: 1, Attempts: 1, RPCs: 4, Outcome: "ok"})
	ring.Record(FlightEvent{Op: "window", Wire: 0, Tokens: 9, Attempts: 2, RPCs: 8, Retransmits: 1, Outcome: "ok"})
	src := &flightFakeSource{fakeSource: fakeSource{health: Health{Live: true}, reg: NewRegistry()}, ring: ring}
	srv, err = Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, ctype, body := httpGet(t, "http://"+srv.Addr()+"/debug/flights")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/debug/flights = %d %q, want 200 application/json", code, ctype)
	}
	var evs []FlightEvent
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/debug/flights body %q: %v", body, err)
	}
	if len(evs) != 2 || evs[0].Op != "window" || evs[0].Retransmits != 1 || evs[1].Op != "inc" {
		t.Fatalf("/debug/flights events = %+v", evs)
	}
}

func TestPprofEndpointOptIn(t *testing.T) {
	src := &fakeSource{health: Health{Live: true}, reg: NewRegistry()}

	// Default surface: no profiling endpoints.
	srv, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := httpGet(t, "http://"+srv.Addr()+"/debug/pprof/")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without opt-in = %d, want 404", code)
	}

	// Opted in: the pprof index and profiles are live.
	srv, err = ServeOpts("127.0.0.1:0", src, HandlerOptions{Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _, body := httpGet(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ opted in = %d, body %q", code, body)
	}
	code, _, _ = httpGet(t, "http://"+srv.Addr()+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d, want 200", code)
	}
}
