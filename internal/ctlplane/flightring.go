package ctlplane

import (
	"sort"
	"sync"
	"time"
)

// FlightEvent is one completed client flight as sampled into a
// FlightRing: what an operator needs to explain a tail-latency spike
// without a tracing dependency — when it ran, how long it took, how
// many attempts (tape replays) it burned, and what it cost on the wire.
type FlightEvent struct {
	Start       time.Time `json:"start"`
	DurationNs  int64     `json:"duration_ns"`
	Op          string    `json:"op"`   // "inc", "dec", "inc-batch", "dec-batch", "read", "window"
	Wire        int       `json:"wire"` // input wire, -1 for reads
	Tokens      int64     `json:"tokens"`
	Attempts    int       `json:"attempts"`
	RPCs        int64     `json:"rpcs"`
	Retransmits int64     `json:"retransmits"`
	Outcome     string    `json:"outcome"`          // "ok" or the error text
	Source      string    `json:"source,omitempty"` // fleet member label, set on aggregation
}

// DefaultFlightEvents is the ring capacity a counter uses when none is
// configured: enough recent flights to catch a p99 sampler's eye,
// small enough to be free.
const DefaultFlightEvents = 64

// FlightRing is a bounded ring buffer of the last-N completed flights,
// served as JSON at /debug/flights. Recording takes one short mutex
// (no allocation beyond strings the caller already built); the ring
// never grows past its capacity.
type FlightRing struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int // slot the next Record overwrites
	n    int // occupancy, <= len(buf)
}

// NewFlightRing returns a ring holding the last n events (n <= 0 means
// DefaultFlightEvents).
func NewFlightRing(n int) *FlightRing {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRing{buf: make([]FlightEvent, n)}
}

// Record stores one completed flight, evicting the oldest when full.
func (r *FlightRing) Record(ev FlightEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Events returns the retained flights, newest first.
func (r *FlightRing) Events() []FlightEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the current occupancy.
func (r *FlightRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// FlightSource is implemented by anything that retains flight events —
// a single counter (its ring) or a fleet (the merged rings of its
// members). Handler serves it at /debug/flights when the fronted
// Source implements it.
type FlightSource interface {
	Flights() []FlightEvent
}

// Flights merges member flight events (members that are not
// FlightSources contribute nothing), stamping each event's Source with
// the member's distinguishing label and returning the merged set
// newest first — the fleet-level slow-flight sampler.
func (f *Fleet) Flights() []FlightEvent {
	var out []FlightEvent
	for _, m := range f.snapshot() {
		fs, ok := m.src.(FlightSource)
		if !ok {
			continue
		}
		src := f.labelKey + "=" + m.value
		for _, ev := range fs.Flights() {
			if ev.Source == "" {
				ev.Source = src
			} else {
				ev.Source = src + "/" + ev.Source
			}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
