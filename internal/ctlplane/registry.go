// Package ctlplane is the production control plane for the distributed
// counting-network deployments: a tiny pull-based metrics registry plus
// an HTTP admin surface (/health, /status, /metrics) attachable to any
// shard server, counter client, or sharded fleet.
//
// The design center is that the hot path never pays for observability.
// Every number the plane exposes already exists as a monotone atomic
// (session RPC bills, retransmit counts, dedup window occupancy, pool
// eviction totals) maintained for the E25-E28 cost accounting; a Metric
// is just a named closure reading one of those atomics, evaluated only
// when a scrape arrives. Shards and counters therefore register
// read-side views at construction time and never touch the registry
// again — no channels, no locks shared with the data path, no
// per-operation branches beyond the atomic adds they were already
// doing.
//
// /metrics serves the Prometheus text exposition format (version
// 0.0.4), /health reports liveness and quiescence as JSON (HTTP 503
// once the target is draining or closed, which is what load balancers
// key on), and /status reports topology: stripe index, residue class,
// listen addresses, pool width. A Fleet aggregates any number of
// Sources under distinguishing labels, so a sharded cluster's endpoint
// shows per-stripe load side by side and skew is visible in one scrape.
//
// OPERATIONS.md at the repository root is the operator's manual for
// this package: endpoint walkthroughs, the full metric reference table
// (enforced against the registered names by `make docs-check`), and the
// drain/triage runbooks.
package ctlplane

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Type distinguishes Prometheus metric kinds: a counter only ever goes
// up (rates are meaningful), a gauge is a point-in-time level.
type Type string

const (
	TypeCounter Type = "counter"
	TypeGauge   Type = "gauge"
)

// Label is one name="value" pair attached to a metric's samples.
type Label struct {
	Key   string
	Value string
}

// Sample is one evaluated metric reading, the unit Gather returns and
// WritePrometheus renders.
type Sample struct {
	Name   string
	Type   Type
	Help   string
	Labels []Label
	Value  int64
}

// metric is one registered read-side view: a name plus the closure that
// reads the underlying atomic at scrape time.
type metric struct {
	name   string
	typ    Type
	help   string
	labels []Label
	read   func() int64
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is an append-only set of metrics. Registration happens at
// construction time (a shard or counter registering its atomics);
// Gather evaluates every read closure at scrape time. The mutex guards
// the slice only — the closures read atomics the data path maintains
// anyway, so a scrape never blocks an operation.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	seen    map[string]struct{} // name + sorted labels, duplicate guard
	meta    map[string]metric   // name -> first registration, consistency guard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]struct{}), meta: make(map[string]metric)}
}

// Counter registers a monotonically increasing metric read from the
// given closure. Registration errors (malformed name, duplicate
// series, type/help drift across a shared name) are programmer errors
// and panic.
func (r *Registry) Counter(name, help string, read func() int64, labels ...Label) {
	r.register(name, TypeCounter, help, read, labels)
}

// Gauge registers a point-in-time level metric.
func (r *Registry) Gauge(name, help string, read func() int64, labels ...Label) {
	r.register(name, TypeGauge, help, read, labels)
}

func (r *Registry) register(name string, typ Type, help string, read func() int64, labels []Label) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("ctlplane: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("ctlplane: metric %s: invalid label name %q", name, l.Key))
		}
	}
	if read == nil {
		panic(fmt.Sprintf("ctlplane: metric %s registered without a read func", name))
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("ctlplane: duplicate series %s", key))
	}
	if prev, ok := r.meta[name]; ok {
		if prev.typ != typ || prev.help != help {
			panic(fmt.Sprintf("ctlplane: metric %s re-registered with different type or help", name))
		}
	} else {
		r.meta[name] = metric{name: name, typ: typ, help: help}
	}
	r.seen[key] = struct{}{}
	r.metrics = append(r.metrics, metric{name: name, typ: typ, help: help, labels: labels, read: read})
}

// seriesKey canonicalizes a (name, labels) pair for duplicate detection.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Gather evaluates every registered metric and returns the samples in
// registration order.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	metrics := r.metrics
	r.mu.Unlock()
	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		out = append(out, Sample{Name: m.name, Type: m.typ, Help: m.help, Labels: m.labels, Value: m.read()})
	}
	return out
}

// WritePrometheus renders samples in the Prometheus text exposition
// format (version 0.0.4): samples sharing a name are grouped under one
// # HELP / # TYPE header pair, names appear in first-seen order, and
// help text and label values are escaped per the format.
func WritePrometheus(w io.Writer, samples []Sample) error {
	var order []string
	byName := make(map[string][]Sample)
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range order {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(group[0].Help), name, group[0].Type); err != nil {
			return err
		}
		for _, s := range group {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(s.Labels), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string       { return helpEscaper.Replace(s) }
func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }
