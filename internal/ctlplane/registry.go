// Package ctlplane is the production control plane for the distributed
// counting-network deployments: a tiny pull-based metrics registry plus
// an HTTP admin surface (/health, /status, /metrics) attachable to any
// shard server, counter client, or sharded fleet.
//
// The design center is that the hot path never pays for observability.
// Every number the plane exposes already exists as a monotone atomic
// (session RPC bills, retransmit counts, dedup window occupancy, pool
// eviction totals) maintained for the E25-E28 cost accounting; a Metric
// is just a named closure reading one of those atomics, evaluated only
// when a scrape arrives. Shards and counters therefore register
// read-side views at construction time and never touch the registry
// again — no channels, no locks shared with the data path, no
// per-operation branches beyond the atomic adds they were already
// doing.
//
// /metrics serves the Prometheus text exposition format (version
// 0.0.4), /health reports liveness and quiescence as JSON (HTTP 503
// once the target is draining or closed, which is what load balancers
// key on), and /status reports topology: stripe index, residue class,
// listen addresses, pool width. A Fleet aggregates any number of
// Sources under distinguishing labels, so a sharded cluster's endpoint
// shows per-stripe load side by side and skew is visible in one scrape.
//
// OPERATIONS.md at the repository root is the operator's manual for
// this package: endpoint walkthroughs, the full metric reference table
// (enforced against the registered names by `make docs-check`), and the
// drain/triage runbooks.
package ctlplane

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type distinguishes Prometheus metric kinds: a counter only ever goes
// up (rates are meaningful), a gauge is a point-in-time level.
type Type string

const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Label is one name="value" pair attached to a metric's samples.
type Label struct {
	Key   string
	Value string
}

// Sample is one evaluated metric reading, the unit Gather returns and
// WritePrometheus renders. Counter and gauge samples carry Value;
// histogram samples carry Hist instead (Value stays zero).
type Sample struct {
	Name   string
	Type   Type
	Help   string
	Labels []Label
	Value  int64
	Hist   *HistSnapshot
}

// metric is one registered read-side view: a name plus the closure that
// reads the underlying atomic at scrape time. Exactly one of read/hist
// is set, matching the sample shape.
type metric struct {
	name   string
	typ    Type
	help   string
	labels []Label
	read   func() int64
	hist   func() HistSnapshot
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is an append-only set of metrics. Registration happens at
// construction time (a shard or counter registering its atomics);
// Gather evaluates every read closure at scrape time. The mutex guards
// the slice only — the closures read atomics the data path maintains
// anyway, so a scrape never blocks an operation.
type Registry struct {
	mu       sync.Mutex
	metrics  []metric
	seen     map[string]struct{} // name + sorted labels, duplicate guard
	meta     map[string]metric   // name -> first registration, consistency guard
	reserved map[string]string   // histogram-expanded name (_bucket/_sum/_count) -> family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		seen:     make(map[string]struct{}),
		meta:     make(map[string]metric),
		reserved: make(map[string]string),
	}
}

// Counter registers a monotonically increasing metric read from the
// given closure. Registration errors (malformed name, duplicate
// series, type/help drift across a shared name) are programmer errors
// and panic.
func (r *Registry) Counter(name, help string, read func() int64, labels ...Label) {
	r.register(name, TypeCounter, help, read, labels)
}

// Gauge registers a point-in-time level metric.
func (r *Registry) Gauge(name, help string, read func() int64, labels ...Label) {
	r.register(name, TypeGauge, help, read, labels)
}

// Histogram registers a distribution metric whose snapshot closure is
// evaluated at scrape time. The name is the family name: exposition
// expands it to name_bucket{le="..."} / name_sum / name_count series,
// so those three expanded names are reserved against separate
// registrations (and a histogram family must not end in _total — that
// suffix is the counter convention).
func (r *Registry) Histogram(name, help string, h *Histogram, labels ...Label) {
	if h == nil {
		panic(fmt.Sprintf("ctlplane: histogram %s registered with a nil Histogram", name))
	}
	r.registerMetric(metric{name: name, typ: TypeHistogram, help: help, labels: labels, hist: h.Snapshot})
}

func (r *Registry) register(name string, typ Type, help string, read func() int64, labels []Label) {
	if read == nil {
		panic(fmt.Sprintf("ctlplane: metric %s registered without a read func", name))
	}
	r.registerMetric(metric{name: name, typ: typ, help: help, labels: labels, read: read})
}

func (r *Registry) registerMetric(m metric) {
	if !metricNameRe.MatchString(m.name) {
		panic(fmt.Sprintf("ctlplane: invalid metric name %q", m.name))
	}
	for _, l := range m.labels {
		if !labelNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("ctlplane: metric %s: invalid label name %q", m.name, l.Key))
		}
	}
	if m.typ == TypeHistogram && strings.HasSuffix(m.name, "_total") {
		panic(fmt.Sprintf("ctlplane: histogram family %s must not end in _total", m.name))
	}
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("ctlplane: duplicate series %s", key))
	}
	if prev, ok := r.meta[m.name]; ok {
		if prev.typ != m.typ || prev.help != m.help {
			panic(fmt.Sprintf("ctlplane: metric %s re-registered with different type or help", m.name))
		}
	} else {
		if fam, clash := r.reserved[m.name]; clash {
			panic(fmt.Sprintf("ctlplane: metric %s collides with histogram family %s", m.name, fam))
		}
		if m.typ == TypeHistogram {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				expanded := m.name + suffix
				if _, taken := r.meta[expanded]; taken {
					panic(fmt.Sprintf("ctlplane: histogram family %s expands to existing metric %s", m.name, expanded))
				}
				r.reserved[expanded] = m.name
			}
		}
		r.meta[m.name] = metric{name: m.name, typ: m.typ, help: m.help}
	}
	r.seen[key] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// seriesKey canonicalizes a (name, labels) pair for duplicate detection.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Gather evaluates every registered metric and returns the samples in
// registration order.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	metrics := r.metrics
	r.mu.Unlock()
	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Type: m.typ, Help: m.help, Labels: m.labels}
		if m.hist != nil {
			snap := m.hist()
			s.Hist = &snap
		} else {
			s.Value = m.read()
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus renders samples in the Prometheus text exposition
// format (version 0.0.4): samples sharing a name are grouped under one
// # HELP / # TYPE header pair, names appear in first-seen order, and
// help text and label values are escaped per the format.
func WritePrometheus(w io.Writer, samples []Sample) error {
	var order []string
	byName := make(map[string][]Sample)
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range order {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(group[0].Help), name, group[0].Type); err != nil {
			return err
		}
		for _, s := range group {
			if s.Type == TypeHistogram && s.Hist != nil {
				if err := writeHistogram(w, name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(s.Labels), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram sample as the Prometheus
// cumulative-bucket form: name_bucket{...,le="..."} per bound ending
// with le="+Inf", then name_sum and name_count. The le label is
// appended after the sample's own labels, so fleet label prefixing
// composes unchanged.
func writeHistogram(w io.Writer, name string, s Sample) error {
	base := formatLabels(s.Labels)
	for _, b := range s.Hist.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = strconv.FormatFloat(b.LE, 'g', -1, 64)
		}
		var labels string
		if base == "" {
			labels = fmt.Sprintf(`{le="%s"}`, le)
		} else {
			labels = fmt.Sprintf(`%s,le="%s"}`, base[:len(base)-1], le)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base,
		strconv.FormatFloat(s.Hist.Sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, s.Hist.Count)
	return err
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string       { return helpEscaper.Replace(s) }
func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }
