package ctlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// fakeSource is a hand-rolled Source for plane-level tests.
type fakeSource struct {
	health Health
	status any
	reg    *Registry
}

func (f *fakeSource) Health() Health   { return f.health }
func (f *fakeSource) Status() any      { return f.status }
func (f *fakeSource) Gather() []Sample { return f.reg.Gather() }

func newFakeSource(name string, n *atomic.Int64) *fakeSource {
	reg := NewRegistry()
	reg.Counter("countnet_test_ops_total", "Test operations.", n.Load)
	reg.Gauge("countnet_test_level", "Test level.", func() int64 { return 7 })
	return &fakeSource{
		health: Health{Live: true, Quiescent: true},
		status: map[string]string{"name": name},
		reg:    reg,
	}
}

func TestRegistryGatherOrderAndValues(t *testing.T) {
	var a, b atomic.Int64
	a.Store(3)
	reg := NewRegistry()
	reg.Counter("countnet_a_total", "A.", a.Load, Label{"transport", "tcp"})
	reg.Gauge("countnet_b", "B.", b.Load)
	reg.Counter("countnet_a_total", "A.", func() int64 { return 11 }, Label{"transport", "udp"})

	samples := reg.Gather()
	if len(samples) != 3 {
		t.Fatalf("Gather returned %d samples, want 3", len(samples))
	}
	if samples[0].Name != "countnet_a_total" || samples[0].Value != 3 {
		t.Fatalf("sample 0 = %+v, want countnet_a_total=3", samples[0])
	}
	if samples[1].Name != "countnet_b" || samples[1].Type != TypeGauge {
		t.Fatalf("sample 1 = %+v, want countnet_b gauge", samples[1])
	}
	if samples[2].Value != 11 {
		t.Fatalf("sample 2 = %+v, want value 11", samples[2])
	}

	// Closures are read at scrape time, not registration time.
	a.Store(100)
	if got := reg.Gather()[0].Value; got != 100 {
		t.Fatalf("re-Gather saw %d, want 100 (stale closure?)", got)
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	zero := func() int64 { return 0 }
	mustPanic(t, "invalid metric name", func() {
		NewRegistry().Counter("bad name", "h", zero)
	})
	mustPanic(t, "invalid label name", func() {
		NewRegistry().Counter("ok_name", "h", zero, Label{"bad-key", "v"})
	})
	mustPanic(t, "nil read func", func() {
		NewRegistry().Counter("ok_name", "h", nil)
	})
	mustPanic(t, "duplicate series", func() {
		r := NewRegistry()
		r.Counter("ok_name", "h", zero, Label{"a", "1"}, Label{"b", "2"})
		// Same series, labels in a different order: still a duplicate.
		r.Counter("ok_name", "h", zero, Label{"b", "2"}, Label{"a", "1"})
	})
	mustPanic(t, "type drift", func() {
		r := NewRegistry()
		r.Counter("ok_name", "h", zero, Label{"a", "1"})
		r.Gauge("ok_name", "h", zero, Label{"a", "2"})
	})
	mustPanic(t, "help drift", func() {
		r := NewRegistry()
		r.Counter("ok_name", "h", zero, Label{"a", "1"})
		r.Counter("ok_name", "different help", zero, Label{"a", "2"})
	})
	mustPanic(t, "invalid fleet label", func() {
		NewFleet("f", "bad-key")
	})
}

// validatePrometheusText is a strict checker for the text exposition
// format 0.0.4 subset WritePrometheus emits: every non-comment line is
// `name{labels} value`, every name is announced by exactly one
// # HELP / # TYPE pair before its first sample, and no name's samples
// are split across groups. Histogram families get the full treatment:
// their _bucket/_sum/_count series must follow the family's single
// HELP/TYPE pair, every bucket series must carry an le label, le values
// must ascend strictly and end at +Inf, cumulative counts must be
// monotone, and the +Inf bucket must equal the matching _count series.
func validatePrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	values := make(map[string]float64) // series key -> value
	helped := make(map[string]bool)
	typed := make(map[string]Type)
	finished := make(map[string]bool) // family -> a different family's samples followed
	// histogram family + "|" + non-le labels -> ascending (le, count)
	type bucket struct {
		le  float64
		val float64
	}
	buckets := make(map[string][]bucket)
	var last string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: second HELP for %s", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			name, typ := fields[0], Type(fields[1])
			if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: second TYPE for %s", ln+1, name)
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			// Sample line: name or name{k="v",...}, space, value.
			// Label values may contain spaces, so split on the last one.
			cut := strings.LastIndexByte(line, ' ')
			if cut < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			body, valStr := line[:cut], line[cut+1:]
			name := body
			if i := strings.IndexByte(body, '{'); i >= 0 {
				name = body[:i]
				if !strings.HasSuffix(body, "}") {
					t.Fatalf("line %d: unbalanced label braces %q", ln+1, line)
				}
			}
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad sample name %q", ln+1, name)
			}
			// A histogram family announces one name; its samples carry
			// the expanded _bucket/_sum/_count names.
			family := name
			if typed[name] == "" {
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] == TypeHistogram {
						family = f
						break
					}
				}
			}
			if !helped[family] || typed[family] == "" {
				t.Fatalf("line %d: sample for %s before HELP/TYPE", ln+1, name)
			}
			if typed[family] == TypeHistogram && family == name {
				t.Fatalf("line %d: bare sample %q for histogram family (want _bucket/_sum/_count)", ln+1, name)
			}
			if finished[family] {
				t.Fatalf("line %d: samples for %s split across groups", ln+1, family)
			}
			if last != "" && last != family {
				finished[last] = true
			}
			last = family
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
			if typed[family] != TypeHistogram && strings.ContainsAny(valStr, ".eE") {
				t.Fatalf("line %d: non-integer value %q for %s", ln+1, valStr, name)
			}
			if _, dup := values[body]; dup {
				t.Fatalf("line %d: duplicate series %q", ln+1, body)
			}
			values[body] = v
			if name == family+"_bucket" && typed[family] == TypeHistogram {
				rest, le, ok := splitLE(body[len(name):])
				if !ok {
					t.Fatalf("line %d: bucket series %q without an le label", ln+1, body)
				}
				buckets[family+"|"+rest] = append(buckets[family+"|"+rest], bucket{le: le, val: v})
			}
		}
	}
	// Histogram family post-pass: per (family, labels) series set.
	for key, bs := range buckets {
		family, rest, _ := strings.Cut(key, "|")
		for i := 1; i < len(bs); i++ {
			if !(bs[i].le > bs[i-1].le) {
				t.Fatalf("%s%s: le values not strictly ascending (%v after %v)",
					family, rest, bs[i].le, bs[i-1].le)
			}
			if bs[i].val < bs[i-1].val {
				t.Fatalf("%s%s: cumulative bucket counts not monotone (%v < %v at le=%v)",
					family, rest, bs[i].val, bs[i-1].val, bs[i].le)
			}
		}
		inf := bs[len(bs)-1]
		if !math.IsInf(inf.le, 1) {
			t.Fatalf("%s%s: last bucket le = %v, want +Inf", family, rest, inf.le)
		}
		count, ok := values[family+"_count"+rest]
		if !ok {
			t.Fatalf("%s%s: histogram without a _count series", family, rest)
		}
		if inf.val != count {
			t.Fatalf("%s%s: +Inf bucket %v != _count %v", family, rest, inf.val, count)
		}
		if _, ok := values[family+"_sum"+rest]; !ok {
			t.Fatalf("%s%s: histogram without a _sum series", family, rest)
		}
	}
	return values
}

// splitLE strips the le label out of a label body (`{a="b",le="x"}`),
// returning the remaining labels (`{a="b"}`, or "" when le was alone)
// and the parsed le bound.
func splitLE(labels string) (rest string, le float64, ok bool) {
	i := strings.LastIndex(labels, `le="`)
	if i < 0 {
		return labels, 0, false
	}
	end := strings.IndexByte(labels[i+4:], '"')
	if end < 0 {
		return labels, 0, false
	}
	leStr := labels[i+4 : i+4+end]
	if leStr == "+Inf" {
		le = math.Inf(1)
	} else {
		var err error
		if le, err = strconv.ParseFloat(leStr, 64); err != nil {
			return labels, 0, false
		}
	}
	rest = labels[:i] + labels[i+4+end+1:]
	rest = strings.TrimSuffix(rest, ",}") // le was last: {a="b",le="x"}
	if rest != labels[:i]+labels[i+4+end+1:] {
		rest += "}"
	}
	rest = strings.Replace(rest, "{,", "{", 1) // le was first but not alone
	if rest == "{}" {
		rest = ""
	}
	return rest, le, true
}

func TestWritePrometheusFormat(t *testing.T) {
	samples := []Sample{
		{Name: "countnet_x_total", Type: TypeCounter, Help: `a "quoted" help with \ and` + "\nnewline", Value: 1,
			Labels: []Label{{"transport", "tcp"}, {"shard", "0"}}},
		{Name: "countnet_y", Type: TypeGauge, Help: "y.", Value: -2},
		{Name: "countnet_x_total", Type: TypeCounter, Help: `a "quoted" help with \ and` + "\nnewline", Value: 3,
			Labels: []Label{{"transport", "udp"}, {"value", `needs "escaping"` + "\n"}}},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, samples); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	values := validatePrometheusText(t, text)
	if len(values) != 3 {
		t.Fatalf("validator saw %d series, want 3:\n%s", len(values), text)
	}
	if v := values[`countnet_x_total{transport="tcp",shard="0"}`]; v != 1 {
		t.Fatalf("tcp series = %v, want 1:\n%s", v, text)
	}
	if v := values[`countnet_x_total{transport="udp",value="needs \"escaping\"\n"}`]; v != 3 {
		t.Fatalf("udp series = %v, want 3:\n%s", v, text)
	}
	if !strings.Contains(text, `# HELP countnet_x_total a "quoted" help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
	// Both countnet_x_total samples share one header pair.
	if n := strings.Count(text, "# TYPE countnet_x_total"); n != 1 {
		t.Fatalf("countnet_x_total announced %d times, want 1:\n%s", n, text)
	}
}

func TestFleetAggregation(t *testing.T) {
	var n0, n1 atomic.Int64
	n0.Store(5)
	n1.Store(9)
	s0 := newFakeSource("s0", &n0)
	s1 := newFakeSource("s1", &n1)
	fl := NewFleet("testfleet", "stripe")
	fl.Add("0", s0)
	fl.Add("1", s1)

	// Gather prefixes each member's samples with stripe="i".
	samples := fl.Gather()
	if len(samples) != 4 {
		t.Fatalf("fleet Gather returned %d samples, want 4", len(samples))
	}
	for i, s := range samples {
		want := Label{"stripe", strconv.Itoa(i / 2)}
		if len(s.Labels) == 0 || s.Labels[0] != want {
			t.Fatalf("sample %d labels = %v, want leading %v", i, s.Labels, want)
		}
	}
	if samples[0].Value != 5 || samples[2].Value != 9 {
		t.Fatalf("fleet values = %d,%d; want 5,9", samples[0].Value, samples[2].Value)
	}

	// Health is the member conjunction.
	if h := fl.Health(); !h.Live || !h.Quiescent {
		t.Fatalf("all-live fleet health = %+v", h)
	}
	s1.health = Health{Live: false, Quiescent: false, Detail: "draining"}
	h := fl.Health()
	if h.Live || h.Quiescent {
		t.Fatalf("fleet with dead member health = %+v", h)
	}
	if !strings.Contains(h.Detail, "stripe=1") {
		t.Fatalf("fleet detail %q does not name the dead member", h.Detail)
	}

	// Status nests the members under the label key.
	st := fl.Status().(FleetStatus)
	if st.Name != "testfleet" || st.LabelKey != "stripe" || len(st.Members) != 2 {
		t.Fatalf("fleet status = %+v", st)
	}
	if st.Members[1].Health.Live {
		t.Fatalf("member 1 should report not live: %+v", st.Members[1])
	}
}

func httpGet(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	var n atomic.Int64
	n.Store(42)
	src := newFakeSource("solo", &n)
	srv, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ctype, body := httpGet(t, base+"/health")
	if code != http.StatusOK {
		t.Fatalf("/health live status = %d, want 200", code)
	}
	if ctype != "application/json" {
		t.Fatalf("/health content type = %q", ctype)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Live || !h.Quiescent {
		t.Fatalf("/health body %q (err %v)", body, err)
	}

	code, _, body = httpGet(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d, want 200", code)
	}
	var st map[string]string
	if err := json.Unmarshal([]byte(body), &st); err != nil || st["name"] != "solo" {
		t.Fatalf("/status body %q (err %v)", body, err)
	}

	code, ctype, body = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Fatalf("/metrics content type = %q, want %q", ctype, want)
	}
	values := validatePrometheusText(t, body)
	if values["countnet_test_ops_total"] != 42 {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	// Once the source stops being live, /health flips to 503.
	src.health = Health{Live: false, Detail: "closed"}
	code, _, _ = httpGet(t, base+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health after close = %d, want 503", code)
	}
}

func TestDrainOnSignal(t *testing.T) {
	var drained atomic.Bool
	// SIGUSR1 keeps the test harness itself out of the blast radius.
	done, cancel := DrainOnSignal(func() { drained.Store(true) }, syscall.SIGUSR1)
	defer cancel()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not run within 5s of the signal")
	}
	if !drained.Load() {
		t.Fatal("done closed but drain did not run")
	}
}

func TestDrainOnSignalCancel(t *testing.T) {
	done, cancel := DrainOnSignal(func() { t.Error("drain ran after cancel") }, syscall.SIGUSR2)
	cancel()
	cancel() // idempotent
	// The handler goroutine has exited; a late signal must not drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("done closed without a drain")
	case <-time.After(50 * time.Millisecond):
	}
}

// Example of rendering: keeps the doc surface honest.
func ExampleWritePrometheus() {
	samples := []Sample{
		{Name: "countnet_client_rpcs_total", Type: TypeCounter, Help: "Request frames sent.",
			Labels: []Label{{"transport", "tcp"}}, Value: 12},
	}
	var b strings.Builder
	WritePrometheus(&b, samples)
	fmt.Print(b.String())
	// Output:
	// # HELP countnet_client_rpcs_total Request frames sent.
	// # TYPE countnet_client_rpcs_total counter
	// countnet_client_rpcs_total{transport="tcp"} 12
}
