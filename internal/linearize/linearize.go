// Package linearize observes the (non-)linearizability of shared counters,
// the §1.4.2 discussion of the paper (Herlihy–Shavit–Waarts, ref [16]):
// counting networks are not linearizable — a token that started strictly
// after another finished may still receive a smaller value — and making
// them linearizable provably costs Ω(n) depth. This package measures the
// phenomenon: it records (start, end, value) intervals under a logical
// clock and counts order inversions.
//
// A central atomic counter shows zero inversions (it is linearizable); a
// counting network under real concurrency generally shows some.
package linearize

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Op is one observed Fetch&Increment: logical start/end stamps and the
// value received. Stamps come from a shared atomic clock, so
// End_A < Start_B certifies that A completed strictly before B began.
type Op struct {
	Start, End int64
	Value      int64
}

// Recorder drives a counter from several goroutines and collects Ops.
type Recorder struct {
	clock atomic.Int64
}

// Record runs `procs` goroutines, each performing `per` increments of inc,
// and returns all observed operations. inc receives the goroutine's pid.
func (r *Recorder) Record(procs, per int, inc func(pid int) int64) []Op {
	ops := make([][]Op, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ops[pid] = make([]Op, 0, per)
			for i := 0; i < per; i++ {
				start := r.clock.Add(1)
				v := inc(pid)
				end := r.clock.Add(1)
				ops[pid] = append(ops[pid], Op{Start: start, End: end, Value: v})
			}
		}(pid)
	}
	wg.Wait()
	var all []Op
	for _, s := range ops {
		all = append(all, s...)
	}
	return all
}

// Report summarizes the linearizability analysis of a set of operations.
type Report struct {
	// Ops is the number of operations analyzed.
	Ops int
	// Inversions is the number of operations B for which some operation A
	// finished strictly before B started yet received a larger value —
	// each one is a witnessed linearizability violation.
	Inversions int
	// MaxLag is the largest value deficit witnessed by an inversion:
	// max over violated B of (max preceding value - B.Value).
	MaxLag int64
}

// Analyze counts inversions in O(m log m): operations are swept in start
// order while maintaining the maximum value among operations that have
// already completed.
func Analyze(ops []Op) Report {
	rep := Report{Ops: len(ops)}
	if len(ops) == 0 {
		return rep
	}
	byStart := append([]Op(nil), ops...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })
	byEnd := append([]Op(nil), ops...)
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })

	maxEnded := int64(-1) // max value among ops with End < current Start
	j := 0
	for _, b := range byStart {
		for j < len(byEnd) && byEnd[j].End < b.Start {
			if byEnd[j].Value > maxEnded {
				maxEnded = byEnd[j].Value
			}
			j++
		}
		if maxEnded > b.Value {
			rep.Inversions++
			if lag := maxEnded - b.Value; lag > rep.MaxLag {
				rep.MaxLag = lag
			}
		}
	}
	return rep
}

// IsLinearizable reports whether no inversion was observed. Absence of
// inversions in one run does not prove linearizability; presence disproves
// it.
func IsLinearizable(ops []Op) bool { return Analyze(ops).Inversions == 0 }
