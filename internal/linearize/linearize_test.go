package linearize

import (
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
)

func TestAnalyzeEmptyAndTrivial(t *testing.T) {
	if rep := Analyze(nil); rep.Inversions != 0 || rep.Ops != 0 {
		t.Fatal("empty analysis broken")
	}
	ops := []Op{{Start: 1, End: 2, Value: 0}}
	if rep := Analyze(ops); rep.Inversions != 0 || rep.Ops != 1 {
		t.Fatal("single-op analysis broken")
	}
}

func TestAnalyzeDetectsInversion(t *testing.T) {
	// A finished (end=2) before B started (start=3) but got a larger value.
	ops := []Op{
		{Start: 1, End: 2, Value: 5},
		{Start: 3, End: 4, Value: 1},
	}
	rep := Analyze(ops)
	if rep.Inversions != 1 {
		t.Fatalf("inversions = %d, want 1", rep.Inversions)
	}
	if rep.MaxLag != 4 {
		t.Fatalf("MaxLag = %d, want 4", rep.MaxLag)
	}
	if IsLinearizable(ops) {
		t.Fatal("IsLinearizable false negative")
	}
}

func TestAnalyzeOverlappingOpsAreFine(t *testing.T) {
	// Overlapping intervals may return values in any order.
	ops := []Op{
		{Start: 1, End: 10, Value: 5},
		{Start: 2, End: 9, Value: 1},
	}
	if !IsLinearizable(ops) {
		t.Fatal("overlapping ops flagged as inversion")
	}
}

func TestSequentialOrderIsLinearizable(t *testing.T) {
	ops := []Op{
		{Start: 1, End: 2, Value: 0},
		{Start: 3, End: 4, Value: 1},
		{Start: 5, End: 6, Value: 2},
	}
	if !IsLinearizable(ops) {
		t.Fatal("sequential run flagged")
	}
}

// A central atomic counter is linearizable: no run may show inversions.
func TestCentralCounterLinearizable(t *testing.T) {
	var r Recorder
	c := counter.NewCentral()
	ops := r.Record(8, 2000, c.Inc)
	rep := Analyze(ops)
	if rep.Inversions != 0 {
		t.Fatalf("central counter showed %d inversions", rep.Inversions)
	}
	if rep.Ops != 16000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
}

// §1.4.2: counting networks are NOT linearizable. A single-threaded run
// shows no inversions (trivially); under heavy concurrency inversions are
// possible. We don't assert they occur (scheduling dependent — on a
// single-CPU host they may not), but we record the measurement path and
// assert the analysis stays consistent.
func TestNetworkCounterObservation(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := counter.NewNetwork(net)
	var r Recorder
	ops := r.Record(8, 2000, c.Inc)
	rep := Analyze(ops)
	t.Logf("network counter: %d ops, %d inversions, max lag %d",
		rep.Ops, rep.Inversions, rep.MaxLag)
	if rep.Ops != 16000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
	if rep.Inversions < 0 || rep.MaxLag < 0 {
		t.Fatal("inconsistent report")
	}
	// Sequential use is trivially inversion-free.
	net2, _ := core.New(8, 8)
	c2 := counter.NewNetwork(net2)
	var r2 Recorder
	seq := r2.Record(1, 1000, c2.Inc)
	if !IsLinearizable(seq) {
		t.Fatal("sequential network counter showed inversions")
	}
}
