// Package seq implements the integer-sequence machinery of Section 2.1 of
// Busch & Mavronicolas, "An efficient counting network" (TCS 411, 2010;
// preliminary version IPPS/SPDP'98): step sequences, k-smooth sequences,
// even/odd subsequences, step points, and the arithmetic facts of
// Lemmas 2.1-2.4 used throughout the construction proofs.
//
// A sequence x of length w represents the number of tokens observed on each
// of w wires of a balancing network in a quiescent state.
package seq

import (
	"errors"
	"fmt"
)

// ErrEmpty is returned by operations that require a non-empty sequence.
var ErrEmpty = errors.New("seq: empty sequence")

// Sum returns the sum of the elements of x.
func Sum(x []int64) int64 {
	var s int64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x. It panics if x is empty.
func Max(x []int64) int64 {
	if len(x) == 0 {
		panic(ErrEmpty)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element of x. It panics if x is empty.
func Min(x []int64) int64 {
	if len(x) == 0 {
		panic(ErrEmpty)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// IsStep reports whether x has the step property of [5]:
// 0 <= x[i]-x[j] <= 1 for every pair of indices i < j.
// Equivalently, x is non-increasing and Max(x)-Min(x) <= 1.
// The empty sequence and all singletons are step.
func IsStep(x []int64) bool {
	if len(x) <= 1 {
		return true
	}
	first, last := x[0], x[len(x)-1]
	if first-last > 1 || first < last {
		return false
	}
	for i := 1; i < len(x); i++ {
		if x[i] > x[i-1] {
			return false
		}
	}
	return true
}

// IsKSmooth reports whether x has the k-smooth property:
// |x[i]-x[j]| <= k for all pairs i, j.
func IsKSmooth(x []int64, k int64) bool {
	if len(x) <= 1 {
		return true
	}
	return Max(x)-Min(x) <= k
}

// Smoothness returns the smallest k such that x is k-smooth,
// i.e. Max(x)-Min(x). It panics if x is empty.
func Smoothness(x []int64) int64 {
	return Max(x) - Min(x)
}

// StepPoint returns the step point of a step sequence x: the unique index i
// with x[i] < x[i-1], or len(x) if all elements are equal (paper §2.1).
// It panics if x is not a step sequence.
func StepPoint(x []int64) int {
	if !IsStep(x) {
		panic(fmt.Sprintf("seq: StepPoint of non-step sequence %v", x))
	}
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			return i
		}
	}
	return len(x)
}

// StepValue returns element i of the step sequence of length w summing to
// sum, per Eq. (1) of the paper: x_i = ceil((sum - i) / w).
// It requires 0 <= i < w and sum >= 0.
func StepValue(sum int64, w, i int) int64 {
	if i < 0 || i >= w {
		panic(fmt.Sprintf("seq: StepValue index %d out of range [0,%d)", i, w))
	}
	return ceilDiv(sum-int64(i), int64(w))
}

// MakeStep returns the unique step sequence of length w whose elements sum
// to sum (sum >= 0), using Eq. (1).
func MakeStep(sum int64, w int) []int64 {
	x := make([]int64, w)
	for i := range x {
		x[i] = StepValue(sum, w, i)
	}
	return x
}

// ceilDiv returns ceil(a/b) for b > 0 and any integer a.
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("seq: ceilDiv requires positive divisor")
	}
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// Even returns the even subsequence x_0, x_2, x_4, ... of x.
func Even(x []int64) []int64 {
	out := make([]int64, 0, (len(x)+1)/2)
	for i := 0; i < len(x); i += 2 {
		out = append(out, x[i])
	}
	return out
}

// Odd returns the odd subsequence x_1, x_3, x_5, ... of x.
func Odd(x []int64) []int64 {
	out := make([]int64, 0, len(x)/2)
	for i := 1; i < len(x); i += 2 {
		out = append(out, x[i])
	}
	return out
}

// Halves splits x (of even length) into its first and second half.
func Halves(x []int64) (first, second []int64) {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("seq: Halves of odd-length sequence (len %d)", len(x)))
	}
	return x[:len(x)/2], x[len(x)/2:]
}

// Subsequence returns the subsequence of x selected by the strictly
// increasing index list idx. Lemma 2.1: any subsequence of a step sequence
// is step.
func Subsequence(x []int64, idx []int) []int64 {
	out := make([]int64, len(idx))
	prev := -1
	for k, i := range idx {
		if i <= prev || i >= len(x) {
			panic(fmt.Sprintf("seq: Subsequence indices must be strictly increasing and in range, got %v", idx))
		}
		out[k] = x[i]
		prev = i
	}
	return out
}

// Permutation is a bijection on {0..w-1}, represented so that p[i] is the
// image of i. Section 2.3: permuting a k-smooth sequence preserves
// k-smoothness (Lemma 2.6).
type Permutation []int

// Identity returns the identity permutation on w elements.
func Identity(w int) Permutation {
	p := make(Permutation, w)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a bijection on {0..len(p)-1}.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation p^R with p^R(p(i)) = i.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation q∘p (apply p first, then q).
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("seq: composing permutations of different sizes")
	}
	out := make(Permutation, len(p))
	for i := range p {
		out[i] = q[p[i]]
	}
	return out
}

// Apply returns pi(x): the sequence y with x[i] = y[pi(i)]
// (the paper's convention in §2.3).
func (p Permutation) Apply(x []int64) []int64 {
	if len(p) != len(x) {
		panic("seq: permutation/sequence length mismatch")
	}
	y := make([]int64, len(x))
	for i, v := range x {
		y[p[i]] = v
	}
	return y
}

// Equal reports whether two sequences are element-wise equal.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of x.
func Clone(x []int64) []int64 {
	out := make([]int64, len(x))
	copy(out, x)
	return out
}

// CheckLemma22 verifies Lemma 2.2 for a concrete pair of step sequences:
// if 0 <= Sum(x)-Sum(y) <= delta then 0 <= Max(x)-Max(y) <= floor(delta/w)+1.
// It returns an error describing the first violated condition, or nil.
// The preconditions (both step, length >= 2, equal lengths) are validated.
func CheckLemma22(x, y []int64, delta int64) error {
	if len(x) != len(y) || len(x) < 2 {
		return fmt.Errorf("seq: Lemma 2.2 needs equal lengths >= 2, got %d and %d", len(x), len(y))
	}
	if !IsStep(x) || !IsStep(y) {
		return errors.New("seq: Lemma 2.2 needs step sequences")
	}
	d := Sum(x) - Sum(y)
	if d < 0 || d > delta {
		return fmt.Errorf("seq: Lemma 2.2 precondition 0 <= %d <= %d fails", d, delta)
	}
	a, b := Max(x), Max(y)
	bound := delta/int64(len(x)) + 1
	if a-b < 0 || a-b > bound {
		return fmt.Errorf("seq: Lemma 2.2 conclusion fails: Max(x)-Max(y)=%d not in [0,%d]", a-b, bound)
	}
	return nil
}

// CheckLemma23 verifies Lemma 2.3 for a concrete step sequence of even
// length >= 2: 0 <= Sum(Even(x)) - Sum(Odd(x)) <= 1.
func CheckLemma23(x []int64) error {
	if len(x) < 2 || len(x)%2 != 0 {
		return fmt.Errorf("seq: Lemma 2.3 needs even length >= 2, got %d", len(x))
	}
	if !IsStep(x) {
		return errors.New("seq: Lemma 2.3 needs a step sequence")
	}
	d := Sum(Even(x)) - Sum(Odd(x))
	if d < 0 || d > 1 {
		return fmt.Errorf("seq: Lemma 2.3 conclusion fails: diff=%d", d)
	}
	return nil
}

// CheckLemma24 verifies Lemma 2.4 for concrete step sequences x, y of even
// length with an even delta: if 0 <= Sum(x)-Sum(y) <= delta then both the
// even and odd subsequences have sum differences within [0, delta/2].
func CheckLemma24(x, y []int64, delta int64) error {
	if len(x) != len(y) || len(x) < 2 || len(x)%2 != 0 {
		return fmt.Errorf("seq: Lemma 2.4 needs equal even lengths >= 2, got %d and %d", len(x), len(y))
	}
	if delta%2 != 0 {
		return fmt.Errorf("seq: Lemma 2.4 needs even delta, got %d", delta)
	}
	if !IsStep(x) || !IsStep(y) {
		return errors.New("seq: Lemma 2.4 needs step sequences")
	}
	d := Sum(x) - Sum(y)
	if d < 0 || d > delta {
		return fmt.Errorf("seq: Lemma 2.4 precondition 0 <= %d <= %d fails", d, delta)
	}
	de := Sum(Even(x)) - Sum(Even(y))
	do := Sum(Odd(x)) - Sum(Odd(y))
	if de < 0 || de > delta/2 {
		return fmt.Errorf("seq: Lemma 2.4 even conclusion fails: %d not in [0,%d]", de, delta/2)
	}
	if do < 0 || do > delta/2 {
		return fmt.Errorf("seq: Lemma 2.4 odd conclusion fails: %d not in [0,%d]", do, delta/2)
	}
	return nil
}
