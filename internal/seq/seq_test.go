package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumMaxMin(t *testing.T) {
	x := []int64{3, 5, 1, 4}
	if got := Sum(x); got != 13 {
		t.Errorf("Sum = %d, want 13", got)
	}
	if got := Max(x); got != 5 {
		t.Errorf("Max = %d, want 5", got)
	}
	if got := Min(x); got != 1 {
		t.Errorf("Min = %d, want 1", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %d, want 0", got)
	}
}

func TestMaxMinPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]int64) int64{"Max": Max, "Min": Min} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestIsStep(t *testing.T) {
	cases := []struct {
		x    []int64
		want bool
	}{
		{nil, true},
		{[]int64{7}, true},
		{[]int64{2, 2, 2}, true},
		{[]int64{3, 3, 2, 2}, true},
		{[]int64{3, 2, 2, 2}, true},
		{[]int64{3, 3, 3, 2}, true},
		{[]int64{3, 2, 3}, false},   // increases after decrease
		{[]int64{4, 2}, false},      // gap of 2
		{[]int64{2, 3}, false},      // increasing
		{[]int64{0, 0, 0, 0}, true}, // all zero
		{[]int64{1, 0, 1, 0}, false},
		{[]int64{5, 5, 4, 5}, false},
	}
	for _, c := range cases {
		if got := IsStep(c.x); got != c.want {
			t.Errorf("IsStep(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestIsKSmooth(t *testing.T) {
	cases := []struct {
		x    []int64
		k    int64
		want bool
	}{
		{nil, 0, true},
		{[]int64{5}, 0, true},
		{[]int64{3, 5, 4}, 2, true},
		{[]int64{3, 5, 4}, 1, false},
		{[]int64{1, 1, 1}, 0, true},
		{[]int64{0, 3}, 3, true},
		{[]int64{0, 4}, 3, false},
	}
	for _, c := range cases {
		if got := IsKSmooth(c.x, c.k); got != c.want {
			t.Errorf("IsKSmooth(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestSmoothness(t *testing.T) {
	if got := Smoothness([]int64{2, 7, 4}); got != 5 {
		t.Errorf("Smoothness = %d, want 5", got)
	}
	if got := Smoothness([]int64{3}); got != 0 {
		t.Errorf("Smoothness singleton = %d, want 0", got)
	}
}

func TestStepPoint(t *testing.T) {
	cases := []struct {
		x    []int64
		want int
	}{
		{[]int64{2, 2, 2, 2}, 4}, // all equal -> w
		{[]int64{3, 2, 2, 2}, 1},
		{[]int64{3, 3, 2, 2}, 2},
		{[]int64{3, 3, 3, 2}, 3},
		{[]int64{1}, 1},
	}
	for _, c := range cases {
		if got := StepPoint(c.x); got != c.want {
			t.Errorf("StepPoint(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestStepPointPanicsOnNonStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StepPoint of non-step sequence did not panic")
		}
	}()
	StepPoint([]int64{1, 2})
}

func TestMakeStepMatchesEquationOne(t *testing.T) {
	for w := 1; w <= 16; w *= 2 {
		for sum := int64(0); sum <= 3*int64(w)+1; sum++ {
			x := MakeStep(sum, w)
			if !IsStep(x) {
				t.Fatalf("MakeStep(%d, %d) = %v not step", sum, w, x)
			}
			if Sum(x) != sum {
				t.Fatalf("MakeStep(%d, %d) sums to %d", sum, w, Sum(x))
			}
			// Eq (1): element-wise agreement with StepValue.
			for i := range x {
				if x[i] != StepValue(sum, w, i) {
					t.Fatalf("MakeStep(%d,%d)[%d]=%d != StepValue=%d", sum, w, i, x[i], StepValue(sum, w, i))
				}
			}
		}
	}
}

func TestStepValueBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StepValue out-of-range index did not panic")
		}
	}()
	StepValue(5, 4, 4)
}

func TestEvenOdd(t *testing.T) {
	x := []int64{10, 11, 12, 13, 14}
	if got := Even(x); !Equal(got, []int64{10, 12, 14}) {
		t.Errorf("Even = %v", got)
	}
	if got := Odd(x); !Equal(got, []int64{11, 13}) {
		t.Errorf("Odd = %v", got)
	}
	if got := Even(nil); len(got) != 0 {
		t.Errorf("Even(nil) = %v", got)
	}
}

func TestHalves(t *testing.T) {
	a, b := Halves([]int64{1, 2, 3, 4})
	if !Equal(a, []int64{1, 2}) || !Equal(b, []int64{3, 4}) {
		t.Errorf("Halves = %v, %v", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("Halves of odd length did not panic")
		}
	}()
	Halves([]int64{1, 2, 3})
}

func TestSubsequence(t *testing.T) {
	x := []int64{5, 6, 7, 8}
	if got := Subsequence(x, []int{0, 2, 3}); !Equal(got, []int64{5, 7, 8}) {
		t.Errorf("Subsequence = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-increasing index list did not panic")
		}
	}()
	Subsequence(x, []int{2, 1})
}

// Lemma 2.1: any subsequence of a step sequence is step.
func TestLemma21Subsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		w := 2 + rng.Intn(30)
		x := MakeStep(rng.Int63n(100), w)
		var idx []int
		for i := 0; i < w; i++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		sub := Subsequence(x, idx)
		if !IsStep(sub) {
			t.Fatalf("Lemma 2.1 violated: x=%v idx=%v sub=%v", x, idx, sub)
		}
	}
}

func TestLemma22(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 2000; trial++ {
		w := 2 + rng.Intn(14)
		delta := rng.Int63n(20)
		sy := rng.Int63n(200)
		sx := sy + rng.Int63n(delta+1)
		x, y := MakeStep(sx, w), MakeStep(sy, w)
		if err := CheckLemma22(x, y, delta); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLemma22PreconditionErrors(t *testing.T) {
	if err := CheckLemma22([]int64{1}, []int64{1}, 1); err == nil {
		t.Error("length-1 sequences accepted")
	}
	if err := CheckLemma22([]int64{1, 2}, []int64{1, 1}, 1); err == nil {
		t.Error("non-step x accepted")
	}
	if err := CheckLemma22([]int64{1, 1}, []int64{3, 3}, 1); err == nil {
		t.Error("violated sum precondition accepted")
	}
}

func TestLemma23(t *testing.T) {
	for w := 2; w <= 32; w += 2 {
		for sum := int64(0); sum <= 4*int64(w); sum++ {
			if err := CheckLemma23(MakeStep(sum, w)); err != nil {
				t.Fatalf("w=%d sum=%d: %v", w, sum, err)
			}
		}
	}
}

func TestLemma24(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 2000; trial++ {
		w := 2 * (1 + rng.Intn(10))
		delta := 2 * rng.Int63n(10)
		sy := rng.Int63n(300)
		sx := sy + rng.Int63n(delta+1)
		if err := CheckLemma24(MakeStep(sx, w), MakeStep(sy, w), delta); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPermutationBasics(t *testing.T) {
	id := Identity(4)
	if !id.Valid() {
		t.Fatal("identity not valid")
	}
	p := Permutation{2, 0, 3, 1}
	if !p.Valid() {
		t.Fatal("p should be valid")
	}
	bad := Permutation{0, 0, 1, 2}
	if bad.Valid() {
		t.Fatal("duplicate image accepted")
	}
	inv := p.Inverse()
	for i := range p {
		if inv[p[i]] != i {
			t.Fatalf("inverse broken at %d", i)
		}
	}
	if got := p.Compose(inv); !permEqual(got, id) {
		t.Fatalf("p then p^R = %v, want identity", got)
	}
}

func permEqual(a, b Permutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPermutationApply(t *testing.T) {
	p := Permutation{2, 0, 1}
	x := []int64{10, 20, 30}
	y := p.Apply(x)
	// Convention: x[i] = y[p[i]].
	for i := range x {
		if y[p[i]] != x[i] {
			t.Fatalf("Apply convention broken: x=%v y=%v", x, y)
		}
	}
	// Round trip through the inverse.
	if got := p.Inverse().Apply(y); !Equal(got, x) {
		t.Fatalf("inverse apply = %v, want %v", got, x)
	}
}

// Lemma 2.6: permutations preserve k-smoothness.
func TestLemma26PermutationPreservesSmoothness(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 500; trial++ {
		w := 2 + rng.Intn(20)
		x := make([]int64, w)
		for i := range x {
			x[i] = rng.Int63n(7)
		}
		p := randPerm(rng, w)
		if Smoothness(p.Apply(x)) != Smoothness(x) {
			t.Fatalf("smoothness changed under permutation: %v -> %v", x, p.Apply(x))
		}
	}
}

func randPerm(rng *rand.Rand, w int) Permutation {
	p := make(Permutation, w)
	for i, v := range rng.Perm(w) {
		p[i] = v
	}
	return p
}

// Property: MakeStep always yields a step sequence with the requested sum.
func TestQuickMakeStep(t *testing.T) {
	f := func(sumRaw int64, wRaw uint8) bool {
		w := int(wRaw%63) + 1
		sum := sumRaw % (1 << 40)
		if sum < 0 {
			sum = -sum
		}
		x := MakeStep(sum, w)
		return IsStep(x) && Sum(x) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the step sequence of a given sum and width is unique, so
// MakeStep(Sum(x), len(x)) == x for any step x.
func TestQuickStepUniqueness(t *testing.T) {
	f := func(sumRaw int64, wRaw uint8) bool {
		w := int(wRaw%31) + 2
		sum := sumRaw % 100000
		if sum < 0 {
			sum = -sum
		}
		x := MakeStep(sum, w)
		return Equal(MakeStep(Sum(x), len(x)), x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 2.3 via quick): even/odd sums of a step sequence differ
// by 0 or 1.
func TestQuickLemma23(t *testing.T) {
	f := func(sumRaw int64, wRaw uint8) bool {
		w := 2 * (int(wRaw%16) + 1)
		sum := sumRaw % 100000
		if sum < 0 {
			sum = -sum
		}
		x := MakeStep(sum, w)
		d := Sum(Even(x)) - Sum(Odd(x))
		return d == 0 || d == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := []int64{1, 2, 3}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]int64{1}, []int64{1}) {
		t.Error("Equal false negative")
	}
	if Equal([]int64{1}, []int64{2}) || Equal([]int64{1}, []int64{1, 2}) {
		t.Error("Equal false positive")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{-1, 4, 0}, {-4, 4, -1}, {-5, 4, -1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
