package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty stream not zeroed")
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(3)
	if s.Var() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-element stream broken")
	}
}

// Property: streaming mean equals batch mean.
func TestQuickStreamMean(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Stream
		var sum float64
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		return math.Abs(s.Mean()-sum/float64(len(clean))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input not modified.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty data")
		}
	}()
	Percentile(nil, 50)
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = (%v, %v)", slope, intercept)
	}
	if r2 := R2(x, y, slope, intercept); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0.1, 0.9, 2.1, 2.9}
	slope, intercept := LinearFit(x, y)
	if slope < 0.9 || slope > 1.1 {
		t.Fatalf("slope = %v", slope)
	}
	if r2 := R2(x, y, slope, intercept); r2 < 0.99 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, c := range []struct{ x, y []float64 }{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{1}},
		{[]float64{2, 2}, []float64{1, 3}}, // constant x
	} {
		func() {
			defer func() { recover() }()
			LinearFit(c.x, c.y)
			t.Errorf("LinearFit(%v,%v) did not panic", c.x, c.y)
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("net", "n", "contention")
	tb.AddRowf("C(8,16)", 64, 3.14159)
	tb.AddRow("bitonic")
	s := tb.String()
	if !strings.Contains(s, "C(8,16)") || !strings.Contains(s, "3.142") {
		t.Fatalf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	md := tb.Markdown()
	if !strings.HasPrefix(md, "| net | n | contention |") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
}
