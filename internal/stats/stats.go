// Package stats provides the small statistics and reporting toolkit used
// by the experiment harness: streaming moments, percentiles, least-squares
// fits (for contention-vs-concurrency slopes), and aligned text tables for
// the EXPERIMENTS.md data.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates observations with Welford's algorithm.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation. It panics on an empty slice; xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty data")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if lengths differ or fewer than two points are given.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic(fmt.Sprintf("stats: LinearFit needs matched data of length >= 2, got %d and %d", len(x), len(y)))
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(len(x)), sy/float64(len(y))
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = num / den
	return slope, my - slope*mx
}

// R2 returns the coefficient of determination of the fit (slope,
// intercept) on (x, y).
func R2(x, y []float64, slope, intercept float64) float64 {
	if len(x) != len(y) || len(y) < 2 {
		panic("stats: R2 needs matched data of length >= 2")
	}
	var sy float64
	for _, v := range y {
		sy += v
	}
	my := sy / float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Table accumulates rows and renders them with aligned columns; numeric
// formatting is the caller's concern (pass pre-formatted cells).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, except float64 which uses %.3g.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
