package workload

import (
	"testing"

	"repro/internal/seq"
)

func TestUniform(t *testing.T) {
	var u Uniform
	if u.Wire(5, 4) != 1 || u.Wire(3, 4) != 3 {
		t.Fatal("uniform wiring broken")
	}
	if u.Name() != "uniform" {
		t.Fatal("name")
	}
}

func TestHotspot(t *testing.T) {
	h := Hotspot{Percent: 50}
	hot := 0
	for pid := 0; pid < 100; pid++ {
		if h.Wire(pid, 8) == 0 && pid%100 < 50 {
			hot++
		}
	}
	if hot != 50 {
		t.Fatalf("hotspot pinned %d of 50", hot)
	}
	if h.Name() != "hotspot50" {
		t.Fatal("name")
	}
}

func TestEvenQuota(t *testing.T) {
	q := EvenQuota{PerProcess: 7}
	for pid := 0; pid < 5; pid++ {
		if q.Tokens(pid) != 7 {
			t.Fatal("even quota broken")
		}
	}
}

func TestBurstyQuotaDeterministic(t *testing.T) {
	q := BurstyQuota{Mean: 10, Seed: 3}
	a, b := q.Tokens(4), q.Tokens(4)
	if a != b {
		t.Fatal("bursty quota not reproducible")
	}
	if a < 1 || a >= 20 {
		t.Fatalf("quota %d out of range", a)
	}
	// Different pids should (almost surely) differ somewhere.
	same := true
	for pid := 0; pid < 20; pid++ {
		if q.Tokens(pid) != a {
			same = false
			break
		}
	}
	if same {
		t.Fatal("bursty quota constant across pids")
	}
}

func TestCountsUniformEven(t *testing.T) {
	x := Counts(Uniform{}, EvenQuota{PerProcess: 3}, 8, 4)
	// 8 processes over 4 wires, 3 tokens each: 6 per wire.
	if !seq.Equal(x, []int64{6, 6, 6, 6}) {
		t.Fatalf("Counts = %v", x)
	}
}

func TestCountsHotspot(t *testing.T) {
	x := Counts(Hotspot{Percent: 100}, EvenQuota{PerProcess: 2}, 5, 4)
	if !seq.Equal(x, []int64{10, 0, 0, 0}) {
		t.Fatalf("Counts = %v", x)
	}
}
