// Package workload generates token-arrival workloads for the contention
// simulator and throughput benchmarks: which process issues tokens, on
// which wires, and in what proportions. The experimental comparisons of
// refs [19,20] of the paper sweep concurrency under a uniform workload;
// hotspot and bursty variants exercise the networks off the uniform path.
package workload

import (
	"fmt"
	"math/rand"
)

// Assignment maps processes to network input wires.
type Assignment interface {
	// Wire returns the input wire for process pid on a network with w
	// input wires.
	Wire(pid, w int) int
	// Name identifies the assignment in reports.
	Name() string
}

// Uniform is the paper's §1.2 assignment: process l enters on wire
// l mod w.
type Uniform struct{}

// Name implements Assignment.
func (Uniform) Name() string { return "uniform" }

// Wire implements Assignment.
func (Uniform) Wire(pid, w int) int { return pid % w }

// Hotspot sends a fraction of processes to wire 0 and spreads the rest,
// modeling skewed arrival (e.g. a popular producer).
type Hotspot struct {
	// Percent of processes (0..100) pinned to wire 0.
	Percent int
}

// Name implements Assignment.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot%d", h.Percent) }

// Wire implements Assignment.
func (h Hotspot) Wire(pid, w int) int {
	if pid%100 < h.Percent {
		return 0
	}
	return pid % w
}

// Quota decides how many tokens each process shepherds in total.
type Quota interface {
	// Tokens returns the number of tokens for process pid.
	Tokens(pid int) int
	// Name identifies the quota scheme.
	Name() string
}

// EvenQuota gives every process the same number of tokens.
type EvenQuota struct{ PerProcess int }

// Name implements Quota.
func (EvenQuota) Name() string { return "even" }

// Tokens implements Quota.
func (q EvenQuota) Tokens(int) int { return q.PerProcess }

// BurstyQuota gives a random quota in [1, 2*Mean), seeded deterministically
// per pid so runs are reproducible.
type BurstyQuota struct {
	Mean int
	Seed int64
}

// Name implements Quota.
func (BurstyQuota) Name() string { return "bursty" }

// Tokens implements Quota.
func (q BurstyQuota) Tokens(pid int) int {
	rng := rand.New(rand.NewSource(q.Seed + int64(pid)))
	return 1 + rng.Intn(2*q.Mean-1)
}

// Counts expands an (Assignment, Quota) pair into per-wire token counts
// for a network of input width w and n processes — the input vector for
// quiescent evaluation.
func Counts(a Assignment, q Quota, n, w int) []int64 {
	x := make([]int64, w)
	for pid := 0; pid < n; pid++ {
		x[a.Wire(pid, w)] += int64(q.Tokens(pid))
	}
	return x
}
