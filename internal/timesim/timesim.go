// Package timesim is a discrete-event queueing simulator for balancing
// networks — the "generic simulation of counting networks" companion of
// the paper's experimental references ([19]: Klein, A Generic Simulation
// of Counting Networks; [20]: Klein, Busch & Musser). Where package
// contention counts stalls under an adversary (the DHW model the paper
// analyzes), timesim attaches *time*: each balancer is a FIFO server with
// a service time, each process is a closed-loop client with a think time,
// and the simulator measures throughput and latency as concurrency grows.
//
// The two models illuminate the same mechanism from different angles: in
// a closed loop, throughput = n / (latency + think), and the latency a
// token accumulates is queueing delay in the network's *narrow* layers.
// C(w,t) has only lgw narrow layers (block Na,b) before fanning out to
// width t, while the bitonic network is narrow for all (lg²w+lgw)/2
// layers — so the wide-output network saturates at lower latency, which
// is the queueing-theoretic face of the paper's contention advantage.
package timesim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/stats"
)

// Config parameterizes a simulation run.
type Config struct {
	// Processes is the closed-loop client count (the concurrency n).
	Processes int
	// Ops is the total number of operations to complete.
	Ops int64
	// ServiceTime is the mean balancer service time (time units/token).
	ServiceTime float64
	// ThinkTime is the mean client-side delay between operations.
	ThinkTime float64
	// Exponential draws service and think times from exponential
	// distributions with the configured means; otherwise they are
	// deterministic constants.
	Exponential bool
	// ContentionFactor models memory contention at a hot balancer: a
	// token beginning service at a balancer with q tokens present takes
	// ServiceTime * (1 + ContentionFactor*(q-1)). This is the §1.2
	// mechanism ("all unsuccessful tokens must wait and try again") in
	// timing form: crowded memory words serve slower, which is what makes
	// wide output blocks pay off in refs [19,20]. Zero disables it.
	ContentionFactor float64
	// Seed drives the random draws (used only when Exponential).
	Seed int64
}

// Result summarizes a run.
type Result struct {
	Net        string
	Processes  int
	Ops        int64
	Duration   float64 // simulated time to complete all ops
	Throughput float64 // ops per time unit
	MeanLat    float64 // mean token latency (injection to exit)
	P95Lat     float64
	MaxQueue   int     // longest balancer queue observed
	BusiestUse float64 // utilization of the busiest balancer
}

// event kinds
const (
	evService = iota // a balancer finishes serving its head token
	evInject         // a process injects its next token
)

type event struct {
	at   float64
	kind int
	node int32 // evService: which balancer
	pid  int32 // evInject: which process
	seq  int64 // tiebreak for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type token struct {
	pid     int32
	started float64
}

type server struct {
	queue []token
	busy  bool
	state int64
	work  float64 // accumulated busy time
}

// Run simulates the network under the configuration and returns measured
// throughput and latency. It panics on invalid configuration.
func Run(net *network.Network, cfg Config) Result {
	if cfg.Processes < 1 || cfg.Ops < 1 || cfg.ServiceTime <= 0 {
		panic(fmt.Sprintf("timesim: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	draw := func(mean float64) float64 {
		if mean <= 0 {
			return 0
		}
		if cfg.Exponential {
			return rng.ExpFloat64() * mean
		}
		return mean
	}

	servers := make([]server, net.Size())
	for i := range servers {
		servers[i].state = net.Node(i).Balancer().Init()
	}
	var (
		h         eventHeap
		seq       int64
		now       float64
		completed int64
		launched  int64
		latencies []float64
		maxQueue  int
	)
	push := func(e event) {
		seq++
		e.seq = seq
		heap.Push(&h, e)
	}

	// arrive delivers a token to a node (or the exit) at time `now`.
	var arrive func(tok token, node, port int)
	arrive = func(tok token, node, port int) {
		if node < 0 {
			// Exit: record and schedule the process's next op.
			latencies = append(latencies, now-tok.started)
			completed++
			if launched < cfg.Ops {
				launched++
				push(event{at: now + draw(cfg.ThinkTime), kind: evInject, pid: tok.pid})
			}
			return
		}
		s := &servers[node]
		s.queue = append(s.queue, tok)
		if len(s.queue) > maxQueue {
			maxQueue = len(s.queue)
		}
		if !s.busy {
			s.busy = true
			st := serviceTime(cfg, draw, len(s.queue))
			s.work += st
			push(event{at: now + st, kind: evService, node: int32(node)})
		}
	}

	inject := func(pid int32) {
		tok := token{pid: pid, started: now}
		wire := int(pid) % net.InWidth()
		node, port := net.InputDest(wire)
		arrive(tok, node, port)
	}

	// Prime the loop: each process injects one token at time ~0.
	for pid := 0; pid < cfg.Processes && launched < cfg.Ops; pid++ {
		launched++
		push(event{at: draw(cfg.ThinkTime) * 0.01, kind: evInject, pid: int32(pid)})
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		now = e.at
		switch e.kind {
		case evInject:
			inject(e.pid)
		case evService:
			s := &servers[e.node]
			tok := s.queue[0]
			s.queue = s.queue[1:]
			nd := net.Node(int(e.node))
			q := int64(nd.Out())
			port := int(((s.state % q) + q) % q)
			s.state++
			next, nport := net.Dest(int(e.node), port)
			if len(s.queue) > 0 {
				st := serviceTime(cfg, draw, len(s.queue))
				s.work += st
				push(event{at: now + st, kind: evService, node: e.node})
			} else {
				s.busy = false
			}
			arrive(tok, next, nport)
		}
	}

	res := Result{
		Net:       net.Name(),
		Processes: cfg.Processes,
		Ops:       completed,
		Duration:  now,
		MaxQueue:  maxQueue,
	}
	if now > 0 {
		res.Throughput = float64(completed) / now
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLat = sum / float64(len(latencies))
		res.P95Lat = stats.Percentile(latencies, 95)
	}
	for i := range servers {
		if u := servers[i].work / now; u > res.BusiestUse {
			res.BusiestUse = u
		}
	}
	return res
}

// serviceTime draws one service time for a balancer currently holding q
// tokens (including the one starting service).
func serviceTime(cfg Config, draw func(float64) float64, q int) float64 {
	st := draw(cfg.ServiceTime)
	if cfg.ContentionFactor > 0 && q > 1 {
		st *= 1 + cfg.ContentionFactor*float64(q-1)
	}
	return st
}

// Sweep runs the simulation across the given concurrency levels and
// returns one Result per level, holding ops per process constant.
func Sweep(net *network.Network, ns []int, opsPerProc int64, base Config) []Result {
	out := make([]Result, 0, len(ns))
	for _, n := range ns {
		cfg := base
		cfg.Processes = n
		cfg.Ops = int64(n) * opsPerProc
		out = append(out, Run(net, cfg))
	}
	return out
}
