package timesim

import (
	"math"
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/network"
)

func single(t *testing.T) *network.Network {
	t.Helper()
	b, in := network.NewBuilder("central", 2)
	out := b.Balancer(in, 2)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// A single server with deterministic service time s saturates at 1/s.
func TestSingleServerSaturation(t *testing.T) {
	n := single(t)
	res := Run(n, Config{Processes: 16, Ops: 4000, ServiceTime: 2.0})
	want := 1.0 / 2.0
	if math.Abs(res.Throughput-want)/want > 0.05 {
		t.Fatalf("throughput %.4f, want ~%.4f", res.Throughput, want)
	}
	if res.BusiestUse < 0.95 {
		t.Fatalf("utilization %.3f, want ~1", res.BusiestUse)
	}
}

// One process, no think time: latency = depth * service time exactly
// (deterministic), throughput = 1/latency.
func TestSingleProcessLatency(t *testing.T) {
	net, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(net, Config{Processes: 1, Ops: 500, ServiceTime: 1.0})
	want := float64(net.Depth())
	if math.Abs(res.MeanLat-want) > 1e-9 {
		t.Fatalf("latency %.4f, want %.4f", res.MeanLat, want)
	}
	if math.Abs(res.Throughput-1/want) > 1e-9 {
		t.Fatalf("throughput %.4f, want %.4f", res.Throughput, 1/want)
	}
}

// Little's law: mean in-flight tokens = throughput x mean latency <= n.
func TestLittlesLaw(t *testing.T) {
	net, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 8, 32} {
		res := Run(net, Config{Processes: n, Ops: int64(n) * 400, ServiceTime: 1.0, Seed: 3})
		inFlight := res.Throughput * res.MeanLat
		if inFlight > float64(n)*1.01 {
			t.Fatalf("n=%d: Little's law violated: %.2f in flight", n, inFlight)
		}
		if inFlight <= 0 {
			t.Fatalf("n=%d: degenerate in-flight %.2f", n, inFlight)
		}
	}
}

// Throughput is (weakly) monotone in n for a closed loop.
func TestThroughputMonotoneInN(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, n := range []int{1, 4, 16, 64} {
		res := Run(net, Config{Processes: n, Ops: int64(n) * 300, ServiceTime: 1.0})
		if i > 0 && res.Throughput < prev*0.98 {
			t.Fatalf("throughput fell from %.4f to %.4f at n=%d", prev, res.Throughput, n)
		}
		prev = res.Throughput
	}
}

// E13 crossover (refs [19,20] simulation regime): near saturation,
// variance-driven queueing accumulates in every *narrow* layer. The
// bitonic network is narrow for all 10 layers; C(16,64) is narrow for 4
// and wide (cool) for 6, so at equal depth it shows lower latency and, in
// the closed loop, higher throughput. Margins grow with load (probed:
// thr-gain 1.03 -> 1.10, lat-gain 1.13 -> 1.24 as n goes 128 -> 256).
func TestCrossoverAndLatencyAdvantage(t *testing.T) {
	bit, err := bitonic.New(16)
	if err != nil {
		t.Fatal(err)
	}
	cwt, err := core.New(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	cfg := Config{Processes: n, Ops: n * 80, ServiceTime: 1.0, ThinkTime: 20,
		Exponential: true, Seed: 9}
	rb := Run(bit, cfg)
	rc64 := Run(cwt, cfg)
	if rc64.Throughput < rb.Throughput*1.03 {
		t.Errorf("C(16,64) throughput %.3f not >=3%% above bitonic %.3f at n=%d",
			rc64.Throughput, rb.Throughput, n)
	}
	if rc64.MeanLat > rb.MeanLat*0.92 {
		t.Errorf("C(16,64) latency %.2f not >=8%% below bitonic %.2f at n=%d",
			rc64.MeanLat, rb.MeanLat, n)
	}
	t.Logf("n=%d: bitonic thr=%.3f lat=%.1f p95=%.1f | C(16,64) thr=%.3f lat=%.1f p95=%.1f",
		n, rb.Throughput, rb.MeanLat, rb.P95Lat, rc64.Throughput, rc64.MeanLat, rc64.P95Lat)
}

// With memory-contention-dependent service times the central counter
// collapses under load while the counting networks keep flowing — the
// headline crossover of the experimental companion.
func TestCentralCollapsesUnderContention(t *testing.T) {
	central := single(t)
	bit, err := bitonic.New(16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	cfg := Config{Processes: n, Ops: n * 60, ServiceTime: 1.0,
		Exponential: true, ContentionFactor: 0.5, Seed: 9}
	rc := Run(central, cfg)
	rb := Run(bit, cfg)
	if rb.Throughput < rc.Throughput*10 {
		t.Errorf("bitonic %.4f not >=10x central %.4f under contention at n=%d",
			rb.Throughput, rc.Throughput, n)
	}
	t.Logf("n=%d contention regime: central thr=%.4f, bitonic thr=%.3f", n, rc.Throughput, rb.Throughput)
}

// Under pure deterministic queueing (no contention factor) the two
// equal-bottleneck networks tie — documenting that the advantage comes
// from the contention mechanism, not from queueing alone.
func TestDeterministicQueueingTies(t *testing.T) {
	bit, err := bitonic.New(16)
	if err != nil {
		t.Fatal(err)
	}
	cwt, err := core.New(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Processes: 128, Ops: 128 * 100, ServiceTime: 1.0}
	rb := Run(bit, cfg)
	rc := Run(cwt, cfg)
	if math.Abs(rb.Throughput-rc.Throughput)/rb.Throughput > 0.02 {
		t.Fatalf("deterministic throughputs diverged: %.3f vs %.3f", rb.Throughput, rc.Throughput)
	}
}

// At n=1 the central counter wins (depth 1 vs depth 10) — the classic
// low-load regime.
func TestCentralWinsAtLowLoad(t *testing.T) {
	central := single(t)
	bit, err := bitonic.New(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Processes: 1, Ops: 300, ServiceTime: 1.0}
	rc := Run(central, cfg)
	rb := Run(bit, cfg)
	if rc.Throughput <= rb.Throughput {
		t.Fatalf("central %.3f did not beat bitonic %.3f at n=1", rc.Throughput, rb.Throughput)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	net, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Processes: 8, Ops: 500, ServiceTime: 1.0, ThinkTime: 2.0, Exponential: true, Seed: 42}
	a := Run(net, cfg)
	b := Run(net, cfg)
	if a.Throughput != b.Throughput || a.MeanLat != b.MeanLat {
		t.Fatal("same seed, different results")
	}
}

func TestExponentialVsDeterministic(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	det := Run(net, Config{Processes: 8, Ops: 2000, ServiceTime: 1.0, Seed: 1})
	exp := Run(net, Config{Processes: 8, Ops: 2000, ServiceTime: 1.0, Exponential: true, Seed: 1})
	// Randomness adds queueing variance: latency under exponential service
	// must be at least the deterministic latency.
	if exp.MeanLat < det.MeanLat*0.9 {
		t.Fatalf("exponential latency %.2f below deterministic %.2f", exp.MeanLat, det.MeanLat)
	}
}

func TestSweep(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := Sweep(net, []int{1, 2, 4}, 200, Config{ServiceTime: 1.0})
	if len(rs) != 3 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	for i, r := range rs {
		if r.Ops == 0 || r.Throughput <= 0 {
			t.Fatalf("result %d degenerate: %+v", i, r)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	net := single(t)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	Run(net, Config{Processes: 0, Ops: 1, ServiceTime: 1})
}

// Think time reduces effective load: with huge think time, utilization is
// low and latency approaches the uncontended depth.
func TestThinkTimeReducesLoad(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	busy := Run(net, Config{Processes: 32, Ops: 3200, ServiceTime: 1.0})
	idle := Run(net, Config{Processes: 32, Ops: 3200, ServiceTime: 1.0, ThinkTime: 500})
	if idle.MeanLat >= busy.MeanLat {
		t.Fatalf("think time did not reduce latency: %.2f vs %.2f", idle.MeanLat, busy.MeanLat)
	}
	if idle.BusiestUse >= busy.BusiestUse {
		t.Fatalf("think time did not reduce utilization")
	}
}
