package counter

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
)

// Adaptive is the Section 7 "future work" counter (in the spirit of
// Tirthapura's adaptive counting networks, ref [27] of the paper): it
// serves increments from a central atomic word while contention is low —
// minimal latency — and migrates to a counting network when measured
// per-operation latency (a proxy for contention) crosses a threshold,
// migrating back when load subsides. Values stay globally unique and
// dense across migrations: each epoch's implementation continues the value
// range where the previous one stopped.
type Adaptive struct {
	mu   sync.RWMutex
	mode int32 // 0 = central, 1 = network (guarded by mu)

	central   atomic.Int64 // next value in central mode
	netCtr    *Network     // active network counter in network mode
	buildNet  func() (*network.Network, error)
	switching atomic.Bool

	// Latency sampling: every sampleEvery-th operation is timed and folded
	// into an EWMA (stored as nanoseconds).
	ops        atomic.Uint64
	ewmaNanos  atomic.Int64
	upNanos    int64
	downNanos  int64
	minEpoch   int64 // minimum operations between migrations
	epochStart atomic.Uint64
	migrations atomic.Int64
}

// AdaptiveConfig tunes migration behaviour.
type AdaptiveConfig struct {
	// BuildNetwork constructs a fresh counting network for each network
	// epoch (networks cannot be reused across epochs because balancer
	// state encodes the old base).
	BuildNetwork func() (*network.Network, error)
	// UpLatency is the sampled-latency EWMA above which the counter
	// migrates central -> network. Default 2µs.
	UpLatency time.Duration
	// DownLatency is the EWMA below which it migrates back. Default 250ns.
	DownLatency time.Duration
	// MinEpochOps is the minimum number of operations between migrations
	// (hysteresis). Default 4096.
	MinEpochOps int64
}

// NewAdaptive creates an adaptive counter starting in central mode.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	a := &Adaptive{
		buildNet:  cfg.BuildNetwork,
		upNanos:   int64(cfg.UpLatency),
		downNanos: int64(cfg.DownLatency),
		minEpoch:  cfg.MinEpochOps,
	}
	if a.upNanos <= 0 {
		a.upNanos = 2000
	}
	if a.downNanos <= 0 {
		a.downNanos = 250
	}
	if a.minEpoch <= 0 {
		a.minEpoch = 4096
	}
	return a
}

// Name implements Counter.
func (a *Adaptive) Name() string { return "adaptive" }

// Mode returns "central" or "network".
func (a *Adaptive) Mode() string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.mode == 0 {
		return "central"
	}
	return "network"
}

// Migrations returns the number of mode switches performed.
func (a *Adaptive) Migrations() int64 { return a.migrations.Load() }

const sampleMask = 63 // time every 64th operation

// Inc implements Counter.
func (a *Adaptive) Inc(pid int) int64 {
	n := a.ops.Add(1)
	if n&sampleMask != 0 {
		return a.incFast(pid)
	}
	start := time.Now()
	v := a.incFast(pid)
	lat := time.Since(start).Nanoseconds()
	// EWMA with alpha = 1/8.
	old := a.ewmaNanos.Load()
	a.ewmaNanos.Store(old + (lat-old)/8)
	a.maybeMigrate(n)
	return v
}

func (a *Adaptive) incFast(pid int) int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.mode == 0 {
		return a.central.Add(1) - 1
	}
	return a.netCtr.Inc(pid)
}

// maybeMigrate checks thresholds and hysteresis and performs a migration
// if warranted. Only one migration runs at a time.
func (a *Adaptive) maybeMigrate(opCount uint64) {
	if a.buildNet == nil {
		return
	}
	if opCount-a.epochStart.Load() < uint64(a.minEpoch) {
		return
	}
	ewma := a.ewmaNanos.Load()
	a.mu.RLock()
	mode := a.mode
	a.mu.RUnlock()
	var target int32
	switch {
	case mode == 0 && ewma > a.upNanos:
		target = 1
	case mode == 1 && ewma < a.downNanos:
		target = 0
	default:
		return
	}
	if !a.switching.CompareAndSwap(false, true) {
		return
	}
	defer a.switching.Store(false)
	a.migrate(target)
}

// migrate switches modes under the exclusive lock, carrying the value
// range forward so values remain dense.
func (a *Adaptive) migrate(target int32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == target {
		return
	}
	var issued int64
	if a.mode == 0 {
		issued = a.central.Load()
	} else {
		issued = a.netCtr.base + a.netCtr.Issued()
	}
	if target == 1 {
		if a.buildNet == nil {
			return
		}
		net, err := a.buildNet()
		if err != nil {
			return // stay in central mode
		}
		a.netCtr = NewNetworkBase(net, issued)
	} else {
		a.central.Store(issued)
		a.netCtr = nil
	}
	a.mode = target
	a.epochStart.Store(a.ops.Load())
	a.migrations.Add(1)
}

// ForceMode migrates immediately to "central" or "network" (testing and
// operational override). It blocks until in-flight operations drain.
func (a *Adaptive) ForceMode(mode string) {
	var target int32
	if mode == "network" {
		target = 1
	}
	a.migrate(target)
}
