package counter

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
)

// Adaptive is the Section 7 "future work" counter (in the spirit of
// Tirthapura's adaptive counting networks, ref [27] of the paper): it
// serves increments from a central atomic word while contention is low —
// minimal latency — and migrates to a counting network when measured
// per-operation latency (a proxy for contention) crosses a threshold,
// migrating back when load subsides. Values stay globally unique and
// dense across migrations: each epoch's implementation continues the value
// range where the previous one stopped.
//
// Network epochs batch: increments are served through a Batched counter
// whose batch size is learned from the network's observed batching
// crossover (LearnBatch, once per Adaptive) rather than a fixed constant.
// Values a network epoch claimed but had not yet handed out when the
// counter migrated back are spilled and served first afterwards, so the
// value range stays dense (though not in issue order) across migrations.
type Adaptive struct {
	mu   sync.RWMutex
	mode int32 // 0 = central, 1 = network (guarded by mu)

	central   atomic.Int64 // next value in central mode
	netCtr    *Network     // active network counter in network mode
	netBat    *Batched     // batching front-end over netCtr (nil if disabled)
	buildNet  func() (*network.Network, error)
	batchCfg  int // configured batch: 0 learn, <0 off, >0 fixed
	batch     int // resolved batch size once learned
	switching atomic.Bool

	// Values claimed by a network epoch but unconsumed at migration time;
	// served ahead of the active implementation until drained.
	spillMu   sync.Mutex
	spill     []int64
	spillLeft atomic.Int64

	// Latency sampling: every sampleEvery-th operation is timed and folded
	// into an EWMA (stored as nanoseconds).
	ops        atomic.Uint64
	ewmaNanos  atomic.Int64
	upNanos    int64
	downNanos  int64
	minEpoch   int64 // minimum operations between migrations
	epochStart atomic.Uint64
	migrations atomic.Int64
}

// AdaptiveConfig tunes migration behaviour.
type AdaptiveConfig struct {
	// BuildNetwork constructs a fresh counting network for each network
	// epoch (networks cannot be reused across epochs because balancer
	// state encodes the old base).
	BuildNetwork func() (*network.Network, error)
	// UpLatency is the sampled-latency EWMA above which the counter
	// migrates central -> network. Default 2µs.
	UpLatency time.Duration
	// DownLatency is the EWMA below which it migrates back. Default 250ns.
	DownLatency time.Duration
	// MinEpochOps is the minimum number of operations between migrations
	// (hysteresis). Default 4096.
	MinEpochOps int64
	// Batch sets the network-epoch batch size: 0 (the default) learns it
	// from the network's observed batching crossover at the first network
	// migration (LearnBatch); > 0 fixes it; < 0 disables batching and
	// serves network epochs token-at-a-time (values then stay in issue
	// order across migrations).
	Batch int
}

// NewAdaptive creates an adaptive counter starting in central mode.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	a := &Adaptive{
		buildNet:  cfg.BuildNetwork,
		upNanos:   int64(cfg.UpLatency),
		downNanos: int64(cfg.DownLatency),
		minEpoch:  cfg.MinEpochOps,
		batchCfg:  cfg.Batch,
	}
	if a.upNanos <= 0 {
		a.upNanos = 2000
	}
	if a.downNanos <= 0 {
		a.downNanos = 250
	}
	if a.minEpoch <= 0 {
		a.minEpoch = 4096
	}
	return a
}

// Name implements Counter.
func (a *Adaptive) Name() string { return "adaptive" }

// Mode returns "central" or "network".
func (a *Adaptive) Mode() string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.mode == 0 {
		return "central"
	}
	return "network"
}

// Migrations returns the number of mode switches performed.
func (a *Adaptive) Migrations() int64 { return a.migrations.Load() }

const sampleMask = 63 // time every 64th operation

// Inc implements Counter.
func (a *Adaptive) Inc(pid int) int64 {
	n := a.ops.Add(1)
	if n&sampleMask != 0 {
		return a.incFast(pid)
	}
	start := time.Now()
	v := a.incFast(pid)
	lat := time.Since(start).Nanoseconds()
	// EWMA with alpha = 1/8.
	old := a.ewmaNanos.Load()
	a.ewmaNanos.Store(old + (lat-old)/8)
	a.maybeMigrate(n)
	return v
}

func (a *Adaptive) incFast(pid int) int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	// One atomic load when the spill is empty, the common case.
	if a.spillLeft.Load() > 0 {
		if v, ok := a.popSpill(); ok {
			return v
		}
	}
	if a.mode == 0 {
		return a.central.Add(1) - 1
	}
	if a.netBat != nil {
		return a.netBat.Inc(pid)
	}
	return a.netCtr.Inc(pid)
}

// popSpill hands out one value spilled by a finished network epoch.
func (a *Adaptive) popSpill() (int64, bool) {
	a.spillMu.Lock()
	defer a.spillMu.Unlock()
	n := len(a.spill)
	if n == 0 {
		return 0, false
	}
	v := a.spill[n-1]
	a.spill = a.spill[:n-1]
	a.spillLeft.Add(-1)
	return v, true
}

// maybeMigrate checks thresholds and hysteresis and performs a migration
// if warranted. Only one migration runs at a time.
func (a *Adaptive) maybeMigrate(opCount uint64) {
	if a.buildNet == nil {
		return
	}
	if opCount-a.epochStart.Load() < uint64(a.minEpoch) {
		return
	}
	ewma := a.ewmaNanos.Load()
	a.mu.RLock()
	mode := a.mode
	a.mu.RUnlock()
	var target int32
	switch {
	case mode == 0 && ewma > a.upNanos:
		target = 1
	case mode == 1 && ewma < a.downNanos:
		target = 0
	default:
		return
	}
	if !a.switching.CompareAndSwap(false, true) {
		return
	}
	defer a.switching.Store(false)
	a.migrate(target)
}

// migrate switches modes under the exclusive lock, carrying the value
// range forward so values remain dense. The expensive preparation — the
// epoch's network build and the one-time batching-crossover probe — runs
// BEFORE the exclusive section, so in-flight Inc callers keep serving in
// the old mode instead of stalling behind a multi-millisecond probe.
func (a *Adaptive) migrate(target int32) {
	var net *network.Network
	learned := 0
	if target == 1 {
		if a.buildNet == nil {
			return
		}
		n, err := a.buildNet()
		if err != nil {
			return // stay in the current mode
		}
		net = n
		if a.batchCfg == 0 && a.Batch() == 0 {
			// Probe the (still untraversed) epoch network's clone now;
			// published under the lock only if nobody beat us to it.
			learned = LearnBatch(net)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == target {
		return
	}
	var issued int64
	if a.mode == 0 {
		issued = a.central.Load()
	} else {
		// Issued counts every value the epoch claimed from the network,
		// the buffered-but-unreturned ones included.
		issued = a.netCtr.base + a.netCtr.Issued()
	}
	// A network epoch leaves its buffered values behind; spill them so
	// they are handed out ahead of the next implementation and the value
	// range stays dense.
	if a.mode == 1 && a.netBat != nil {
		a.spillMu.Lock()
		a.spill = a.netBat.DrainBuffered(a.spill)
		a.spillLeft.Store(int64(len(a.spill)))
		a.spillMu.Unlock()
	}
	if target == 1 {
		a.netCtr = NewNetworkBase(net, issued)
		a.netBat = nil
		if a.batchCfg >= 0 {
			if a.batch == 0 {
				switch {
				case a.batchCfg > 0:
					a.batch = a.batchCfg
				case learned > 0:
					a.batch = learned
				default:
					// A concurrent migration raced us past the pre-lock
					// probe check and then rolled back; fall back to the
					// structural estimate rather than probing under lock.
					a.batch = HeuristicBatch(net)
				}
			}
			a.netBat = NewBatched(a.netCtr, a.batch)
		}
	} else {
		a.central.Store(issued)
		a.netCtr = nil
		a.netBat = nil
	}
	a.mode = target
	a.epochStart.Store(a.ops.Load())
	a.migrations.Add(1)
}

// Batch returns the resolved network-epoch batch size (0 until the first
// network migration when learning is configured; 1 means batching off).
func (a *Adaptive) Batch() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.batchCfg < 0 {
		return 1
	}
	return a.batch
}

// ForceMode migrates immediately to "central" or "network" (testing and
// operational override). It blocks until in-flight operations drain.
func (a *Adaptive) ForceMode(mode string) {
	var target int32
	if mode == "network" {
		target = 1
	}
	a.migrate(target)
}
