package counter

import (
	"sort"
	"sync"
	"testing"
	"unsafe"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/seq"
)

// checkUnique runs goroutines x per Incs concurrently and asserts the
// returned values are exactly {0..m-1}.
func checkUnique(t *testing.T, c Counter, goroutines, per int) {
	t.Helper()
	vals := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[g] = append(vals[g], c.Inc(g))
			}
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("%s: values are not {0..%d}: position %d holds %d", c.Name(), len(all)-1, i, v)
		}
	}
}

// E13 correctness prerequisite: every counter implementation hands out
// exactly {0..m-1}.
func TestUniqueValuesAllImplementations(t *testing.T) {
	cwt, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	bit, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Counter{NewNetwork(cwt), NewNetwork(bit), NewCentral(), NewLocked()} {
		checkUnique(t, c, 8, 500)
	}
}

func TestSequentialOrder(t *testing.T) {
	net, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetwork(net)
	for i := int64(0); i < 100; i++ {
		if got := c.Inc(int(i)); got != i {
			t.Fatalf("sequential Inc %d returned %d", i, got)
		}
	}
}

// E15: Fetch&Decrement. Sequential Inc* then Dec* hands back the most
// recent values in LIFO order and restores the counter.
func TestFetchDecrement(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetwork(net)
	for i := int64(0); i < 10; i++ {
		c.Inc(0)
	}
	// All tokens entered on wire 0; antitokens on the same wire cancel the
	// most recent token, so Decs return 9, 8, ....
	for i := int64(9); i >= 0; i-- {
		if got := c.Dec(0); got != i {
			t.Fatalf("Dec returned %d, want %d", got, i)
		}
	}
	// The counter is restored: the next Inc hands out 0.
	if got := c.Inc(0); got != 0 {
		t.Fatalf("Inc after full unwind returned %d, want 0", got)
	}
}

// E15 network-level: with mixed concurrent tokens and antitokens (tokens
// always in the majority), the quiescent *net* exit counts still satisfy
// the step property — this is the theorem of ref [2].
func TestAntitokens(t *testing.T) {
	net, err := core.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const per = 600
	exits := make([][]int64, 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ { // token processes
		exits[g] = make([]int64, net.OutWidth())
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exits[g][net.Traverse(g%8)]++
			}
		}(g)
	}
	for g := 8; g < 12; g++ { // antitoken processes
		exits[g] = make([]int64, net.OutWidth())
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exits[g][net.TraverseAnti(g%8)]--
			}
		}(g)
	}
	wg.Wait()
	netCounts := make([]int64, net.OutWidth())
	for _, e := range exits {
		for i, v := range e {
			netCounts[i] += v
		}
	}
	if seq.Sum(netCounts) != int64(8*per-4*per) {
		t.Fatalf("net count conservation broken: %d", seq.Sum(netCounts))
	}
	if !seq.IsStep(netCounts) {
		t.Fatalf("net exit counts %v not step", netCounts)
	}
}

func TestCentralDec(t *testing.T) {
	c := NewCentral()
	c.Inc(0)
	c.Inc(0)
	if got := c.Dec(0); got != 1 {
		t.Fatalf("central Dec = %d, want 1", got)
	}
}

func TestNames(t *testing.T) {
	net, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if NewNetwork(net).Name() != "C(2,2)" {
		t.Fatal("network counter name")
	}
	if NewCentral().Name() != "central" || NewLocked().Name() != "locked" {
		t.Fatal("baseline names")
	}
}

// IncStalls must agree with Inc on the values handed out.
func TestIncStalls(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetwork(net)
	var stalls int64
	vals := map[int64]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := c.IncStalls(g, &stalls)
				mu.Lock()
				vals[v] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(vals) != 2000 {
		t.Fatalf("duplicate values: %d distinct of 2000", len(vals))
	}
}

// Ensure padded cells actually separate wires (structural check: cell size
// is a multiple of 64 bytes).
func TestCellPadding(t *testing.T) {
	const want = 64
	if size := int(unsafe.Sizeof(cell{})); size%want != 0 {
		t.Fatalf("cell size %d not a multiple of %d", size, want)
	}
}

func TestLockedParallel(t *testing.T) {
	checkUnique(t, NewLocked(), 8, 300)
}

func dummyNetwork(t *testing.T) *network.Network {
	t.Helper()
	b, in := network.NewBuilder("dummy", 2)
	out := b.Balancer(in, 2)
	n, err := b.Finalize(out)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPidWrapsToWire(t *testing.T) {
	c := NewNetwork(dummyNetwork(t))
	// pids beyond the width map onto wires mod w without panicking.
	for pid := 0; pid < 10; pid++ {
		c.Inc(pid)
	}
}
