package counter

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

func buildC88() (*network.Network, error) { return core.New(8, 8) }

func TestIssued(t *testing.T) {
	net, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetwork(net)
	if c.Issued() != 0 {
		t.Fatalf("fresh Issued = %d", c.Issued())
	}
	for i := 0; i < 13; i++ {
		c.Inc(i)
	}
	if c.Issued() != 13 {
		t.Fatalf("Issued = %d, want 13", c.Issued())
	}
}

func TestNetworkBase(t *testing.T) {
	net, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetworkBase(net, 100)
	for i := int64(0); i < 10; i++ {
		if got := c.Inc(int(i)); got != 100+i {
			t.Fatalf("Inc = %d, want %d", got, 100+i)
		}
	}
	if c.Issued() != 10 {
		t.Fatalf("Issued = %d", c.Issued())
	}
}

func TestAdaptiveStartsCentral(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{BuildNetwork: buildC88})
	if a.Mode() != "central" {
		t.Fatalf("mode = %s", a.Mode())
	}
	for i := int64(0); i < 5; i++ {
		if got := a.Inc(0); got != i {
			t.Fatalf("Inc = %d, want %d", got, i)
		}
	}
}

func TestAdaptiveForcedMigrationKeepsDensity(t *testing.T) {
	// Batch < 0 serves network epochs token-at-a-time, so sequential values
	// stay in issue order as well as dense; the batched default is covered
	// by TestAdaptiveBatchedMigrationKeepsDensity below.
	a := NewAdaptive(AdaptiveConfig{BuildNetwork: buildC88, Batch: -1})
	var got []int64
	for i := 0; i < 100; i++ {
		got = append(got, a.Inc(i))
	}
	a.ForceMode("network")
	if a.Mode() != "network" {
		t.Fatal("migration to network failed")
	}
	for i := 0; i < 100; i++ {
		got = append(got, a.Inc(i))
	}
	a.ForceMode("central")
	if a.Mode() != "central" {
		t.Fatal("migration back failed")
	}
	for i := 0; i < 100; i++ {
		got = append(got, a.Inc(i))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("values not dense across migrations: position %d holds %d", i, v)
		}
	}
	if a.Migrations() != 2 {
		t.Fatalf("migrations = %d", a.Migrations())
	}
}

// Batched network epochs (fixed batch size here, to bound the spill)
// spill their claimed-but-unconsumed values at migration time and serve
// them first afterwards, so the value range stays dense as a multiset
// across migrations once the spill is drained.
func TestAdaptiveBatchedMigrationKeepsDensity(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{BuildNetwork: buildC88, Batch: 8})
	var got []int64
	for i := 0; i < 50; i++ {
		got = append(got, a.Inc(i))
	}
	a.ForceMode("network")
	if a.Batch() != 8 {
		t.Fatalf("Batch() = %d, want the configured 8", a.Batch())
	}
	for i := 0; i < 50; i++ {
		got = append(got, a.Inc(i))
	}
	a.ForceMode("central")
	for i := 0; i < 50; i++ {
		got = append(got, a.Inc(i))
	}
	// Drain whatever the network epoch spilled so every claimed value has
	// been handed out, then the multiset must be exactly {0..m-1}.
	for a.spillLeft.Load() > 0 {
		got = append(got, a.Inc(0))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("values not dense across batched migrations: position %d holds %d", i, v)
		}
	}
}

// The default configuration learns the batch size from the observed
// crossover at the first network migration and caches it across epochs.
func TestAdaptiveLearnsBatch(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{BuildNetwork: buildC88})
	if a.Batch() != 0 {
		t.Fatalf("batch resolved to %d before any network epoch", a.Batch())
	}
	a.ForceMode("network")
	k := a.Batch()
	if k < 8 || k > 4096 { // ladder floor 8, heuristic ceiling 4096
		t.Fatalf("learned batch %d outside [8, 4096]", k)
	}
	a.ForceMode("central")
	a.ForceMode("network")
	if a.Batch() != k {
		t.Fatalf("batch re-learned across epochs: %d then %d", k, a.Batch())
	}
}

// Concurrent increments across concurrent forced migrations must still
// yield unique dense values.
func TestAdaptiveConcurrentMigration(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{BuildNetwork: buildC88})
	const procs, per = 8, 2000
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				a.ForceMode("network")
			} else {
				a.ForceMode("central")
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[pid] = append(vals[pid], a.Inc(pid))
			}
		}(pid)
	}
	wg.Wait()
	close(stop)
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("density broken at %d: %d (migrations=%d)", i, v, a.Migrations())
		}
	}
	t.Logf("survived %d migrations", a.Migrations())
}

// Automatic migration: with an absurdly low up-threshold the counter must
// leave central mode under load.
func TestAdaptiveAutoEscalation(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{
		BuildNetwork: buildC88,
		UpLatency:    1, // 1ns: any sampled op exceeds this
		MinEpochOps:  64,
	})
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				a.Inc(pid)
			}
		}(pid)
	}
	wg.Wait()
	if a.Migrations() == 0 {
		t.Fatal("no automatic migration despite 1ns threshold")
	}
	if a.Mode() != "network" {
		t.Logf("mode settled at %s after %d migrations (timing dependent)", a.Mode(), a.Migrations())
	}
}

func TestAdaptiveWithoutBuilderStaysCentral(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{UpLatency: 1, MinEpochOps: 1})
	for i := 0; i < 1000; i++ {
		a.Inc(i)
	}
	if a.Mode() != "central" || a.Migrations() != 0 {
		t.Fatal("migrated without a network builder")
	}
}
