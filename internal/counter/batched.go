package counter

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultBatch is the floor of the learned batch size (see LearnBatch);
// it is no longer the default itself — NewBatched with batch <= 0 learns
// the size from the observed crossover instead of this constant. At or
// above the network width a whole batch usually touches every balancer at
// most once, so the amortized cost per value approaches size/k + depth
// atomic operations instead of depth.
const DefaultBatch = 16

// IncBatch performs k Fetch&Increment operations as a single batched
// network traversal (network.TraverseBatch: one atomic fetch-add per
// balancer touched instead of one per token per balancer), appends the k
// claimed values to dst and returns it. The values are exactly those k
// successive Inc calls entering on the same wire could have received; in
// particular m batched operations in a quiescent period still claim a
// dense value range.
func (c *Network) IncBatch(pid int, k int, dst []int64) []int64 {
	if k <= 0 {
		return dst
	}
	p, _ := c.tallyPool.Get().(*[]int64)
	if p == nil {
		s := make([]int64, c.t)
		p = &s
	} else {
		clear(*p)
	}
	tally := c.net.TraverseBatchInto(pid%c.w, int64(k), *p)
	for i, cnt := range tally {
		if cnt == 0 {
			continue
		}
		end := c.cells[i].v.Add(c.t * cnt)
		for v := end - c.t*cnt; v < end; v += c.t {
			dst = append(dst, v)
		}
	}
	c.tallyPool.Put(p)
	return dst
}

// DecBatch performs k Fetch&Decrement operations as a single batched
// antitoken traversal (network.TraverseAntiBatch), appends the k revoked
// values to dst and returns it — the symmetric counterpart of IncBatch.
// The values are exactly those k successive Dec calls entering on the
// same wire could have returned: each exit cell yields the most recently
// issued values of its residue class, newest first. In quiescent
// alternation IncBatch(k);DecBatch(k) is the identity on the counter
// state and revokes exactly the values the IncBatch claimed.
func (c *Network) DecBatch(pid int, k int, dst []int64) []int64 {
	if k <= 0 {
		return dst
	}
	p, _ := c.tallyPool.Get().(*[]int64)
	if p == nil {
		s := make([]int64, c.t)
		p = &s
	} else {
		clear(*p)
	}
	tally := c.net.TraverseAntiBatchInto(pid%c.w, int64(k), *p)
	for i, cnt := range tally {
		if cnt == 0 {
			continue
		}
		end := c.cells[i].v.Add(-c.t * cnt)
		// cnt antitokens on cell i revoke the values end+ (cnt-1)·t down
		// to end, in revocation order newest-issued first.
		for v := end + c.t*(cnt-1); v >= end; v -= c.t {
			dst = append(dst, v)
		}
	}
	c.tallyPool.Put(p)
	return dst
}

// Batched turns batched traversal into a drop-in Counter: values are
// prefetched k at a time through IncBatch into per-stripe buffers, and
// each Inc pops one. Under load this amortizes a full network traversal
// (depth atomic operations) down to roughly (size/k + depth)/k atomics
// per Inc.
//
// The price is a weaker quiescent guarantee: values sitting unconsumed in
// stripe buffers have been claimed from the network but not yet handed
// out, so in a quiescent state the *claimed* values 0..m-1 are dense
// while the returned ones are a subset (m minus Buffered of them). Use it
// where a unique dense-ish ticket is needed at maximum throughput — id
// generation, load balancing — not where every claimed value must be
// observed.
type Batched struct {
	inner   *Network
	k       int
	stripes []valStripe
}

// valStripe is a padded buffer of prefetched values. The mutex is
// uncontended whenever distinct pids run on distinct stripes, which the
// stripe count makes likely.
type valStripe struct {
	mu   sync.Mutex
	vals []int64
	_    [4]int64
}

// NewBatched wraps a counting network in a batched counter with the given
// batch size (<= 0 learns it from the observed crossover, LearnBatch) and
// 2×GOMAXPROCS value stripes, so in a quiescent state Buffered is below
// 2×GOMAXPROCS×batch.
func NewBatched(net *Network, batch int) *Batched {
	return NewBatchedStripes(net, batch, 2*runtime.GOMAXPROCS(0))
}

// NewBatchedStripes is NewBatched with an explicit stripe count.
func NewBatchedStripes(net *Network, batch, stripes int) *Batched {
	if batch <= 0 {
		batch = LearnBatch(net.net)
	}
	if stripes < 1 {
		stripes = 1
	}
	return &Batched{inner: net, k: batch, stripes: make([]valStripe, stripes)}
}

// Batch returns the configured batch size.
func (b *Batched) Batch() int { return b.k }

// Name implements Counter.
func (b *Batched) Name() string {
	return fmt.Sprintf("batched%d:%s", b.k, b.inner.Name())
}

// Inc implements Counter: pop a prefetched value, refilling the stripe
// with one batched traversal when it runs dry.
func (b *Batched) Inc(pid int) int64 {
	s := &b.stripes[uint(pid)%uint(len(b.stripes))]
	s.mu.Lock()
	if len(s.vals) == 0 {
		s.vals = b.inner.IncBatch(pid, b.k, s.vals[:0])
	}
	v := s.vals[len(s.vals)-1]
	s.vals = s.vals[:len(s.vals)-1]
	s.mu.Unlock()
	return v
}

// DrainBuffered pops every claimed-but-unreturned value from the stripe
// buffers, appending them to dst, and returns it. Callers must exclude
// concurrent Inc (the adaptive counter drains under its migration lock).
func (b *Batched) DrainBuffered(dst []int64) []int64 {
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		dst = append(dst, s.vals...)
		s.vals = s.vals[:0]
		s.mu.Unlock()
	}
	return dst
}

// Buffered returns the number of claimed-but-unreturned values across all
// stripes. Only meaningful in a quiescent state.
func (b *Batched) Buffered() int64 {
	var total int64
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		total += int64(len(s.vals))
		s.mu.Unlock()
	}
	return total
}

// Issued returns the number of values claimed from the network, buffered
// ones included. Only meaningful in a quiescent state.
func (b *Batched) Issued() int64 { return b.inner.Issued() }
