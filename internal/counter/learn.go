package counter

import (
	"time"

	"repro/internal/network"
)

// batchLadder is the candidate batch sizes LearnBatch probes, a geometric
// sweep spanning the crossover region of every network this package
// constructs (E23: the crossover sits near the network size).
var batchLadder = []int64{8, 16, 32, 64, 128, 256, 512, 1024}

// LearnBatch measures the observed crossover of batched traversal for the
// given network and returns a batch size at or past it: the smallest
// candidate whose measured per-token cost is at most half the
// single-token cost. The probe runs on a Clone, so the live network's
// balancer states are untouched. When no candidate wins (timer noise,
// tiny networks) it falls back to the structural estimate HeuristicBatch.
// The whole probe costs a few milliseconds; callers cache the result.
func LearnBatch(n *network.Network) int {
	probe := n.Clone()
	w := probe.InWidth()
	out := make([]int64, probe.OutWidth())
	const tokensPer = 4096 // tokens pushed per candidate measurement
	cost := func(k int64) float64 {
		iters := tokensPer / int(k)
		if iters < 2 {
			iters = 2
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			probe.TraverseBatchInto(i%w, k, out)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(int64(iters)*k)
	}
	cost(1) // warm the scratch pool and caches before timing
	base := cost(1)
	for _, k := range batchLadder {
		if cost(k) <= base/2 {
			return int(k)
		}
	}
	return HeuristicBatch(n)
}

// HeuristicBatch is the structural estimate of the batching crossover:
// per-token cost is ≈ size/k + depth atomic operations, so batching pays
// off once k reaches the network size (≈ width·depth, E23). Returns the
// next power of two at or above Size, clamped to [DefaultBatch, 4096].
func HeuristicBatch(n *network.Network) int {
	k := 1
	for k < n.Size() {
		k <<= 1
	}
	if k < DefaultBatch {
		k = DefaultBatch
	}
	if k > 4096 {
		k = 4096
	}
	return k
}
