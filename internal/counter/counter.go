// Package counter implements shared Fetch&Increment / Fetch&Decrement
// counters, the primary application of counting networks (§1.1 of the
// paper): tokens traverse the network to an output wire i holding a cell
// v_i initialized to i; a token atomically takes v_i and advances it by
// the output width t, so m tokens receive exactly the values 0..m-1.
//
// Decrements follow Aiello et al. (ref [2]): an antitoken traverses the
// network cancelling the most recent token at each balancer and returns
// the most recent value handed out at its exit cell.
//
// Baselines for the throughput experiments (E13): a central atomic
// counter (minimal latency, maximal contention on one word) and a
// mutex-protected counter.
package counter

import (
	"sync"
	"sync/atomic"

	"repro/internal/network"
)

// Counter is the common Fetch&Increment interface. Implementations are
// safe for concurrent use. The pid identifies the calling process; network
// counters map it to input wire pid mod w as in §1.2.
type Counter interface {
	// Inc returns the next counter value (Fetch&Increment).
	Inc(pid int) int64
	// Name identifies the implementation in benchmark tables.
	Name() string
}

// cell is a padded counter cell: one per output wire, each on its own
// cache line to avoid false sharing between adjacent wires.
type cell struct {
	v atomic.Int64
	_ [7]int64
}

// Network is a counting-network-backed counter.
type Network struct {
	net   *network.Network
	cells []cell
	w     int
	t     int64
	base  int64

	tallyPool sync.Pool // *[]int64 scratch for IncBatch
}

// NewNetwork wraps a counting network as a shared counter. The network
// must be freshly reset (or never traversed); the caller keeps ownership.
func NewNetwork(net *network.Network) *Network { return NewNetworkBase(net, 0) }

// NewNetworkBase is NewNetwork with the value range starting at base: the
// counter hands out base, base+1, ... . Used by the adaptive counter to
// continue a range started by another implementation.
func NewNetworkBase(net *network.Network, base int64) *Network {
	c := &Network{
		net:   net,
		cells: make([]cell, net.OutWidth()),
		w:     net.InWidth(),
		t:     int64(net.OutWidth()),
		base:  base,
	}
	for i := range c.cells {
		c.cells[i].v.Store(base + int64(i))
	}
	return c
}

// Issued returns the number of values handed out so far. Only meaningful
// in a quiescent state (no concurrent Inc/Dec).
func (c *Network) Issued() int64 {
	var total int64
	for i := range c.cells {
		// Cell i holds base+i+t*k after handing out k values.
		total += (c.cells[i].v.Load() - c.base - int64(i)) / c.t
	}
	return total
}

// Name implements Counter.
func (c *Network) Name() string { return c.net.Name() }

// Inc implements Counter: traverse, then claim the exit cell's value.
func (c *Network) Inc(pid int) int64 {
	i := c.net.Traverse(pid % c.w)
	return c.cells[i].v.Add(c.t) - c.t
}

// IncStalls is Inc with measured-stall instrumentation (adds observed
// collisions to *stalls).
func (c *Network) IncStalls(pid int, stalls *int64) int64 {
	i := c.net.TraverseStalls(pid%c.w, stalls)
	return c.cells[i].v.Add(c.t) - c.t
}

// Dec performs Fetch&Decrement via an antitoken (ref [2]): it undoes the
// most recent increment on its exit wire and returns the value that
// increment had handed out. A Dec concurrent with Incs returns some
// recently issued value; in quiescent alternation Inc();Dec() is the
// identity on the counter state.
func (c *Network) Dec(pid int) int64 {
	i := c.net.TraverseAnti(pid % c.w)
	return c.cells[i].v.Add(-c.t)
}

// Central is the trivial baseline: one atomic word. Lowest possible
// latency, but every operation serializes on the same cache line, so
// throughput collapses under high concurrency — the regime counting
// networks are built for.
type Central struct {
	v atomic.Int64
	_ [7]int64
}

// NewCentral returns a central atomic counter starting at 0.
func NewCentral() *Central { return &Central{} }

// Name implements Counter.
func (*Central) Name() string { return "central" }

// Inc implements Counter.
func (c *Central) Inc(int) int64 { return c.v.Add(1) - 1 }

// Dec implements Fetch&Decrement on the central counter.
func (c *Central) Dec(int) int64 { return c.v.Add(-1) }

// Locked is a mutex-protected counter, the classic lock-based baseline.
type Locked struct {
	mu sync.Mutex
	v  int64
}

// NewLocked returns a lock-based counter starting at 0.
func NewLocked() *Locked { return &Locked{} }

// Name implements Counter.
func (*Locked) Name() string { return "locked" }

// Inc implements Counter.
func (c *Locked) Inc(int) int64 {
	c.mu.Lock()
	v := c.v
	c.v++
	c.mu.Unlock()
	return v
}
