package counter

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/shard"
)

// Sharded is a Counter that stripes traffic over several independent
// counting-network counters via internal/shard: shard s of S returns the
// values v·S + s for v = 0, 1, 2, ..., so values are globally unique and
// dense within each shard's residue class. With S shards the hot atomic
// words (balancers and exit cells) multiply by S, cutting contention by
// another factor on top of what the network itself provides — the
// "millions of users" configuration.
type Sharded struct {
	*shard.Counter
	nets []*Network
}

// NewSharded builds a sharded counter over `shards` fresh networks
// produced by build (called once per shard; each shard owns its network).
func NewSharded(shards int, build func() (*network.Network, error)) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("counter: NewSharded with %d shards", shards)
	}
	nets := make([]*Network, shards)
	inners := make([]shard.Inner, shards)
	name := ""
	for i := range inners {
		n, err := build()
		if err != nil {
			return nil, fmt.Errorf("counter: NewSharded shard %d: %w", i, err)
		}
		nets[i] = NewNetwork(n)
		inners[i] = nets[i]
		name = n.Name()
	}
	sc, err := shard.New(fmt.Sprintf("sharded%d:%s", shards, name), inners)
	if err != nil {
		return nil, err
	}
	return &Sharded{Counter: sc, nets: nets}, nil
}

// ShardCounter returns shard s's underlying network counter (for
// quiescent inspection in tests).
func (c *Sharded) ShardCounter(s int) *Network { return c.nets[s] }
