package counter

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
)

func cwt(t *testing.T, w, tw int) *network.Network {
	t.Helper()
	n, err := core.New(w, tw)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestIncBatchDense: batched claims in a quiescent period produce exactly
// the dense value range 0..m-1, matching what m single Incs would hand out.
func TestIncBatchDense(t *testing.T) {
	c := NewNetwork(cwt(t, 8, 16))
	var vals []int64
	for _, batch := range []struct {
		pid, k int
	}{{0, 5}, {3, 1}, {1, 16}, {7, 32}, {2, 3}} {
		before := len(vals)
		vals = c.IncBatch(batch.pid, batch.k, vals)
		if got := len(vals) - before; got != batch.k {
			t.Fatalf("IncBatch(%d, %d) returned %d values", batch.pid, batch.k, got)
		}
	}
	// A few single Incs interleave legally with batches.
	vals = append(vals, c.Inc(4), c.Inc(5))
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("values not dense: position %d holds %d", i, v)
		}
	}
	if c.Issued() != int64(len(vals)) {
		t.Fatalf("Issued() = %d, want %d", c.Issued(), len(vals))
	}
	if got := c.IncBatch(0, 0, nil); len(got) != 0 {
		t.Fatalf("IncBatch k=0 returned %v", got)
	}
}

// TestDecBatch: batched decrements revoke exactly the values batched
// increments claimed, leave the counter quiescently empty, and match the
// per-call order of single Decs on the same wire.
func TestDecBatch(t *testing.T) {
	c := NewNetwork(cwt(t, 8, 16))
	singles := NewNetwork(cwt(t, 8, 16))

	claimed := c.IncBatch(2, 37, nil)
	singles.IncBatch(2, 37, nil)
	revoked := c.DecBatch(2, 37, nil)
	var want []int64
	for i := 0; i < 37; i++ {
		want = append(want, singles.Dec(2))
	}
	sortInts := func(s []int64) { sort.Slice(s, func(i, j int) bool { return s[i] < s[j] }) }
	sortInts(claimed)
	sortInts(revoked)
	cmp := append([]int64(nil), want...)
	sortInts(cmp)
	for i := range claimed {
		if claimed[i] != revoked[i] {
			t.Fatalf("revoked %v != claimed %v", revoked, claimed)
		}
		if cmp[i] != revoked[i] {
			t.Fatalf("batched revocations %v != single Decs %v (sorted)", revoked, cmp)
		}
	}
	if c.Issued() != 0 {
		t.Fatalf("Issued() = %d after full revocation", c.Issued())
	}
	// The counter is back at its initial state: the next claim is value 0.
	if v := c.Inc(0); v != 0 {
		t.Fatalf("Inc after IncBatch;DecBatch = %d, want 0", v)
	}
	if got := c.DecBatch(0, 0, nil); len(got) != 0 {
		t.Fatalf("DecBatch k=0 returned %v", got)
	}
}

// TestIncDecBatchResidueStep: after batched increments partially undone by
// batched decrements, the per-cell residue (values claimed minus revoked
// per exit wire) still satisfies the step property — the quiescent
// guarantee of ref [2] carried through both batched paths.
func TestIncDecBatchResidueStep(t *testing.T) {
	c := NewNetwork(cwt(t, 8, 16))
	c.IncBatch(0, 50, nil)
	c.IncBatch(5, 21, nil)
	c.DecBatch(3, 30, nil)
	residue := make([]int64, 16)
	for i := range c.cells {
		residue[i] = (c.cells[i].v.Load() - int64(i)) / c.t
	}
	for i := 1; i < len(residue); i++ {
		if residue[i] > residue[i-1] || residue[0]-residue[i] > 1 {
			t.Fatalf("residue %v not step", residue)
		}
	}
	if c.Issued() != 50+21-30 {
		t.Fatalf("Issued() = %d, want 41", c.Issued())
	}
}

// TestBatchedCounterAccounting: the Batched wrapper returns unique values
// and its quiescent books balance: claimed = returned + buffered.
func TestBatchedCounterAccounting(t *testing.T) {
	b := NewBatchedStripes(NewNetwork(cwt(t, 8, 16)), 8, 4)
	if b.Batch() != 8 {
		t.Fatalf("Batch() = %d", b.Batch())
	}
	const m = 100
	seen := make(map[int64]bool, m)
	for i := 0; i < m; i++ {
		v := b.Inc(i)
		if seen[v] {
			t.Fatalf("value %d returned twice", v)
		}
		seen[v] = true
	}
	if got := b.Issued(); got != m+b.Buffered() {
		t.Fatalf("Issued() = %d, want returned %d + buffered %d", got, m, b.Buffered())
	}
	if b.Buffered() < 0 || b.Buffered() >= int64(b.Batch()*4) {
		t.Fatalf("Buffered() = %d out of range", b.Buffered())
	}
}

// TestBatchedConcurrentUnique: parallel batched Incs never duplicate a
// value (run with -race in CI).
func TestBatchedConcurrentUnique(t *testing.T) {
	const (
		goroutines = 8
		per        = 400
	)
	b := NewBatched(NewNetwork(cwt(t, 8, 16)), 16)
	vals := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[g] = append(vals[g], b.Inc(g))
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, goroutines*per)
	for _, vs := range vals {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d returned twice", v)
			}
			seen[v] = true
		}
	}
	if got := b.Issued(); got != int64(goroutines*per)+b.Buffered() {
		t.Fatalf("Issued() = %d, want %d + buffered %d", got, goroutines*per, b.Buffered())
	}
}

// TestShardedCounter: values are unique, dense per residue class, and the
// shard bookkeeping holds up under concurrency.
func TestShardedCounter(t *testing.T) {
	s, err := NewSharded(4, func() (*network.Network, error) { return core.New(8, 8) })
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	const (
		goroutines = 8
		per        = 250
	)
	vals := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				vals[g] = append(vals[g], s.Inc(g))
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, goroutines*per)
	perClass := make(map[int][]int64)
	for _, vs := range vals {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d issued twice", v)
			}
			seen[v] = true
			perClass[int(v%4)] = append(perClass[int(v%4)], v/4)
		}
	}
	// Each residue class is dense: shard s issued locals 0..k-1.
	for class, locals := range perClass {
		sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
		for i, v := range locals {
			if v != int64(i) {
				t.Fatalf("shard %d locals not dense at %d: %d", class, i, v)
			}
		}
		if got := s.ShardCounter(class).Issued(); got != int64(len(locals)) {
			t.Fatalf("shard %d Issued() = %d, want %d", class, got, len(locals))
		}
	}
	if got := s.Issued(); got != goroutines*per {
		t.Fatalf("Issued() = %d, want %d", got, goroutines*per)
	}
	if _, err := NewSharded(0, nil); err == nil {
		t.Fatal("expected error for zero shards")
	}
}
