package dtree

import (
	"fmt"

	"repro/internal/network"
)

// NewToggleNetwork builds the diffracting tree's balancing-network skeleton
// — the binary tree of (1,2)-balancers with one input wire and w output
// wires (§1.4.1) — as a network.Network, so the adversarial contention
// simulator can schedule it (experiment E12).
//
// The prism is deliberately absent: an adversary defeats diffraction by
// never letting two tokens meet in a slot, so the adversarial behaviour of
// the diffracting tree is exactly that of its toggle tree; this is how the
// paper's Θ(n) amortized contention claim arises.
//
// Leaf wiring matches New: the root decides the least significant bit of
// the output wire index.
func NewToggleNetwork(w int) (*network.Network, error) {
	if w < 2 || w&(w-1) != 0 {
		return nil, fmt.Errorf("dtree: leaf count %d is not a power of two >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("DTree(%d)", w), 1)
	outs := make([]network.Port, w)
	var rec func(p network.Port, wires []int)
	rec = func(p network.Port, wires []int) {
		if len(wires) == 1 {
			outs[wires[0]] = p
			return
		}
		o := b.Balancer([]network.Port{p}, 2)
		if o == nil {
			return
		}
		var even, odd []int
		for i, wire := range wires {
			if i%2 == 0 {
				even = append(even, wire)
			} else {
				odd = append(odd, wire)
			}
		}
		rec(o[0], even)
		rec(o[1], odd)
	}
	all := make([]int, w)
	for i := range all {
		all[i] = i
	}
	rec(in[0], all)
	return b.Finalize(outs)
}
