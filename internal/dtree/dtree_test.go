package dtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/seq"
)

func TestDepth(t *testing.T) {
	for w, want := range map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4} {
		tr, err := New(w, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if tr.Depth() != want {
			t.Errorf("Depth(%d leaves) = %d, want %d", w, tr.Depth(), want)
		}
		if tr.Leaves() != w {
			t.Errorf("Leaves = %d, want %d", tr.Leaves(), w)
		}
	}
}

func TestInvalidWidth(t *testing.T) {
	for _, w := range []int{0, 3, 6, -4} {
		if _, err := New(w, DefaultOptions()); err == nil {
			t.Errorf("New(%d) accepted", w)
		}
	}
}

// Sequential tokens (toggles only) must produce a step leaf distribution
// at every prefix.
func TestSequentialStep(t *testing.T) {
	tr, err := New(8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 8)
	for m := 1; m <= 100; m++ {
		counts[tr.TraverseSequential()]++
		if !seq.IsStep(counts) {
			t.Fatalf("after %d tokens leaf counts %v not step", m, counts)
		}
	}
}

// Concurrent tokens with diffraction enabled: quiescent leaf counts step.
func TestConcurrentStepWithDiffraction(t *testing.T) {
	tr, err := New(8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 2000
	counts := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		counts[g] = make([]int64, 8)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				counts[g][tr.Traverse(rng)]++
			}
		}(g)
	}
	wg.Wait()
	total := make([]int64, 8)
	for _, c := range counts {
		for i, v := range c {
			total[i] += v
		}
	}
	if !seq.IsStep(total) {
		t.Fatalf("quiescent leaf counts %v not step (diffractions=%d toggles=%d)",
			total, tr.Diffractions(), tr.Toggles())
	}
	if seq.Sum(total) != goroutines*per {
		t.Fatalf("token conservation broken: %d", seq.Sum(total))
	}
}

// Under heavy concurrency some tokens should actually diffract.
func TestDiffractionHappens(t *testing.T) {
	tr, err := New(4, Options{PrismWidth: 4, SpinBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 5000; i++ {
				tr.Traverse(rng)
			}
		}(g)
	}
	wg.Wait()
	if tr.Diffractions() == 0 {
		t.Skip("no diffraction observed on this host (timing dependent); prism unused")
	}
	if tr.Diffractions()%2 != 0 {
		t.Fatalf("diffractions = %d, must be even (pairs)", tr.Diffractions())
	}
}

func TestReset(t *testing.T) {
	tr, err := New(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TraverseSequential()
	tr.TraverseSequential()
	tr.Reset()
	if got := tr.TraverseSequential(); got != first {
		t.Fatalf("after reset first token at leaf %d, want %d", got, first)
	}
	// One traversal after reset crosses Depth() toggles.
	if tr.Toggles() != int64(tr.Depth()) {
		t.Fatalf("stats not reset: %d toggles, want %d", tr.Toggles(), tr.Depth())
	}
}

// Counter: m concurrent Incs return exactly {0..m-1}.
func TestCounterUnique(t *testing.T) {
	c, err := NewCounter(8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 1000
	got := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[g] = append(got[g], c.Inc())
			}
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, s := range got {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not {0..m-1}: position %d has %d", i, v)
		}
	}
}

// Width-1 tree: every token lands on leaf 0.
func TestSingleLeaf(t *testing.T) {
	tr, err := New(1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := tr.TraverseSequential(); got != 0 {
			t.Fatalf("leaf = %d", got)
		}
	}
}
