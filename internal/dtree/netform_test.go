package dtree

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

func TestToggleNetworkGeometry(t *testing.T) {
	for w, depth := range map[int]int{2: 1, 4: 2, 8: 3, 16: 4} {
		n, err := NewToggleNetwork(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.InWidth() != 1 || n.OutWidth() != w || n.Depth() != depth {
			t.Fatalf("w=%d: in=%d out=%d depth=%d", w, n.InWidth(), n.OutWidth(), n.Depth())
		}
		if n.Size() != w-1 {
			t.Fatalf("w=%d: %d balancers, want %d", w, n.Size(), w-1)
		}
		census := network.ArityCensus(n)
		if census["(1,2)"] != w-1 {
			t.Fatalf("census = %v", census)
		}
	}
}

func TestToggleNetworkIsCounting(t *testing.T) {
	n, err := NewToggleNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := network.CheckCounting(n, 40, 200, rng); err != nil {
		t.Fatal(err)
	}
}

// The network form and the live tree route tokens identically (toggles
// only): leaf sequences agree token by token.
func TestToggleNetworkMatchesTree(t *testing.T) {
	n, err := NewToggleNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a := n.Traverse(0)
		b := tr.TraverseSequential()
		if a != b {
			t.Fatalf("token %d: network leaf %d, tree leaf %d", i, a, b)
		}
	}
}

func TestToggleNetworkInvalidWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 6} {
		if _, err := NewToggleNetwork(w); err == nil {
			t.Errorf("NewToggleNetwork(%d) accepted", w)
		}
	}
}

func TestCounterTreeAccessorAndStats(t *testing.T) {
	c, err := NewCounter(4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Tree() == nil || c.Tree().Leaves() != 4 {
		t.Fatal("Tree accessor broken")
	}
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	if c.Tree().Toggles()+c.Tree().Diffractions() == 0 {
		t.Fatal("no routing events recorded")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.PrismWidth <= 0 || o.SpinBudget <= 0 {
		t.Fatalf("DefaultOptions = %+v", o)
	}
}

// Prism disabled (PrismWidth 0) but rng passed: all routing via toggles.
func TestNoPrismWithRng(t *testing.T) {
	tr, err := New(4, Options{PrismWidth: 0, SpinBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int64, 4)
	for i := 0; i < 40; i++ {
		counts[tr.Traverse(rng)]++
	}
	if tr.Diffractions() != 0 {
		t.Fatal("diffraction without a prism")
	}
	if !seq.IsStep(counts) {
		t.Fatalf("counts %v", counts)
	}
}
