// Package dtree implements the diffracting tree of Shavit & Zemach
// (ref [26] of the paper), the irregular baseline of §1.4.1: a binary tree
// of (1,2)-balancers with 1 input wire and w output wires (the leaves),
// depth lgw. Each internal node carries a prism — an array of exchangers —
// in which pairs of concurrently arriving tokens "collide and eliminate":
// one goes left and the other right without touching the node's toggle,
// cutting contention on the toggle under high load. A token that fails to
// pair within its spin budget falls through to the toggle.
//
// The tree balances exactly: in any quiescent state the leaf counts are
// step (pairs split evenly, the toggle alternates on the remainder), so
// with per-leaf counters it implements a shared counter. Its *adversarial*
// amortized contention is Θ(n), since a scheduler can defeat the prism and
// pile all tokens on the root toggle (§1.4.1) — experiment E12.
package dtree

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
)

// Options configures prism behaviour.
type Options struct {
	// PrismWidth is the number of exchanger slots per node; 0 disables
	// diffraction entirely (pure toggle tree).
	PrismWidth int
	// SpinBudget is the number of polling iterations a token spends trying
	// to pair in the prism before falling through to the toggle.
	SpinBudget int
}

// DefaultOptions matches the common experimental configuration: prism
// width proportional to expected concurrency at the node, modest spins.
func DefaultOptions() Options {
	return Options{PrismWidth: 8, SpinBudget: 64}
}

// Tree is a diffracting tree with w leaves.
type Tree struct {
	root   *node
	leaves int
	depth  int
	// Diffractions counts tokens that were routed by pairing rather than
	// by a toggle (two per successful collision).
	diffractions atomic.Int64
	toggles      atomic.Int64
}

type node struct {
	toggle      balancer.Toggle
	prism       []balancer.Exchanger
	spin        int
	left, right *node
}

// New builds a diffracting tree with w = 2^k leaves (k >= 0).
//
// Leaf numbering follows the counting-tree convention: the root's decision
// is the *least* significant bit of the leaf index (the left subtree owns
// the even leaves, the right subtree the odd leaves). This interleaving is
// what makes the quiescent leaf counts a step sequence: the root splits m
// tokens into ceil(m/2) for the evens and floor(m/2) for the odds, and the
// interleaving of two step sequences whose sums differ by at most one is
// step.
func New(w int, opts Options) (*Tree, error) {
	if w < 1 || w&(w-1) != 0 {
		return nil, fmt.Errorf("dtree: leaf count %d is not a power of two", w)
	}
	t := &Tree{leaves: w}
	var build func(span int) *node
	build = func(span int) *node {
		if span == 1 {
			return nil
		}
		n := &node{spin: opts.SpinBudget}
		if opts.PrismWidth > 0 {
			n.prism = make([]balancer.Exchanger, opts.PrismWidth)
		}
		n.left = build(span / 2)
		n.right = build(span / 2)
		return n
	}
	t.root = build(w)
	for s := w; s > 1; s >>= 1 {
		t.depth++
	}
	return t, nil
}

// Leaves returns the number of leaves (output wires).
func (t *Tree) Leaves() int { return t.leaves }

// Depth returns the tree depth lg(leaves).
func (t *Tree) Depth() int { return t.depth }

// Diffractions returns the number of tokens routed by prism collisions.
func (t *Tree) Diffractions() int64 { return t.diffractions.Load() }

// Toggles returns the number of tokens routed by toggles.
func (t *Tree) Toggles() int64 { return t.toggles.Load() }

// Traverse shepherds one token to a leaf and returns the leaf index.
// rng supplies prism slot choices; each goroutine should use its own
// *rand.Rand (callers may pass nil to disable diffraction for this token).
func (t *Tree) Traverse(rng *rand.Rand) int {
	n := t.root
	leaf, bit := 0, 1
	for n != nil {
		goRight := false
		diffracted := false
		if len(n.prism) > 0 && rng != nil {
			slot := rng.Intn(len(n.prism))
			if _, outcome := n.prism[slot].Exchange(1, n.spin); outcome != balancer.Timeout {
				// Pair: first goes left, second goes right.
				goRight = outcome == balancer.Second
				diffracted = true
			}
		}
		if diffracted {
			t.diffractions.Add(1)
		} else {
			goRight = n.toggle.Step() == 1
			t.toggles.Add(1)
		}
		if goRight {
			leaf += bit
			n = n.right
		} else {
			n = n.left
		}
		bit <<= 1
	}
	return leaf
}

// TraverseSequential routes one token using toggles only; used for
// quiescent verification where no partner can exist.
func (t *Tree) TraverseSequential() int { return t.Traverse(nil) }

// Reset restores all toggles (not safe concurrently with Traverse).
func (t *Tree) Reset() {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		n.toggle.Reset()
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
	t.diffractions.Store(0)
	t.toggles.Store(0)
}

// Counter wraps a diffracting tree with per-leaf counters to form a shared
// counter, mirroring the counting-network counter construction of §1.1.
type Counter struct {
	tree  *Tree
	cells []cell
	pool  sync.Pool
}

type cell struct {
	v atomic.Int64
	_ [7]int64 // pad to a cache line to avoid false sharing
}

// NewCounter builds a diffracting-tree counter with w leaves.
func NewCounter(w int, opts Options) (*Counter, error) {
	t, err := New(w, opts)
	if err != nil {
		return nil, err
	}
	c := &Counter{tree: t, cells: make([]cell, w)}
	for i := range c.cells {
		c.cells[i].v.Store(int64(i))
	}
	c.pool.New = func() any { return rand.New(rand.NewSource(rand.Int63())) }
	return c, nil
}

// Inc performs Fetch&Increment: it returns a unique value; values issued
// in quiescent periods form a contiguous prefix 0..m-1.
func (c *Counter) Inc() int64 {
	rng := c.pool.Get().(*rand.Rand)
	leaf := c.tree.Traverse(rng)
	c.pool.Put(rng)
	return c.cells[leaf].v.Add(int64(c.tree.leaves)) - int64(c.tree.leaves)
}

// Tree exposes the underlying tree (for stats).
func (c *Counter) Tree() *Tree { return c.tree }
