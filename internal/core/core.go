// Package core implements the paper's primary contribution: the irregular
// counting network C(w,t) of Section 4, with input width w = 2^k and output
// width t = p·w (p, k >= 1), built from (2,2)- and (2,2p)-balancers.
//
// The construction is recursive on w (Fig. 10):
//
//   - C(2,t) is a single (2,t)-balancer.
//   - C(w,t) is a ladder layer L(w) (w/2 (2,2)-balancers pairing wires i
//     and i+w/2), whose top and bottom output halves feed two copies of
//     C(w/2,t/2), whose outputs are merged by the difference merging
//     network M(t,w/2) of Section 3.
//
// The ladder bounds the difference between the token counts entering the
// two recursive halves by w/2, which is what lets M(t,w/2) have depth
// lg(w/2) and makes the total depth (lg²w + lgw)/2 — a function of w only
// (Theorem 4.1). C(w,t) is a counting network (Theorem 4.2).
//
// The package also exposes the structural objects used in the contention
// analysis: the prefix network C'(w,t) (the first lgw layers, Fig. 16
// left), the all-(2,2) variant C″(w) (Fig. 16 right, a backward
// butterfly), and the block decomposition Na / Nb / Nc of §1.3.2 (Fig. 3).
package core

import (
	"fmt"

	"repro/internal/merge"
	"repro/internal/network"
)

// Valid reports whether (w,t) is a valid parameter pair: w = 2^k, t = p·w,
// with k, p >= 1.
func Valid(w, t int) bool {
	if w < 2 || w&(w-1) != 0 {
		return false
	}
	return t >= w && t%w == 0
}

// DepthFormula returns the Theorem 4.1 depth (lg²w + lgw)/2.
func DepthFormula(w int) int {
	k := log2(w)
	return (k*k + k) / 2
}

// log2 returns floor(lg x).
func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// New constructs the counting network C(w,t).
func New(w, t int) (*network.Network, error) {
	if !Valid(w, t) {
		return nil, fmt.Errorf("core: invalid parameters C(%d,%d): need w=2^k, t=p*w, k,p>=1", w, t)
	}
	b, in := network.NewBuilder(fmt.Sprintf("C(%d,%d)", w, t), w)
	out := build(b, in, t)
	n, err := b.Finalize(out)
	if err != nil {
		return nil, err
	}
	labelBlocks(n, w)
	return n, nil
}

// build appends C(len(in), t) to the builder and returns its output ports.
func build(b *network.Builder, in []network.Port, t int) []network.Port {
	w := len(in)
	if w == 2 {
		// Recursive basis: a single (2,t)-balancer.
		return b.Balancer(in, t)
	}
	// Sub-step 1: ladder L(w), then two copies of C(w/2, t/2).
	e, f := Ladder(b, in)
	g := build(b, e, t/2)
	h := build(b, f, t/2)
	// Sub-step 2: merge with M(t, w/2).
	return merge.Build(b, concat(g, h), w/2)
}

// Ladder appends the ladder network L(w) of §4.1: a single layer of w/2
// (2,2)-balancers where balancer b_i consumes input wires i and i+w/2 and
// produces output wires i (top) and i+w/2 (bottom). It returns the first
// and second halves of the output sequence.
func Ladder(b *network.Builder, in []network.Port) (first, second []network.Port) {
	w := len(in)
	if w%2 != 0 {
		panic(fmt.Sprintf("core: ladder of odd width %d", w))
	}
	first = make([]network.Port, w/2)
	second = make([]network.Port, w/2)
	for i := 0; i < w/2; i++ {
		o := b.Balancer([]network.Port{in[i], in[i+w/2]}, 2)
		if o == nil {
			return first, second
		}
		first[i], second[i] = o[0], o[1]
	}
	return first, second
}

// NewLadder constructs L(w) as a standalone network.
func NewLadder(w int) (*network.Network, error) {
	if w < 2 || w%2 != 0 {
		return nil, fmt.Errorf("core: ladder width %d must be even and >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("L(%d)", w), w)
	first, second := Ladder(b, in)
	return b.Finalize(concat(first, second))
}

// Block labels for the §1.3.2 decomposition.
const (
	BlockNa = "Na" // first lgw-1 layers: (2,2)-balancers, width w
	BlockNb = "Nb" // layer lgw: (2,2p)-balancers, width w -> t
	BlockNc = "Nc" // remaining layers: (2,2)-balancers, width t
)

// labelBlocks tags every node of a freshly built C(w,t) with its block.
func labelBlocks(n *network.Network, w int) {
	lgw := log2(w)
	for i := 0; i < n.Size(); i++ {
		d := n.Node(i).Depth()
		switch {
		case d < lgw:
			n.SetLabel(i, BlockNa)
		case d == lgw:
			n.SetLabel(i, BlockNb)
		default:
			n.SetLabel(i, BlockNc)
		}
	}
}

// Blocks summarizes the Na/Nb/Nc decomposition of a C(w,t) network: for
// each block, its balancer count, depth (number of layers), and arity
// census. This regenerates the structural facts of Fig. 3.
type Blocks struct {
	Na, Nb, Nc BlockInfo
}

// BlockInfo describes one block of the decomposition.
type BlockInfo struct {
	Balancers int
	Layers    int
	Arities   map[string]int
}

// Decompose computes the block decomposition of a network built by New.
func Decompose(n *network.Network) Blocks {
	var blocks Blocks
	info := map[string]*BlockInfo{
		BlockNa: &blocks.Na,
		BlockNb: &blocks.Nb,
		BlockNc: &blocks.Nc,
	}
	layerSeen := map[string]map[int]bool{
		BlockNa: {}, BlockNb: {}, BlockNc: {},
	}
	for i := 0; i < n.Size(); i++ {
		l := n.Label(i)
		bi, ok := info[l]
		if !ok {
			continue
		}
		if bi.Arities == nil {
			bi.Arities = make(map[string]int)
		}
		nd := n.Node(i)
		bi.Balancers++
		bi.Arities[fmt.Sprintf("(%d,%d)", nd.In(), nd.Out())]++
		layerSeen[l][nd.Depth()] = true
	}
	blocks.Na.Layers = len(layerSeen[BlockNa])
	blocks.Nb.Layers = len(layerSeen[BlockNb])
	blocks.Nc.Layers = len(layerSeen[BlockNc])
	return blocks
}

// NewPrefix constructs C'(w,t) (Fig. 16, left): the network C(w,t) with
// all difference-merging subnetworks removed — i.e. blocks Na and Nb only.
// Its input width is w, output width t, depth lgw. By Lemma 6.6 it is
// s-smoothing with s = floor(w·lgw / t) + 2.
func NewPrefix(w, t int) (*network.Network, error) {
	if !Valid(w, t) {
		return nil, fmt.Errorf("core: invalid parameters C'(%d,%d)", w, t)
	}
	b, in := network.NewBuilder(fmt.Sprintf("C'(%d,%d)", w, t), w)
	out := buildPrefix(b, in, t)
	return b.Finalize(out)
}

func buildPrefix(b *network.Builder, in []network.Port, t int) []network.Port {
	w := len(in)
	if w == 2 {
		return b.Balancer(in, t)
	}
	e, f := Ladder(b, in)
	g := buildPrefix(b, e, t/2)
	h := buildPrefix(b, f, t/2)
	return concat(g, h)
}

// PrefixSmoothness returns the Lemma 6.6 smoothing bound for C'(w,t):
// s = floor(w·lgw/t) + 2.
func PrefixSmoothness(w, t int) int64 {
	return int64(w*log2(w)/t) + 2
}

// NewPrefix22 constructs C″(w) (Fig. 16, right): C'(w,t) with every
// (2,2p)-balancer of the last layer replaced by a (2,2)-balancer. It is a
// backward butterfly of width w and is lgw-smoothing (proof of Lemma 6.6).
func NewPrefix22(w int) (*network.Network, error) {
	if w < 2 || w&(w-1) != 0 {
		return nil, fmt.Errorf("core: invalid width %d for C″", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("C″(%d)", w), w)
	out := buildPrefix(b, in, w)
	return b.Finalize(out)
}

// NewWithBitonicMerger is the §1.3.2/§3.3 ablation: C(w,t) built with the
// bitonic merging network in place of M(t,w/2). The merge stages then have
// depth lg(t/2), lg(t/4), ..., so the total depth grows with t — measured
// by experiment E17. The resulting network is still a counting network.
// The bitonic merger construction is injected by the caller (package
// bitonic provides it) to keep the package dependency graph acyclic.
func NewWithBitonicMerger(w, t int, merger func(b *network.Builder, x, y []network.Port) []network.Port) (*network.Network, error) {
	if !Valid(w, t) {
		return nil, fmt.Errorf("core: invalid parameters C_bitonic(%d,%d)", w, t)
	}
	b, in := network.NewBuilder(fmt.Sprintf("Cbit(%d,%d)", w, t), w)
	var rec func(in []network.Port, t int) []network.Port
	rec = func(in []network.Port, t int) []network.Port {
		w := len(in)
		if w == 2 {
			return b.Balancer(in, t)
		}
		e, f := Ladder(b, in)
		g := rec(e, t/2)
		h := rec(f, t/2)
		return merger(b, g, h)
	}
	out := rec(in, t)
	return b.Finalize(out)
}

func concat(a, b []network.Port) []network.Port {
	out := make([]network.Port, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
