package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/seq"
)

func TestValid(t *testing.T) {
	cases := []struct {
		w, t int
		want bool
	}{
		{2, 2, true}, {2, 4, true}, {2, 6, true}, {4, 4, true}, {4, 8, true},
		{8, 8, true}, {8, 16, true}, {8, 24, true}, {16, 64, true},
		{3, 3, false}, {6, 6, false}, {4, 6, false}, {4, 2, false},
		{1, 1, false}, {0, 0, false}, {4, 0, false},
	}
	for _, c := range cases {
		if got := Valid(c.w, c.t); got != c.want {
			t.Errorf("Valid(%d,%d) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
}

// E1 / Theorem 4.1: depth(C(w,t)) = (lg²w + lgw)/2, independent of t.
func TestDepthFormula(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		for _, p := range []int{1, 2, 3, 4} {
			n, err := New(w, p*w)
			if err != nil {
				t.Fatalf("New(%d,%d): %v", w, p*w, err)
			}
			if got, want := n.Depth(), DepthFormula(w); got != want {
				t.Errorf("depth(C(%d,%d)) = %d, want %d", w, p*w, got, want)
			}
		}
	}
}

func TestDepthFormulaValues(t *testing.T) {
	want := map[int]int{2: 1, 4: 3, 8: 6, 16: 10, 32: 15, 64: 21, 128: 28}
	for w, d := range want {
		if got := DepthFormula(w); got != d {
			t.Errorf("DepthFormula(%d) = %d, want %d", w, got, d)
		}
	}
}

// E3 / Theorem 4.2: C(w,t) is a counting network. Exhaustive small sweeps
// plus randomized large inputs.
func TestCountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		w, t       int
		exhaustive int
		trials     int
	}{
		{2, 2, 8, 200}, {2, 8, 8, 200},
		{4, 4, 6, 300}, {4, 8, 6, 300}, {4, 12, 5, 300},
		{8, 8, 4, 300}, {8, 16, 4, 300}, {8, 32, 3, 300},
		{16, 16, 0, 400}, {16, 32, 0, 400}, {16, 64, 0, 400},
		{32, 32, 0, 200}, {32, 160, 0, 200},
	}
	for _, c := range cases {
		n, err := New(c.w, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckCounting(n, c.exhaustive, c.trials, rng); err != nil {
			t.Errorf("C(%d,%d): %v", c.w, c.t, err)
		}
	}
}

// Property-based: random input count vectors on random valid (w,t) always
// produce step outputs preserving the sum.
func TestQuickCounting(t *testing.T) {
	type key struct{ w, t int }
	cache := map[key]*network.Network{}
	f := func(wExp, pRaw uint8, counts []uint16) bool {
		w := 2 << (wExp % 4) // 2..16
		p := int(pRaw%3) + 1 // 1..3
		k := key{w, p * w}
		n, ok := cache[k]
		if !ok {
			var err error
			n, err = New(w, p*w)
			if err != nil {
				return false
			}
			cache[k] = n
		}
		x := make([]int64, w)
		for i := range x {
			if i < len(counts) {
				x[i] = int64(counts[i] % 512)
			}
		}
		y, err := n.Quiescent(x)
		if err != nil {
			return false
		}
		return seq.IsStep(y) && seq.Sum(y) == seq.Sum(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// E3 concurrent: a fully concurrent run must agree with the arithmetic
// quiescent prediction, and the output must be step.
func TestConcurrentStep(t *testing.T) {
	for _, c := range []struct{ w, tt int }{{4, 8}, {8, 8}, {8, 16}, {16, 64}} {
		n, err := New(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		const per = 300
		nProcs := 2 * c.w
		exits := make([][]int64, nProcs)
		var wg sync.WaitGroup
		for pid := 0; pid < nProcs; pid++ {
			exits[pid] = make([]int64, n.OutWidth())
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				wire := pid % c.w
				for i := 0; i < per; i++ {
					exits[pid][n.Traverse(wire)]++
				}
			}(pid)
		}
		wg.Wait()
		got := make([]int64, n.OutWidth())
		for _, e := range exits {
			for i, v := range e {
				got[i] += v
			}
		}
		if !seq.IsStep(got) {
			t.Errorf("C(%d,%d): concurrent output %v not step", c.w, c.tt, got)
		}
		x := make([]int64, c.w)
		for pid := 0; pid < nProcs; pid++ {
			x[pid%c.w] += per
		}
		fresh, err := New(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(got, want) {
			t.Errorf("C(%d,%d): concurrent %v != quiescent %v", c.w, c.tt, got, want)
		}
	}
}

// E8 / Fig. 3: block decomposition structure.
func TestBlockDecomposition(t *testing.T) {
	for _, c := range []struct{ w, tt, p int }{{8, 16, 2}, {8, 8, 1}, {16, 64, 4}, {4, 12, 3}} {
		n, err := New(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		lgw := log2(c.w)
		blocks := Decompose(n)
		// Na: lgw-1 layers of w/2 (2,2)-balancers each.
		if got, want := blocks.Na.Layers, lgw-1; got != want {
			t.Errorf("C(%d,%d): Na layers = %d, want %d", c.w, c.tt, got, want)
		}
		if got, want := blocks.Na.Balancers, (lgw-1)*c.w/2; got != want {
			t.Errorf("C(%d,%d): Na balancers = %d, want %d", c.w, c.tt, got, want)
		}
		for a := range blocks.Na.Arities {
			if a != "(2,2)" {
				t.Errorf("C(%d,%d): Na contains %s balancers", c.w, c.tt, a)
			}
		}
		// Nb: one layer of w/2 (2,2p)-balancers.
		if blocks.Nb.Layers != 1 || blocks.Nb.Balancers != c.w/2 {
			t.Errorf("C(%d,%d): Nb = %+v", c.w, c.tt, blocks.Nb)
		}
		wantArity := "(2," + itoa(2*c.p) + ")"
		if blocks.Nb.Arities[wantArity] != c.w/2 {
			t.Errorf("C(%d,%d): Nb arities = %v, want all %s", c.w, c.tt, blocks.Nb.Arities, wantArity)
		}
		// Nc: (lg²w - lgw)/2 layers of t/2 (2,2)-balancers each.
		wantNcLayers := (lgw*lgw - lgw) / 2
		if blocks.Nc.Layers != wantNcLayers {
			t.Errorf("C(%d,%d): Nc layers = %d, want %d", c.w, c.tt, blocks.Nc.Layers, wantNcLayers)
		}
		if got, want := blocks.Nc.Balancers, wantNcLayers*c.tt/2; got != want {
			t.Errorf("C(%d,%d): Nc balancers = %d, want %d", c.w, c.tt, got, want)
		}
		for a := range blocks.Nc.Arities {
			if a != "(2,2)" {
				t.Errorf("C(%d,%d): Nc contains %s balancers", c.w, c.tt, a)
			}
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// E7 / Lemma 6.6: the prefix C'(w,t) is s-smoothing, s = floor(w·lgw/t)+2.
func TestPrefixSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for _, c := range []struct{ w, tt int }{
		{4, 4}, {4, 8}, {8, 8}, {8, 16}, {8, 32}, {16, 16}, {16, 64}, {16, 128},
	} {
		n, err := NewPrefix(c.w, c.tt)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != log2(c.w) {
			t.Errorf("depth(C'(%d,%d)) = %d, want %d", c.w, c.tt, n.Depth(), log2(c.w))
		}
		s := PrefixSmoothness(c.w, c.tt)
		if err := network.CheckSmoothing(n, s, 3, 400, rng); err != nil {
			t.Errorf("C'(%d,%d) not %d-smoothing: %v", c.w, c.tt, s, err)
		}
	}
}

// C″(w) (Fig. 16 right) is lgw-smoothing (used inside Lemma 6.6's proof).
func TestPrefix22Smoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := NewPrefix22(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckSmoothing(n, int64(log2(w)), 3, 400, rng); err != nil {
			t.Errorf("C″(%d) not lgw-smoothing: %v", w, err)
		}
	}
}

func TestLadderStructure(t *testing.T) {
	n, err := NewLadder(8)
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() != 1 || n.Size() != 4 {
		t.Fatalf("L(8): depth=%d size=%d", n.Depth(), n.Size())
	}
	// Balancer i pairs input wires i and i+4 and output wires i and i+4.
	for i := 0; i < 4; i++ {
		if nd, port := n.InputDest(i); nd != i || port != 0 {
			t.Errorf("input %d feeds (%d,%d)", i, nd, port)
		}
		if nd, port := n.InputDest(i + 4); nd != i || port != 1 {
			t.Errorf("input %d feeds (%d,%d)", i+4, nd, port)
		}
		if nd, port := n.OutputSource(i); nd != i || port != 0 {
			t.Errorf("output %d from (%d,%d)", i, nd, port)
		}
		if nd, port := n.OutputSource(i + 4); nd != i || port != 1 {
			t.Errorf("output %d from (%d,%d)", i+4, nd, port)
		}
	}
}

// Ladder invariant used in Theorem 4.2's proof: the two output halves have
// sums differing by at most w/2, whatever the input.
func TestLadderHalfDifference(t *testing.T) {
	n, err := NewLadder(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		x := make([]int64, 8)
		for i := range x {
			x[i] = rng.Int63n(100)
		}
		y, err := n.Quiescent(x)
		if err != nil {
			t.Fatal(err)
		}
		first, second := seq.Halves(y)
		d := seq.Sum(first) - seq.Sum(second)
		if d < 0 || d > 4 {
			t.Fatalf("ladder half difference %d outside [0,4] for input %v", d, x)
		}
	}
}

func TestInvalidParameters(t *testing.T) {
	for _, c := range []struct{ w, tt int }{{3, 3}, {4, 6}, {0, 0}, {2, 3}, {8, 4}} {
		if _, err := New(c.w, c.tt); err == nil {
			t.Errorf("New(%d,%d) accepted", c.w, c.tt)
		}
		if _, err := NewPrefix(c.w, c.tt); err == nil {
			t.Errorf("NewPrefix(%d,%d) accepted", c.w, c.tt)
		}
	}
	if _, err := NewPrefix22(6); err == nil {
		t.Error("NewPrefix22(6) accepted")
	}
	if _, err := NewLadder(3); err == nil {
		t.Error("NewLadder(3) accepted")
	}
}

// E9 / Fig. 1: C(4,8) structural facts — 2+2 ladder/base balancers and a
// depth-1 merger of width 8; overall: in 4, out 8, depth 3.
func TestFigure1C48(t *testing.T) {
	n, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n.InWidth() != 4 || n.OutWidth() != 8 || n.Depth() != 3 {
		t.Fatalf("C(4,8) geometry: in=%d out=%d depth=%d", n.InWidth(), n.OutWidth(), n.Depth())
	}
	census := network.ArityCensus(n)
	if census["(2,2)"] != 6 || census["(2,4)"] != 2 {
		t.Fatalf("C(4,8) census = %v, want 6 x (2,2) + 2 x (2,4)", census)
	}
	// Paper Fig. 1 example: the step property with the depicted totals.
	y, err := n.Quiescent([]int64{2, 3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsStep(y) || seq.Sum(y) != 8 {
		t.Fatalf("C(4,8) on Fig.1 input: %v", y)
	}
}

// E9 / Fig. 2: the regular networks C(4,4) and C(8,8).
func TestFigure2Regular(t *testing.T) {
	for _, c := range []struct{ w, depth, size int }{{4, 3, 6}, {8, 6, 24}} {
		n, err := New(c.w, c.w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != c.depth {
			t.Errorf("C(%d,%d) depth = %d, want %d", c.w, c.w, n.Depth(), c.depth)
		}
		if n.Size() != c.size {
			t.Errorf("C(%d,%d) size = %d, want %d", c.w, c.w, n.Size(), c.size)
		}
		census := network.ArityCensus(n)
		if len(census) != 1 || census["(2,2)"] != c.size {
			t.Errorf("C(%d,%d) census = %v", c.w, c.w, census)
		}
	}
}

// E9 / Fig. 3: C(8,16) balancer totals per block.
func TestFigure3C816(t *testing.T) {
	n, err := New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n.InWidth() != 8 || n.OutWidth() != 16 || n.Depth() != 6 {
		t.Fatalf("C(8,16) geometry: in=%d out=%d depth=%d", n.InWidth(), n.OutWidth(), n.Depth())
	}
	b := Decompose(n)
	// Na: 2 layers x 4 balancers; Nb: 4 x (2,4); Nc: 3 layers x 8.
	if b.Na.Balancers != 8 || b.Nb.Balancers != 4 || b.Nc.Balancers != 24 {
		t.Fatalf("C(8,16) blocks: Na=%d Nb=%d Nc=%d", b.Na.Balancers, b.Nb.Balancers, b.Nc.Balancers)
	}
}

// Random initial states (E16): with randomized balancer initial states the
// network generally loses exact counting but the output must remain
// w-smooth-ish; we verify it still distributes within the smoothness of the
// deepest prefix plus merger tolerance. This documents the §7 open problem
// rather than asserting a theorem: we record observed smoothness <= lgw+1
// over the sweep for small networks.
func TestRandomInitAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n, err := New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	n.RandomizeInitialStates(rng)
	worst, err := network.MaxObservedSmoothness(n, 3, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if worst > int64(log2(8))+1 {
		t.Logf("observed smoothness %d with random initial states (informational)", worst)
	}
	if worst < 0 {
		t.Fatal("impossible smoothness")
	}
}
