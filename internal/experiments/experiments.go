// Package experiments implements the paper-reproduction experiment suite
// as a library: each function regenerates one EXPERIMENTS.md table or
// report as a string (or structured rows), so the results are testable and
// cmd/countbench is a thin front-end. Experiment IDs follow DESIGN.md §3.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bitonic"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/dtree"
	"repro/internal/linearize"
	"repro/internal/network"
	"repro/internal/periodic"
	"repro/internal/stats"
	"repro/internal/timesim"
)

func must(n *network.Network, err error) *network.Network {
	if err != nil {
		panic(err)
	}
	return n
}

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// DepthRow is one line of the E1 depth table.
type DepthRow struct {
	W, T                        int
	Depth, Formula              int
	BitonicDepth, PeriodicDepth int // -1 when t != w
}

// DepthTable regenerates E1/E2: measured vs formula depth across (w,t),
// with baselines at t = w.
func DepthTable(ws []int, ps []int) []DepthRow {
	var rows []DepthRow
	for _, w := range ws {
		for _, p := range ps {
			t := p * w
			r := DepthRow{
				W: w, T: t,
				Depth:         must(core.New(w, t)).Depth(),
				Formula:       core.DepthFormula(w),
				BitonicDepth:  -1,
				PeriodicDepth: -1,
			}
			if p == 1 {
				r.BitonicDepth = must(bitonic.New(w)).Depth()
				r.PeriodicDepth = must(periodic.New(w)).Depth()
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// FormatDepthTable renders DepthTable rows.
func FormatDepthTable(rows []DepthRow) string {
	tb := stats.NewTable("w", "t", "depth C(w,t)", "formula", "bitonic", "periodic")
	for _, r := range rows {
		bd, pd := "-", "-"
		if r.BitonicDepth >= 0 {
			bd = fmt.Sprint(r.BitonicDepth)
			pd = fmt.Sprint(r.PeriodicDepth)
		}
		tb.AddRowf(r.W, r.T, r.Depth, r.Formula, bd, pd)
	}
	return tb.String()
}

// Amortized measures one cell of the contention tables.
func Amortized(net *network.Network, n, rounds int, advName string) float64 {
	var adv contention.Adversary
	switch advName {
	case "random":
		adv = contention.Random{}
	case "roundrobin":
		adv = &contention.RoundRobin{}
	case "parking":
		adv = contention.Parking{}
	case "strongest":
		return contention.Strongest(net, contention.Config{N: n, Rounds: rounds, Seed: 7}).Amortized
	default:
		adv = contention.Greedy{}
	}
	return contention.Run(net, contention.Config{
		N: n, Rounds: rounds, Adversary: adv, Seed: 7,
	}).Amortized
}

// CompareRow is one line of the E11 family comparison.
type CompareRow struct {
	N                                                    int
	Central, DTree, Periodic, Bitonic, CWTEqual, CWTWide float64
}

// CompareTable regenerates E11/E12: families head to head at width w under
// the strongest adversary. wide is the output width of the wide variant
// (the paper's t = w·lgw choice by default).
func CompareTable(w, wide, rounds int, ns []int) []CompareRow {
	var rows []CompareRow
	for _, n := range ns {
		rows = append(rows, CompareRow{
			N:        n,
			Central:  Amortized(SingleBalancer(), n, rounds, "strongest"),
			DTree:    Amortized(must(dtree.NewToggleNetwork(w)), n, rounds, "strongest"),
			Periodic: Amortized(must(periodic.New(w)), n, rounds, "strongest"),
			Bitonic:  Amortized(must(bitonic.New(w)), n, rounds, "strongest"),
			CWTEqual: Amortized(must(core.New(w, w)), n, rounds, "strongest"),
			CWTWide:  Amortized(must(core.New(w, wide)), n, rounds, "strongest"),
		})
	}
	return rows
}

// FormatCompareTable renders CompareTable rows.
func FormatCompareTable(w, wide int, rows []CompareRow) string {
	tb := stats.NewTable("n", "central", fmt.Sprintf("dtree(%d)", w),
		fmt.Sprintf("periodic(%d)", w), fmt.Sprintf("bitonic(%d)", w),
		fmt.Sprintf("C(%d,%d)", w, w), fmt.Sprintf("C(%d,%d)", w, wide))
	for _, r := range rows {
		tb.AddRowf(r.N, r.Central, r.DTree, r.Periodic, r.Bitonic, r.CWTEqual, r.CWTWide)
	}
	return tb.String()
}

// SingleBalancer builds the 2-wire single-balancer network modeling a
// central counter in the stall model.
func SingleBalancer() *network.Network {
	b, in := network.NewBuilder("central", 2)
	out := b.Balancer(in, 2)
	n, err := b.Finalize(out)
	if err != nil {
		panic(err)
	}
	return n
}

// BlockShareRow is one line of the E10 block-attribution sweep.
type BlockShareRow struct {
	T                         int
	Amortized                 float64
	NaShare, NbShare, NcShare float64 // fractions in [0,1]
}

// BlockShares regenerates the E10 t-sweep with Na/Nb/Nc attribution.
func BlockShares(w, n, rounds int, ts []int) []BlockShareRow {
	var rows []BlockShareRow
	for _, t := range ts {
		net := must(core.New(w, t))
		res := contention.Run(net, contention.Config{
			N: n, Rounds: rounds, Adversary: &contention.RoundRobin{}, Seed: 7,
		})
		row := BlockShareRow{T: t, Amortized: res.Amortized}
		if res.Stalls > 0 {
			row.NaShare = float64(res.PerLabel[core.BlockNa]) / float64(res.Stalls)
			row.NbShare = float64(res.PerLabel[core.BlockNb]) / float64(res.Stalls)
			row.NcShare = float64(res.PerLabel[core.BlockNc]) / float64(res.Stalls)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatBlockShares renders BlockShares rows.
func FormatBlockShares(w, n int, rows []BlockShareRow) string {
	tb := stats.NewTable("t", "amortized", "Na share", "Nb share", "Nc share")
	for _, r := range rows {
		tb.AddRowf(r.T, r.Amortized,
			fmt.Sprintf("%.1f%%", 100*r.NaShare),
			fmt.Sprintf("%.1f%%", 100*r.NbShare),
			fmt.Sprintf("%.1f%%", 100*r.NcShare))
	}
	return fmt.Sprintf("C(%d,t) at n=%d: contention by block\n%s", w, n, tb.String())
}

// SlopeReport regenerates the E10 contention-vs-n slope comparison.
type SlopeReport struct {
	W                      int
	BitonicSlope, CWTSlope float64
	Ratio                  float64
}

// Slopes fits amortized contention against n for bitonic(w) and
// C(w, w·lgw) under the lockstep adversary.
func Slopes(w, rounds int, ns []int) SlopeReport {
	xs := make([]float64, len(ns))
	fit := func(build func() *network.Network) float64 {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			xs[i] = float64(n)
			ys[i] = Amortized(build(), n, rounds, "roundrobin")
		}
		s, _ := stats.LinearFit(xs, ys)
		return s
	}
	rep := SlopeReport{W: w}
	rep.BitonicSlope = fit(func() *network.Network { return must(bitonic.New(w)) })
	rep.CWTSlope = fit(func() *network.Network { return must(core.New(w, w*log2(w))) })
	if rep.CWTSlope > 0 {
		rep.Ratio = rep.BitonicSlope / rep.CWTSlope
	}
	return rep
}

// TimesimRow is one line of the E13 queueing table.
type TimesimRow struct {
	N     int
	Cells []timesim.Result
}

// TimesimTable regenerates the E13 queueing simulation sweep over the
// standard family set (central, bitonic, periodic, C(w,w), C(w,wide)).
func TimesimTable(w, wide int, ns []int, opsPerProc int64) []TimesimRow {
	nets := []*network.Network{
		SingleBalancer(),
		must(bitonic.New(w)),
		must(periodic.New(w)),
		must(core.New(w, w)),
		must(core.New(w, wide)),
	}
	var rows []TimesimRow
	for _, n := range ns {
		row := TimesimRow{N: n}
		for _, net := range nets {
			row.Cells = append(row.Cells, timesim.Run(net.Clone(), timesim.Config{
				Processes: n, Ops: int64(n) * opsPerProc,
				ServiceTime: 1, ThinkTime: 20, Exponential: true, Seed: 9,
			}))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTimesimTable renders TimesimTable rows.
func FormatTimesimTable(w, wide int, rows []TimesimRow) string {
	tb := stats.NewTable("n", "central", fmt.Sprintf("bitonic(%d)", w),
		fmt.Sprintf("periodic(%d)", w), fmt.Sprintf("C(%d,%d)", w, w),
		fmt.Sprintf("C(%d,%d)", w, wide))
	for _, r := range rows {
		cells := []any{r.N}
		for _, c := range r.Cells {
			cells = append(cells, fmt.Sprintf("%.2f/%.0f", c.Throughput, c.MeanLat))
		}
		tb.AddRowf(cells...)
	}
	return tb.String()
}

// AblationDepths regenerates E17: depth with M(t,δ) vs the bitonic merger.
func AblationDepths(cases [][2]int) string {
	tb := stats.NewTable("w", "t", "depth M(t,δ)", "depth bitonic merger")
	for _, c := range cases {
		ours := must(core.New(c[0], c[1]))
		abl := must(core.NewWithBitonicMerger(c[0], c[1], bitonic.BuildMerger))
		tb.AddRowf(c[0], c[1], ours.Depth(), abl.Depth())
	}
	return tb.String()
}

// LinearizeReport regenerates E18: inversion counts for the central
// counter vs a counting-network counter under identical concurrent load.
func LinearizeReport(w, procs, per int) string {
	var b strings.Builder
	var r1 linearize.Recorder
	central := counter.NewCentral()
	repC := linearize.Analyze(r1.Record(procs, per, central.Inc))
	fmt.Fprintf(&b, "central counter:  %d ops, %d inversions (linearizable)\n", repC.Ops, repC.Inversions)
	var r2 linearize.Recorder
	netCtr := counter.NewNetwork(must(core.New(w, w)))
	repN := linearize.Analyze(r2.Record(procs, per, netCtr.Inc))
	fmt.Fprintf(&b, "C(%d,%d) counter: %d ops, %d inversions, max lag %d (not linearizable in general)\n",
		w, w, repN.Ops, repN.Inversions, repN.MaxLag)
	return b.String()
}
