package experiments

import (
	"strings"
	"testing"
)

// E1: every row of the depth table matches the formula, and baselines line
// up where defined.
func TestDepthTableMatchesFormula(t *testing.T) {
	rows := DepthTable([]int{4, 8, 16, 32}, []int{1, 2, 4})
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Depth != r.Formula {
			t.Errorf("C(%d,%d): depth %d != formula %d", r.W, r.T, r.Depth, r.Formula)
		}
		if r.T == r.W {
			if r.BitonicDepth != r.Depth {
				t.Errorf("w=%d: bitonic depth %d != C depth %d", r.W, r.BitonicDepth, r.Depth)
			}
			k := log2(r.W)
			if r.PeriodicDepth != k*k {
				t.Errorf("w=%d: periodic depth %d != lg²w", r.W, r.PeriodicDepth)
			}
		}
	}
	s := FormatDepthTable(rows)
	if !strings.Contains(s, "formula") {
		t.Fatal("format broken")
	}
}

// E11 invariants: wide C(w,t) never loses to bitonic at the largest n, and
// the central counter is worst at scale.
func TestCompareTableOrdering(t *testing.T) {
	rows := CompareTable(16, 64, 20, []int{32, 256})
	last := rows[len(rows)-1]
	if last.CWTWide >= last.Bitonic {
		t.Errorf("C(16,64)=%.2f not below bitonic=%.2f at n=%d", last.CWTWide, last.Bitonic, last.N)
	}
	if last.Central < last.Bitonic {
		t.Errorf("central %.2f below bitonic %.2f at scale", last.Central, last.Bitonic)
	}
	s := FormatCompareTable(16, 64, rows)
	if !strings.Contains(s, "C(16,64)") {
		t.Fatal("format broken")
	}
}

// E10: block shares sum to ~1 and Nc's share decreases with t.
func TestBlockSharesShape(t *testing.T) {
	rows := BlockShares(16, 128, 20, []int{16, 64, 256})
	for _, r := range rows {
		sum := r.NaShare + r.NbShare + r.NcShare
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("t=%d: shares sum to %.4f", r.T, sum)
		}
	}
	if !(rows[0].NcShare > rows[1].NcShare && rows[1].NcShare > rows[2].NcShare) {
		t.Errorf("Nc share not decreasing: %v %v %v",
			rows[0].NcShare, rows[1].NcShare, rows[2].NcShare)
	}
	if rows[0].Amortized <= rows[2].Amortized {
		t.Errorf("amortized contention did not fall with t: %.2f -> %.2f",
			rows[0].Amortized, rows[2].Amortized)
	}
	_ = FormatBlockShares(16, 128, rows)
}

// E10: the bitonic slope exceeds the wide-output slope.
func TestSlopesOrdering(t *testing.T) {
	rep := Slopes(16, 20, []int{64, 128, 256})
	if rep.BitonicSlope <= rep.CWTSlope {
		t.Errorf("bitonic slope %.4f not above C slope %.4f", rep.BitonicSlope, rep.CWTSlope)
	}
	if rep.Ratio < 1.3 {
		t.Errorf("slope ratio %.2f below 1.3", rep.Ratio)
	}
}

// E13: queueing table reproduces the crossover — central flat at 1.0,
// networks scale, wide variant fastest at the top row.
func TestTimesimTableShape(t *testing.T) {
	rows := TimesimTable(16, 64, []int{16, 256}, 60)
	low, high := rows[0], rows[1]
	// Cells: 0 central, 1 bitonic, 2 periodic, 3 C(w,w), 4 C(w,wide).
	if high.Cells[0].Throughput > 1.05 {
		t.Errorf("central exceeded its saturation: %.3f", high.Cells[0].Throughput)
	}
	if high.Cells[1].Throughput <= high.Cells[0].Throughput {
		t.Errorf("bitonic %.3f did not beat central %.3f at n=256",
			high.Cells[1].Throughput, high.Cells[0].Throughput)
	}
	if high.Cells[4].Throughput <= high.Cells[1].Throughput {
		t.Errorf("C(16,64) %.3f did not beat bitonic %.3f at n=256",
			high.Cells[4].Throughput, high.Cells[1].Throughput)
	}
	// At low load the central counter is competitive (crossover exists).
	if low.Cells[0].Throughput < low.Cells[1].Throughput {
		t.Logf("central already behind at n=16 (%.2f vs %.2f) — acceptable",
			low.Cells[0].Throughput, low.Cells[1].Throughput)
	}
	s := FormatTimesimTable(16, 64, rows)
	if !strings.Contains(s, "central") {
		t.Fatal("format broken")
	}
}

// E17: ablation depths — bitonic-merger variant strictly deeper whenever
// t > w, equal never.
func TestAblationDepthsGrow(t *testing.T) {
	s := AblationDepths([][2]int{{8, 8}, {8, 32}})
	if !strings.Contains(s, "bitonic merger") {
		t.Fatal("format broken")
	}
	rows := DepthTable([]int{8}, []int{1, 4})
	_ = rows
	// Structural spot check beyond formatting.
	if !strings.Contains(s, "12") { // depth of Cbit(8,32)
		t.Errorf("expected bitonic-merger depth 12 in:\n%s", s)
	}
}

// E18: the linearizability report runs and the central side shows zero
// inversions.
func TestLinearizeReport(t *testing.T) {
	s := LinearizeReport(8, 4, 300)
	if !strings.Contains(s, "0 inversions (linearizable)") {
		t.Fatalf("central counter inverted:\n%s", s)
	}
}

// SingleBalancer is the central-counter model.
func TestSingleBalancer(t *testing.T) {
	n := SingleBalancer()
	if n.Size() != 1 || n.Depth() != 1 {
		t.Fatal("single balancer geometry")
	}
}
