package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpinLoop mechanizes the PR 3 hand audit: no unyielded spin loops. A
// loop that polls shared state (an atomic Load) waiting for another
// goroutine to change it, without ever reaching a scheduling point
// (runtime.Gosched, time.Sleep, a channel operation, a mutex/Cond), can
// burn a whole processor slice while the goroutine it waits for is not
// even running — the exact failure the elimination layer's yield-every
// 1024-iterations guard exists to prevent.
//
// The check is deliberately conservative, flagging only loops it can
// prove are pure spins:
//
//   - not a range loop (those walk finite collections);
//   - every call in the loop is a known-nonblocking atomic operation or
//     a type conversion — any other call might block, so the loop is
//     given the benefit of the doubt;
//   - no channel operation, select, or go statement appears;
//   - the loop actually waits on an atomic: either its condition loads
//     one, or the body has an exit branch (if … break/return) whose
//     condition depends on a loaded value without making progress
//     itself (a CompareAndSwap/Swap/Add in the exit condition marks a
//     lock-free retry loop, which is progress, not spinning).
var SpinLoop = &Analyzer{
	Name: "spinloop",
	Doc:  "spin loops polling an atomic without runtime.Gosched/time.Sleep or a blocking operation (the PR 3 audit, mechanized)",
	File: runSpinLoop,
}

func runSpinLoop(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if loop, ok := n.(*ast.ForStmt); ok {
			checkSpin(p, loop)
		}
		return true
	})
}

func checkSpin(p *Pass, loop *ast.ForStmt) {
	s := spinScan{pass: p, loadVars: make(map[types.Object]bool)}
	if loop.Cond != nil {
		s.scan(loop.Cond, false)
	}
	s.scan(loop.Body, true)
	if s.blocks || s.unknownCall || s.sawMutate {
		// sawMutate: a CompareAndSwap/Swap/Add anywhere in the loop
		// marks a lock-free update loop — retries imply another thread
		// made progress, which is not spinning.
		return
	}
	polls := loop.Cond != nil && s.exprLoads(loop.Cond)
	if !polls {
		polls = s.waitExit
	}
	if !polls || !s.sawLoad {
		return
	}
	p.Report(loop.For, "spin loop polls an atomic without a scheduling point; yield (runtime.Gosched every ~1k iterations, like internal/shard/elim.go), sleep, or block on a channel")
}

// spinScan classifies everything inside one loop.
type spinScan struct {
	pass        *Pass
	blocks      bool // channel op, select, go, or a known blocking call
	unknownCall bool // a call that might block: benefit of the doubt
	sawLoad     bool // an atomic Load happened anywhere in the loop
	sawMutate   bool // a CAS/Swap/Add happened: lock-free progress
	waitExit    bool // an exit branch conditioned on a loaded value
	loadVars    map[types.Object]bool
}

// scan walks one subtree. Nested function literals are skipped (their
// bodies run elsewhere); statements are classified in source order so
// a variable assigned from a Load is known by the time a later if
// tests it.
func (s *spinScan) scan(n ast.Node, stmtCtx bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt:
			s.blocks = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				s.blocks = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel blocks; over anything else it is a
			// bounded walk whose calls still get classified below.
			if s.pass.Info != nil {
				if t := s.pass.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						s.blocks = true
						return false
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if s.exprLoads(rhs) && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && s.pass.Info != nil {
						if obj := s.pass.Info.ObjectOf(id); obj != nil {
							s.loadVars[obj] = true
						}
					}
				}
			}
		case *ast.IfStmt:
			if s.isWaitExit(n) {
				s.waitExit = true
			}
		case *ast.CallExpr:
			s.classifyCall(n)
		}
		return true
	})
}

// classifyCall buckets one call: known-nonblocking atomic/conversion,
// known scheduling point, or unknown (assume it can block).
func (s *spinScan) classifyCall(call *ast.CallExpr) {
	if s.pass.Info != nil {
		if tv, ok := s.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "min", "max", "append", "copy", "make", "new":
			return
		}
		s.unknownCall = true
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		s.unknownCall = true
		return
	}
	name := sel.Sel.Name
	if isSchedulingCall(s.pass, sel) {
		s.blocks = true
		return
	}
	if atomicMethod[name] || isAtomicPkgFunc(s.pass, sel) {
		if isLoadName(name) {
			s.sawLoad = true
		}
		if isMutateName(name) {
			s.sawMutate = true
		}
		return
	}
	s.unknownCall = true
}

// isWaitExit reports whether the if statement is an exit branch
// conditioned on polled state: its block reaches break or return, its
// condition depends on an atomic Load (directly or via a variable
// assigned from one in this loop), and the condition itself makes no
// progress (no CAS/Swap/Add).
func (s *spinScan) isWaitExit(ifStmt *ast.IfStmt) bool {
	if !s.exprLoads(ifStmt.Cond) && !s.usesLoadVar(ifStmt.Cond) {
		return false
	}
	if s.exprMutates(ifStmt.Cond) {
		return false
	}
	return blockExits(ifStmt.Body)
}

// blockExits reports whether the statement list contains a break or
// return binding to the enclosing loop (nested loops and function
// literals shield their own branches).
func blockExits(block *ast.BlockStmt) bool {
	exits := false
	ast.Inspect(block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			// Nested loops and function literals capture their own
			// break/return; being conservative here only costs recall.
			return false
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exits = true
			}
		}
		return true
	})
	return exits
}

func (s *spinScan) exprLoads(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if isLoadName(sel.Sel.Name) && (atomicMethod[sel.Sel.Name] || isAtomicPkgFunc(s.pass, sel)) {
					found = true
					s.sawLoad = true
				}
			}
		}
		return true
	})
	return found
}

func (s *spinScan) usesLoadVar(e ast.Expr) bool {
	if s.pass.Info == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.pass.Info.ObjectOf(id); obj != nil && s.loadVars[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func (s *spinScan) exprMutates(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if isMutateName(sel.Sel.Name) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// atomicMethod is the method surface of the typed atomics
// (atomic.Int64, atomic.Bool, atomic.Pointer, …).
var atomicMethod = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

func isLoadName(name string) bool {
	return name == "Load" || (len(name) > 4 && name[:4] == "Load")
}

func isMutateName(name string) bool {
	switch {
	case name == "Add", name == "Swap", name == "CompareAndSwap", name == "And", name == "Or":
		return true
	}
	for _, prefix := range []string{"Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// isAtomicPkgFunc reports whether sel is a sync/atomic package-level
// function (atomic.LoadInt64, atomic.AddUint32, …).
func isAtomicPkgFunc(p *Pass, sel *ast.SelectorExpr) bool {
	return selectorPkgPath(p, sel) == "sync/atomic"
}

// isSchedulingCall recognizes calls that yield or block: Gosched,
// Sleep, mutex/RWMutex Lock family, Cond Wait, WaitGroup Wait.
func isSchedulingCall(p *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Gosched":
		return selectorPkgPath(p, sel) == "runtime"
	case "Sleep":
		return selectorPkgPath(p, sel) == "time"
	case "Lock", "RLock", "Unlock", "RUnlock", "Wait", "TryLock":
		return true
	}
	return false
}

// selectorPkgPath returns the import path when sel is pkg.Name, else "".
func selectorPkgPath(p *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
