// Package fixture is the repaired twin of testdata/tagpair/bad: the
// constrained fast path now has a fallback sibling under the inverse
// constraint, so every build resolves fastProbe.
package fixture

func probeReady() bool {
	return fastProbe()
}
