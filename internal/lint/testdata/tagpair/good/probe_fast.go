//go:build !fixture_slow

package fixture

func fastProbe() bool { return true }
