//go:build !fixture_slow

package fixture

func fastProbe() bool { return true } // want "fastProbe is declared only under build constraint"
