// Package fixture demonstrates a tagpair violation: the portable API
// calls fastProbe, which exists only under one build constraint — on
// any build where the constraint is false the package stops compiling.
package fixture

func probeReady() bool {
	return fastProbe()
}
