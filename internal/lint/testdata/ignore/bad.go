// Package fixture exercises the //lint:ignore directive's own
// diagnostics: a waiver without a reason and a waiver that waives
// nothing are both findings (under the analyzer name "countlint").
// TestIgnoreDirectives asserts on these directly rather than via
// `// want` annotations, since the directives are comments themselves.
package fixture

import "sync/atomic"

var pending atomic.Bool

// The reason is mandatory: a bare ignore is the undocumented exception
// the tool exists to prevent. Because the directive is malformed it
// suppresses nothing, so the spin loop below is also reported.
//
//lint:ignore spinloop
func spinBareIgnore() {
	for !pending.Load() {
	}
}

//lint:ignore atomicfield nothing on the next line ever fires this
func plainFunc() bool {
	return pending.Load()
}
