package fixture

import "sync/atomic"

// gaugeGood uses the typed atomic: immune by construction, nothing for
// the analyzer to track.
type gaugeGood struct {
	hits atomic.Int64
}

func (g *gaugeGood) inc() {
	g.hits.Add(1)
}

func (g *gaugeGood) read() int64 {
	return g.hits.Load()
}

// seqGood sticks to the function-style API everywhere: every access is
// blessed, so consistency holds and nothing fires.
type seqGood struct {
	n uint32
}

func (s *seqGood) next() uint32 {
	return atomic.AddUint32(&s.n, 1)
}

func (s *seqGood) load() uint32 {
	return atomic.LoadUint32(&s.n)
}
