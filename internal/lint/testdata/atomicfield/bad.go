// Package fixture holds deliberate atomicfield violations: fields
// touched by sync/atomic in one place and accessed plainly in another.
package fixture

import "sync/atomic"

type gaugeBad struct {
	hits int64
	name string
}

func (g *gaugeBad) inc() {
	atomic.AddInt64(&g.hits, 1)
}

func (g *gaugeBad) read() int64 {
	return g.hits // want "plain access to field hits"
}

func newGaugeBad() *gaugeBad {
	return &gaugeBad{hits: 1, name: "fixture"} // want "composite-literal write to field hits"
}
