package fixture

// Registry mimics the ctlplane registry surface: the analyzer matches
// any named type called Registry so fixtures need not import ctlplane.
type Registry struct{}

func (r *Registry) Counter(name, help string) {}
func (r *Registry) Gauge(name, help string)   {}

const (
	MetricGoodFrames = "countnet_fixture_frames_total"
	HelpGoodFrames   = "Frames processed by the fixture."

	MetricGoodDepth = "countnet_fixture_depth"
	HelpGoodDepth   = "Current depth of the fixture queue."
)

func registerGood(r *Registry) {
	r.Counter(MetricGoodFrames, HelpGoodFrames)
	r.Gauge(MetricGoodDepth, HelpGoodDepth)
}
