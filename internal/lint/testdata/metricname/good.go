package fixture

// Registry mimics the ctlplane registry surface: the analyzer matches
// any named type called Registry so fixtures need not import ctlplane.
type Registry struct{}

func (r *Registry) Counter(name, help string) {}
func (r *Registry) Gauge(name, help string)   {}

// Histogram mimics ctlplane's registration shape (the real third
// argument is a *ctlplane.Histogram; the analyzer only reads the
// name and help strings).
func (r *Registry) Histogram(name, help string, h any) {}

const (
	MetricGoodFrames = "countnet_fixture_frames_total"
	HelpGoodFrames   = "Frames processed by the fixture."

	MetricGoodDepth = "countnet_fixture_depth"
	HelpGoodDepth   = "Current depth of the fixture queue."

	MetricGoodLatency = "countnet_fixture_flight_seconds"
	HelpGoodLatency   = "Latency of fixture flights."

	MetricGoodAttempts = "countnet_fixture_flight_attempts"
	HelpGoodAttempts   = "Tries per fixture flight."
)

func registerGood(r *Registry) {
	r.Counter(MetricGoodFrames, HelpGoodFrames)
	r.Gauge(MetricGoodDepth, HelpGoodDepth)
	r.Histogram(MetricGoodLatency, HelpGoodLatency, nil)
	r.Histogram(MetricGoodAttempts, HelpGoodAttempts, nil)
}
