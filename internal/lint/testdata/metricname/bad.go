// Package fixture holds deliberate metricname violations; each
// constant or registration breaks exactly one rule so the `// want`
// annotations stay one-per-line.
package fixture

const (
	MetricUpperCase = "countnet_Shard_Frames_total" // want "not a valid Prometheus name"
	HelpUpperCase   = "Frames relayed by the fixture shard."

	MetricNoPrefix = "shard_frames_total" // want "lacks the countnet_ namespace prefix"
	HelpNoPrefix   = "Frames relayed by the fixture shard."

	MetricUnpaired = "countnet_fixture_unpaired_total" // want "has no paired HelpUnpaired constant"

	MetricNoPeriod = "countnet_fixture_ops_total"
	HelpNoPeriod   = "Operations so far" // want "does not end in a period"
)

func registerBad(r *Registry) {
	r.Counter("countnet_fixture_ops", "Counter missing its suffix.")                        // want "must end in _total"
	r.Gauge("countnet_fixture_depth_total", "Gauge wearing the suffix.")                    // want "must not end in _total"
	r.Histogram("countnet_fixture_lag_total", "Histogram wearing the counter suffix.", nil) // want "must not end in _total"
	r.Histogram("countnet_fixture_lag", "Latency of fixture flights.", nil)                 // want "must carry the _seconds unit suffix"
}
