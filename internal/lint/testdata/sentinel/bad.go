// Package fixture holds deliberate sentinel violations: a second
// source of truth for "closed" and == comparisons that break the
// moment the seam wraps an error.
package fixture

import "errors"

var ErrFixtureClosed = errors.New("fixture: closed") // want "new Closed sentinel ErrFixtureClosed declared outside internal/xport"

func isClosedBad(err error) bool {
	return err == ErrFixtureClosed // want "comparison with sentinel ErrFixtureClosed uses =="
}

func notClosedBad(err error) bool {
	return err != ErrFixtureClosed // want "comparison with sentinel ErrFixtureClosed uses !="
}

func classifyBad(err error) string {
	switch err {
	case ErrFixtureClosed: // want "switch case compares sentinel ErrFixtureClosed with =="
		return "closed"
	}
	return "other"
}
