package fixture

import "errors"

// Not Closed-flavored: new sentinels for other conditions are fine.
var ErrFixtureTimeout = errors.New("fixture: timeout")

// Aliasing an existing sentinel is the sanctioned way to re-export a
// Closed error under a package-local name.
var ErrAliasClosed = ErrFixtureClosed

func isClosedGood(err error) bool {
	return errors.Is(err, ErrAliasClosed)
}

func isTimeoutGood(err error) bool {
	return errors.Is(err, ErrFixtureTimeout)
}
