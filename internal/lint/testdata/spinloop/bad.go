// Package fixture holds deliberate spinloop violations: loops that
// poll an atomic with no scheduling point. The `// want` annotations
// drive TestFixtures in internal/lint.
package fixture

import "sync/atomic"

var ready atomic.Bool

// condSpin polls in the loop condition itself: classic busy-wait.
func condSpin() {
	for !ready.Load() { // want "spin loop polls an atomic without a scheduling point"
	}
}

// exitSpin polls via an exit branch: the condition is empty but the
// body tests a loaded value and breaks, so the loop only ever leaves
// when another goroutine stores — still a pure spin.
func exitSpin() {
	for { // want "spin loop polls an atomic without a scheduling point"
		if ready.Load() {
			break
		}
	}
}

// varSpin launders the load through a local variable before testing it;
// the analyzer tracks the assignment.
func varSpin() {
	for { // want "spin loop polls an atomic without a scheduling point"
		v := ready.Load()
		if v {
			return
		}
	}
}
