package fixture

import (
	"runtime"
	"sync/atomic"
)

var (
	done  atomic.Bool
	state atomic.Int64
)

// yieldingWait polls but yields every 1024 iterations — the elim.go
// idiom the analyzer's message recommends.
func yieldingWait(budget int) bool {
	for i := 0; i < budget; i++ {
		if done.Load() {
			return true
		}
		if i&1023 == 1023 {
			runtime.Gosched()
		}
	}
	return false
}

// casRetry is a lock-free update loop: a failed CompareAndSwap means
// another goroutine made progress, so retrying is not spinning.
func casRetry(delta int64) int64 {
	for {
		cur := state.Load()
		if state.CompareAndSwap(cur, cur+delta) {
			return cur + delta
		}
	}
}

// channelWait blocks on a channel: the scheduler parks it.
func channelWait(ch <-chan struct{}) {
	for !done.Load() {
		<-ch
	}
}

// waivedSpin is a real violation carrying the sanctioned in-place
// waiver; the directive must suppress the finding (and count as used).
func waivedSpin() {
	//lint:ignore spinloop fixture exercises the waiver path end to end
	for !done.Load() {
	}
}
