package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName mechanizes the control-plane naming contract that
// cmd/ctlplanedoc and `make docs-check` only test end-to-end: every
// Metric* constant is a valid Prometheus metric name under the
// countnet_ prefix with a paired Help* constant, Registry.Counter
// registrations end in _total and Registry.Gauge registrations do not
// (the convention wire/metrics.go documents), and the wire catalogue
// stays in two-way sync with cmd/ctlplanedoc's hand-maintained
// healthy-range map — a metric without an operator-facing healthy
// range is unfinished, and a healthy range for a metric that no longer
// exists is a lie in the manual.
var MetricName = &Analyzer{
	Name:    "metricname",
	Doc:     "Prometheus naming conventions for Metric* constants and Registry registrations, synced with ctlplanedoc's healthy-range map",
	Package: runMetricNamePkg,
	Repo:    runMetricNameRepo,
}

var promNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// latencyHelpRE marks help text describing a duration distribution —
// such a histogram must carry the _seconds unit suffix so dashboards
// and alert rules can assume the unit.
var latencyHelpRE = regexp.MustCompile(`(?i)\b(latency|latencies|duration|rtt|round-trip|wait|time|seconds)\b`)

const (
	wirePkgPath    = "repro/internal/wire"
	ctlplanedocDir = "cmd/ctlplanedoc"
)

func runMetricNamePkg(p *Pass) {
	consts := metricConsts(p)
	helps := helpConsts(p)
	for _, mc := range consts {
		suffix := strings.TrimPrefix(mc.name, "Metric")
		if !promNameRE.MatchString(mc.value) {
			p.Report(mc.pos, "metric name %q is not a valid Prometheus name (want %s)", mc.value, promNameRE)
		} else if !strings.HasPrefix(mc.value, "countnet_") {
			p.Report(mc.pos, "metric name %q lacks the countnet_ namespace prefix", mc.value)
		}
		if strings.Contains(mc.value, "__") || strings.HasSuffix(mc.value, "_") {
			p.Report(mc.pos, "metric name %q has empty name segments", mc.value)
		}
		help, ok := helps[suffix]
		switch {
		case !ok:
			p.Report(mc.pos, "metric constant %s has no paired Help%s constant with its help text", mc.name, suffix)
		case strings.TrimSpace(help.value) == "":
			p.Report(help.pos, "Help%s is empty; every metric carries operator-facing help text", suffix)
		case !strings.HasSuffix(strings.TrimSpace(help.value), "."):
			p.Report(help.pos, "Help%s does not end in a period; help strings are sentences", suffix)
		}
	}

	// Registration sites: Counter ⇒ *_total, Gauge ⇒ not *_total,
	// Histogram ⇒ not *_total (exposition appends _bucket/_sum/_count)
	// and, when the help text describes a duration, the _seconds unit
	// suffix.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
				return true
			}
			if !isRegistryRecv(p, sel.X) {
				return true
			}
			name, ok := stringConst(p, call.Args[0])
			if !ok || !strings.HasPrefix(name, "countnet_") {
				return true
			}
			total := strings.HasSuffix(name, "_total")
			switch kind {
			case "Counter":
				if !total {
					p.Report(call.Args[0].Pos(), "counter %q must end in _total (Prometheus counter convention)", name)
				}
			case "Gauge":
				if total {
					p.Report(call.Args[0].Pos(), "gauge %q must not end in _total; that suffix is reserved for counters", name)
				}
			case "Histogram":
				if total {
					p.Report(call.Args[0].Pos(), "histogram family %q must not end in _total; exposition appends _bucket/_sum/_count", name)
				}
				if len(call.Args) >= 2 {
					if help, ok := stringConst(p, call.Args[1]); ok &&
						latencyHelpRE.MatchString(help) && !strings.HasSuffix(name, "_seconds") {
						p.Report(call.Args[0].Pos(), "latency histogram %q must carry the _seconds unit suffix", name)
					}
				}
			}
			return true
		})
	}
}

// runMetricNameRepo diffs the wire metric catalogue against the
// healthy-range map in cmd/ctlplanedoc, both ways.
func runMetricNameRepo(rp *RepoPass) {
	var wirePass, docPass *Pass
	for _, p := range rp.Packages {
		switch {
		case p.Path == wirePkgPath:
			wirePass = p
		case strings.HasSuffix(strings.TrimSuffix(p.Dir, "/"), ctlplanedocDir):
			docPass = p
		}
	}
	if wirePass == nil || docPass == nil {
		return // partial runs (single-package invocations) skip the cross-check
	}
	registered := make(map[string]token.Pos)
	for _, mc := range metricConsts(wirePass) {
		registered[mc.value] = mc.pos
	}
	healthy, healthyPos, mapPos := healthyKeys(docPass)
	if mapPos == token.NoPos {
		rp.ReportPos(docPass, docPass.Files[0].Package, "cmd/ctlplanedoc has no `healthy` map literal; the healthy-range catalogue is gone")
		return
	}
	for name, pos := range registered {
		if _, ok := healthy[name]; !ok {
			rp.ReportPos(wirePass, pos, "metric %q has no healthy-range entry in cmd/ctlplanedoc's healthy map; operators have no reference for it", name)
		}
	}
	for name := range healthy {
		if _, ok := registered[name]; !ok {
			rp.ReportPos(docPass, healthyPos[name], "ctlplanedoc documents %q but internal/wire/metrics.go declares no such metric; stale healthy-range entry", name)
		}
	}
}

type metricConst struct {
	name  string
	value string
	pos   token.Pos
}

// metricConsts collects package-level `const MetricX = "…"` string
// constants — the catalogue convention wire/metrics.go establishes.
func metricConsts(p *Pass) []metricConst {
	return prefixedConsts(p, "Metric")
}

func helpConsts(p *Pass) map[string]metricConst {
	out := make(map[string]metricConst)
	for _, hc := range prefixedConsts(p, "Help") {
		out[strings.TrimPrefix(hc.name, "Help")] = hc
	}
	return out
}

func prefixedConsts(p *Pass, prefix string) []metricConst {
	var out []metricConst
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, prefix) || len(name.Name) == len(prefix) {
						continue
					}
					if i >= len(vs.Values) {
						continue
					}
					val, ok := stringConst(p, vs.Values[i])
					if !ok {
						continue
					}
					out = append(out, metricConst{name: name.Name, value: val, pos: name.Pos()})
				}
			}
		}
	}
	return out
}

// healthyKeys extracts the string keys of ctlplanedoc's `healthy` map
// literal, with positions for stale-entry diagnostics.
func healthyKeys(p *Pass) (map[string]bool, map[string]token.Pos, token.Pos) {
	keys := make(map[string]bool)
	pos := make(map[string]token.Pos)
	var mapPos token.Pos
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "healthy" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				mapPos = cl.Pos()
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if k, ok := stringConst(p, kv.Key); ok {
						keys[k] = true
						pos[k] = kv.Key.Pos()
					}
				}
			}
			return true
		})
	}
	return keys, pos, mapPos
}

// stringConst resolves an expression to its compile-time string value.
func stringConst(p *Pass, e ast.Expr) (string, bool) {
	if p.Info == nil {
		return "", false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isRegistryRecv reports whether the receiver expression is a
// ctlplane-style Registry (named type Registry, possibly through a
// pointer) — loose enough for fixtures, tight enough not to fire on
// unrelated Counter methods.
func isRegistryRecv(p *Pass, x ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	t := p.Info.TypeOf(x)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
