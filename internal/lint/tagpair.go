package lint

import (
	"go/ast"
	"go/token"
)

// TagPair guards the paired build-tag fallback convention: a
// declaration that lives behind a build constraint (the recvmmsg/
// sendmmsg fast path, the MSG_PEEK health probe, the per-arch syscall
// numbers) and is referenced from outside its own variant family must
// be declared by at least two differently-constrained files — the fast
// path and its portable fallback. Delete mmsg_other.go and every
// non-linux build of udpnet breaks; this analyzer says so at lint time
// instead of on the first darwin checkout.
//
// The check is name-based and deliberately syntactic: for each
// constrained file, its package-scope declarations that are referenced
// from unconstrained files (or from files under a different
// constraint) form the variant surface, and each surface name needs a
// sibling declaration under a different constraint. Test files are
// exempt — they are not cross-platform API.
var TagPair = &Analyzer{
	Name:    "tagpair",
	Doc:     "build-tagged declarations referenced across the tag boundary must have a fallback variant under a different constraint",
	Package: runTagPair,
}

func runTagPair(p *Pass) {
	// Work from All: the analyzer must see files the default build
	// excluded, since those ARE the fallbacks.
	type declSite struct {
		file *SrcFile
		pos  int // index into p.All, for stable iteration
	}
	decls := make(map[string][]declSite) // name → declaring constrained files
	var unconstrained, constrained []*SrcFile
	for i, sf := range p.All {
		if sf.Syntax == nil || sf.Test {
			continue
		}
		if sf.Constraint == "" {
			unconstrained = append(unconstrained, sf)
			continue
		}
		constrained = append(constrained, sf)
		for _, name := range topLevelNames(sf.Syntax) {
			decls[name] = append(decls[name], declSite{file: sf, pos: i})
		}
	}
	if len(constrained) == 0 {
		return
	}

	// referencedFrom[name] holds the constraints ("" for unconstrained)
	// of files that mention the name without declaring it.
	referencedFrom := make(map[string]map[string]bool)
	note := func(sf *SrcFile) {
		own := make(map[string]bool)
		for _, name := range topLevelNames(sf.Syntax) {
			own[name] = true
		}
		ast.Inspect(sf.Syntax, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if _, tracked := decls[id.Name]; tracked && !own[id.Name] {
				m := referencedFrom[id.Name]
				if m == nil {
					m = make(map[string]bool)
					referencedFrom[id.Name] = m
				}
				m[sf.Constraint] = true
			}
			return true
		})
	}
	for _, sf := range unconstrained {
		note(sf)
	}
	for _, sf := range constrained {
		note(sf)
	}

	for name, sites := range decls {
		refs := referencedFrom[name]
		crossBoundary := false
		for refConstr := range refs {
			declaredThere := false
			for _, site := range sites {
				if site.file.Constraint == refConstr {
					declaredThere = true
				}
			}
			if !declaredThere {
				crossBoundary = true
			}
		}
		if !crossBoundary {
			continue
		}
		distinct := make(map[string]bool)
		for _, site := range sites {
			distinct[site.file.Constraint] = true
		}
		if len(distinct) >= 2 {
			continue
		}
		site := sites[0]
		pos := declPos(site.file.Syntax, name)
		p.Report(pos, "%s is declared only under build constraint %q (%s) but referenced across the tag boundary; add a fallback variant under the inverse constraint",
			name, site.file.Constraint, site.file.Name)
	}
}

// topLevelNames returns the package-scope names a file declares:
// functions (not methods), and const/var/type names. The blank
// identifier and init are skipped.
func topLevelNames(f *ast.File) []string {
	var out []string
	add := func(name string) {
		if name != "_" && name != "init" {
			out = append(out, name)
		}
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil {
				add(d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, n := range s.Names {
						add(n.Name)
					}
				case *ast.TypeSpec:
					add(s.Name.Name)
				}
			}
		}
	}
	return out
}

// declPos finds the declaration position of name in f.
func declPos(f *ast.File, name string) token.Pos {
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil && d.Name.Name == name {
				return d.Name.Pos()
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.Name == name {
							return n.Pos()
						}
					}
				case *ast.TypeSpec:
					if s.Name.Name == name {
						return s.Name.Pos()
					}
				}
			}
		}
	}
	return f.Package
}
