package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces atomics-only access to fields that are accessed
// atomically anywhere: once any code does atomic.AddInt32(&s.f, …),
// every plain read, write, composite-literal initialization, or
// address-taking of s.f outside a sync/atomic call is a data race in
// waiting — the exact bug class TestMetricsMonotoneUnderChaos chases
// at runtime, caught here at parse time. Fields declared with the
// typed atomics (atomic.Int64 and friends) are immune by construction
// and need no checking; the analyzer exists for the function-style
// sync/atomic API, where the compiler cannot tell a guarded access
// from a plain one. The idiomatic fix is usually to migrate the field
// to the typed form.
var AtomicField = &Analyzer{
	Name:    "atomicfield",
	Doc:     "struct fields accessed via sync/atomic anywhere must be accessed atomically everywhere (prefer the typed atomic.IntNN)",
	Package: runAtomicField,
}

func runAtomicField(p *Pass) {
	if p.Info == nil {
		return
	}
	// Pass 1: every &x.f handed to a sync/atomic function marks field f
	// as atomic, and blesses that particular selector node.
	atomicFields := make(map[*types.Var]ast.Node) // field → first atomic use
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicPkgFunc(p, sel) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				fieldSel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(p, fieldSel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = call
					}
					blessed[fieldSel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access to a marked field is a violation.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if blessed[n] {
					return true
				}
				fv := fieldOf(p, n)
				if fv == nil {
					return true
				}
				if first, ok := atomicFields[fv]; ok {
					p.Report(n.Sel.Pos(),
						"plain access to field %s, which is accessed via sync/atomic at %s; use sync/atomic here too, or migrate the field to a typed atomic",
						fv.Name(), p.Position(first.Pos()))
				}
			case *ast.CompositeLit:
				// Keyed struct literals write fields without a selector:
				// failAfter{allow: 2} is a plain store to allow.
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fv, ok := p.Info.ObjectOf(key).(*types.Var)
					if !ok || !fv.IsField() {
						continue
					}
					if first, ok := atomicFields[fv]; ok {
						p.Report(key.Pos(),
							"composite-literal write to field %s, which is accessed via sync/atomic at %s; construct first and Store, or migrate the field to a typed atomic",
							fv.Name(), p.Position(first.Pos()))
					}
				}
			}
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(p *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}
