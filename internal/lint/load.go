package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// loader resolves and type-checks module packages without x/tools: it
// walks directories itself, evaluates build constraints for the
// default build (current GOOS/GOARCH, no custom tags — the same
// selection `go build ./...` makes), parses with go/parser, and
// type-checks with go/types. Standard-library imports are delegated to
// the stdlib source importer; module-internal imports are loaded
// recursively from disk, so fixture packages under testdata can import
// real repro packages.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	cache  map[string]*types.Package // import path → no-test package
	active map[string]bool           // cycle detection
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   abs,
		module: mod,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*types.Package),
		active: make(map[string]bool),
	}, nil
}

// moduleName reads the module path from go.mod at root.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Import implements types.Importer: module paths load from disk,
// everything else falls through to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		if l.active[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		l.active[path] = true
		defer delete(l.active, path)
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/"))
		files := scanDir(l.fset, l.root, dir)
		var syntax []*ast.File
		for _, sf := range files {
			if sf.InBuild && !sf.Test {
				syntax = append(syntax, sf.Syntax)
			}
		}
		if len(syntax) == 0 {
			return nil, fmt.Errorf("no buildable Go files for %s in %s", path, dir)
		}
		pkg, err := l.check(path, syntax, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// check type-checks one set of files as a package. Type errors are
// hard failures: every analyzer assumes resolved types.
func (l *loader) check(path string, syntax []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, syntax, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	return pkg, nil
}

// importPath maps a directory to its import path under the module.
func (l *loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside the module root %s", dir, l.root)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// units loads the analysis units for one directory: the package with
// its in-package test files, plus a second unit for external (_test
// package) files when present.
func (l *loader) units(dir string) ([]*Pass, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	all := scanDir(l.fset, l.root, dir)
	if len(all) == 0 {
		return nil, nil
	}
	var pkgFiles, xtestFiles []*ast.File
	var pkgName string
	for _, sf := range all {
		if !sf.InBuild || sf.Syntax == nil {
			continue
		}
		name := sf.Syntax.Name.Name
		if sf.Test && strings.HasSuffix(name, "_test") {
			xtestFiles = append(xtestFiles, sf.Syntax)
			continue
		}
		if !sf.Test {
			pkgName = name
		}
		pkgFiles = append(pkgFiles, sf.Syntax)
	}
	var passes []*Pass
	if len(pkgFiles) > 0 {
		info := newInfo()
		pkg, err := l.check(path, pkgFiles, info)
		if err != nil {
			return nil, err
		}
		passes = append(passes, &Pass{
			Fset: l.fset, Path: path, Dir: dir,
			Files: pkgFiles, All: all, Pkg: pkg, Info: info,
		})
		_ = pkgName
	}
	if len(xtestFiles) > 0 {
		info := newInfo()
		pkg, err := l.check(path+"_test", xtestFiles, info)
		if err != nil {
			return nil, err
		}
		passes = append(passes, &Pass{
			Fset: l.fset, Path: path + "_test", Dir: dir,
			Files: xtestFiles, All: all, Pkg: pkg, Info: info,
		})
	}
	return passes, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// scanDir parses every .go file in dir (comments kept, no constraint
// filtering for the syntax) and records, per file, whether the default
// build includes it. Files are registered under module-root-relative
// names so every reported position is stable regardless of where the
// tool runs. Unparsable files are skipped — fixture corpora may hold
// deliberately broken files.
func scanDir(fset *token.FileSet, root, dir string) []*SrcFile {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []*SrcFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		display := path
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		syntax, err := parser.ParseFile(fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		expr := buildConstraintOf(syntax)
		sf := &SrcFile{
			Name:       name,
			Path:       path,
			Syntax:     syntax,
			Constraint: constraintString(name, expr),
			Test:       strings.HasSuffix(name, "_test.go"),
			InBuild:    suffixSatisfied(name) && (expr == nil || expr.Eval(defaultTag)),
		}
		out = append(out, sf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// constraintString normalizes a file's full build constraint: the
// //go:build expression plus whatever the filename suffix implies
// (mmsg_sysnum_amd64.go is constrained to amd64 even if its //go:build
// line only says linux). Returns "" for an unconstrained file.
func constraintString(name string, expr constraint.Expr) string {
	var terms []string
	if goos, goarch := suffixConstraint(name); goos != "" || goarch != "" {
		if goos != "" {
			terms = append(terms, goos)
		}
		if goarch != "" {
			terms = append(terms, goarch)
		}
	}
	if expr != nil {
		s := expr.String()
		if len(terms) > 0 {
			s = "(" + s + ")"
		}
		terms = append(terms, s)
	}
	return strings.Join(terms, " && ")
}

// suffixConstraint extracts the GOOS/GOARCH a filename suffix implies.
func suffixConstraint(name string) (goos, goarch string) {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	if len(parts) == 1 {
		return "", ""
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		goarch = last
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			goos = parts[len(parts)-2]
		}
		return goos, goarch
	}
	if knownOS[last] {
		return last, ""
	}
	return "", ""
}

// buildConstraintOf extracts the file's //go:build expression, if any.
func buildConstraintOf(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// defaultTag evaluates one build tag for the default build: the host
// GOOS/GOARCH, the synthetic unix tag, the gc toolchain, and any go1.N
// version gate. Custom tags (countnet_nommsg and friends) are off,
// exactly as in a plain `go build`.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	return strings.HasPrefix(tag, "go1.")
}

// suffixSatisfied applies the filename-suffix constraint rules
// (_GOOS.go, _GOARCH.go, _GOOS_GOARCH.go) for the default build.
func suffixSatisfied(name string) bool {
	goos, goarch := suffixConstraint(name)
	if goos != "" && goos != runtime.GOOS {
		return false
	}
	if goarch != "" && goarch != runtime.GOARCH {
		return false
	}
	return true
}

// expandPatterns resolves command-line package patterns ("./...",
// "./internal/wire", ".") into directories holding Go files. The
// recursive walk skips testdata, hidden directories, and vendor.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}
