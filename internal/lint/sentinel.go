package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sentinel guards the single-ErrClosed design. The transports alias
// ONE sentinel (xport.ErrClosed) so errors.Is works across the seam;
// both halves of that contract are mechanical:
//
//   - comparisons against package-level Err* variables must go through
//     errors.Is, never == or != (a future wrapped error silently breaks
//     every == site — the seam explicitly reserves the right to wrap);
//   - no package other than internal/xport may mint a new *Closed
//     sentinel with errors.New/fmt.Errorf: a Closed-flavored error var
//     outside xport must be a plain alias of an existing sentinel, or
//     two transports stop agreeing on what "closed" is.
var Sentinel = &Analyzer{
	Name: "sentinel",
	Doc:  "error sentinels: errors.Is instead of ==, and no new *Closed sentinel declared outside internal/xport",
	File: runSentinelFile,
}

const xportPath = "repro/internal/xport"

func runSentinelFile(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if obj := sentinelVar(p, side); obj != nil {
					p.Report(n.OpPos,
						"comparison with sentinel %s uses %s; use errors.Is so wrapped errors keep matching",
						obj.Name(), n.Op)
					break
				}
			}
		case *ast.SwitchStmt:
			// switch err { case ErrClosed: … } is == in disguise.
			if n.Tag == nil || !isErrorExpr(p, n.Tag) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if obj := sentinelVar(p, e); obj != nil {
						p.Report(e.Pos(),
							"switch case compares sentinel %s with ==; use errors.Is so wrapped errors keep matching",
							obj.Name())
					}
				}
			}
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				checkSentinelDecl(p, n)
			}
		}
		return true
	})
}

// checkSentinelDecl flags package-level *Closed error sentinels minted
// outside xport. An alias (var ErrClosed = xport.ErrClosed) is the
// sanctioned form; a fresh errors.New is a second source of truth.
func checkSentinelDecl(p *Pass, decl *ast.GenDecl) {
	if p.Path == xportPath {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if !strings.HasPrefix(name.Name, "Err") || !strings.Contains(name.Name, "Closed") {
				continue
			}
			obj := p.Info.ObjectOf(name)
			if obj == nil || obj.Parent() != p.Pkg.Scope() || !isErrorType(obj.Type()) {
				continue
			}
			if i >= len(vs.Values) {
				continue
			}
			switch vs.Values[i].(type) {
			case *ast.Ident, *ast.SelectorExpr:
				// Alias of an existing sentinel: the sanctioned form.
			default:
				p.Report(name.Pos(),
					"new Closed sentinel %s declared outside internal/xport; alias xport.ErrClosed instead so errors.Is matches across transports",
					name.Name)
			}
		}
	}
}

// sentinelVar resolves an expression to a package-level error variable
// named Err…, the shape of a sentinel.
func sentinelVar(p *Pass, e ast.Expr) types.Object {
	if p.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := p.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorExpr(p *Pass, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	t := p.Info.TypeOf(e)
	return t != nil && isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}
