package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the module root (two levels above internal/lint).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected module root at %s: %v", root, err)
	}
	return root
}

// wantDiag is one `// want "regex"` annotation from a fixture file.
type wantDiag struct {
	file string // module-root-relative, as Diagnostic positions render
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantMarkRE = regexp.MustCompile(`// want "([^"]*)"`)

// parseWants collects the annotations of every .go file in dir.
func parseWants(t *testing.T, root, dir string) []*wantDiag {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			t.Fatal(err)
		}
		display := filepath.ToSlash(rel)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantMarkRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wants = append(wants, &wantDiag{
				file: display,
				line: i + 1,
				re:   regexp.MustCompile(m[1]),
			})
		}
	}
	return wants
}

// loadFixture type-checks one fixture directory as analysis units.
func loadFixture(t *testing.T, ld *loader, dir string) []*Pass {
	t.Helper()
	passes, err := ld.units(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(passes) == 0 {
		t.Fatalf("no Go packages in %s", dir)
	}
	return passes
}

// TestFixtures drives each analyzer over its testdata corpus and
// matches the diagnostics against the `// want` annotations, both
// directions: every annotation must be reported, every report must be
// annotated. It also proves the bad fixtures pass when the analyzer is
// absent — the findings come from the analyzer, not the framework.
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	ld, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer *Analyzer
		dirs     []string
	}{
		{SpinLoop, []string{"spinloop"}},
		{AtomicField, []string{"atomicfield"}},
		{Sentinel, []string{"sentinel"}},
		{MetricName, []string{"metricname"}},
		{TagPair, []string{"tagpair/bad", "tagpair/good"}},
	}
	for _, tc := range cases {
		for _, d := range tc.dirs {
			name := strings.ReplaceAll(d, "/", "_")
			if name == tc.analyzer.Name {
				name = tc.analyzer.Name
			} else if !strings.HasPrefix(name, tc.analyzer.Name) {
				name = tc.analyzer.Name + "_" + name
			}
			t.Run(name, func(t *testing.T) {
				dir := filepath.Join(root, "internal/lint/testdata", d)
				passes := loadFixture(t, ld, dir)
				wants := parseWants(t, root, dir)

				// Without the analyzer the bad fixtures are silent.
				for _, diag := range runAnalyzers(root, passes, nil) {
					if strings.Contains(diag.Pos.Filename, "bad") {
						t.Errorf("diagnostic with no analyzers loaded: %s", diag)
					}
				}

				diags := runAnalyzers(root, passes, []*Analyzer{tc.analyzer})
				for _, diag := range diags {
					matched := false
					for _, w := range wants {
						if !w.hit && w.file == diag.Pos.Filename && w.line == diag.Pos.Line && w.re.MatchString(diag.Message) {
							w.hit = true
							matched = true
							break
						}
					}
					if !matched {
						t.Errorf("unexpected diagnostic: %s", diag)
					}
				}
				for _, w := range wants {
					if !w.hit {
						t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
					}
				}
			})
		}
	}
}

// TestIgnoreDirectives covers the waiver mechanism's own diagnostics:
// a bare //lint:ignore (no reason) is malformed and suppresses
// nothing, and a well-formed directive that waives nothing is stale.
// (The happy path — a waiver suppressing a real finding — is in
// testdata/spinloop/good.go.)
func TestIgnoreDirectives(t *testing.T) {
	root := repoRoot(t)
	ld, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	passes := loadFixture(t, ld, filepath.Join(root, "internal/lint/testdata/ignore"))
	diags := runAnalyzers(root, passes, []*Analyzer{SpinLoop})

	expect := map[string]string{
		"malformed": "malformed //lint:ignore",
		"spin":      "spin loop polls an atomic",
		"stale":     "waives nothing on this or the next line",
	}
	for label, substr := range expect {
		found := 0
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found++
			}
		}
		if found != 1 {
			t.Errorf("%s: want exactly 1 diagnostic containing %q, got %d in %v", label, substr, found, diags)
		}
	}
	if len(diags) != len(expect) {
		t.Errorf("want %d diagnostics total, got %d: %v", len(expect), len(diags), diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "lint:ignore") && d.Analyzer != "countlint" {
			t.Errorf("directive diagnostics carry the analyzer name countlint, got %q", d.Analyzer)
		}
	}
}

// TestRepoLintClean runs the full analyzer set over the real tree: the
// repository must lint clean at all times (`make lint` is part of
// `make check`). Skipped under -short — it type-checks the module and
// its stdlib imports from source.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint run; skipped in -short")
	}
	root := repoRoot(t)
	diags, err := Run(root, []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatalf("lint run failed to load the tree: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
}

// TestAnalyzersHaveDocs keeps `countlint -list` useful: every analyzer
// carries a name and a one-line doc.
func TestAnalyzersHaveDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v lacks a name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.File == nil && a.Package == nil && a.Repo == nil {
			t.Errorf("analyzer %s has no hooks", a.Name)
		}
	}
}
