package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readRepoFile(t *testing.T, rel string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(t), rel))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mutate replaces old with new exactly once, failing loudly if the
// underlying file no longer contains old — the regression tests must
// not silently stop mutating anything.
func mutate(t *testing.T, data []byte, old, new string) []byte {
	t.Helper()
	s := string(data)
	if !strings.Contains(s, old) {
		t.Fatalf("mutation target %q not found; update this test to match the current file", old)
	}
	return []byte(strings.Replace(s, old, new, 1))
}

func diagMessages(diags []LockstepDiag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.File)
		b.WriteString(": ")
		b.WriteString(d.Message)
		b.WriteString("\n")
	}
	return b.String()
}

func assertMention(t *testing.T, diags []LockstepDiag, substr string) {
	t.Helper()
	if len(diags) == 0 {
		t.Fatalf("want a lockstep diagnostic mentioning %q, got none", substr)
	}
	if !strings.Contains(diagMessages(diags), substr) {
		t.Errorf("no diagnostic mentions %q; got:\n%s", substr, diagMessages(diags))
	}
}

// TestLockstepRealFilesGreen: the committed Makefile and ci.yml are in
// lockstep right now.
func TestLockstepRealFilesGreen(t *testing.T) {
	mk := readRepoFile(t, "Makefile")
	ci := readRepoFile(t, ciPath)
	if diags := CheckLockstep(mk, ci); len(diags) > 0 {
		t.Errorf("committed Makefile/ci.yml drifted:\n%s", diagMessages(diags))
	}
}

// TestLockstepDetectsDroppedGate mutates in-memory copies of the real
// files, dropping one pinned gate name at a time, and requires the
// analyzer to turn red naming the exact missing gate — the silent
// drift that previously only a reviewer could catch.
func TestLockstepDetectsDroppedGate(t *testing.T) {
	mk := readRepoFile(t, "Makefile")
	ci := readRepoFile(t, ciPath)

	t.Run("test gate dropped from ci.yml", func(t *testing.T) {
		broken := mutate(t, ci, "TestChaosSessionKill|", "")
		assertMention(t, CheckLockstep(mk, broken), "TestChaosSessionKill")
	})
	t.Run("test gate dropped from Makefile", func(t *testing.T) {
		broken := mutate(t, mk, "TestUDPRetransmitExactlyOnce|", "")
		assertMention(t, CheckLockstep(broken, ci), "TestUDPRetransmitExactlyOnce")
	})
	t.Run("bench gate dropped from ci.yml", func(t *testing.T) {
		broken := mutate(t, ci, "|BenchmarkUDPPipelinedBatch", "")
		assertMention(t, CheckLockstep(mk, broken), "BenchmarkUDPPipelinedBatch")
	})
	t.Run("package dropped from Makefile gate", func(t *testing.T) {
		broken := mutate(t, mk, "./internal/wire ./internal/ctlplane", "./internal/wire")
		if diags := CheckLockstep(broken, ci); len(diags) == 0 {
			t.Error("narrowing a gate's package list went undetected")
		}
	})
}

// TestLockstepDetectsMissingLintWiring: the analyzer verifies its own
// harness — countlint present in both files, identically, and
// reachable from `make check`.
func TestLockstepDetectsMissingLintWiring(t *testing.T) {
	mk := readRepoFile(t, "Makefile")
	ci := readRepoFile(t, ciPath)

	t.Run("lint target gone from Makefile", func(t *testing.T) {
		broken := mutate(t, mk, "$(GO) run ./cmd/countlint ./...", "true")
		assertMention(t, CheckLockstep(broken, ci), "no countlint invocation")
	})
	t.Run("lint step gone from ci.yml", func(t *testing.T) {
		broken := mutate(t, ci, "go run ./cmd/countlint ./...", "true")
		assertMention(t, CheckLockstep(mk, broken), "no countlint invocation")
	})
	t.Run("invocations drift", func(t *testing.T) {
		broken := mutate(t, ci, "go run ./cmd/countlint ./...", "go run ./cmd/countlint ./internal/...")
		assertMention(t, CheckLockstep(mk, broken), "drift")
	})
	t.Run("check no longer depends on lint", func(t *testing.T) {
		broken := mutate(t, mk, "check: build vet fmt lint", "check: build vet fmt")
		assertMention(t, CheckLockstep(broken, ci), "`make check` does not include the `lint` target")
	})
}

// TestLockstepFixturePair runs the pure core over the committed
// fixture pairs: the good pair is green, the bad pair names every
// seeded divergence.
func TestLockstepFixturePair(t *testing.T) {
	root := repoRoot(t)
	read := func(rel string) []byte {
		data, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/lockstep", rel))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	if diags := CheckLockstep(read("good/Makefile"), read("good/ci.yml")); len(diags) > 0 {
		t.Errorf("good fixture pair not green:\n%s", diagMessages(diags))
	}

	diags := CheckLockstep(read("bad/Makefile"), read("bad/ci.yml"))
	assertMention(t, diags, "TestBeta")
	assertMention(t, diags, "BenchmarkGamma")
	assertMention(t, diags, "`make check` does not include the `lint` target")
}
