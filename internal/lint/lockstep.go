package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Lockstep mechanizes the "keep Makefile and ci.yml in lockstep"
// convention the comments in both files have carried since PR 1. Every
// pinned-by-name test or benchmark gate (a `go test` invocation whose
// -run or -bench regex names tests explicitly, like the resilience and
// conformance suites) must appear with an identical regex and package
// list in BOTH the Makefile and .github/workflows/ci.yml; dropping one
// gate name from either side — the silent drift that previously only a
// reviewer could catch — is a lint failure that names the missing
// gate. The analyzer also verifies its own wiring: a `lint` target in
// the Makefile, reachable from `check`, running the same countlint
// invocation as a ci.yml step.
var Lockstep = &Analyzer{
	Name: "lockstep",
	Doc:  "Makefile and .github/workflows/ci.yml pin the same named test/bench gates, and countlint itself is wired into both",
	Repo: runLockstep,
}

const ciPath = ".github/workflows/ci.yml"

func runLockstep(rp *RepoPass) {
	mk, mkErr := os.ReadFile(filepath.Join(rp.Root, "Makefile"))
	ci, ciErr := os.ReadFile(filepath.Join(rp.Root, ciPath))
	if mkErr != nil {
		rp.Report("Makefile", 1, 1, "cannot read Makefile: %v", mkErr)
		return
	}
	if ciErr != nil {
		rp.Report(ciPath, 1, 1, "cannot read %s: %v", ciPath, ciErr)
		return
	}
	for _, d := range CheckLockstep(mk, ci) {
		rp.Report(d.File, d.Line, 1, "%s", d.Message)
	}
}

// LockstepDiag is one finding from the pure comparison core, positioned
// in whichever file is missing something.
type LockstepDiag struct {
	File    string // "Makefile" or ".github/workflows/ci.yml"
	Line    int
	Message string
}

// gate is one pinned go-test invocation: the unit of lockstep.
type gate struct {
	run   string   // -run regex, "" if none
	bench string   // -bench regex, "" if none
	pkgs  []string // sorted package arguments
	line  int
}

func (g gate) key() string {
	return fmt.Sprintf("run=%s bench=%s pkgs=%s", g.run, g.bench, strings.Join(g.pkgs, ","))
}

func (g gate) describe() string {
	parts := []string{}
	if g.run != "" {
		parts = append(parts, "-run '"+g.run+"'")
	}
	if g.bench != "" {
		parts = append(parts, "-bench '"+g.bench+"'")
	}
	parts = append(parts, strings.Join(g.pkgs, " "))
	return strings.Join(parts, " ")
}

// CheckLockstep compares the pinned gates of a Makefile and a ci.yml,
// returning one diagnostic per divergence. Exported (within the lint
// package's test surface) so the regression tests can mutate copies of
// the real files in memory and assert the analyzer turns red.
func CheckLockstep(makefile, ciyml []byte) []LockstepDiag {
	var diags []LockstepDiag
	mkGates := pinnedGates(string(makefile))
	ciGates := pinnedGates(string(ciyml))

	diags = append(diags, diffGates(mkGates, ciGates, "Makefile", ciPath)...)
	diags = append(diags, diffGates(ciGates, mkGates, ciPath, "Makefile")...)

	// Self-verification: countlint wired into both, identically.
	mkLint, mkLintLine := countlintInvocation(string(makefile))
	ciLint, _ := countlintInvocation(string(ciyml))
	switch {
	case mkLint == "":
		diags = append(diags, LockstepDiag{File: "Makefile", Line: 1,
			Message: "no countlint invocation: the Makefile needs a `lint` target running `go run ./cmd/countlint ./...`"})
	case ciLint == "":
		diags = append(diags, LockstepDiag{File: ciPath, Line: 1,
			Message: "no countlint invocation: ci.yml needs a lint step running `go run ./cmd/countlint ./...` (lockstep with the Makefile lint target)"})
	case mkLint != ciLint:
		diags = append(diags, LockstepDiag{File: "Makefile", Line: mkLintLine,
			Message: fmt.Sprintf("countlint invocations drift: Makefile runs %q, ci.yml runs %q", mkLint, ciLint)})
	}
	if mkLint != "" {
		if line, ok := checkPrereq(string(makefile), "check", "lint"); !ok {
			diags = append(diags, LockstepDiag{File: "Makefile", Line: line,
				Message: "`make check` does not include the `lint` target; the local gate no longer mirrors CI"})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// diffGates reports gates pinned in src but absent (or drifted) in dst.
func diffGates(src, dst []gate, srcName, dstName string) []LockstepDiag {
	var diags []LockstepDiag
	dstByKey := make(map[string]bool)
	for _, g := range dst {
		dstByKey[g.key()] = true
	}
	for _, g := range src {
		if dstByKey[g.key()] {
			continue
		}
		// Find the closest dst gate (same packages, or overlapping
		// names) so the message can name the exact drifted gates.
		if twin := closestGate(g, dst); twin != nil {
			missing := nameSetDiff(gateNames(g), gateNames(*twin))
			extra := nameSetDiff(gateNames(*twin), gateNames(g))
			var detail []string
			if len(missing) > 0 {
				detail = append(detail, fmt.Sprintf("gates %v pinned in %s but not in %s", missing, srcName, dstName))
			}
			if len(extra) > 0 {
				detail = append(detail, fmt.Sprintf("gates %v pinned in %s but not in %s", extra, dstName, srcName))
			}
			if len(detail) == 0 {
				detail = append(detail, fmt.Sprintf("package lists differ: %s has %v, %s has %v",
					srcName, g.pkgs, dstName, twin.pkgs))
			}
			diags = append(diags, LockstepDiag{File: srcName, Line: g.line,
				Message: "pinned gate drifted from " + dstName + ": " + strings.Join(detail, "; ")})
			continue
		}
		diags = append(diags, LockstepDiag{File: srcName, Line: g.line,
			Message: fmt.Sprintf("pinned gate has no %s counterpart: %s", dstName, g.describe())})
	}
	return diags
}

// closestGate pairs a drifted gate with its other-file twin by name
// overlap, falling back to an identical package list.
func closestGate(g gate, candidates []gate) *gate {
	names := gateNames(g)
	best, bestOverlap := -1, 0
	for i, c := range candidates {
		overlap := 0
		for _, n := range gateNames(c) {
			for _, m := range names {
				if n == m {
					overlap++
				}
			}
		}
		if overlap > bestOverlap {
			best, bestOverlap = i, overlap
		}
	}
	if best >= 0 {
		return &candidates[best]
	}
	for i, c := range candidates {
		if strings.Join(c.pkgs, ",") == strings.Join(g.pkgs, ",") {
			return &candidates[i]
		}
	}
	return nil
}

// gateNames splits a gate's pinned regexes into individual gate names.
func gateNames(g gate) []string {
	var names []string
	for _, re := range []string{g.run, g.bench} {
		if re == "" {
			continue
		}
		for _, part := range strings.Split(re, "|") {
			part = strings.Trim(part, "^$()")
			if part != "" {
				names = append(names, part)
			}
		}
	}
	return names
}

func nameSetDiff(a, b []string) []string {
	in := make(map[string]bool)
	for _, n := range b {
		in[n] = true
	}
	var out []string
	for _, n := range a {
		if !in[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

var (
	runFlagRE   = regexp.MustCompile(`-run[= ]'([^']*)'|-run[= ]"([^"]*)"|-run[= ]([^\s'"]+)`)
	benchFlagRE = regexp.MustCompile(`-bench[= ]'([^']*)'|-bench[= ]"([^"]*)"|-bench[= ]([^\s'"]+)`)
)

// pinnedGates extracts every `go test` line whose -run or -bench regex
// pins gates by name (contains letters — `-run='^$'` and `-bench=.`
// are not pins). Works on both Makefile recipes ($(GO) normalized to
// go) and ci.yml run blocks.
func pinnedGates(text string) []gate {
	var gates []gate
	for i, raw := range strings.Split(text, "\n") {
		line := normalizeCmd(raw)
		if strings.HasPrefix(line, "#") || !strings.Contains(line, "go test") {
			continue
		}
		run := firstGroup(runFlagRE, line)
		bench := firstGroup(benchFlagRE, line)
		if !pinsNames(run) {
			run = ""
		}
		if !pinsNames(bench) {
			bench = ""
		}
		if run == "" && bench == "" {
			continue
		}
		var pkgs []string
		for _, tok := range strings.Fields(line) {
			if strings.HasPrefix(tok, "./") || tok == "." {
				pkgs = append(pkgs, tok)
			}
		}
		sort.Strings(pkgs)
		gates = append(gates, gate{run: run, bench: bench, pkgs: pkgs, line: i + 1})
	}
	return gates
}

// normalizeCmd strips Makefile/ci.yml syntax down to the command:
// leading tabs and YAML indentation, `run:` prefixes, $(GO) → go.
func normalizeCmd(line string) string {
	s := strings.TrimSpace(line)
	s = strings.TrimPrefix(s, "run:")
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, "$(GO)", "go")
	return s
}

func firstGroup(re *regexp.Regexp, line string) string {
	m := re.FindStringSubmatch(line)
	if m == nil {
		return ""
	}
	for _, g := range m[1:] {
		if g != "" {
			return g
		}
	}
	return ""
}

// pinsNames reports whether a regex names gates: it contains an
// uppercase letter (Go test/benchmark names are exported identifiers).
func pinsNames(re string) bool {
	for _, r := range re {
		if r >= 'A' && r <= 'Z' {
			return true
		}
	}
	return false
}

// countlintInvocation finds the normalized countlint command line.
func countlintInvocation(text string) (string, int) {
	for i, raw := range strings.Split(text, "\n") {
		line := normalizeCmd(raw)
		if strings.Contains(line, "go run ./cmd/countlint") && !strings.HasPrefix(line, "#") {
			return line, i + 1
		}
	}
	return "", 0
}

// checkPrereq reports whether Makefile target `target` lists `prereq`.
func checkPrereq(makefile, target, prereq string) (int, bool) {
	for i, raw := range strings.Split(makefile, "\n") {
		rest, ok := strings.CutPrefix(raw, target+":")
		if !ok {
			continue
		}
		for _, tok := range strings.Fields(rest) {
			if tok == prereq {
				return i + 1, true
			}
		}
		return i + 1, false
	}
	return 1, false
}
