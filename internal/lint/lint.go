// Package lint is the repository's dependency-free static-analysis
// framework: a small analyzer interface over the stdlib go/ast +
// go/parser + go/types stack (no x/tools, per the zero-dependency
// rule), a module-aware package loader, and the six project-specific
// analyzers that mechanize invariants previously enforced only by
// reviewer discipline — the PR 3 no-unyielded-spin-loops audit, the
// atomics-only access convention on hot-path fields, the Makefile ↔
// ci.yml pinned-gate lockstep, the paired build-tag fallbacks for the
// batched-syscall files, the single xport.ErrClosed sentinel, and the
// Prometheus metric naming + OPERATIONS.md healthy-range catalogue.
//
// cmd/countlint is the command-line driver (`make lint` runs it over
// ./...). A diagnostic can be waived in place with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the flagged line or the line directly above it; the
// reason is mandatory (a bare ignore is itself a diagnostic), and the
// policy for when a waiver is acceptable lives in OPERATIONS.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one positioned finding. The driver renders it as
// "file:line:col: analyzer: message" — stable and sorted, so CI diffs
// are reviewable and the tool is scriptable.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Hooks are optional: File runs once per
// type-checked file, Package once per package unit after the file
// hooks, Repo once per run with every package unit in view (for
// checks that cross packages or leave Go entirely, like the Makefile ↔
// ci.yml lockstep).
type Analyzer struct {
	Name string
	Doc  string // one line, shown by `countlint -list`

	File    func(*Pass, *ast.File)
	Package func(*Pass)
	Repo    func(*RepoPass)
}

// Pass is one package unit under analysis: the type-checked syntax of
// the default build (in-package _test files included — test code must
// hold the invariants too), plus the raw syntax of every .go file in
// the directory regardless of build constraints, which is what the
// tagpair analyzer needs to see excluded variants.
type Pass struct {
	Fset *token.FileSet
	Path string // import path of the unit
	Dir  string // directory the unit was loaded from

	Files []*ast.File // type-checked syntax, default build + in-package tests
	All   []*SrcFile  // every .go file in Dir, syntax only, constraints recorded

	Pkg  *types.Package
	Info *types.Info

	analyzer string
	sink     *sink
}

// SrcFile is one source file as the loader saw it, before build-tag
// filtering.
type SrcFile struct {
	Name       string // base name
	Path       string // full path
	Syntax     *ast.File
	Constraint string // normalized //go:build expression, "" if unconstrained
	Test       bool   // *_test.go
	InBuild    bool   // included in the default-build unit
}

// Report records a diagnostic for the running analyzer at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.sink.add(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the unit's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// RepoPass is the whole-run view handed to Repo hooks: the repository
// root for non-Go artifacts (Makefile, ci.yml) and every loaded
// package unit.
type RepoPass struct {
	Root     string
	Packages []*Pass

	analyzer string
	sink     *sink
}

// Report records a diagnostic at an explicit file position (line and
// column are 1-based; column 0 renders as 1).
func (rp *RepoPass) Report(file string, line, col int, format string, args ...any) {
	if col <= 0 {
		col = 1
	}
	rp.sink.add(Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: rp.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPos records a diagnostic at a token.Pos resolved against a
// package unit's file set.
func (rp *RepoPass) ReportPos(p *Pass, pos token.Pos, format string, args ...any) {
	rp.sink.add(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: rp.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sink collects diagnostics from all hooks of a run.
type sink struct {
	diags []Diagnostic
}

func (s *sink) add(d Diagnostic) { s.diags = append(s.diags, d) }

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// Run loads every package under the given directories (absolute or
// root-relative; "..." suffix walks recursively, skipping testdata),
// runs the analyzers, applies //lint:ignore suppression, and returns
// the surviving diagnostics sorted by position. A nil error with a
// non-empty slice is the "lint found something" outcome; an error
// means the tree could not be loaded (parse or type failure).
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var passes []*Pass
	for _, dir := range dirs {
		units, err := ld.units(dir)
		if err != nil {
			return nil, err
		}
		passes = append(passes, units...)
	}
	return runAnalyzers(root, passes, analyzers), nil
}

// runAnalyzers executes the hooks over already-loaded units. Split out
// so tests can drive analyzers against fixture units directly.
func runAnalyzers(root string, passes []*Pass, analyzers []*Analyzer) []Diagnostic {
	s := &sink{}
	ignores := collectIgnores(passes, s)

	for _, p := range passes {
		p.sink = s
		for _, a := range analyzers {
			p.analyzer = a.Name
			if a.File != nil {
				for _, f := range p.Files {
					a.File(p, f)
				}
			}
			if a.Package != nil {
				a.Package(p)
			}
		}
	}
	rp := &RepoPass{Root: root, Packages: passes, sink: s}
	for _, a := range analyzers {
		rp.analyzer = a.Name
		if a.Repo != nil {
			a.Repo(rp)
		}
	}

	kept := suppress(s.diags, ignores)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// collectIgnores scans every file's comments for //lint:ignore
// directives. Malformed directives (no analyzer name, or no reason)
// are diagnostics themselves: a waiver without a reason is exactly the
// undocumented exception the tool exists to prevent.
func collectIgnores(passes []*Pass, s *sink) []*ignoreDirective {
	var out []*ignoreDirective
	seen := make(map[string]bool) // filename: files can appear in two units (pkg + xtest)
	for _, p := range passes {
		for _, sf := range p.All {
			if sf.Syntax == nil || seen[sf.Path] {
				continue
			}
			seen[sf.Path] = true
			for _, cg := range sf.Syntax.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					pos := p.Fset.Position(c.Pos())
					if len(fields) < 2 {
						s.add(Diagnostic{Pos: pos, Analyzer: "countlint",
							Message: "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" (the reason is mandatory)"})
						continue
					}
					out = append(out, &ignoreDirective{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return out
}

// suppress drops diagnostics waived by an ignore directive on the same
// line or the line directly above, and reports directives that waived
// nothing (a stale ignore hides future regressions).
func suppress(diags []Diagnostic, ignores []*ignoreDirective) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		waived := false
		for _, ig := range ignores {
			if ig.analyzer != d.Analyzer || ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				waived = true
			}
		}
		if !waived {
			kept = append(kept, d)
		}
	}
	for _, ig := range ignores {
		if !ig.used {
			kept = append(kept, Diagnostic{Pos: ig.pos, Analyzer: "countlint",
				Message: fmt.Sprintf("//lint:ignore %s waives nothing on this or the next line; remove it", ig.analyzer)})
		}
	}
	return kept
}

// Analyzers returns the full registered set, the order `countlint
// -list` prints.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SpinLoop,
		AtomicField,
		Lockstep,
		TagPair,
		Sentinel,
		MetricName,
	}
}
