// Package bitonic implements the bitonic counting network of Aspnes,
// Herlihy & Shavit (ref [5] of the paper, Section 3 there), the principal
// regular baseline the paper compares against (§1.3.1): width w = 2^k,
// depth (lg²w + lgw)/2, amortized contention Θ(n·lg²w / w) (Dwork et al.,
// ref [12]).
//
// Construction:
//
//   - Bitonic[1] is a wire; Bitonic[w] is two copies of Bitonic[w/2] on the
//     two input halves feeding Merger[w].
//   - Merger[2] is one balancer. Merger[w] sends the even subsequence of x
//     and the odd subsequence of y to one Merger[w/2], the odd of x and the
//     even of y to another, and joins output i of each with a final-layer
//     balancer emitting output wires 2i and 2i+1.
//
// The merger's depth is lg w — this is the §3.3 contrast with the paper's
// M(t,δ), whose depth is lg δ.
package bitonic

import (
	"fmt"

	"repro/internal/network"
)

// Valid reports whether w is a supported width (power of two >= 2).
func Valid(w int) bool { return w >= 2 && w&(w-1) == 0 }

// New constructs the bitonic counting network of width w.
func New(w int) (*network.Network, error) {
	if !Valid(w) {
		return nil, fmt.Errorf("bitonic: width %d is not a power of two >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("Bitonic(%d)", w), w)
	out := Build(b, in)
	return b.Finalize(out)
}

// Build appends Bitonic[len(in)] to a builder and returns its outputs.
func Build(b *network.Builder, in []network.Port) []network.Port {
	w := len(in)
	if w == 1 {
		return in
	}
	x := Build(b, in[:w/2])
	y := Build(b, in[w/2:])
	return BuildMerger(b, x, y)
}

// BuildMerger appends Merger[2k] joining two step-producing subnetworks'
// outputs x and y (len k each) and returns the merged outputs. Exported for
// the E17 ablation (C(w,t) built with the bitonic merger).
func BuildMerger(b *network.Builder, x, y []network.Port) []network.Port {
	k := len(x)
	if len(y) != k {
		panic(fmt.Sprintf("bitonic: merger halves %d vs %d", k, len(y)))
	}
	if k == 1 {
		return b.Balancer([]network.Port{x[0], y[0]}, 2)
	}
	xe, xo := split(x)
	ye, yo := split(y)
	z0 := BuildMerger(b, xe, yo) // even of x with odd of y
	z1 := BuildMerger(b, xo, ye) // odd of x with even of y
	out := make([]network.Port, 2*k)
	for i := 0; i < k; i++ {
		o := b.Balancer([]network.Port{z0[i], z1[i]}, 2)
		if o == nil {
			return out
		}
		out[2*i], out[2*i+1] = o[0], o[1]
	}
	return out
}

// NewMerger constructs Merger[w] standalone (w = 2k wires).
func NewMerger(w int) (*network.Network, error) {
	if !Valid(w) {
		return nil, fmt.Errorf("bitonic: merger width %d is not a power of two >= 2", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("BitonicMerger(%d)", w), w)
	out := BuildMerger(b, in[:w/2], in[w/2:])
	return b.Finalize(out)
}

func split(s []network.Port) (even, odd []network.Port) {
	for i, p := range s {
		if i%2 == 0 {
			even = append(even, p)
		} else {
			odd = append(odd, p)
		}
	}
	return even, odd
}
