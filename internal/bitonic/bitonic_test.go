package bitonic

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

func TestDepth(t *testing.T) {
	// depth(Bitonic[w]) = (lg²w + lgw)/2, same as C(w,t) for equal w.
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		n, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		k := log2(w)
		if want := (k*k + k) / 2; n.Depth() != want {
			t.Errorf("depth(Bitonic(%d)) = %d, want %d", w, n.Depth(), want)
		}
	}
}

func TestMergerDepth(t *testing.T) {
	// §3.3 contrast: bitonic merger depth is lg w (vs lg δ for M(t,δ)).
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := NewMerger(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != log2(w) {
			t.Errorf("depth(Merger(%d)) = %d, want %d", w, n.Depth(), log2(w))
		}
	}
}

func TestCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct {
		w          int
		exhaustive int
		trials     int
	}{
		{2, 10, 100}, {4, 6, 300}, {8, 4, 300}, {16, 0, 500}, {32, 0, 200},
	} {
		n, err := New(c.w)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckCounting(n, c.exhaustive, c.trials, rng); err != nil {
			t.Errorf("Bitonic(%d): %v", c.w, err)
		}
	}
}

// The bitonic merger merges any two step inputs regardless of their sum
// difference (unlike M(t,δ)). Check over step pairs with large differences.
func TestMergerMergesAnyDifference(t *testing.T) {
	n, err := NewMerger(16)
	if err != nil {
		t.Fatal(err)
	}
	for sy := int64(0); sy <= 20; sy++ {
		for d := int64(0); d <= 40; d += 7 {
			x := append(seq.MakeStep(sy+d, 8), seq.MakeStep(sy, 8)...)
			y, err := n.Quiescent(x)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.IsStep(y) {
				t.Fatalf("Merger(16) on sums (%d,%d): %v", sy+d, sy, y)
			}
		}
	}
}

func TestAllBalancers22(t *testing.T) {
	n, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	census := network.ArityCensus(n)
	if len(census) != 1 || census["(2,2)"] != n.Size() {
		t.Fatalf("census = %v", census)
	}
	// Size: w/2 balancers per layer x depth layers.
	if want := 16 / 2 * n.Depth(); n.Size() != want {
		t.Fatalf("size = %d, want %d", n.Size(), want)
	}
}

func TestInvalidWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 6, 12} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%d) accepted", w)
		}
		if _, err := NewMerger(w); err == nil {
			t.Errorf("NewMerger(%d) accepted", w)
		}
	}
}

func TestMergerPanicsOnUnequalHalves(t *testing.T) {
	b, in := network.NewBuilder("bad", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("unequal halves accepted")
		}
	}()
	BuildMerger(b, in[:2], in[2:])
}
