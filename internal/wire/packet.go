package wire

import (
	"encoding/binary"
	"errors"
)

// MaxDatagram is the safe datagram budget for packed frames: large
// enough to carry dozens of frames per packet, small enough to dodge IP
// fragmentation on any sane path (IPv6 guarantees 1280-byte MTUs;
// headers eat the rest). Clients split larger frame groups across
// packets; see the udpnet session.
const MaxDatagram = 1200

// PacketOverhead is the fixed per-packet header: the 8-byte request id
// the response echoes so a client can match replies to (possibly
// retransmitted, possibly reordered) request packets.
const PacketOverhead = 8

// ErrBadPacket reports a datagram that does not decode to a request id
// followed by a whole number of well-formed frames — truncation,
// trailing garbage, or an unknown op anywhere poisons the whole packet,
// which the server then drops without replying (the datagram analogue
// of tcpnet dropping a violating connection).
var ErrBadPacket = errors.New("wire: malformed packet")

// AppendPacket encodes one datagram onto dst: the request id followed
// by the frames in order, each in the canonical frame encoding. The
// caller keeps the total within MaxDatagram; the codec itself does not
// bound it.
func AppendPacket(dst []byte, reqid uint64, frames []Frame) []byte {
	var h [PacketOverhead]byte
	binary.BigEndian.PutUint64(h[:], reqid)
	dst = append(dst, h[:]...)
	for i := range frames {
		dst = AppendFrame(dst, &frames[i])
	}
	return dst
}

// DecodePacket parses a datagram into its request id and frames,
// appending the frames to dst (pass dst[:0] to reuse scratch). Strict:
// any malformed tail returns ErrBadPacket and the packet must be
// dropped whole — over an unreliable transport there is no stream to
// resynchronize, so a partial decode is never acted on.
func DecodePacket(data []byte, dst []Frame) (reqid uint64, frames []Frame, err error) {
	if len(data) < PacketOverhead {
		return 0, dst, ErrBadPacket
	}
	reqid = binary.BigEndian.Uint64(data[:PacketOverhead])
	body := data[PacketOverhead:]
	for len(body) > 0 {
		var f Frame
		n, err := DecodeFrame(body, &f)
		if err != nil {
			return 0, dst, ErrBadPacket
		}
		body = body[n:]
		dst = append(dst, f)
	}
	return reqid, dst, nil
}
