package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameCodec holds the wire codec to its canonical-encoding
// contract across both protocol versions: any byte stream decodes into
// a (possibly empty) sequence of frames such that re-encoding each
// frame reproduces exactly the bytes it was decoded from, and decoding
// never consumes payload bytes for an unknown op. This is the property
// that lets a server tell v1 frames from seq-numbered v2 frames by op
// byte alone.
func FuzzFrameCodec(f *testing.F) {
	seed := func(fr *Frame) {
		f.Add(AppendFrame(nil, fr))
	}
	seed(&Frame{Op: OpStep, ID: 7})
	seed(&Frame{Op: OpCell, ID: 3 | 8<<16})
	seed(&Frame{Op: OpStepN, ID: 7, N: -64})
	seed(&Frame{Op: OpCellN, ID: 3 | 8<<16, N: 512})
	seed(&Frame{Op: OpRead, ID: 5})
	seed(&Frame{Op: OpHello, Client: 0xdeadbeef})
	seed(&Frame{Op: OpStep2, ID: 7, Seq: 1})
	seed(&Frame{Op: OpCell2, ID: 3 | 8<<16, Seq: 2})
	seed(&Frame{Op: OpStepN2, ID: 7, Seq: 3, N: -64})
	seed(&Frame{Op: OpCellN2, ID: 3 | 8<<16, Seq: 4, N: 512})
	// Two frames back to back, and a truncated tail.
	f.Add(append(AppendFrame(nil, &Frame{Op: OpHello, Client: 9}),
		AppendFrame(nil, &Frame{Op: OpStepN2, ID: 1, Seq: 1, N: 2})...))
	f.Add(AppendFrame(nil, &Frame{Op: OpCellN2, ID: 1, Seq: 1, N: 2})[:9])
	f.Add([]byte{99, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf [MaxFrameLen]byte
		var fr Frame
		consumed := 0
		for {
			before := r.Len()
			err := ReadFrame(r, &buf, &fr)
			if errors.Is(err, ErrUnknownOp) {
				// Unknown ops must be rejected after exactly the 5-byte
				// header, before any payload is consumed.
				if got := before - r.Len(); got != 5 {
					t.Fatalf("unknown op consumed %d bytes, want 5", got)
				}
				return
			}
			if err != nil {
				return // EOF or truncation mid-frame ends the stream
			}
			enc := AppendFrame(nil, &fr)
			if want := data[consumed : consumed+len(enc)]; !bytes.Equal(enc, want) {
				t.Fatalf("re-encode mismatch at offset %d: frame %+v encodes to %x, stream had %x",
					consumed, fr, enc, want)
			}
			consumed += len(enc)
		}
	})
}

// FuzzPacketCodec holds the datagram packing layer to the same
// canonical contract: a datagram either decodes to a request id plus a
// whole number of well-formed frames whose re-encoding reproduces the
// datagram bit for bit, or it is rejected whole (ErrBadPacket) — a
// truncated frame or trailing garbage anywhere must never yield a
// partial decode a server could act on.
func FuzzPacketCodec(f *testing.F) {
	f.Add(AppendPacket(nil, 7, []Frame{
		{Op: OpHello, Client: 42},
		{Op: OpStepN2, ID: 3, Seq: 9, N: 16},
		{Op: OpCellN2, ID: 1 | 8<<16, Seq: 10, N: -4},
		{Op: OpRead, ID: 2},
	}))
	f.Add(AppendPacket(nil, 0, nil))
	f.Add(AppendPacket(nil, 1, []Frame{{Op: OpStep2, ID: 1, Seq: 1}})[:11]) // truncated
	f.Add([]byte{0, 0, 0})                                                  // shorter than the header
	f.Add(append(AppendPacket(nil, 3, []Frame{{Op: OpRead, ID: 1}}), 99))   // garbage tail

	f.Fuzz(func(t *testing.T, data []byte) {
		reqid, frames, err := DecodePacket(data, nil)
		if err != nil {
			return // rejected whole: nothing to act on
		}
		enc := AppendPacket(nil, reqid, frames)
		if !bytes.Equal(enc, data) {
			t.Fatalf("packet re-encode mismatch: %x decoded to %d frames, re-encodes %x",
				data, len(frames), enc)
		}
	})
}

// The codec length table and io plumbing agree: every op's encoded
// frame decodes back to an identical struct.
func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpStep, ID: 12},
		{Op: OpCell, ID: 2 | 24<<16},
		{Op: OpStepN, ID: 12, N: 7},
		{Op: OpCellN, ID: 2 | 24<<16, N: -7},
		{Op: OpRead, ID: 9},
		{Op: OpHello, Client: 42},
		{Op: OpStep2, ID: 12, Seq: 900},
		{Op: OpCell2, ID: 2 | 24<<16, Seq: 901},
		{Op: OpStepN2, ID: 12, Seq: 902, N: 7},
		{Op: OpCellN2, ID: 2 | 24<<16, Seq: 903, N: -7},
	}
	var stream []byte
	for i := range frames {
		stream = AppendFrame(stream, &frames[i])
	}
	r := bytes.NewReader(stream)
	var buf [MaxFrameLen]byte
	for i := range frames {
		var got Frame
		if err := ReadFrame(r, &buf, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != frames[i] {
			t.Fatalf("frame %d: decoded %+v, want %+v", i, got, frames[i])
		}
	}
	if err := ReadFrame(r, &buf, &Frame{}); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

// Packets round-trip exactly and reject truncation, trailing garbage,
// and unknown ops whole.
func TestPacketRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpHello, Client: 7},
		{Op: OpStepN2, ID: 4, Seq: 1, N: 64},
		{Op: OpCell2, ID: 0 | 8<<16, Seq: 2},
		{Op: OpRead, ID: 3},
	}
	pkt := AppendPacket(nil, 0xfeed, frames)
	reqid, got, err := DecodePacket(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reqid != 0xfeed {
		t.Fatalf("reqid = %#x, want 0xfeed", reqid)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if got[i] != frames[i] {
			t.Fatalf("frame %d: decoded %+v, want %+v", i, got[i], frames[i])
		}
	}
	for name, bad := range map[string][]byte{
		"short-header": pkt[:5],
		"truncated":    pkt[:len(pkt)-3],
		"garbage-tail": append(append([]byte{}, pkt...), 0xff),
		"unknown-op":   append(append([]byte{}, pkt[:PacketOverhead]...), 99, 0, 0, 0, 0),
	} {
		if _, _, err := DecodePacket(bad, nil); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
	// An empty packet (header only) is well-formed: zero frames.
	if _, fs, err := DecodePacket(pkt[:PacketOverhead], nil); err != nil || len(fs) != 0 {
		t.Fatalf("header-only packet = (%d frames, %v), want (0, nil)", len(fs), err)
	}
}
