package wire

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds a self-healing path: at most Attempts total tries
// (including the first), as long as the time since the first failure
// stays within Budget (Budget <= 0 removes the time bound; attempts are
// always enforced). Attempts < 1 behaves as 1, disabling retries.
type RetryPolicy struct {
	Attempts int
	Budget   time.Duration
}

// Backoff is a jittered exponential schedule: attempt n waits (or, for
// a datagram retransmit timer, listens) between Delay(n)/2 and Delay(n)
// where the full delay doubles from Base up to Max. The jitter is the
// point — without it every client that observed the same shard flap
// redials in lockstep, turning recovery into a dial storm (the ROADMAP
// open item this type closes).
type Backoff struct {
	Base time.Duration // first-attempt delay; <= 0 takes 2ms
	Max  time.Duration // delay ceiling; <= 0 takes 250ms
}

// Delay returns the jittered wait before (or timeout spanning) attempt
// n, n >= 1: uniform in [d/2, d] with d = min(Base<<(n-1), Max).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
