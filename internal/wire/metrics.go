package wire

// Canonical control-plane metric names and help strings. They live in
// wire — the substrate both transports already share — so tcpnet and
// udpnet register the SAME name with the SAME help text and type, and
// a fleet scrape aggregating both transports stays format-valid (the
// ctlplane registry panics on a name re-registered with drifting
// metadata, and cmd/ctlplanedoc diffs this catalogue against
// OPERATIONS.md's reference table).
//
// Naming: countnet_shard_* is the server side (one registry per shard
// process), countnet_client_* the counter-client side, countnet_dedup_*
// the exactly-once table (server side, registered by the shard that
// owns it). *_total suffixes are Prometheus counters; the rest are
// gauges.
const (
	// Shard (server) side.
	MetricShardFrames = "countnet_shard_frames_total"
	HelpShardFrames   = "Request frames decoded and served by the shard, deduplicated replays included."

	MetricShardConnsOpen = "countnet_shard_conns_open"
	HelpShardConnsOpen   = "Client connections the shard is currently tracking (TCP only)."

	MetricShardConns = "countnet_shard_conns_total"
	HelpShardConns   = "Client connections the shard has accepted since start (TCP only)."

	MetricShardPackets = "countnet_shard_packets_total"
	HelpShardPackets   = "Request datagrams received by the shard, duplicates included (UDP only)."

	MetricShardDrops = "countnet_shard_dropped_packets_total"
	HelpShardDrops   = "Request datagrams dropped whole without a reply: malformed or protocol-violating (UDP only)."

	MetricShardWorkers = "countnet_shard_workers"
	HelpShardWorkers   = "Packet-processing workers the shard was configured with (UDP only)."

	MetricShardWorkersBusy = "countnet_shard_workers_busy"
	HelpShardWorkersBusy   = "Workers currently executing a packet; the rest are parked on the dispatch queue (UDP only)."

	MetricShardRecvBatches = "countnet_shard_recv_batches_total"
	HelpShardRecvBatches   = "Receive syscalls issued by the shard; divide packets by this for the mean recvmmsg burst size (UDP only)."

	MetricShardRecvBatchPackets = "countnet_shard_recv_batch_packets_total"
	HelpShardRecvBatchPackets   = "Request datagrams delivered across all receive syscalls (UDP only)."

	MetricShardSendBatches = "countnet_shard_send_batches_total"
	HelpShardSendBatches   = "Send syscalls issued by the shard's reply path; divide packets by this for the mean sendmmsg burst size (UDP only)."

	MetricShardSendBatchPackets = "countnet_shard_send_batch_packets_total"
	HelpShardSendBatchPackets   = "Response datagrams written across all send syscalls (UDP only)."

	// Exactly-once dedup table (server side).
	MetricDedupClients = "countnet_dedup_clients"
	HelpDedupClients   = "Client windows currently tracked by the shard's exactly-once dedup table."

	MetricDedupPinned = "countnet_dedup_pinned_clients"
	HelpDedupPinned   = "Tracked client windows pinned against eviction by a live connection or in-flight packet."

	MetricDedupRecords = "countnet_dedup_records"
	HelpDedupRecords   = "(seq, reply) records held across all client windows — the dedup occupancy."

	MetricDedupReplays = "countnet_dedup_replays_total"
	HelpDedupReplays   = "Mutating frames answered from a recorded reply instead of re-executed — each one an absorbed duplicate or retry."

	MetricDedupEvictions = "countnet_dedup_client_evictions_total"
	HelpDedupEvictions   = "Client windows evicted at the Clients cap (least recently bound, unpinned, past the MinIdle guard)."

	MetricDedupMinIdle = "countnet_dedup_min_idle_seconds"
	HelpDedupMinIdle   = "Configured eviction idle guard: an unpinned client bound more recently than this is never evicted."

	MetricDedupOldestIdle = "countnet_dedup_oldest_idle_seconds"
	HelpDedupOldestIdle   = "Age of the least recently bound unpinned client window. With MaxIdle unset records never expire by age, so unbounded growth here is window bloat from abandoned clients; with MaxIdle set it stays under that bound."

	MetricDedupMaxIdle = "countnet_dedup_max_idle_seconds"
	HelpDedupMaxIdle   = "Configured idle-age expiry bound: an unpinned client idle longer than this is expired on the next registration. 0 = age expiry disabled."

	MetricDedupExpirations = "countnet_dedup_client_expirations_total"
	HelpDedupExpirations   = "Client windows expired by the MaxIdle idle-age bound (abandoned client ids reclaimed; distinct from cap evictions)."

	// Counter client side.
	MetricClientRPCs = "countnet_client_rpcs_total"
	HelpClientRPCs   = "Request frames sent by the counter's sessions, retired sessions folded in (over UDP, retransmitted copies count)."

	MetricClientFlights = "countnet_client_flights_total"
	HelpClientFlights   = "Pooled flights started: each checks a session out, runs one operation, and checks it back in."

	MetricClientRetries = "countnet_client_flight_retries_total"
	HelpClientRetries   = "Flight attempts beyond the first — each re-sent its full window from the sequence tape on a fresh session."

	MetricClientInflight = "countnet_client_inflight"
	HelpClientInflight   = "Flights currently holding pool sessions; zero is the quiescence an exact-count Read requires."

	MetricClientWindows = "countnet_client_windows_total"
	HelpClientWindows   = "Coalescing windows drained behind flight owners."

	MetricClientWindowTokens = "countnet_client_window_tokens_total"
	HelpClientWindowTokens   = "Inc callers that pooled into coalescing windows; divide by the windows total for the mean window size."

	MetricClientPoolCheckouts = "countnet_client_pool_checkouts_total"
	HelpClientPoolCheckouts   = "Sessions checked out of the pool by flights."

	MetricClientPoolDials = "countnet_client_pool_dials_total"
	HelpClientPoolDials   = "Fresh sessions dialed because no healthy idle session was available."

	MetricClientPoolEvictions = "countnet_client_pool_evictions_total"
	HelpClientPoolEvictions   = "Sessions evicted from the pool: failed the checkout health probe or died mid-flight."

	MetricClientPoolIdle = "countnet_client_pool_idle"
	HelpClientPoolIdle   = "Idle sessions currently retained by the pool."

	MetricClientPackets = "countnet_client_packets_total"
	HelpClientPackets   = "Request datagrams sent by the counter's sessions, first sends plus retransmits (UDP only)."

	MetricClientRetransmits = "countnet_client_retransmits_total"
	HelpClientRetransmits   = "Request datagrams that were retransmissions; a rising rate means loss or an unresponsive shard (UDP only)."

	MetricClientPipelineDepth = "countnet_client_pipeline_depth"
	HelpClientPipelineDepth   = "Configured per-socket window of outstanding request datagrams; 1 is stop-and-wait (UDP only)."

	MetricClientOutstanding = "countnet_client_outstanding_packets"
	HelpClientOutstanding   = "Request datagrams currently in flight (sent, not yet matched to a response) across the counter's pooled sessions (UDP only)."

	MetricClientMsgs = "countnet_client_msgs_total"
	HelpClientMsgs   = "Link-level messages sent inside the in-process emulation — distnet's wire-cost unit (distnet only)."

	// Flight-latency histograms (PR 10). All four _seconds families
	// record nanoseconds on lock-free log buckets and expose seconds;
	// the attempts family records plain counts. Observing them adds
	// zero frames — the bill stays bit-identical to the detached
	// counter (the conformance frame-bill gate pins this).
	MetricClientFlightSeconds = "countnet_client_flight_seconds"
	HelpClientFlightSeconds   = "End-to-end flight latency: first checkout through landing, retry backoff included; the tail an Inc caller actually feels."

	MetricClientAttemptSeconds = "countnet_client_attempt_seconds"
	HelpClientAttemptSeconds   = "Wire round-trip time of one flight attempt on one checked-out session (checkout excluded)."

	MetricClientCoalesceSeconds = "countnet_client_coalesce_wait_seconds"
	HelpClientCoalesceSeconds   = "Time an Inc caller spent parked in a coalescing window before its batched flight landed."

	MetricClientCheckoutSeconds = "countnet_client_pool_checkout_seconds"
	HelpClientCheckoutSeconds   = "Time flights spent checking a session out of the pool, health probes and fresh dials included."

	MetricClientFlightAttempts = "countnet_client_flight_attempts"
	HelpClientFlightAttempts   = "Tries per completed flight: 1 on a clean link, more means sessions died mid-flight and the tape replayed."

	MetricClientFlightEvents = "countnet_client_flight_events"
	HelpClientFlightEvents   = "Completed flights currently retained in the /debug/flights ring buffer."
)
