package wire

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctlplane"
)

// Default dedup bounds: a shard remembers the (seq, reply) pairs of at
// most DefaultDedupWindow applied mutating frames per client, and
// tracks at most DefaultDedupClients clients (least-recently-registered
// unpinned client evicted first). The window is the exactly-once
// horizon — a retry is deduplicated as long as fewer than Window newer
// frames from the same client reached the shard in between, which a
// prompt bounded-budget retry stays far inside of.
const (
	DefaultDedupWindow  = 4096
	DefaultDedupClients = 1024
)

// DefaultDedupMinIdle is the default eviction idle guard: an unpinned
// client entry whose last binding is more recent than this is never
// evicted at the Clients cap (the table temporarily grows instead).
// Connectionless transports depend on it — a UDP client pins its entry
// only for the instant each packet is processed, so without the guard,
// churn from other clients could evict a live client's window between
// a lost response and its retransmit and the duplicate would
// re-execute. Ten seconds covers the default retransmit and retry
// budgets (2s / 8s) with margin while bounding worst-case growth past
// the cap to ten seconds' worth of registration churn; deployments
// that raise those budgets should raise MinIdle with them.
const DefaultDedupMinIdle = 10 * time.Second

// DedupConfig sizes a shard's exactly-once state: Window is the number
// of (seq, reply) records kept per client, Clients the number of
// clients tracked, MinIdle the how-recently-bound guard protecting
// live-but-unpinned clients from cap eviction (negative disables it).
// Zero fields take the defaults, so the zero value is the production
// configuration.
//
// MaxIdle is the idle-age expiry bound: an UNPINNED client whose last
// binding is older than MaxIdle is expired (window reclaimed) on the
// next registration, whether or not the Clients cap is reached — the
// reclaim path for abandoned client ids on shards that track fewer
// clients than the cap, where LRU eviction alone would let their
// windows live forever. 0 (the default) disables age expiry; a
// positive MaxIdle below the effective MinIdle is clamped up to it,
// since the guard promises that recently-bound clients survive.
type DedupConfig struct {
	Window  int
	Clients int
	MinIdle time.Duration
	MaxIdle time.Duration
}

func (c DedupConfig) withDefaults() DedupConfig {
	if c.Window <= 0 {
		c.Window = DefaultDedupWindow
	}
	if c.Clients <= 0 {
		c.Clients = DefaultDedupClients
	}
	if c.MinIdle == 0 {
		c.MinIdle = DefaultDedupMinIdle
	} else if c.MinIdle < 0 {
		c.MinIdle = 0
	}
	if c.MaxIdle < 0 {
		c.MaxIdle = 0
	} else if c.MaxIdle > 0 && c.MaxIdle < c.MinIdle {
		c.MaxIdle = c.MinIdle
	}
	return c
}

// Dedup is one shard's per-client exactly-once table: bounded
// (seq, reply) windows keyed by client id, with LRU eviction of
// unpinned clients at the Clients cap.
type Dedup struct {
	cfg     DedupConfig
	mu      sync.Mutex
	clients map[uint64]*list.Element // client id -> LRU element (*DedupEntry)
	lru     list.List                // most recently registered first

	// Control-plane counters (see Stats / RegisterMetrics). records is
	// the live (seq, reply) occupancy across all windows; replays and
	// evictions are monotone. They are bare atomic adds on paths already
	// holding a lock, so the hot path pays nothing measurable.
	records     atomic.Int64
	replays     atomic.Int64
	evictions   atomic.Int64
	expirations atomic.Int64
}

// NewDedup builds an empty table with cfg's bounds (zero fields take
// the defaults).
func NewDedup(cfg DedupConfig) *Dedup {
	return &Dedup{cfg: cfg.withDefaults(), clients: make(map[uint64]*list.Element)}
}

// Config reports the table's effective (defaulted) bounds.
func (d *Dedup) Config() DedupConfig { return d.cfg }

// DedupEntry pairs a registered client id with its dedup window. refs
// counts the bindings currently holding the id (guarded by the table's
// mutex): while any is live the entry is pinned against LRU eviction,
// so registration churn from other clients can never push out the
// window a live client's retry depends on.
type DedupEntry struct {
	id       uint64
	tab      *Dedup // owning table, for the shared occupancy/replay counters
	refs     int
	lastBind time.Time // guarded by the table's mutex

	// The client's bounded exactly-once window: the replies of its last
	// Window applied mutating frames, keyed by sequence number, with
	// FIFO eviction.
	win     int
	wmu     sync.Mutex
	replies map[uint64]int64
	order   []uint64 // insertion-order ring over recorded seqs
	head    int
}

// Do replays the recorded reply for an already-applied sequence, or
// runs exec exactly once and records its reply. The lock spans lookup
// and execution so a retry racing the original frame (same client, two
// connections or two datagrams) cannot double-apply; exec is a single
// atomic word operation, so serializing a client's frames per shard
// here costs lock-handoff nanoseconds against microsecond round trips.
func (e *DedupEntry) Do(seq uint64, exec func() (int64, bool)) (int64, bool) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if v, ok := e.replies[seq]; ok {
		e.tab.replays.Add(1)
		return v, true
	}
	v, ok := exec()
	if !ok {
		return 0, false
	}
	if len(e.order) == e.win {
		delete(e.replies, e.order[e.head])
		e.order[e.head] = seq
		e.head = (e.head + 1) % e.win
	} else {
		e.order = append(e.order, seq)
		e.tab.records.Add(1)
	}
	e.replies[seq] = v
	return v, true
}

// Bind returns (registering if needed) the dedup entry for a client id,
// pinning it until the matching Release. Bindings announcing the same
// id — a pooled counter's whole session fleet, including the fresh
// session a retry runs on, or every datagram a UDP client sends — share
// one window per shard, which is what makes retries exactly-once.
// Eviction at the Clients cap takes the least recently registered
// client that is both UNPINNED and idle for at least the MinIdle guard
// (a client that bound recently may be a datagram client mid-exchange
// whose pin lasted only one packet); if every tracked client is pinned
// or recently active the map grows past the cap until one goes idle.
func (d *Dedup) Bind(id uint64) *DedupEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	d.expireLocked(now)
	if el, ok := d.clients[id]; ok {
		e := el.Value.(*DedupEntry)
		e.refs++
		e.lastBind = now
		d.lru.MoveToFront(el)
		return e
	}
	if len(d.clients) >= d.cfg.Clients {
		// The LRU is ordered by last bind, so the first UNPINNED entry
		// from the back is also the oldest unpinned one: either it is
		// past the idle guard and gets evicted, or every unpinned entry
		// is younger still and the scan can stop — only pinned entries
		// (rare, bounded by live connections) are ever stepped over.
		for el := d.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*DedupEntry)
			if e.refs != 0 {
				continue
			}
			if now.Sub(e.lastBind) >= d.cfg.MinIdle {
				d.lru.Remove(el)
				delete(d.clients, e.id)
				// refs == 0 under the table mutex means no Do is running
				// (Do only happens between Bind and Release), so the
				// window length is stable here.
				d.records.Add(-int64(len(e.replies)))
				d.evictions.Add(1)
			}
			break
		}
	}
	e := &DedupEntry{id: id, tab: d, refs: 1, lastBind: now, win: d.cfg.Window, replies: make(map[uint64]int64)}
	d.clients[id] = d.lru.PushFront(e)
	return e
}

// expireLocked reclaims UNPINNED clients idle past the MaxIdle bound —
// the age-expiry path for abandoned client ids, run on every
// registration under the table mutex. The LRU is ordered by last bind,
// so the scan walks expired entries from the back and stops at the
// first one young enough to keep; only pinned entries older than the
// bound (bounded by live bindings) are stepped over. MaxIdle >= the
// MinIdle guard by construction, so a client recent enough to be
// protected from cap eviction is never expired either.
func (d *Dedup) expireLocked(now time.Time) {
	if d.cfg.MaxIdle <= 0 {
		return
	}
	var next *list.Element
	for el := d.lru.Back(); el != nil; el = next {
		next = el.Prev()
		e := el.Value.(*DedupEntry)
		if now.Sub(e.lastBind) < d.cfg.MaxIdle {
			return
		}
		if e.refs != 0 {
			continue
		}
		d.lru.Remove(el)
		delete(d.clients, e.id)
		// refs == 0 under the table mutex means no Do is running, so
		// the window length is stable here.
		d.records.Add(-int64(len(e.replies)))
		d.expirations.Add(1)
	}
}

// Release unpins a dedup entry when its binding goes away (or rebinds
// to another id). The records stay until LRU eviction, so a retry that
// re-binds moments after its session died still finds them.
func (d *Dedup) Release(e *DedupEntry) {
	d.mu.Lock()
	e.refs--
	d.mu.Unlock()
}

// DedupStats is a point-in-time view of a table's exactly-once state —
// what the control plane scrapes. Replays and Evictions are monotone;
// the rest are levels.
type DedupStats struct {
	Clients     int           // client windows currently tracked
	Pinned      int           // of which pinned by a live binding
	Records     int64         // (seq, reply) records held across all windows
	Replays     int64         // frames answered from a record (absorbed duplicates)
	Evictions   int64         // client windows evicted at the Clients cap
	Expirations int64         // client windows expired by the MaxIdle age bound
	MinIdle     time.Duration // configured eviction idle guard
	MaxIdle     time.Duration // configured idle-age expiry bound (0 = disabled)
	OldestIdle  time.Duration // age of the least recently bound unpinned client
}

// Stats snapshots the table. It takes the registration mutex only (a
// scrape-time cost), never a window mutex, so it cannot delay a frame
// being deduplicated. OldestIdle is the operator's window-bloat signal:
// with MaxIdle unset, records never expire by AGE — only LRU eviction
// at the Clients cap reclaims them — so on a shard tracking fewer
// clients than the cap, an abandoned client's window lives forever and
// this age grows without bound; with MaxIdle set, registrations sweep
// such windows and the age stays under the bound.
func (d *Dedup) Stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DedupStats{
		Clients:     len(d.clients),
		Records:     d.records.Load(),
		Replays:     d.replays.Load(),
		Evictions:   d.evictions.Load(),
		Expirations: d.expirations.Load(),
		MinIdle:     d.cfg.MinIdle,
		MaxIdle:     d.cfg.MaxIdle,
	}
	now := time.Now()
	for el := d.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*DedupEntry)
		if e.refs != 0 {
			st.Pinned++
			continue
		}
		if st.OldestIdle == 0 {
			if age := now.Sub(e.lastBind); age > 0 {
				st.OldestIdle = age
			}
		}
	}
	return st
}

// RegisterMetrics exposes the table on a control-plane registry under
// the countnet_dedup_* names (OPERATIONS.md documents each). The
// closures call Stats at scrape time, so registration itself retains no
// state and the data path is untouched.
func (d *Dedup) RegisterMetrics(r *ctlplane.Registry, labels ...ctlplane.Label) {
	r.Gauge(MetricDedupClients, HelpDedupClients,
		func() int64 { return int64(d.Stats().Clients) }, labels...)
	r.Gauge(MetricDedupPinned, HelpDedupPinned,
		func() int64 { return int64(d.Stats().Pinned) }, labels...)
	r.Gauge(MetricDedupRecords, HelpDedupRecords,
		func() int64 { return d.records.Load() }, labels...)
	r.Counter(MetricDedupReplays, HelpDedupReplays,
		func() int64 { return d.replays.Load() }, labels...)
	r.Counter(MetricDedupEvictions, HelpDedupEvictions,
		func() int64 { return d.evictions.Load() }, labels...)
	r.Counter(MetricDedupExpirations, HelpDedupExpirations,
		func() int64 { return d.expirations.Load() }, labels...)
	r.Gauge(MetricDedupMinIdle, HelpDedupMinIdle,
		func() int64 { return int64(d.cfg.MinIdle / time.Second) }, labels...)
	r.Gauge(MetricDedupMaxIdle, HelpDedupMaxIdle,
		func() int64 { return int64(d.cfg.MaxIdle / time.Second) }, labels...)
	r.Gauge(MetricDedupOldestIdle, HelpDedupOldestIdle,
		func() int64 { return int64(d.Stats().OldestIdle / time.Second) }, labels...)
}
