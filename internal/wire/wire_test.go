package wire

import (
	"sync/atomic"
	"testing"
	"time"
)

// A dedup entry replays recorded replies for already-applied sequences
// and evicts FIFO past its window.
func TestDedupWindowReplayAndEviction(t *testing.T) {
	d := NewDedup(DedupConfig{Window: 4, Clients: 2})
	e := d.Bind(1)
	execs := 0
	exec := func(v int64) func() (int64, bool) {
		return func() (int64, bool) { execs++; return v, true }
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if v, ok := e.Do(seq, exec(int64(seq*10))); !ok || v != int64(seq*10) {
			t.Fatalf("seq %d: (%d, %v)", seq, v, ok)
		}
	}
	// Replay: no extra executions, recorded replies come back.
	for seq := uint64(1); seq <= 4; seq++ {
		if v, ok := e.Do(seq, exec(-1)); !ok || v != int64(seq*10) {
			t.Fatalf("replay seq %d: (%d, %v)", seq, v, ok)
		}
	}
	if execs != 4 {
		t.Fatalf("execs = %d, want 4", execs)
	}
	// Push past the window: seq 1 falls out FIFO and re-executes.
	if _, ok := e.Do(5, exec(50)); !ok {
		t.Fatal("seq 5 failed")
	}
	if v, _ := e.Do(1, exec(-7)); v != -7 {
		t.Fatalf("evicted seq re-ran with %d, want -7", v)
	}
	if execs != 6 {
		t.Fatalf("execs = %d, want 6", execs)
	}
}

// The client table evicts the least recently registered UNPINNED client
// at the cap; pinned clients survive arbitrary churn.
func TestDedupClientPinning(t *testing.T) {
	d := NewDedup(DedupConfig{Window: 8, Clients: 2, MinIdle: -1})
	pinned := d.Bind(100)
	if _, ok := pinned.Do(1, func() (int64, bool) { return 42, true }); !ok {
		t.Fatal("record failed")
	}
	// Churn far past the cap while client 100 stays pinned.
	for id := uint64(1); id <= 10; id++ {
		d.Release(d.Bind(id))
	}
	replayed := true
	if v, _ := pinned.Do(1, func() (int64, bool) { replayed = false; return -1, true }); v != 42 || !replayed {
		t.Fatalf("pinned window lost its record across churn (v=%d, replayed=%v)", v, replayed)
	}
	// Unpin and churn again: now the entry is evictable, and a rebind
	// starts a fresh window.
	d.Release(pinned)
	for id := uint64(11); id <= 20; id++ {
		d.Release(d.Bind(id))
	}
	fresh := d.Bind(100)
	defer d.Release(fresh)
	ran := false
	if _, ok := fresh.Do(1, func() (int64, bool) { ran = true; return 0, true }); !ok || !ran {
		t.Fatal("post-eviction rebind did not re-execute")
	}
}

// Zero-valued configs take the production defaults.
func TestDedupConfigDefaults(t *testing.T) {
	d := NewDedup(DedupConfig{})
	cfg := d.Config()
	if cfg.Window != DefaultDedupWindow || cfg.Clients != DefaultDedupClients ||
		cfg.MinIdle != DefaultDedupMinIdle {
		t.Fatalf("defaulted config = %+v", cfg)
	}
}

// The MinIdle guard: an UNPINNED entry that was bound recently — a
// datagram client whose pin lasts only one packet — survives cap churn
// from other clients, so its window is still there when the lost
// response's retransmit arrives and the duplicate is replayed, not
// re-executed.
func TestDedupMinIdleGuardsRecentClients(t *testing.T) {
	d := NewDedup(DedupConfig{Window: 8, Clients: 2, MinIdle: time.Hour})
	e := d.Bind(100)
	if _, ok := e.Do(1, func() (int64, bool) { return 42, true }); !ok {
		t.Fatal("record failed")
	}
	d.Release(e) // refs back to 0: only the idle guard protects it now
	for id := uint64(1); id <= 10; id++ {
		d.Release(d.Bind(id))
	}
	again := d.Bind(100)
	defer d.Release(again)
	replayed := true
	if v, _ := again.Do(1, func() (int64, bool) { replayed = false; return -1, true }); v != 42 || !replayed {
		t.Fatalf("recently-active window evicted by churn (v=%d, replayed=%v)", v, replayed)
	}
}

// The MaxIdle age bound: an abandoned (unpinned, long-idle) client is
// expired on the next registration even far below the Clients cap,
// while pinned clients and recently-bound clients survive the sweep.
func TestDedupMaxIdleExpiry(t *testing.T) {
	// MinIdle -1 disables the recency guard so a tiny MaxIdle is not
	// clamped up to the 10s default.
	d := NewDedup(DedupConfig{Window: 4, Clients: 1024, MinIdle: -1, MaxIdle: 30 * time.Millisecond})
	if cfg := d.Config(); cfg.MaxIdle != 30*time.Millisecond {
		t.Fatalf("MaxIdle = %v, want 30ms", cfg.MaxIdle)
	}

	abandoned := d.Bind(1)
	if _, ok := abandoned.Do(1, func() (int64, bool) { return 10, true }); !ok {
		t.Fatal("record failed")
	}
	d.Release(abandoned) // departs: nothing pins it, nothing rebinds it

	pinned := d.Bind(2)
	if _, ok := pinned.Do(1, func() (int64, bool) { return 20, true }); !ok {
		t.Fatal("record failed")
	}
	// Client 2 stays pinned across the idle period, like a live TCP
	// connection that just isn't sending.

	time.Sleep(40 * time.Millisecond) // both idle past MaxIdle

	// A registration triggers the sweep: the abandoned window goes, the
	// pinned one is stepped over.
	recent := d.Bind(3)
	if st := d.Stats(); st.Expirations != 1 || st.Clients != 2 {
		t.Fatalf("after sweep: expirations=%d clients=%d, want 1, 2", st.Expirations, st.Clients)
	}
	replayed := true
	if v, _ := pinned.Do(1, func() (int64, bool) { replayed = false; return -1, true }); v != 20 || !replayed {
		t.Fatalf("pinned window expired by age (v=%d, replayed=%v)", v, replayed)
	}

	// A recently-bound UNPINNED client survives the next sweep: the scan
	// stops at the first entry younger than the bound.
	d.Release(recent)
	d.Release(d.Bind(4))
	if st := d.Stats(); st.Expirations != 1 {
		t.Fatalf("recently-bound client expired: expirations=%d, want 1", st.Expirations)
	}

	// The abandoned id rebinding starts from a fresh window: its old
	// record is gone, so the exec runs again.
	back := d.Bind(1)
	defer d.Release(back)
	ran := false
	if _, ok := back.Do(1, func() (int64, bool) { ran = true; return 0, true }); !ok || !ran {
		t.Fatal("expired client's rebind did not re-execute")
	}
	d.Release(pinned)
}

// Backoff delays are jittered exponentials: within [d/2, d] for
// d = min(Base<<(n-1), Max), never zero, never past Max.
func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Max: 50 * time.Millisecond}
	full := []time.Duration{8, 16, 32, 50, 50, 50}
	for attempt := 1; attempt <= len(full); attempt++ {
		want := full[attempt-1] * time.Millisecond
		for trial := 0; trial < 100; trial++ {
			d := b.Delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// The zero value is usable: defaults applied, still bounded.
	var zero Backoff
	if d := zero.Delay(1); d <= 0 || d > 2*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside (0, 2ms]", d)
	}
	if d := zero.Delay(30); d <= 0 || d > 250*time.Millisecond {
		t.Fatalf("zero-value capped delay %v outside (0, 250ms]", d)
	}
}

// The tape replays identical sequence numbers after a rewind and only
// draws fresh ones past the recorded end.
func TestSeqTapeRewind(t *testing.T) {
	var src atomic.Uint64
	tp := NewSeqTape(&src)
	first := []uint64{tp.Take(), tp.Take(), tp.Take()}
	tp.Rewind()
	for i, want := range first {
		if got := tp.Take(); got != want {
			t.Fatalf("replayed seq %d = %d, want %d", i, got, want)
		}
	}
	if next := tp.Take(); next != first[len(first)-1]+1 {
		t.Fatalf("post-replay seq = %d, want %d", next, first[len(first)-1]+1)
	}
}
