// Package wire is the transport-agnostic substrate under the
// distributed deployments: the canonical binary frame codec shared by
// the TCP (internal/tcpnet) and UDP (internal/udpnet) transports, the
// datagram packing layer, the bounded per-client dedup tables that make
// retried mutating frames exactly-once, the rewindable sequence tape
// client retries draw their numbers from, and the jittered-exponential
// backoff / retry-budget types both transports pace their recoveries
// with.
//
// The frame protocol itself is documented where it is served (the
// tcpnet package comment); this package owns only the mechanics every
// transport needs to agree on: op codes, canonical encode/decode
// (FuzzFrameCodec holds the codec to re-encoding any well-formed stream
// bit for bit), and the exactly-once bookkeeping.
package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync/atomic"
)

// Protocol op codes. Ops 1-5 are the v1 stateless frames kept decodable
// for old clients; ops 6-10 are the v2 exactly-once frames: HELLO binds
// a connection (or datagram) to a client id, and every v2 mutating
// frame carries a monotone per-client sequence number the serving shard
// dedups on. The op byte IS the version marker — the codec
// distinguishes v1 from v2 frames without connection state.
const (
	OpStep  byte = 1
	OpCell  byte = 2
	OpStepN byte = 3
	OpCellN byte = 4
	OpRead  byte = 5

	OpHello  byte = 6
	OpStep2  byte = 7
	OpCell2  byte = 8
	OpStepN2 byte = 9
	OpCellN2 byte = 10
)

// MaxFrameLen is the longest request frame: op(1) id(4) seq(8) count(8).
const MaxFrameLen = 21

// Frame is one decoded request frame. Fields beyond Op and ID are
// populated per op: Client for HELLO, Seq for the v2 mutating ops, N
// for the batched ops of either version.
type Frame struct {
	Op     byte
	ID     int32
	Client uint64
	Seq    uint64
	N      int64
}

// ErrUnknownOp reports an op byte outside the protocol; it is returned
// before any payload byte is consumed.
var ErrUnknownOp = errors.New("wire: unknown op")

// frameExtra returns the payload length following the 5-byte op+id
// header, or -1 for an unknown op.
func frameExtra(op byte) int {
	switch op {
	case OpStep, OpCell, OpRead:
		return 0
	case OpHello, OpStep2, OpCell2, OpStepN, OpCellN:
		return 8
	case OpStepN2, OpCellN2:
		return 16
	}
	return -1
}

// FrameLen returns the encoded length of a frame with the given op, or
// -1 for an unknown op — what a datagram packer needs to budget packets
// without encoding twice.
func FrameLen(op byte) int {
	extra := frameExtra(op)
	if extra < 0 {
		return -1
	}
	return 5 + extra
}

// AppendFrame encodes f onto dst. The encoding is canonical: decoding
// and re-encoding any well-formed byte stream reproduces it exactly
// (FuzzFrameCodec holds the codec to this).
func AppendFrame(dst []byte, f *Frame) []byte {
	var b [MaxFrameLen]byte
	b[0] = f.Op
	binary.BigEndian.PutUint32(b[1:5], uint32(f.ID))
	switch f.Op {
	case OpHello:
		binary.BigEndian.PutUint64(b[5:13], f.Client)
	case OpStep2, OpCell2:
		binary.BigEndian.PutUint64(b[5:13], f.Seq)
	case OpStepN, OpCellN:
		binary.BigEndian.PutUint64(b[5:13], uint64(f.N))
	case OpStepN2, OpCellN2:
		binary.BigEndian.PutUint64(b[5:13], f.Seq)
		binary.BigEndian.PutUint64(b[13:21], uint64(f.N))
	}
	return append(dst, b[:5+frameExtra(f.Op)]...)
}

// ReadFrame decodes one request frame from r into f, using buf as the
// read scratch. An unknown op is reported before any payload byte is
// consumed.
func ReadFrame(r io.Reader, buf *[MaxFrameLen]byte, f *Frame) error {
	if _, err := io.ReadFull(r, buf[:5]); err != nil {
		return err
	}
	f.Op = buf[0]
	f.ID = int32(binary.BigEndian.Uint32(buf[1:5]))
	f.Client, f.Seq, f.N = 0, 0, 0
	extra := frameExtra(f.Op)
	if extra < 0 {
		return ErrUnknownOp
	}
	if extra > 0 {
		if _, err := io.ReadFull(r, buf[5:5+extra]); err != nil {
			return err
		}
	}
	switch f.Op {
	case OpHello:
		f.Client = binary.BigEndian.Uint64(buf[5:13])
	case OpStep2, OpCell2:
		f.Seq = binary.BigEndian.Uint64(buf[5:13])
	case OpStepN, OpCellN:
		f.N = int64(binary.BigEndian.Uint64(buf[5:13]))
	case OpStepN2, OpCellN2:
		f.Seq = binary.BigEndian.Uint64(buf[5:13])
		f.N = int64(binary.BigEndian.Uint64(buf[13:21]))
	}
	return nil
}

// DecodeFrame decodes one frame from the front of data into f and
// returns the encoded length consumed. It is the allocation-free
// sibling of ReadFrame for callers that already hold the whole
// encoding in memory (the datagram path): no reader, no escaping
// scratch — the UDP shard's per-packet decode must not touch the heap.
func DecodeFrame(data []byte, f *Frame) (int, error) {
	if len(data) < 5 {
		return 0, io.ErrUnexpectedEOF
	}
	f.Op = data[0]
	f.ID = int32(binary.BigEndian.Uint32(data[1:5]))
	f.Client, f.Seq, f.N = 0, 0, 0
	extra := frameExtra(f.Op)
	if extra < 0 {
		return 0, ErrUnknownOp
	}
	if len(data) < 5+extra {
		return 0, io.ErrUnexpectedEOF
	}
	switch f.Op {
	case OpHello:
		f.Client = binary.BigEndian.Uint64(data[5:13])
	case OpStep2, OpCell2:
		f.Seq = binary.BigEndian.Uint64(data[5:13])
	case OpStepN, OpCellN:
		f.N = int64(binary.BigEndian.Uint64(data[5:13]))
	case OpStepN2, OpCellN2:
		f.Seq = binary.BigEndian.Uint64(data[5:13])
		f.N = int64(binary.BigEndian.Uint64(data[13:21]))
	}
	return 5 + extra, nil
}

// V2Op maps a v1 mutating op to its seq-numbered v2 form.
func V2Op(op byte) byte {
	switch op {
	case OpStep:
		return OpStep2
	case OpCell:
		return OpCell2
	case OpStepN:
		return OpStepN2
	case OpCellN:
		return OpCellN2
	}
	return op
}

// clientIDs hands out process-unique client ids from a random base, so
// clients from different processes sharing one shard fleet are unlikely
// to collide on a dedup window.
var clientIDs atomic.Uint64

func init() { clientIDs.Store(rand.Uint64()) }

// NextClientID returns a fresh process-unique client id.
func NextClientID() uint64 { return clientIDs.Add(1) }

// SeqTape draws monotone sequence numbers from a counter shared across a
// client's flights and records them in issue order, so a rewound retry
// re-sends the IDENTICAL sequence number on the identical frame. Frame i
// of attempt 2 is frame i of attempt 1 because the walk is
// deterministic: batches replay the topology, and single-token walks are
// steered by replies that the shards' dedup windows replay verbatim for
// already-applied sequences.
type SeqTape struct {
	src     *atomic.Uint64
	used    []uint64
	next    int
	rewinds int64
}

// NewSeqTape starts an empty tape drawing fresh numbers from src.
func NewSeqTape(src *atomic.Uint64) *SeqTape { return &SeqTape{src: src} }

// Take returns the next sequence number: a recorded one while replaying
// after Rewind, a fresh one from the source past the recorded end.
func (tp *SeqTape) Take() uint64 {
	if tp.next < len(tp.used) {
		v := tp.used[tp.next]
		tp.next++
		return v
	}
	v := tp.src.Add(1)
	tp.used = append(tp.used, v)
	tp.next = len(tp.used)
	return v
}

// Rewind restarts the tape for a retry attempt. A rewind of a tape
// that has recorded nothing (the one before the first attempt) is not
// counted, so Rewinds reports true retries.
func (tp *SeqTape) Rewind() {
	if tp.next > 0 || len(tp.used) > 0 {
		tp.rewinds++
	}
	tp.next = 0
}

// Rewinds returns how many retry attempts replayed this tape — the
// control plane's flight-retry count. Tapes are single-goroutine, so
// callers read this after the flight settles.
func (tp *SeqTape) Rewinds() int64 { return tp.rewinds }
