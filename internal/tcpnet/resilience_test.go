package tcpnet

import (
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// failAfter is a net.Conn that starts failing writes after `allow`
// successful ones — a deterministic mid-window connection death.
type failAfter struct {
	net.Conn
	allow atomic.Int32
}

func newFailAfter(conn net.Conn, allow int32) *failAfter {
	f := &failAfter{Conn: conn}
	f.allow.Store(allow)
	return f
}

var errInjected = errors.New("injected connection failure")

func (f *failAfter) Write(b []byte) (int, error) {
	if f.allow.Add(-1) < 0 {
		f.Conn.Close()
		return 0, errInjected
	}
	return f.Conn.Write(b)
}

// idleSession digs the next-checkout idle session out of the counter's
// pool (via the xport test hook) as its concrete TCP type.
func idleSession(t *testing.T, ctr *Counter) *Session {
	t.Helper()
	idle := ctr.PoolIdle()
	if len(idle) == 0 {
		t.Fatal("no idle session in the pool")
	}
	return idle[0].(*Session)
}

// The satellite regression: a session that dies MID-WINDOW (two frames
// applied, then the connection fails) must not surface the error to the
// caller — the failed session is evicted pool-wide and the window retries
// once on a fresh session. Values stay unique and the RPC bill monotone.
func TestCounterRetriesFailedWindow(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()

	// Prime the pool with one dialed session, then poison its connection
	// so the third frame of the next window dies mid-flight.
	first, err := ctr.Inc(0)
	if err != nil {
		t.Fatal(err)
	}
	before := ctr.RPCs()
	sess := idleSession(t, ctr)
	sess.conns[0] = newFailAfter(sess.conns[0], 2)

	vals, err := ctr.IncBatch(0, 10, nil)
	if err != nil {
		t.Fatalf("mid-window connection death surfaced to the caller: %v", err)
	}
	if len(vals) != 10 {
		t.Fatalf("retried window returned %d values, want 10", len(vals))
	}
	seen := map[int64]bool{first: true}
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("retried window duplicated value %d", v)
		}
		seen[v] = true
	}
	if after := ctr.RPCs(); after < before {
		t.Fatalf("RPCs() fell from %d to %d across an eviction", before, after)
	}
	// The poisoned session is gone pool-wide: the next flight runs on a
	// fresh one and keeps working.
	if _, err := ctr.Inc(1); err != nil {
		t.Fatalf("Inc after eviction: %v", err)
	}
}

// Killing a live session's connections while concurrent callers pool into
// windows must never surface a connection error to any Inc caller, and
// the RPC bill must stay monotone throughout (sampled concurrently).
func TestCounterSessionKillMidWindow(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	ctr := cluster.NewCounterPool(2)
	defer ctr.Close()
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}
	victim := idleSession(t, ctr)

	var stopSampling atomic.Bool
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		last := int64(0)
		for !stopSampling.Load() {
			now := ctr.RPCs()
			if now < last {
				t.Errorf("RPCs() fell from %d to %d", last, now)
				return
			}
			last = now
			// RPCs() takes the pool lock; sample gently so the workers
			// are not starved of checkouts on a single-CPU host.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const procs, per = 8, 40
	var wg sync.WaitGroup
	var killed sync.WaitGroup
	killed.Add(1)
	go func() { // the kill: drop the victim's connections mid-run
		defer killed.Done()
		for _, conn := range victim.conns {
			conn.Close()
		}
	}()
	errs := make([]error, procs)
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := ctr.Inc(pid); err != nil {
					errs[pid] = err
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	killed.Wait()
	stopSampling.Store(true)
	sampler.Wait()
	for pid, err := range errs {
		if err != nil {
			t.Fatalf("pid %d saw error despite retry: %v", pid, err)
		}
	}
}

// A long-dead pooled connection is evicted by the checkout health probe
// BEFORE a flight discovers it: with retries disabled (attempts=1) an
// Inc after the whole fleet restarted still succeeds, because the
// flight never runs on the dead session.
func TestPoolHealthCheckEvictsDeadSession(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	cluster := NewCluster(topo, []string{addr})
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	ctr.SetRetryPolicy(1, 0) // any mid-flight failure would surface
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}

	// Kill and restart the shard on the same address: the pooled idle
	// session's connection is now long-dead (FIN'd), and only the
	// checkout probe stands between it and the next flight.
	s.Close()
	s2, err := StartShard(addr, topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Wait for the FIN to reach the idle session's socket so the probe
	// deterministically sees EOF rather than an empty, live buffer.
	victim := idleSession(t, ctr)
	deadline := time.Now().Add(5 * time.Second)
	for victim.Healthy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if victim.Healthy() {
		t.Fatal("idle session still probes healthy after shard restart")
	}

	if _, err := ctr.Inc(0); err != nil {
		t.Fatalf("Inc after restart surfaced a dead-session error despite the health check: %v", err)
	}
	alive := ctr.PoolLive()
	if alive != 1 {
		t.Fatalf("pool holds %d live sessions, want 1 (dead one retired at checkout)", alive)
	}
}

// gateConn fails its connection's first write only after the release
// channel closes, signalling on failing first — it lets the test order
// "flight is mid-failure" before "Close is called" deterministically.
type gateConn struct {
	net.Conn
	failing chan struct{}
	release chan struct{}
	tripped atomic.Bool
}

func (g *gateConn) Write(b []byte) (int, error) {
	if g.tripped.CompareAndSwap(false, true) {
		close(g.failing)
		<-g.release
	}
	if g.tripped.Load() {
		g.Conn.Close()
		return 0, errInjected
	}
	return g.Conn.Write(b)
}

// The Close-racing-a-retry regression: a window whose first attempt
// fails while Close is running must hand its callers ErrClosed — never
// a raw dial or connection error from the replacement session (here the
// whole fleet is gone, so a retry that ignored Close would surface a
// dial failure).
func TestCounterCloseDuringRetry(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	ctr := cluster.NewCounterPool(1)
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}
	gate := &gateConn{failing: make(chan struct{}), release: make(chan struct{})}
	sess := idleSession(t, ctr)
	gate.Conn = sess.conns[0]
	sess.conns[0] = gate

	res := make(chan error, 1)
	go func() {
		_, err := ctr.IncBatch(0, 5, nil)
		res <- err
	}()
	<-gate.failing
	// The flight is wedged mid-write. Tear the world down: kill the
	// shards (a retry would get a dial error) and start Close, which
	// marks the counter closed and then waits for the flight.
	stop()
	closed := make(chan struct{})
	go func() {
		ctr.Close()
		close(closed)
	}()
	// Give Close time to set the flag, then let the write fail.
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	err = <-res
	<-closed
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("window racing Close returned %v, want ErrClosed", err)
	}
}

// Close during concurrent flights: pooled callers may observe ErrClosed
// (the sentinel) but never a raw connection error from their own
// counter's teardown; Close waits for in-flight windows, and later calls
// fail fast with ErrClosed.
func TestCounterCloseDuringFlights(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	ctr := cluster.NewCounter()

	const procs = 12
	var started sync.WaitGroup
	var wg sync.WaitGroup
	bad := make([]error, procs)
	started.Add(procs)
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			started.Done()
			for i := 0; ; i++ {
				_, err := ctr.Inc(pid)
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrClosed) {
					bad[pid] = err
				}
				return
			}
		}(pid)
	}
	started.Wait()
	ctr.Close()
	wg.Wait()
	for pid, err := range bad {
		if err != nil {
			t.Fatalf("pid %d saw a non-sentinel error across Close: %v", pid, err)
		}
	}
	if _, err := ctr.Inc(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inc after Close = %v, want ErrClosed", err)
	}
	if _, err := ctr.IncBatch(0, 4, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("IncBatch after Close = %v, want ErrClosed", err)
	}
	ctr.Close() // idempotent
}

// The pool retains at most `width` idle sessions, reuses them
// round-robin, and still hands out dense values under concurrency.
func TestCounterPoolWidth(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	ctr := cluster.NewCounterPool(2)
	defer ctr.Close()

	const procs, per = 8, 50
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v, err := ctr.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("pooled values not dense at %d: %d", i, v)
		}
	}
	idle := len(ctr.PoolIdle())
	if idle > 2 {
		t.Fatalf("pool retained %d idle sessions, width is 2", idle)
	}
	// Exact-count read side agrees with the workload.
	got, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != procs*per {
		t.Fatalf("Read() = %d, want %d", got, procs*per)
	}
}

// READ frames are non-mutating and power the session-level exact count.
func TestSessionRead(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if n, err := sess.Read(); err != nil || n != 0 {
		t.Fatalf("Read on fresh cluster = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := sess.IncBatch(0, 25, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // twice: reading must not mutate
		if n, err := sess.Read(); err != nil || n != 25 {
			t.Fatalf("Read #%d = (%d, %v), want (25, nil)", i, n, err)
		}
	}
	if _, err := sess.DecBatch(0, 10, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := sess.Read(); err != nil || n != 15 {
		t.Fatalf("Read after Dec = (%d, %v), want (15, nil)", n, err)
	}
}

// DedupConfig threads from StartShardConfig down to the shard's
// exactly-once table, and even a drastically shrunk window keeps a
// prompt mid-window retry exact — the bound is the horizon, not the
// correctness, as long as fewer than Window newer frames intervene.
func TestDedupConfigThreaded(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShardConfig{Dedup: wire.DedupConfig{Window: 8, Clients: 2}}
	s, err := StartShardConfig("127.0.0.1:0", topo, 0, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.dedup.Config(); got.Window != cfg.Dedup.Window || got.Clients != cfg.Dedup.Clients {
		t.Fatalf("shard dedup config = %+v, want %+v", got, cfg.Dedup)
	}
	cluster := NewCluster(topo, []string{s.Addr()})
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}
	sess := idleSession(t, ctr)
	sess.conns[0] = newFailAfter(sess.conns[0], 2)
	if _, err := ctr.IncBatch(0, 5, nil); err != nil {
		t.Fatalf("mid-window death surfaced under a custom dedup config: %v", err)
	}
	if got, err := ctr.Read(); err != nil || got != 6 {
		t.Fatalf("Read() = (%d, %v), want (6, nil)", got, err)
	}
}
