package tcpnet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
)

func benchCluster(b *testing.B, topo *network.Network, shards int) (*Cluster, func()) {
	b.Helper()
	var servers []*Shard
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		s, err := StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			b.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	return NewCluster(topo, addrs), func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// E25: round trips and wall-clock per token of batched TCP pipelines as
// the batch size grows — rpcs/token falls from depth+1 towards
// (size+t)/k.
func BenchmarkSessionIncBatch(b *testing.B) {
	for _, k := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("CWT8x24/k=%d", k), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			cluster, stop := benchCluster(b, topo, 3)
			defer stop()
			sess, err := cluster.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = sess.IncBatch(i, k, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(k)
			b.ReportMetric(float64(sess.RPCs())/tokens, "rpcs/token")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E26: sharded fleets — S independent deployments with pid striping;
// per-shard rpcs/token must hold the E25 batched floor while the hot
// links multiply by S.
func BenchmarkShardedClusterIncBatch(b *testing.B) {
	for _, S := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("CWT8x24/S=%d/k=64", S), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			sc, stop, err := StartShardedCluster(topo, S, 3)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			ctr := sc.NewCounter(1)
			defer ctr.Close()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = ctr.IncBatch(i, 64, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * 64
			b.ReportMetric(float64(ctr.RPCs())/tokens, "rpcs/token")
		})
	}
}

// E27: dedup-window overhead — batched pipelines through the pooled
// Counter, every mutating frame seq-numbered and dedup-tracked
// server-side. rpcs/token must hold the E26 k=64 floor (1.05): the
// exactly-once machinery costs bytes per frame and bookkeeping per
// shard, never round trips.
func BenchmarkCounterDedupBatch(b *testing.B) {
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("CWT8x24/k=%d", k), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			cluster, stop := benchCluster(b, topo, 3)
			defer stop()
			ctr := cluster.NewCounterPool(1)
			defer ctr.Close()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = ctr.IncBatch(i, k, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(k)
			b.ReportMetric(float64(ctr.RPCs())/tokens, "rpcs/token")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E25: the coalescing counter client under parallel load.
func BenchmarkCounterCoalesced(b *testing.B) {
	topo, err := core.New(8, 24)
	if err != nil {
		b.Fatal(err)
	}
	cluster, stop := benchCluster(b, topo, 3)
	defer stop()
	ctr := cluster.NewCounter()
	defer ctr.Close()
	var pids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1))
		for pb.Next() {
			if _, err := ctr.Inc(pid); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(ctr.RPCs())/float64(b.N), "rpcs/op")
}
