// Package tcpnet deploys a counting network across TCP servers — the
// closest reproduction of the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): balancers are partitioned
// across shard servers, a balancer access is one request/response round
// trip to the shard that owns it (the remote analogue of §1.2's shared
// memory word), and counter cells live on the shard owning the exit wire.
//
// A client session shepherds a single token by walking the wiring locally
// and performing one STEP RPC per balancer crossing, then one CELL RPC at
// the exit — exactly depth(B)+1 round trips per Fetch&Increment.
//
// # Batched wire frames
//
// A session can also shepherd k tokens (or antitokens) as ONE pipeline:
// a STEPN frame carries a signed count, the owning shard applies the
// whole group to the balancer with one StepN/StepAntiN transition and
// replies with the group's first sequence index, and the client folds the
// round-robin split arithmetic locally (it knows the topology and the
// balancer initial states). Groups that diverge re-merge at shared
// successors, so a batch costs one STEPN per balancer TOUCHED plus one
// CELLN per exit wire touched — at most size+t round trips for any k,
// against k·(depth+1) for singles. Negative counts carry antitokens, so
// the same frames serve Fetch&Decrement traffic (ref [2]).
//
// # Exactly-once frames (protocol v2)
//
// The retry path of the pooled Counter re-sends a whole window on a
// fresh session after a connection death, and an at-least-once re-send
// must not re-execute frames the dead session had already applied (that
// would leak counter values). Protocol v2 makes every mutating frame
// idempotent: a Counter-owned session announces the Counter's client id
// with a fire-and-forget HELLO frame (no reply, so it costs no round
// trip), every mutating frame carries a monotone per-client sequence
// number, and each shard keeps a bounded per-client dedup window
// mapping applied sequences to their recorded replies, pinned against
// eviction while any bound connection lives. An already-applied
// sequence is answered from the record instead of being re-executed, so
// a retried window lands exactly once no matter where the previous
// attempt died. Standalone sessions perform no retries and speak the
// stateless v1 ops, which also remain decodable for old clients — the
// op byte distinguishes the versions.
//
// The wire protocol is binary frames (encoding/binary, big endian):
//
//	request:  op(1) id(4)            op 1 = STEP node, op 2 = CELL wire,
//	                                 op 5 = READ wire
//	          op(1) id(4) count(8)   op 3 = STEPN node, op 4 = CELLN wire
//	                                 count int64: > 0 tokens, < 0 antitokens
//	          op(1) id(4) client(8)  op 6 = HELLO: bind the connection to
//	                                 a client id (no response)
//	          op(1) id(4) seq(8)     op 7 = STEP, op 8 = CELL, dedup'd
//	          op(1) id(4) seq(8) count(8)
//	                                 op 9 = STEPN, op 10 = CELLN, dedup'd
//	response: val(8)                 STEP: exit port; CELL: counter value;
//	                                 STEPN: first sequence index of the
//	                                 group; CELLN: cell value after the
//	                                 batched add; READ: cell value,
//	                                 unmodified (exact-count read side)
//
// A zero count, an unowned id, an unknown op, or a v2 mutating frame on
// a connection that has not sent HELLO is a protocol violation: the
// shard drops the connection. READ is non-mutating and needs no
// sequence number.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
	"repro/internal/xport"
)

// Default dedup bounds (see wire.DedupConfig): a shard remembers the
// (seq, reply) pairs of at most DedupWindow applied mutating frames per
// client, and tracks at most DedupClients clients
// (least-recently-registered unpinned client evicted first). The window
// is the exactly-once horizon — a retry is deduplicated as long as
// fewer than DedupWindow newer frames from the same client reached the
// shard in between, which a prompt bounded-budget retry stays far
// inside of. StartShardConfig resizes both per deployment.
const (
	DedupWindow  = wire.DefaultDedupWindow
	DedupClients = wire.DefaultDedupClients
)

// ShardConfig tunes a shard server; the zero value is the production
// default (DedupWindow/DedupClients bounds).
type ShardConfig struct {
	// Dedup sizes the per-client exactly-once windows; zero fields take
	// the package defaults.
	Dedup wire.DedupConfig
}

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves STEP/CELL/STEPN/CELLN requests
// over TCP, deduplicating v2 frames per client.
type Shard struct {
	ln    net.Listener
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	wg    sync.WaitGroup
	done  chan struct{}
	mu    sync.Mutex
	conns map[net.Conn]struct{} // live client connections, dropped on Close

	// Control-plane state: the shard's slot in the partition (for
	// /status), its registry of read-side metric views (for /metrics),
	// and two bare atomics the serve loops bump.
	index      int
	shards     int
	netName    string
	reg        *ctlplane.Registry
	frames     atomic.Int64
	connsTotal atomic.Int64

	// dedup is the per-client exactly-once state: bounded (seq, reply)
	// windows shared by every connection that HELLOs the same client id
	// (see wire.Dedup). Entries are pinned against LRU eviction while
	// any bound connection lives, so registration churn from other
	// clients can never push out the window a live Counter's retry
	// depends on.
	dedup *wire.Dedup
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests) with
// the default configuration. The shard owns every network node with
// id ≡ index (mod shards) and every output-wire cell with
// wire ≡ index (mod shards); cells are initialized to their wire index
// per §1.1.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	return StartShardConfig(addr, topo, index, shards, ShardConfig{})
}

// StartShardConfig is StartShard with per-deployment tuning — most
// importantly the dedup-window sizing, whose defaults suit pooled
// counters with prompt bounded retries but can be grown for fleets with
// many distinct long-lived clients.
func StartShardConfig(addr string, topo *network.Network, index, shards int, cfg ShardConfig) (*Shard, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		ln:      ln,
		bals:    make(map[int32]*balancer.PQ),
		cells:   make(map[int32]*atomic.Int64),
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		dedup:   wire.NewDedup(cfg.Dedup),
		index:   index,
		shards:  shards,
		netName: topo.Name(),
		reg:     ctlplane.NewRegistry(),
	}
	labels := []ctlplane.Label{{Key: "transport", Value: "tcp"}, {Key: "shard", Value: strconv.Itoa(index)}}
	s.reg.Counter(wire.MetricShardFrames, wire.HelpShardFrames, s.frames.Load, labels...)
	s.reg.Gauge(wire.MetricShardConnsOpen, wire.HelpShardConnsOpen, func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	}, labels...)
	s.reg.Counter(wire.MetricShardConns, wire.HelpShardConns, s.connsTotal.Load, labels...)
	s.dedup.RegisterMetrics(s.reg, labels...)
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for w := 0; w < topo.OutWidth(); w++ {
		if w%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(w))
			s.cells[int32(w)] = c
		}
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.ln.Addr().String() }

// Close stops the shard; in-flight connections are dropped (their serve
// loops unblock on the connection close). Idempotent, so a signal-driven
// drain hook can race a manual shutdown safely.
func (s *Shard) Close() {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	close(s.done)
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ShardStatus is a shard server's /status document.
type ShardStatus struct {
	Transport string `json:"transport"`
	Addr      string `json:"addr"`
	Shard     int    `json:"shard"`  // this server's index in the partition
	Shards    int    `json:"shards"` // servers the topology is partitioned across
	Network   string `json:"network"`
	Balancers int    `json:"balancers"` // balancer nodes this server owns
	Cells     int    `json:"cells"`     // exit cells this server owns
	Conns     int    `json:"conns"`     // client connections currently open
}

// Health implements ctlplane.Source: the shard is live until Close and
// quiescent while no client connection is bound (an idle shard's state
// is safe to snapshot or migrate).
func (s *Shard) Health() ctlplane.Health {
	select {
	case <-s.done:
		return ctlplane.Health{Detail: "closed"}
	default:
	}
	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()
	return ctlplane.Health{
		Live:      true,
		Quiescent: open == 0,
		Detail:    fmt.Sprintf("%d open connections", open),
	}
}

// Status implements ctlplane.Source with the shard's topology slot.
func (s *Shard) Status() any {
	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()
	return ShardStatus{
		Transport: "tcp",
		Addr:      s.Addr(),
		Shard:     s.index,
		Shards:    s.shards,
		Network:   s.netName,
		Balancers: len(s.bals),
		Cells:     len(s.cells),
		Conns:     open,
	}
}

// Gather implements ctlplane.Source, evaluating the shard's registered
// metric views (frames served, connection counts, dedup table state).
func (s *Shard) Gather() []ctlplane.Sample { return s.reg.Gather() }

// track registers a client connection for Close to drop; it refuses (and
// closes) connections that race with shutdown.
func (s *Shard) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		conn.Close()
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	s.connsTotal.Add(1)
	return true
}

func (s *Shard) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Shard) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one client connection until EOF or protocol violation.
func (s *Shard) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.untrack(conn)
	var buf [wire.MaxFrameLen]byte
	var resp [8]byte
	var f wire.Frame
	var cl *wire.DedupEntry // bound by HELLO; required for v2 mutating frames
	defer func() {
		if cl != nil {
			s.dedup.Release(cl)
		}
	}()
	for {
		if err := wire.ReadFrame(conn, &buf, &f); err != nil {
			return
		}
		s.frames.Add(1)
		switch f.Op {
		case wire.OpStepN, wire.OpCellN, wire.OpStepN2, wire.OpCellN2:
			// Protocol violations: an empty batch, or math.MinInt64
			// (whose negation overflows back to itself and would panic
			// StepAntiN instead of dropping the connection).
			if f.N == 0 || f.N == math.MinInt64 {
				return
			}
		}
		var val int64
		var ok bool
		switch f.Op {
		case wire.OpHello:
			// Bind the connection to its client's dedup window;
			// fire-and-forget (no reply), so registration costs no
			// round trip.
			if cl != nil {
				s.dedup.Release(cl)
			}
			cl = s.dedup.Bind(f.Client)
			continue
		case wire.OpStep2, wire.OpCell2, wire.OpStepN2, wire.OpCellN2:
			if cl == nil {
				return // v2 mutating frame before HELLO
			}
			val, ok = cl.Do(f.Seq, func() (int64, bool) { return s.apply(&f) })
		default:
			val, ok = s.apply(&f)
		}
		if !ok {
			return // protocol violation: drop the connection
		}
		binary.BigEndian.PutUint64(resp[:], uint64(val))
		if _, err := conn.Write(resp[:]); err != nil {
			return
		}
	}
}

// apply executes one decoded mutating-or-read frame against the shard's
// balancer and cell state; ok=false is a protocol violation (unowned
// id). v1 and v2 ops share the same semantics — v2 only adds the dedup
// wrapper in serve.
func (s *Shard) apply(f *wire.Frame) (val int64, ok bool) {
	switch f.Op {
	case wire.OpStep, wire.OpStep2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		return int64(b.Step()), true
	case wire.OpStepN, wire.OpStepN2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		// One transition for the whole group: its first sequence index
		// comes back; the client folds the split arithmetic.
		if f.N > 0 {
			return b.StepN(f.N), true
		}
		return b.StepAntiN(-f.N), true
	case wire.OpRead:
		// Non-mutating cell read: id is the bare wire index.
		c, ok := s.cells[f.ID]
		if !ok {
			return 0, false
		}
		return c.Load(), true
	case wire.OpCell, wire.OpCell2, wire.OpCellN, wire.OpCellN2:
		// The stride (output width t) rides in the upper bits of the
		// id to keep the protocol stateless: id = wire | stride<<16.
		// Networks therefore must have t < 65536 — far beyond any
		// practical configuration.
		cw := f.ID & 0xffff
		stride := int64(f.ID >> 16)
		c, ok := s.cells[cw]
		if !ok {
			return 0, false
		}
		if f.Op == wire.OpCell || f.Op == wire.OpCell2 {
			return c.Add(stride) - stride, true
		}
		// Batched claim (n > 0) or revocation (n < 0): reply with the
		// cell value after the add; the client reconstructs the |n|
		// individual values.
		return c.Add(stride * f.N), true
	}
	return 0, false
}

// Cluster is a client-side view of a sharded deployment: the topology plus
// shard addresses. Sessions (one per goroutine) hold a connection to each
// shard.
type Cluster struct {
	net      *network.Network
	addrs    []string
	stride   int64
	dialWrap func(net.Conn) net.Conn
}

// NewCluster wires a topology to its shard addresses (shard i owns nodes
// and cells ≡ i mod len(addrs)).
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{net: n, addrs: addrs, stride: int64(n.OutWidth())}
}

// SetDialWrapper installs a hook wrapping every connection a new session
// dials — the fault-injection point the session-kill chaos tests and
// countbench's E27 kill column use to cut connections at exact frame
// boundaries. Pass nil to clear. Not safe to change while sessions are
// being created.
func (c *Cluster) SetDialWrapper(w func(net.Conn) net.Conn) { c.dialWrap = w }

// Session is a single-goroutine client: one persistent connection per
// shard. Counter-owned sessions speak protocol v2 — every connection is
// bound by HELLO to the Counter's client id and every mutating frame is
// seq-numbered for the shards to dedup. Standalone sessions (see
// NewSession) have no retry path, so they speak the stateless v1 ops
// and burn no dedup state server-side.
//
// The protocol logic (single-token path, batched topological pipeline,
// exact-count read) lives in the shared xport.Walk; this type supplies
// only the TCP link underneath it — framing one request/response round
// trip per Exchange.
type Session struct {
	c      *Cluster
	client uint64
	v2     bool // seq-number mutating frames (Counter-owned sessions)
	conns  []net.Conn
	rpcs   atomic.Int64  // round trips performed (E25's cost metric)
	seqs   atomic.Uint64 // mutating-frame sequences outside a flight
	tape   *wire.SeqTape // set by a Counter flight for replayable sequences
	walk   *xport.Walk   // shared client-side protocol walker

	buf []byte // frame scratch, reused across calls
}

// NewSession dials every shard. The session speaks the v1 stateless
// protocol: it performs no retries of its own, so sequence-numbered
// frames would buy nothing and cost the shards dedup bookkeeping.
func (c *Cluster) NewSession() (*Session, error) {
	return c.newSession(0, false)
}

// newSession dials every shard; with v2 set it announces the given
// client id with a HELLO on each connection. Pool sessions of one
// Counter share the Counter's id, which is what lets a retry on a fresh
// session hit the original attempt's dedup records.
func (c *Cluster) newSession(client uint64, v2 bool) (*Session, error) {
	s := &Session{
		c:      c,
		client: client,
		v2:     v2,
		conns:  make([]net.Conn, len(c.addrs)),
		walk:   xport.NewWalk(c.net, len(c.addrs)),
	}
	var hello []byte
	if v2 {
		hello = wire.AppendFrame(nil, &wire.Frame{Op: wire.OpHello, Client: client})
	}
	for i, addr := range c.addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: dial shard %d: %w", i, err)
		}
		if c.dialWrap != nil {
			conn = c.dialWrap(conn)
		}
		s.conns[i] = conn
		if hello == nil {
			continue
		}
		if _, err := conn.Write(hello); err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: hello shard %d: %w", i, err)
		}
	}
	return s, nil
}

// Close drops the session's connections.
func (s *Session) Close() {
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// RPCs returns the number of round trips this session has performed.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// nextSeq draws the next mutating-frame sequence number: from the
// owning Counter's tape during a flight (replayable on retry), from the
// session's own counter otherwise.
func (s *Session) nextSeq() uint64 {
	if s.tape != nil {
		return s.tape.Take()
	}
	return s.seqs.Add(1)
}

// mut builds one mutating frame from its v1 op: seq-numbered v2 on
// Counter-owned sessions, plain v1 on standalone ones.
func (s *Session) mut(op byte, id int32, n int64) wire.Frame {
	if !s.v2 {
		return wire.Frame{Op: op, ID: id, N: n}
	}
	return wire.Frame{Op: wire.V2Op(op), ID: id, Seq: s.nextSeq(), N: n}
}

// send performs one request/response round trip on the given shard.
func (s *Session) send(shard int, f *wire.Frame) (int64, error) {
	s.buf = wire.AppendFrame(s.buf[:0], f)
	conn := s.conns[shard]
	if _, err := conn.Write(s.buf); err != nil {
		return 0, err
	}
	var resp [8]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return 0, err
	}
	s.rpcs.Add(1)
	return int64(binary.BigEndian.Uint64(resp[:])), nil
}

// Healthy probes the session's connections with a nonblocking peek (see
// connDead): a live, in-sync connection has nothing pending, while a
// long-dead one shows EOF or a reset and a desynced one has stray reply
// bytes — all without a round trip, so checkout health checks cost no
// RPCs. Implements xport.Session for the pool's checkout probe.
func (s *Session) Healthy() bool {
	for _, conn := range s.conns {
		if connDead(conn) {
			return false
		}
	}
	return true
}

// SetTape points the session's mutating-frame sequence source at a
// flight's rewindable tape (nil restores the session's own counter) —
// the xport pool calls it around every flight attempt so retries
// re-send identical (client, seq) pairs.
func (s *Session) SetTape(tape *wire.SeqTape) { s.tape = tape }

// Exchange implements xport.Exchanger: one framed request/response
// round trip to the given shard. Mutating ops are built through mut
// (seq-numbered v2 on Counter-owned sessions); READ is non-mutating and
// carries no sequence number.
func (s *Session) Exchange(shard int, op byte, id int32, n int64) (int64, error) {
	if op == wire.OpRead {
		return s.send(shard, &wire.Frame{Op: wire.OpRead, ID: id})
	}
	f := s.mut(op, id, n)
	return s.send(shard, &f)
}

// Inc shepherds one token through the distributed network and returns its
// counter value: depth RPCs for the balancer crossings plus one for the
// exit cell. A retried Inc walks the identical path — the dedup windows
// replay the original ports for already-applied sequences.
func (s *Session) Inc(pid int) (int64, error) {
	return s.walk.Inc(s, pid)
}

// ReadCell returns exit cell w's current value without modifying it
// (op READ) — the building block of cluster-wide exact-count reads.
// Non-mutating, so it carries no sequence number.
func (s *Session) ReadCell(w int) (int64, error) {
	return s.walk.ReadCell(s, w)
}

// Read sums the exit cells into the cluster's net count (increments minus
// decrements), one READ round trip per wire. Only meaningful while the
// cluster is quiescent, like counter.Network.Issued.
func (s *Session) Read() (int64, error) {
	return s.walk.Read(s)
}

// Dec shepherds one antitoken through the network (one-element DecBatch).
func (s *Session) Dec(pid int) (int64, error) {
	vals, err := s.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch performs k Fetch&Increment operations as one batched pipeline
// entering on wire pid mod w, appending the k claimed values to dst: one
// STEPN round trip per balancer touched, one CELLN per exit wire touched.
// k <= 0 performs no round trips.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch is IncBatch for Fetch&Decrement: the batched frames carry a
// negative count and the k revoked values come back, newest-issued first
// per exit cell.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// Batch walks the topology in topological order exactly like
// network.TraverseBatch (via the shared xport.Walk), but every balancer
// transition is one STEPN round trip to the owning shard; the split
// arithmetic runs client-side from the replied first index and the
// known initial states. The walk is deterministic in (in, k, anti), so
// a retried window re-sends the identical frame sequence and the dedup
// windows make it exactly-once. Implements xport.Session; `in` is the
// input wire (already reduced mod InWidth).
func (s *Session) Batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	return s.walk.Batch(s, in, k, anti, dst)
}

// batch keeps the historical in-package spelling of Batch.
func (s *Session) batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	return s.Batch(in, k, anti, dst)
}

// Hops returns the number of round trips one single-token Inc costs.
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// --- xport.Link adapter -------------------------------------------------
//
// Everything above this line is the TCP link: shard servers, framed
// connections, and a Session walking the shared protocol over them.
// Everything a client stacks on top — the coalescing single-flight
// Counter, the health-probed session pool, the exactly-once seq-tape
// retry loop, pid striping — lives once in internal/xport; the aliases
// below keep this package's historical API surface.

// Transport implements xport.Link: the metrics label and /status
// discriminator.
func (c *Cluster) Transport() string { return "tcp" }

// Addrs implements xport.Link with a copy of the shard addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// InWidth implements xport.Link with the topology's input width.
func (c *Cluster) InWidth() int { return c.net.InWidth() }

// OutWidth implements xport.Link with the topology's output width.
func (c *Cluster) OutWidth() int { return c.net.OutWidth() }

// Dial implements xport.Link: a v2 session announcing the given client
// id on every shard connection.
func (c *Cluster) Dial(client uint64) (xport.Session, error) {
	return c.newSession(client, true)
}

// RetryBudget implements xport.Link: a TCP redial fails in
// milliseconds, so a failed flight keeps retrying for a short window.
func (c *Cluster) RetryBudget() time.Duration { return DefaultRetryBudget }

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. It is the shared
// xport sentinel, so errors.Is matches across transports.
var ErrClosed = xport.ErrClosed

// Default retry budget: a failed flight is retried on fresh sessions up
// to DefaultRetryAttempts total tries within DefaultRetryBudget of the
// first failure, the redials paced by DefaultRetryBackoff. Attempts and
// backoff are the shared xport defaults; the budget is the TCP-specific
// value the Cluster link advertises.
const (
	DefaultRetryAttempts = xport.DefaultRetryAttempts
	DefaultRetryBudget   = 2 * time.Second
)

// DefaultRetryBackoff paces redials between retry attempts — the shared
// xport schedule.
var DefaultRetryBackoff = xport.DefaultRetryBackoff

// Counter is the cluster-wide coalescing Fetch&Increment client: the
// shared transport-agnostic core (see xport.Counter) running over this
// package's TCP link.
type Counter = xport.Counter

// CounterStatus is a pooled counter client's /status document.
type CounterStatus = xport.CounterStatus

// NewCounter builds the coalescing counter client for the cluster with
// the default pool width (one session slot per input wire, the resource
// envelope of the pre-pool one-session-per-wire client).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session pool
// retaining at most `width` idle sessions (width <= 0 defaults to the
// input width). Flights check sessions out round-robin; bursts beyond the
// width dial extra sessions that are retired on return. The counter owns
// a fresh client id that every pooled session announces, keying its
// exactly-once dedup windows on the shards.
func (c *Cluster) NewCounterPool(width int) *Counter {
	return xport.NewCounter(c, width)
}
