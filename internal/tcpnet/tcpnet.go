// Package tcpnet deploys a counting network across TCP servers — the
// closest reproduction of the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): balancers are partitioned
// across shard servers, a balancer access is one request/response round
// trip to the shard that owns it (the remote analogue of §1.2's shared
// memory word), and counter cells live on the shard owning the exit wire.
//
// A client session shepherds a single token by walking the wiring locally
// and performing one STEP RPC per balancer crossing, then one CELL RPC at
// the exit — exactly depth(B)+1 round trips per Fetch&Increment.
//
// # Batched wire frames
//
// A session can also shepherd k tokens (or antitokens) as ONE pipeline:
// a STEPN frame carries a signed count, the owning shard applies the
// whole group to the balancer with one StepN/StepAntiN transition and
// replies with the group's first sequence index, and the client folds the
// round-robin split arithmetic locally (it knows the topology and the
// balancer initial states). Groups that diverge re-merge at shared
// successors, so a batch costs one STEPN per balancer TOUCHED plus one
// CELLN per exit wire touched — at most size+t round trips for any k,
// against k·(depth+1) for singles. Negative counts carry antitokens, so
// the same frames serve Fetch&Decrement traffic (ref [2]).
//
// # Exactly-once frames (protocol v2)
//
// The retry path of the pooled Counter re-sends a whole window on a
// fresh session after a connection death, and an at-least-once re-send
// must not re-execute frames the dead session had already applied (that
// would leak counter values). Protocol v2 makes every mutating frame
// idempotent: a Counter-owned session announces the Counter's client id
// with a fire-and-forget HELLO frame (no reply, so it costs no round
// trip), every mutating frame carries a monotone per-client sequence
// number, and each shard keeps a bounded per-client dedup window
// mapping applied sequences to their recorded replies, pinned against
// eviction while any bound connection lives. An already-applied
// sequence is answered from the record instead of being re-executed, so
// a retried window lands exactly once no matter where the previous
// attempt died. Standalone sessions perform no retries and speak the
// stateless v1 ops, which also remain decodable for old clients — the
// op byte distinguishes the versions.
//
// The wire protocol is binary frames (encoding/binary, big endian):
//
//	request:  op(1) id(4)            op 1 = STEP node, op 2 = CELL wire,
//	                                 op 5 = READ wire
//	          op(1) id(4) count(8)   op 3 = STEPN node, op 4 = CELLN wire
//	                                 count int64: > 0 tokens, < 0 antitokens
//	          op(1) id(4) client(8)  op 6 = HELLO: bind the connection to
//	                                 a client id (no response)
//	          op(1) id(4) seq(8)     op 7 = STEP, op 8 = CELL, dedup'd
//	          op(1) id(4) seq(8) count(8)
//	                                 op 9 = STEPN, op 10 = CELLN, dedup'd
//	response: val(8)                 STEP: exit port; CELL: counter value;
//	                                 STEPN: first sequence index of the
//	                                 group; CELLN: cell value after the
//	                                 batched add; READ: cell value,
//	                                 unmodified (exact-count read side)
//
// A zero count, an unowned id, an unknown op, or a v2 mutating frame on
// a connection that has not sent HELLO is a protocol violation: the
// shard drops the connection. READ is non-mutating and needs no
// sequence number.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
)

// Default dedup bounds (see wire.DedupConfig): a shard remembers the
// (seq, reply) pairs of at most DedupWindow applied mutating frames per
// client, and tracks at most DedupClients clients
// (least-recently-registered unpinned client evicted first). The window
// is the exactly-once horizon — a retry is deduplicated as long as
// fewer than DedupWindow newer frames from the same client reached the
// shard in between, which a prompt bounded-budget retry stays far
// inside of. StartShardConfig resizes both per deployment.
const (
	DedupWindow  = wire.DefaultDedupWindow
	DedupClients = wire.DefaultDedupClients
)

// ShardConfig tunes a shard server; the zero value is the production
// default (DedupWindow/DedupClients bounds).
type ShardConfig struct {
	// Dedup sizes the per-client exactly-once windows; zero fields take
	// the package defaults.
	Dedup wire.DedupConfig
}

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves STEP/CELL/STEPN/CELLN requests
// over TCP, deduplicating v2 frames per client.
type Shard struct {
	ln    net.Listener
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	wg    sync.WaitGroup
	done  chan struct{}
	mu    sync.Mutex
	conns map[net.Conn]struct{} // live client connections, dropped on Close

	// Control-plane state: the shard's slot in the partition (for
	// /status), its registry of read-side metric views (for /metrics),
	// and two bare atomics the serve loops bump.
	index      int
	shards     int
	netName    string
	reg        *ctlplane.Registry
	frames     atomic.Int64
	connsTotal atomic.Int64

	// dedup is the per-client exactly-once state: bounded (seq, reply)
	// windows shared by every connection that HELLOs the same client id
	// (see wire.Dedup). Entries are pinned against LRU eviction while
	// any bound connection lives, so registration churn from other
	// clients can never push out the window a live Counter's retry
	// depends on.
	dedup *wire.Dedup
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests) with
// the default configuration. The shard owns every network node with
// id ≡ index (mod shards) and every output-wire cell with
// wire ≡ index (mod shards); cells are initialized to their wire index
// per §1.1.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	return StartShardConfig(addr, topo, index, shards, ShardConfig{})
}

// StartShardConfig is StartShard with per-deployment tuning — most
// importantly the dedup-window sizing, whose defaults suit pooled
// counters with prompt bounded retries but can be grown for fleets with
// many distinct long-lived clients.
func StartShardConfig(addr string, topo *network.Network, index, shards int, cfg ShardConfig) (*Shard, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		ln:      ln,
		bals:    make(map[int32]*balancer.PQ),
		cells:   make(map[int32]*atomic.Int64),
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		dedup:   wire.NewDedup(cfg.Dedup),
		index:   index,
		shards:  shards,
		netName: topo.Name(),
		reg:     ctlplane.NewRegistry(),
	}
	labels := []ctlplane.Label{{Key: "transport", Value: "tcp"}, {Key: "shard", Value: strconv.Itoa(index)}}
	s.reg.Counter(wire.MetricShardFrames, wire.HelpShardFrames, s.frames.Load, labels...)
	s.reg.Gauge(wire.MetricShardConnsOpen, wire.HelpShardConnsOpen, func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	}, labels...)
	s.reg.Counter(wire.MetricShardConns, wire.HelpShardConns, s.connsTotal.Load, labels...)
	s.dedup.RegisterMetrics(s.reg, labels...)
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for w := 0; w < topo.OutWidth(); w++ {
		if w%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(w))
			s.cells[int32(w)] = c
		}
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.ln.Addr().String() }

// Close stops the shard; in-flight connections are dropped (their serve
// loops unblock on the connection close). Idempotent, so a signal-driven
// drain hook can race a manual shutdown safely.
func (s *Shard) Close() {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	close(s.done)
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ShardStatus is a shard server's /status document.
type ShardStatus struct {
	Transport string `json:"transport"`
	Addr      string `json:"addr"`
	Shard     int    `json:"shard"`  // this server's index in the partition
	Shards    int    `json:"shards"` // servers the topology is partitioned across
	Network   string `json:"network"`
	Balancers int    `json:"balancers"` // balancer nodes this server owns
	Cells     int    `json:"cells"`     // exit cells this server owns
	Conns     int    `json:"conns"`     // client connections currently open
}

// Health implements ctlplane.Source: the shard is live until Close and
// quiescent while no client connection is bound (an idle shard's state
// is safe to snapshot or migrate).
func (s *Shard) Health() ctlplane.Health {
	select {
	case <-s.done:
		return ctlplane.Health{Detail: "closed"}
	default:
	}
	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()
	return ctlplane.Health{
		Live:      true,
		Quiescent: open == 0,
		Detail:    fmt.Sprintf("%d open connections", open),
	}
}

// Status implements ctlplane.Source with the shard's topology slot.
func (s *Shard) Status() any {
	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()
	return ShardStatus{
		Transport: "tcp",
		Addr:      s.Addr(),
		Shard:     s.index,
		Shards:    s.shards,
		Network:   s.netName,
		Balancers: len(s.bals),
		Cells:     len(s.cells),
		Conns:     open,
	}
}

// Gather implements ctlplane.Source, evaluating the shard's registered
// metric views (frames served, connection counts, dedup table state).
func (s *Shard) Gather() []ctlplane.Sample { return s.reg.Gather() }

// track registers a client connection for Close to drop; it refuses (and
// closes) connections that race with shutdown.
func (s *Shard) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		conn.Close()
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	s.connsTotal.Add(1)
	return true
}

func (s *Shard) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Shard) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one client connection until EOF or protocol violation.
func (s *Shard) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.untrack(conn)
	var buf [wire.MaxFrameLen]byte
	var resp [8]byte
	var f wire.Frame
	var cl *wire.DedupEntry // bound by HELLO; required for v2 mutating frames
	defer func() {
		if cl != nil {
			s.dedup.Release(cl)
		}
	}()
	for {
		if err := wire.ReadFrame(conn, &buf, &f); err != nil {
			return
		}
		s.frames.Add(1)
		switch f.Op {
		case wire.OpStepN, wire.OpCellN, wire.OpStepN2, wire.OpCellN2:
			// Protocol violations: an empty batch, or math.MinInt64
			// (whose negation overflows back to itself and would panic
			// StepAntiN instead of dropping the connection).
			if f.N == 0 || f.N == math.MinInt64 {
				return
			}
		}
		var val int64
		var ok bool
		switch f.Op {
		case wire.OpHello:
			// Bind the connection to its client's dedup window;
			// fire-and-forget (no reply), so registration costs no
			// round trip.
			if cl != nil {
				s.dedup.Release(cl)
			}
			cl = s.dedup.Bind(f.Client)
			continue
		case wire.OpStep2, wire.OpCell2, wire.OpStepN2, wire.OpCellN2:
			if cl == nil {
				return // v2 mutating frame before HELLO
			}
			val, ok = cl.Do(f.Seq, func() (int64, bool) { return s.apply(&f) })
		default:
			val, ok = s.apply(&f)
		}
		if !ok {
			return // protocol violation: drop the connection
		}
		binary.BigEndian.PutUint64(resp[:], uint64(val))
		if _, err := conn.Write(resp[:]); err != nil {
			return
		}
	}
}

// apply executes one decoded mutating-or-read frame against the shard's
// balancer and cell state; ok=false is a protocol violation (unowned
// id). v1 and v2 ops share the same semantics — v2 only adds the dedup
// wrapper in serve.
func (s *Shard) apply(f *wire.Frame) (val int64, ok bool) {
	switch f.Op {
	case wire.OpStep, wire.OpStep2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		return int64(b.Step()), true
	case wire.OpStepN, wire.OpStepN2:
		b, ok := s.bals[f.ID]
		if !ok {
			return 0, false
		}
		// One transition for the whole group: its first sequence index
		// comes back; the client folds the split arithmetic.
		if f.N > 0 {
			return b.StepN(f.N), true
		}
		return b.StepAntiN(-f.N), true
	case wire.OpRead:
		// Non-mutating cell read: id is the bare wire index.
		c, ok := s.cells[f.ID]
		if !ok {
			return 0, false
		}
		return c.Load(), true
	case wire.OpCell, wire.OpCell2, wire.OpCellN, wire.OpCellN2:
		// The stride (output width t) rides in the upper bits of the
		// id to keep the protocol stateless: id = wire | stride<<16.
		// Networks therefore must have t < 65536 — far beyond any
		// practical configuration.
		cw := f.ID & 0xffff
		stride := int64(f.ID >> 16)
		c, ok := s.cells[cw]
		if !ok {
			return 0, false
		}
		if f.Op == wire.OpCell || f.Op == wire.OpCell2 {
			return c.Add(stride) - stride, true
		}
		// Batched claim (n > 0) or revocation (n < 0): reply with the
		// cell value after the add; the client reconstructs the |n|
		// individual values.
		return c.Add(stride * f.N), true
	}
	return 0, false
}

// Cluster is a client-side view of a sharded deployment: the topology plus
// shard addresses. Sessions (one per goroutine) hold a connection to each
// shard.
type Cluster struct {
	net      *network.Network
	addrs    []string
	stride   int64
	dialWrap func(net.Conn) net.Conn
}

// NewCluster wires a topology to its shard addresses (shard i owns nodes
// and cells ≡ i mod len(addrs)).
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{net: n, addrs: addrs, stride: int64(n.OutWidth())}
}

// SetDialWrapper installs a hook wrapping every connection a new session
// dials — the fault-injection point the session-kill chaos tests and
// countbench's E27 kill column use to cut connections at exact frame
// boundaries. Pass nil to clear. Not safe to change while sessions are
// being created.
func (c *Cluster) SetDialWrapper(w func(net.Conn) net.Conn) { c.dialWrap = w }

// Session is a single-goroutine client: one persistent connection per
// shard. Counter-owned sessions speak protocol v2 — every connection is
// bound by HELLO to the Counter's client id and every mutating frame is
// seq-numbered for the shards to dedup. Standalone sessions (see
// NewSession) have no retry path, so they speak the stateless v1 ops
// and burn no dedup state server-side.
type Session struct {
	c      *Cluster
	client uint64
	v2     bool // seq-number mutating frames (Counter-owned sessions)
	conns  []net.Conn
	rpcs   atomic.Int64  // round trips performed (E25's cost metric)
	seqs   atomic.Uint64 // mutating-frame sequences outside a flight
	tape   *wire.SeqTape // set by a Counter flight for replayable sequences

	// Frame and batch walk scratch, reused across calls.
	buf     []byte
	pending []int64
	tally   []int64
	dist    []int64
}

// NewSession dials every shard. The session speaks the v1 stateless
// protocol: it performs no retries of its own, so sequence-numbered
// frames would buy nothing and cost the shards dedup bookkeeping.
func (c *Cluster) NewSession() (*Session, error) {
	return c.newSession(0, false)
}

// newSession dials every shard; with v2 set it announces the given
// client id with a HELLO on each connection. Pool sessions of one
// Counter share the Counter's id, which is what lets a retry on a fresh
// session hit the original attempt's dedup records.
func (c *Cluster) newSession(client uint64, v2 bool) (*Session, error) {
	s := &Session{c: c, client: client, v2: v2, conns: make([]net.Conn, len(c.addrs))}
	var hello []byte
	if v2 {
		hello = wire.AppendFrame(nil, &wire.Frame{Op: wire.OpHello, Client: client})
	}
	for i, addr := range c.addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: dial shard %d: %w", i, err)
		}
		if c.dialWrap != nil {
			conn = c.dialWrap(conn)
		}
		s.conns[i] = conn
		if hello == nil {
			continue
		}
		if _, err := conn.Write(hello); err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: hello shard %d: %w", i, err)
		}
	}
	return s, nil
}

// Close drops the session's connections.
func (s *Session) Close() {
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// RPCs returns the number of round trips this session has performed.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// nextSeq draws the next mutating-frame sequence number: from the
// owning Counter's tape during a flight (replayable on retry), from the
// session's own counter otherwise.
func (s *Session) nextSeq() uint64 {
	if s.tape != nil {
		return s.tape.Take()
	}
	return s.seqs.Add(1)
}

// mut builds one mutating frame from its v1 op: seq-numbered v2 on
// Counter-owned sessions, plain v1 on standalone ones.
func (s *Session) mut(op byte, id int32, n int64) wire.Frame {
	if !s.v2 {
		return wire.Frame{Op: op, ID: id, N: n}
	}
	return wire.Frame{Op: wire.V2Op(op), ID: id, Seq: s.nextSeq(), N: n}
}

// send performs one request/response round trip on the given shard.
func (s *Session) send(shard int, f *wire.Frame) (int64, error) {
	s.buf = wire.AppendFrame(s.buf[:0], f)
	conn := s.conns[shard]
	if _, err := conn.Write(s.buf); err != nil {
		return 0, err
	}
	var resp [8]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return 0, err
	}
	s.rpcs.Add(1)
	return int64(binary.BigEndian.Uint64(resp[:])), nil
}

// healthy probes the session's connections with a nonblocking peek (see
// connDead): a live, in-sync connection has nothing pending, while a
// long-dead one shows EOF or a reset and a desynced one has stray reply
// bytes — all without a round trip, so checkout health checks cost no
// RPCs.
func (s *Session) healthy() bool {
	for _, conn := range s.conns {
		if connDead(conn) {
			return false
		}
	}
	return true
}

// Inc shepherds one token through the distributed network and returns its
// counter value: depth RPCs for the balancer crossings plus one for the
// exit cell. A retried Inc walks the identical path — the dedup windows
// replay the original ports for already-applied sequences.
func (s *Session) Inc(pid int) (int64, error) {
	shards := len(s.c.addrs)
	in := pid % s.c.net.InWidth()
	node, port := s.c.net.InputDest(in)
	for node >= 0 {
		f := s.mut(wire.OpStep, int32(node), 0)
		p, err := s.send(node%shards, &f)
		if err != nil {
			return 0, err
		}
		node, port = s.c.net.Dest(node, int(p))
	}
	// port now names the exit wire; fetch the cell value with the stride
	// packed into the id's upper bits.
	f := s.mut(wire.OpCell, int32(port)|int32(s.c.stride)<<16, 0)
	return s.send(port%shards, &f)
}

// ReadCell returns exit cell w's current value without modifying it
// (op READ) — the building block of cluster-wide exact-count reads.
// Non-mutating, so it carries no sequence number.
func (s *Session) ReadCell(w int) (int64, error) {
	return s.send(w%len(s.c.addrs), &wire.Frame{Op: wire.OpRead, ID: int32(w)})
}

// Read sums the exit cells into the cluster's net count (increments minus
// decrements), one READ round trip per wire. Only meaningful while the
// cluster is quiescent, like counter.Network.Issued.
func (s *Session) Read() (int64, error) {
	var total int64
	for w := 0; w < s.c.net.OutWidth(); w++ {
		v, err := s.ReadCell(w)
		if err != nil {
			return 0, err
		}
		total += (v - int64(w)) / s.c.stride
	}
	return total, nil
}

// Dec shepherds one antitoken through the network (one-element DecBatch).
func (s *Session) Dec(pid int) (int64, error) {
	vals, err := s.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch performs k Fetch&Increment operations as one batched pipeline
// entering on wire pid mod w, appending the k claimed values to dst: one
// STEPN round trip per balancer touched, one CELLN per exit wire touched.
// k <= 0 performs no round trips.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch is IncBatch for Fetch&Decrement: the batched frames carry a
// negative count and the k revoked values come back, newest-issued first
// per exit cell.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// batch walks the topology in topological order exactly like
// network.TraverseBatch, but every balancer transition is one STEPN round
// trip to the owning shard; the split arithmetic runs client-side from
// the replied first index and the known initial states. The walk is
// deterministic in (wire, k, anti), so a retried window re-sends the
// identical frame sequence and the dedup windows make it exactly-once.
func (s *Session) batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	if s.pending == nil {
		s.pending = make([]int64, n.Size())
		s.tally = make([]int64, n.OutWidth())
	}
	pending, tally := s.pending, s.tally
	clear(tally)
	first := n.Size()
	nd, port := n.InputDest(in)
	if nd < 0 {
		tally[port] += k
	} else {
		pending[nd] = k
		first = nd
	}
	for id := first; id < n.Size(); id++ {
		c := pending[id]
		if c == 0 {
			continue
		}
		pending[id] = 0
		node := n.Node(id)
		q := node.Out()
		sendN := c
		if anti {
			sendN = -c
		}
		f := s.mut(wire.OpStepN, int32(id), sendN)
		start, err := s.send(id%shards, &f)
		if err != nil {
			clear(pending) // leave the scratch reusable
			return dst, err
		}
		if cap(s.dist) < q {
			s.dist = make([]int64, q)
		}
		counts := balancer.DistributeInto(node.Balancer().Init()+start, c, s.dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			dnd, dport := n.Dest(id, p)
			if dnd < 0 {
				tally[dport] += cnt
			} else {
				pending[dnd] += cnt
			}
		}
	}
	stride := s.c.stride
	for wireOut, cnt := range tally {
		if cnt == 0 {
			continue
		}
		sendN := cnt
		if anti {
			sendN = -cnt
		}
		f := s.mut(wire.OpCellN, int32(wireOut)|int32(stride)<<16, sendN)
		end, err := s.send(wireOut%shards, &f)
		if err != nil {
			return dst, err
		}
		if anti {
			for v := end + stride*(cnt-1); v >= end; v -= stride {
				dst = append(dst, v)
			}
		} else {
			for v := end - stride*cnt; v < end; v += stride {
				dst = append(dst, v)
			}
		}
	}
	return dst, nil
}

// Hops returns the number of round trips one single-token Inc costs.
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. Callers never see
// a raw connection error caused by their own Counter shutting down.
var ErrClosed = errors.New("tcpnet: counter closed")

// Counter is a cluster-wide coalescing Fetch&Increment client: concurrent
// Inc callers entering on the same input wire merge into one in-flight
// batched pipeline (a single-flight window per wire, the same trick as
// distnet.Counter), so wide workloads pay one pipeline per window rather
// than depth+1 round trips per token.
//
// Flights run on sessions checked out of a shared connection pool
// (round-robin, configurable width — see Cluster.NewCounterPool) instead
// of one pinned session per wire. The pool self-heals twice over: idle
// sessions are health-probed at checkout (an immediate-deadline read, no
// round trip), so a long-dead connection is evicted before a flight
// discovers it; and a session whose connection fails mid-flight is
// evicted pool-wide (a partial frame may have desynced its streams)
// while the flight retries on fresh sessions under a bounded
// attempt/deadline budget (SetRetryPolicy). Retries are EXACTLY-ONCE:
// every pooled session announces the counter's client id, every
// mutating frame carries a sequence number recorded on the flight's
// tape, and a retry re-sends the identical (client, seq) pairs so the
// shards' dedup windows replay frames the dead session had already
// applied instead of re-executing them. Values stay dense through any
// absorbed connection loss — no gaps, no duplicates.
type Counter struct {
	c     *Cluster
	id    uint64        // client id every pooled session announces
	seqs  atomic.Uint64 // mutating-frame sequence source, shared by flights
	combs []tcpComb
	pool  *pool

	mu          sync.Mutex
	closed      bool
	maxAttempts int
	budget      time.Duration
	backoff     wire.Backoff   // jittered redial pacing between attempts
	inflight    sync.WaitGroup // flights holding pool sessions

	// Control-plane state: a lifecycle word for /health (0 live,
	// 1 draining, 2 closed), bare atomics the flight and landing paths
	// bump, and the registry of read-side views /metrics evaluates.
	state        atomic.Int32
	flights      atomic.Int64
	retries      atomic.Int64
	inflightN    atomic.Int64
	windows      atomic.Int64
	windowTokens atomic.Int64
	reg          *ctlplane.Registry
}

// Counter lifecycle states (Counter.state).
const (
	stateLive     = 0
	stateDraining = 1
	stateClosed   = 2
)

// Default retry budget: a failed flight is retried on fresh sessions up
// to DefaultRetryAttempts total tries within DefaultRetryBudget of the
// first failure, the redials paced by DefaultRetryBackoff.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBudget   = 2 * time.Second
)

// DefaultRetryBackoff paces redials between retry attempts: jittered
// exponential from 2ms, capped at 250ms. Without it every Counter that
// watched the same shard flap redials in lockstep — the dial storm the
// ROADMAP called out.
var DefaultRetryBackoff = wire.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond}

// tcpComb is the per-input-wire coalescing state.
type tcpComb struct {
	mu     sync.Mutex
	flying bool
	next   *cwindow
	_      [4]int64
}

// cwindow is one pooled group of coalesced Inc calls.
type cwindow struct {
	k    int64
	vals []int64
	err  error
	done chan struct{}
}

// NewCounter builds the coalescing counter client for the cluster with
// the default pool width (one session slot per input wire, the resource
// envelope of the pre-pool one-session-per-wire client).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session pool
// retaining at most `width` idle sessions (width <= 0 defaults to the
// input width). Flights check sessions out round-robin; bursts beyond the
// width dial extra sessions that are retired on return. The counter owns
// a fresh client id that every pooled session announces, keying its
// exactly-once dedup windows on the shards.
func (c *Cluster) NewCounterPool(width int) *Counter {
	id := wire.NextClientID()
	t := &Counter{
		c:           c,
		id:          id,
		combs:       make([]tcpComb, c.net.InWidth()),
		pool:        newPool(c, width, id),
		maxAttempts: DefaultRetryAttempts,
		budget:      DefaultRetryBudget,
		backoff:     DefaultRetryBackoff,
		reg:         ctlplane.NewRegistry(),
	}
	t.registerMetrics("tcp")
	return t
}

// registerMetrics wires the counter's read-side views into its
// registry; every closure reads atomics the operation paths maintain
// anyway, so a scrape never contends with a flight.
func (t *Counter) registerMetrics(transport string) {
	labels := []ctlplane.Label{{Key: "transport", Value: transport}}
	t.reg.Counter(wire.MetricClientRPCs, wire.HelpClientRPCs, t.RPCs, labels...)
	t.reg.Counter(wire.MetricClientFlights, wire.HelpClientFlights, t.flights.Load, labels...)
	t.reg.Counter(wire.MetricClientRetries, wire.HelpClientRetries, t.retries.Load, labels...)
	t.reg.Gauge(wire.MetricClientInflight, wire.HelpClientInflight, t.inflightN.Load, labels...)
	t.reg.Counter(wire.MetricClientWindows, wire.HelpClientWindows, t.windows.Load, labels...)
	t.reg.Counter(wire.MetricClientWindowTokens, wire.HelpClientWindowTokens, t.windowTokens.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolCheckouts, wire.HelpClientPoolCheckouts, t.pool.checkouts.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolDials, wire.HelpClientPoolDials, t.pool.dials.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolEvictions, wire.HelpClientPoolEvictions, t.pool.evictions.Load, labels...)
	t.reg.Gauge(wire.MetricClientPoolIdle, wire.HelpClientPoolIdle, func() int64 {
		t.pool.mu.Lock()
		defer t.pool.mu.Unlock()
		return int64(len(t.pool.idle))
	}, labels...)
}

// CounterStatus is a pooled counter client's /status document.
type CounterStatus struct {
	Transport  string   `json:"transport"`
	State      string   `json:"state"` // live, draining, closed
	ClientID   uint64   `json:"client_id"`
	PoolWidth  int      `json:"pool_width"`
	InWidth    int      `json:"in_width"`
	OutWidth   int      `json:"out_width"`
	ShardAddrs []string `json:"shard_addrs"`
}

func stateName(s int32) string {
	switch s {
	case stateDraining:
		return "draining"
	case stateClosed:
		return "closed"
	}
	return "live"
}

// Health implements ctlplane.Source: live until Close starts draining
// (load balancers stop routing on the 503 this turns into), quiescent
// when no flight holds a pool session — the precondition for an
// exact-count Read.
func (t *Counter) Health() ctlplane.Health {
	st := t.state.Load()
	return ctlplane.Health{
		Live:      st == stateLive,
		Quiescent: t.inflightN.Load() == 0,
		Detail:    stateName(st),
	}
}

// Status implements ctlplane.Source with the counter's client-side
// topology: its exactly-once client id, pool width, and the shard
// addresses it fans out to.
func (t *Counter) Status() any {
	return CounterStatus{
		Transport:  "tcp",
		State:      stateName(t.state.Load()),
		ClientID:   t.id,
		PoolWidth:  t.pool.width,
		InWidth:    t.c.net.InWidth(),
		OutWidth:   t.c.net.OutWidth(),
		ShardAddrs: append([]string(nil), t.c.addrs...),
	}
}

// Gather implements ctlplane.Source, evaluating the counter's
// registered metric views.
func (t *Counter) Gather() []ctlplane.Sample { return t.reg.Gather() }

// SetRetryPolicy bounds the self-healing path: a failed flight is
// retried on fresh sessions for at most `attempts` total tries
// (including the first), as long as the time since the first failure
// stays within `budget` (budget <= 0 removes the time bound; attempts
// are always enforced). attempts < 1 is clamped to 1, disabling
// retries. Applies to flights started after the call.
func (t *Counter) SetRetryPolicy(attempts int, budget time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	t.mu.Lock()
	t.maxAttempts = attempts
	t.budget = budget
	t.mu.Unlock()
}

// SetRetryBackoff replaces the jittered exponential schedule pacing the
// redials between retry attempts (the zero value restores the wire
// defaults). Applies to flights started after the call.
func (t *Counter) SetRetryBackoff(b wire.Backoff) {
	t.mu.Lock()
	t.backoff = b
	t.mu.Unlock()
}

// Inc returns the next counter value. A lone caller pays the single-token
// round trips; concurrent callers on the same wire coalesce.
func (t *Counter) Inc(pid int) (int64, error) {
	in := pid % t.c.net.InWidth()
	cb := &t.combs[in]
	cb.mu.Lock()
	if cb.flying {
		w := cb.next
		if w == nil {
			w = &cwindow{done: make(chan struct{})}
			cb.next = w
		}
		idx := w.k
		w.k++
		cb.mu.Unlock()
		<-w.done
		if w.err != nil {
			return 0, w.err
		}
		return w.vals[idx], nil
	}
	cb.flying = true
	cb.mu.Unlock()
	var v int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		v, ferr = sess.Inc(pid)
		return ferr
	})
	t.land(cb, in)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Dec revokes the counter's most recent increment on the antitoken's exit
// wire (a one-element batched pipeline on a pooled session).
func (t *Counter) Dec(pid int) (int64, error) {
	vals, err := t.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch claims k values as one batched pipeline on a pooled session,
// with the same retry-once resilience as Inc.
func (t *Counter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, false, dst)
}

// DecBatch revokes k values as one batched antitoken pipeline on a pooled
// session.
func (t *Counter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, true, dst)
}

func (t *Counter) batch(pid, k int, anti bool, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	in := pid % t.c.net.InWidth()
	base := len(dst)
	err := t.flight(func(sess *Session) error {
		var ferr error
		dst, ferr = sess.batch(in, int64(k), anti, dst[:base])
		return ferr
	})
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// Read returns the cluster's quiescent net count by summing the exit
// cells over a pooled session — the exact-count read side.
func (t *Counter) Read() (int64, error) {
	var total int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		total, ferr = sess.Read()
		return ferr
	})
	return total, err
}

// flight runs one pooled operation: check a session out, run op, and on
// a connection failure evict the session pool-wide and retry on fresh
// sessions under the counter's attempt/deadline budget — the transparent
// self-healing path. Sequence numbers are drawn through a tape so every
// retry re-sends the same (client, seq) pairs and the shards' dedup
// windows make the retry exactly-once. Close fails new flights with
// ErrClosed, waits for running ones, and a flight mid-retry observes it
// between attempts.
func (t *Counter) flight(op func(*Session) error) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	attempts, budget, backoff := t.maxAttempts, t.budget, t.backoff
	t.inflight.Add(1)
	t.mu.Unlock()
	t.flights.Add(1)
	t.inflightN.Add(1)
	defer t.inflightN.Add(-1)
	defer t.inflight.Done()

	tape := wire.NewSeqTape(&t.seqs)
	var deadline time.Time
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			t.retries.Add(1)
		}
		err := t.attempt(op, tape)
		if err == nil || errors.Is(err, ErrClosed) {
			return err
		}
		// A window racing Close must observe it here and hand its
		// callers the sentinel, never a raw dial or connection error
		// from a replacement session it was never going to get.
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if attempt >= attempts {
			return err
		}
		if budget > 0 {
			if deadline.IsZero() {
				deadline = time.Now().Add(budget)
			} else if time.Now().After(deadline) {
				return err
			}
		}
		// Jittered exponential pause before redialing, so a fleet of
		// counters that watched the same shard die does not storm it
		// back down the moment it returns.
		time.Sleep(backoff.Delay(attempt))
	}
}

func (t *Counter) attempt(op func(*Session) error, tape *wire.SeqTape) error {
	sess, err := t.pool.checkout()
	if err != nil {
		return err
	}
	tape.Rewind()
	sess.tape = tape
	err = op(sess)
	sess.tape = nil
	if err != nil {
		t.pool.evict(sess)
		return err
	}
	t.pool.checkin(sess)
	return nil
}

// land drains the windows that pooled up behind the owner's flight, one
// batched pipeline per window, then releases the wire. Windows stranded
// by Close fail with ErrClosed rather than a raw connection error.
func (t *Counter) land(cb *tcpComb, in int) {
	for {
		cb.mu.Lock()
		w := cb.next
		cb.next = nil
		if w == nil {
			cb.flying = false
			cb.mu.Unlock()
			return
		}
		cb.mu.Unlock()
		t.windows.Add(1)
		t.windowTokens.Add(w.k)
		w.err = t.flight(func(sess *Session) error {
			var ferr error
			w.vals, ferr = sess.batch(in, w.k, false, w.vals[:0])
			return ferr
		})
		close(w.done)
	}
}

// RPCs returns the total round trips performed across the counter's
// sessions, evicted and retired ones included — the count is monotone;
// divide by operations for the E25 msgs/op metric.
func (t *Counter) RPCs() int64 { return t.pool.rpcs() }

// Close shuts the counter down: new flights (and windows stranded behind
// a closing flight) fail with ErrClosed, running flights are waited for,
// and every pooled session is then retired with its round trips folded
// into the monotone RPC total. Idempotent.
func (t *Counter) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.state.Store(stateDraining)
	t.mu.Unlock()
	t.inflight.Wait()
	t.pool.close()
	t.state.Store(stateClosed)
}

// pool is the Counter's session pool: up to `width` idle sessions reused
// round-robin across flights, every dialed session announcing the
// counter's client id, every dialed session tracked in `live` so the
// RPC bill stays monotone through eviction and retirement.
type pool struct {
	c      *Cluster
	width  int
	id     uint64 // the owning Counter's client id
	mu     sync.Mutex
	idle   []*Session
	live   map[*Session]struct{}
	lost   int64 // RPCs of retired sessions
	closed bool

	// Control-plane counters: checkouts by flights, fresh dials, and
	// evictions (probe failures at checkout plus mid-flight deaths —
	// NOT retirements at the width cap or at close).
	checkouts atomic.Int64
	dials     atomic.Int64
	evictions atomic.Int64
}

func newPool(c *Cluster, width int, id uint64) *pool {
	if width < 1 {
		width = c.net.InWidth()
	}
	return &pool{c: c, width: width, id: id, live: make(map[*Session]struct{})}
}

// checkout hands the caller exclusive use of a session: the least
// recently returned idle one (round-robin across the pool) that passes
// the health probe, or a fresh dial when none is idle. A long-dead idle
// connection is evicted here, at checkout, instead of being discovered
// by a flight — the probe is a deadline read, not a round trip.
func (p *pool) checkout() (*Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	for len(p.idle) > 0 {
		sess := p.idle[0]
		n := len(p.idle)
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:n-1]
		if sess.healthy() {
			p.mu.Unlock()
			p.checkouts.Add(1)
			return sess, nil
		}
		p.evictions.Add(1)
		p.retireLocked(sess)
	}
	p.mu.Unlock()
	sess, err := p.c.newSession(p.id, true)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		sess.Close()
		return nil, ErrClosed
	}
	p.live[sess] = struct{}{}
	p.mu.Unlock()
	p.checkouts.Add(1)
	return sess, nil
}

// checkin returns a healthy session to the idle list; beyond the pool
// width (or after close) it is retired instead.
func (p *pool) checkin(sess *Session) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.width {
		p.idle = append(p.idle, sess)
		p.mu.Unlock()
		return
	}
	p.retireLocked(sess)
	p.mu.Unlock()
}

// evict retires a session whose connection failed pool-wide: it leaves
// the live set, its round trips fold into the monotone total, and every
// future checkout gets a different (or freshly dialed) session.
func (p *pool) evict(sess *Session) {
	p.evictions.Add(1)
	p.mu.Lock()
	p.retireLocked(sess)
	p.mu.Unlock()
}

func (p *pool) retireLocked(sess *Session) {
	if _, ok := p.live[sess]; !ok {
		return
	}
	delete(p.live, sess)
	p.lost += sess.RPCs()
	sess.Close()
}

// rpcs returns the monotone round-trip total across live and retired
// sessions.
func (p *pool) rpcs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lost
	for sess := range p.live {
		total += sess.RPCs()
	}
	return total
}

// close retires every idle session and marks the pool closed; sessions
// still checked out are retired by their flight's checkin. (Counter.Close
// waits for flights first, so by the time it closes the pool every
// session is idle.)
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, sess := range p.idle {
		p.retireLocked(sess)
	}
	p.idle = nil
	p.mu.Unlock()
}
