// Package tcpnet deploys a counting network across TCP servers — the
// closest reproduction of the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): balancers are partitioned
// across shard servers, a balancer access is one request/response round
// trip to the shard that owns it (the remote analogue of §1.2's shared
// memory word), and counter cells live on the shard owning the exit wire.
//
// A client session shepherds a single token by walking the wiring locally
// and performing one STEP RPC per balancer crossing, then one CELL RPC at
// the exit — exactly depth(B)+1 round trips per Fetch&Increment.
//
// # Batched wire frames
//
// A session can also shepherd k tokens (or antitokens) as ONE pipeline:
// a STEPN frame carries a signed count, the owning shard applies the
// whole group to the balancer with one StepN/StepAntiN transition and
// replies with the group's first sequence index, and the client folds the
// round-robin split arithmetic locally (it knows the topology and the
// balancer initial states). Groups that diverge re-merge at shared
// successors, so a batch costs one STEPN per balancer TOUCHED plus one
// CELLN per exit wire touched — at most size+t round trips for any k,
// against k·(depth+1) for singles. Negative counts carry antitokens, so
// the same frames serve Fetch&Decrement traffic (ref [2]).
//
// The wire protocol is binary frames (encoding/binary, big endian):
//
//	request:  op(1) id(4)            op 1 = STEP node, op 2 = CELL wire,
//	                                 op 5 = READ wire
//	          op(1) id(4) count(8)   op 3 = STEPN node, op 4 = CELLN wire
//	                                 count int64: > 0 tokens, < 0 antitokens
//	response: val(8)                 STEP: exit port; CELL: counter value;
//	                                 STEPN: first sequence index of the
//	                                 group; CELLN: cell value after the
//	                                 batched add; READ: cell value,
//	                                 unmodified (exact-count read side)
//
// A zero count, an unowned id, or an unknown op is a protocol violation:
// the shard drops the connection.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
	"repro/internal/network"
)

// Protocol op codes.
const (
	opStep  byte = 1
	opCell  byte = 2
	opStepN byte = 3
	opCellN byte = 4
	opRead  byte = 5
)

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves STEP/CELL/STEPN/CELLN requests
// over TCP.
type Shard struct {
	ln    net.Listener
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	wg    sync.WaitGroup
	done  chan struct{}
	mu    sync.Mutex
	conns map[net.Conn]struct{} // live client connections, dropped on Close
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests). The
// shard owns every network node with id ≡ index (mod shards) and every
// output-wire cell with wire ≡ index (mod shards); cells are initialized
// to their wire index per §1.1.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		ln:    ln,
		bals:  make(map[int32]*balancer.PQ),
		cells: make(map[int32]*atomic.Int64),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for wire := 0; wire < topo.OutWidth(); wire++ {
		if wire%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(wire))
			s.cells[int32(wire)] = c
		}
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.ln.Addr().String() }

// Close stops the shard; in-flight connections are dropped (their serve
// loops unblock on the connection close).
func (s *Shard) Close() {
	close(s.done)
	s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// track registers a client connection for Close to drop; it refuses (and
// closes) connections that race with shutdown.
func (s *Shard) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		conn.Close()
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Shard) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Shard) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one client connection until EOF or protocol violation.
func (s *Shard) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.untrack(conn)
	var hdr [5]byte
	var cntBuf [8]byte
	var resp [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		id := int32(binary.BigEndian.Uint32(hdr[1:]))
		var n int64
		switch hdr[0] {
		case opStepN, opCellN:
			if _, err := io.ReadFull(conn, cntBuf[:]); err != nil {
				return
			}
			n = int64(binary.BigEndian.Uint64(cntBuf[:]))
			// Protocol violations: an empty batch, or math.MinInt64
			// (whose negation overflows back to itself and would panic
			// StepAntiN instead of dropping the connection).
			if n == 0 || n == math.MinInt64 {
				return
			}
		}
		var val int64
		switch hdr[0] {
		case opStep:
			b, ok := s.bals[id]
			if !ok {
				return // protocol violation: drop the connection
			}
			val = int64(b.Step())
		case opStepN:
			b, ok := s.bals[id]
			if !ok {
				return
			}
			// One transition for the whole group: its first sequence
			// index comes back; the client folds the split arithmetic.
			if n > 0 {
				val = b.StepN(n)
			} else {
				val = b.StepAntiN(-n)
			}
		case opRead:
			// Non-mutating cell read: id is the bare wire index.
			c, ok := s.cells[id]
			if !ok {
				return
			}
			val = c.Load()
		case opCell, opCellN:
			// The stride (output width t) rides in the upper bits of the
			// id to keep the protocol stateless: id = wire | stride<<16.
			// Networks therefore must have t < 65536 — far beyond any
			// practical configuration.
			wire := id & 0xffff
			stride := int64(id >> 16)
			c, ok := s.cells[wire]
			if !ok {
				return
			}
			if hdr[0] == opCell {
				val = c.Add(stride) - stride
			} else {
				// Batched claim (n > 0) or revocation (n < 0): reply with
				// the cell value after the add; the client reconstructs
				// the |n| individual values.
				val = c.Add(stride * n)
			}
		default:
			return
		}
		binary.BigEndian.PutUint64(resp[:], uint64(val))
		if _, err := conn.Write(resp[:]); err != nil {
			return
		}
	}
}

// Cluster is a client-side view of a sharded deployment: the topology plus
// shard addresses. Sessions (one per goroutine) hold a connection to each
// shard.
type Cluster struct {
	net    *network.Network
	addrs  []string
	stride int64
}

// NewCluster wires a topology to its shard addresses (shard i owns nodes
// and cells ≡ i mod len(addrs)).
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{net: n, addrs: addrs, stride: int64(n.OutWidth())}
}

// Session is a single-goroutine client: one persistent connection per
// shard.
type Session struct {
	c     *Cluster
	conns []net.Conn
	rpcs  atomic.Int64 // round trips performed (E25's cost metric)

	// Batch walk scratch, reused across calls.
	pending []int64
	tally   []int64
	dist    []int64
}

// NewSession dials every shard.
func (c *Cluster) NewSession() (*Session, error) {
	s := &Session{c: c, conns: make([]net.Conn, len(c.addrs))}
	for i, addr := range c.addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: dial shard %d: %w", i, err)
		}
		s.conns[i] = conn
	}
	return s, nil
}

// Close drops the session's connections.
func (s *Session) Close() {
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// RPCs returns the number of round trips this session has performed.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// rpc performs one fixed-frame request/response on the shard owning id.
func (s *Session) rpc(op byte, shard int, id int32) (int64, error) {
	var req [5]byte
	req[0] = op
	binary.BigEndian.PutUint32(req[1:], uint32(id))
	conn := s.conns[shard]
	if _, err := conn.Write(req[:]); err != nil {
		return 0, err
	}
	return s.readVal(conn)
}

// rpcN performs one batched-frame request/response (op STEPN or CELLN).
func (s *Session) rpcN(op byte, shard int, id int32, n int64) (int64, error) {
	var req [13]byte
	req[0] = op
	binary.BigEndian.PutUint32(req[1:5], uint32(id))
	binary.BigEndian.PutUint64(req[5:], uint64(n))
	conn := s.conns[shard]
	if _, err := conn.Write(req[:]); err != nil {
		return 0, err
	}
	return s.readVal(conn)
}

func (s *Session) readVal(conn net.Conn) (int64, error) {
	var resp [8]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return 0, err
	}
	s.rpcs.Add(1)
	return int64(binary.BigEndian.Uint64(resp[:])), nil
}

// Inc shepherds one token through the distributed network and returns its
// counter value: depth RPCs for the balancer crossings plus one for the
// exit cell.
func (s *Session) Inc(pid int) (int64, error) {
	shards := len(s.c.addrs)
	wire := pid % s.c.net.InWidth()
	node, port := s.c.net.InputDest(wire)
	for node >= 0 {
		p, err := s.rpc(opStep, node%shards, int32(node))
		if err != nil {
			return 0, err
		}
		node, port = s.c.net.Dest(node, int(p))
	}
	// port now names the exit wire; fetch the cell value with the stride
	// packed into the id's upper bits.
	id := int32(port) | int32(s.c.stride)<<16
	return s.rpc(opCell, port%shards, id)
}

// ReadCell returns exit cell `wire`'s current value without modifying it
// (op READ) — the building block of cluster-wide exact-count reads.
func (s *Session) ReadCell(wire int) (int64, error) {
	return s.rpc(opRead, wire%len(s.c.addrs), int32(wire))
}

// Read sums the exit cells into the cluster's net count (increments minus
// decrements), one READ round trip per wire. Only meaningful while the
// cluster is quiescent, like counter.Network.Issued.
func (s *Session) Read() (int64, error) {
	var total int64
	for wire := 0; wire < s.c.net.OutWidth(); wire++ {
		v, err := s.ReadCell(wire)
		if err != nil {
			return 0, err
		}
		total += (v - int64(wire)) / s.c.stride
	}
	return total, nil
}

// Dec shepherds one antitoken through the network (one-element DecBatch).
func (s *Session) Dec(pid int) (int64, error) {
	vals, err := s.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch performs k Fetch&Increment operations as one batched pipeline
// entering on wire pid mod w, appending the k claimed values to dst: one
// STEPN round trip per balancer touched, one CELLN per exit wire touched.
// k <= 0 performs no round trips.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch is IncBatch for Fetch&Decrement: the batched frames carry a
// negative count and the k revoked values come back, newest-issued first
// per exit cell.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// batch walks the topology in topological order exactly like
// network.TraverseBatch, but every balancer transition is one STEPN round
// trip to the owning shard; the split arithmetic runs client-side from
// the replied first index and the known initial states.
func (s *Session) batch(wire int, k int64, anti bool, dst []int64) ([]int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	if s.pending == nil {
		s.pending = make([]int64, n.Size())
		s.tally = make([]int64, n.OutWidth())
	}
	pending, tally := s.pending, s.tally
	clear(tally)
	first := n.Size()
	nd, port := n.InputDest(wire)
	if nd < 0 {
		tally[port] += k
	} else {
		pending[nd] = k
		first = nd
	}
	for id := first; id < n.Size(); id++ {
		c := pending[id]
		if c == 0 {
			continue
		}
		pending[id] = 0
		node := n.Node(id)
		q := node.Out()
		sendN := c
		if anti {
			sendN = -c
		}
		start, err := s.rpcN(opStepN, id%shards, int32(id), sendN)
		if err != nil {
			clear(pending) // leave the scratch reusable
			return dst, err
		}
		if cap(s.dist) < q {
			s.dist = make([]int64, q)
		}
		counts := balancer.DistributeInto(node.Balancer().Init()+start, c, s.dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			dnd, dport := n.Dest(id, p)
			if dnd < 0 {
				tally[dport] += cnt
			} else {
				pending[dnd] += cnt
			}
		}
	}
	stride := s.c.stride
	for wireOut, cnt := range tally {
		if cnt == 0 {
			continue
		}
		id := int32(wireOut) | int32(stride)<<16
		sendN := cnt
		if anti {
			sendN = -cnt
		}
		end, err := s.rpcN(opCellN, wireOut%shards, id, sendN)
		if err != nil {
			return dst, err
		}
		if anti {
			for v := end + stride*(cnt-1); v >= end; v -= stride {
				dst = append(dst, v)
			}
		} else {
			for v := end - stride*cnt; v < end; v += stride {
				dst = append(dst, v)
			}
		}
	}
	return dst, nil
}

// Hops returns the number of round trips one single-token Inc costs.
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. Callers never see
// a raw connection error caused by their own Counter shutting down.
var ErrClosed = errors.New("tcpnet: counter closed")

// Counter is a cluster-wide coalescing Fetch&Increment client: concurrent
// Inc callers entering on the same input wire merge into one in-flight
// batched pipeline (a single-flight window per wire, the same trick as
// distnet.Counter), so wide workloads pay one pipeline per window rather
// than depth+1 round trips per token.
//
// Flights run on sessions checked out of a shared connection pool
// (round-robin, configurable width — see Cluster.NewCounterPool) instead
// of one pinned session per wire. The pool self-heals: a session whose
// connection fails mid-flight is evicted pool-wide (a partial frame may
// have desynced its streams) and the flight retries ONCE on a fresh
// session, so a single connection loss is invisible to callers — only a
// second consecutive failure surfaces. After a mid-window failure the
// retry re-runs the whole window, so frames the dead session had already
// applied may leave gaps in the value sequence: values stay globally
// unique and counts stay monotone, but density is only guaranteed while
// no connection is lost.
type Counter struct {
	c     *Cluster
	combs []tcpComb
	pool  *pool

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // flights holding pool sessions
}

// tcpComb is the per-input-wire coalescing state.
type tcpComb struct {
	mu     sync.Mutex
	flying bool
	next   *cwindow
	_      [4]int64
}

// cwindow is one pooled group of coalesced Inc calls.
type cwindow struct {
	k    int64
	vals []int64
	err  error
	done chan struct{}
}

// NewCounter builds the coalescing counter client for the cluster with
// the default pool width (one session slot per input wire, the resource
// envelope of the pre-pool one-session-per-wire client).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session pool
// retaining at most `width` idle sessions (width <= 0 defaults to the
// input width). Flights check sessions out round-robin; bursts beyond the
// width dial extra sessions that are retired on return.
func (c *Cluster) NewCounterPool(width int) *Counter {
	return &Counter{
		c:     c,
		combs: make([]tcpComb, c.net.InWidth()),
		pool:  newPool(c, width),
	}
}

// Inc returns the next counter value. A lone caller pays the single-token
// round trips; concurrent callers on the same wire coalesce.
func (t *Counter) Inc(pid int) (int64, error) {
	wire := pid % t.c.net.InWidth()
	cb := &t.combs[wire]
	cb.mu.Lock()
	if cb.flying {
		w := cb.next
		if w == nil {
			w = &cwindow{done: make(chan struct{})}
			cb.next = w
		}
		idx := w.k
		w.k++
		cb.mu.Unlock()
		<-w.done
		if w.err != nil {
			return 0, w.err
		}
		return w.vals[idx], nil
	}
	cb.flying = true
	cb.mu.Unlock()
	var v int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		v, ferr = sess.Inc(pid)
		return ferr
	})
	t.land(cb, wire)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Dec revokes the counter's most recent increment on the antitoken's exit
// wire (a one-element batched pipeline on a pooled session).
func (t *Counter) Dec(pid int) (int64, error) {
	vals, err := t.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch claims k values as one batched pipeline on a pooled session,
// with the same retry-once resilience as Inc.
func (t *Counter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, false, dst)
}

// DecBatch revokes k values as one batched antitoken pipeline on a pooled
// session.
func (t *Counter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, true, dst)
}

func (t *Counter) batch(pid, k int, anti bool, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	wire := pid % t.c.net.InWidth()
	base := len(dst)
	err := t.flight(func(sess *Session) error {
		var ferr error
		dst, ferr = sess.batch(wire, int64(k), anti, dst[:base])
		return ferr
	})
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// Read returns the cluster's quiescent net count by summing the exit
// cells over a pooled session — the exact-count read side.
func (t *Counter) Read() (int64, error) {
	var total int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		total, ferr = sess.Read()
		return ferr
	})
	return total, err
}

// flight runs one pooled operation: check a session out, run op, and on a
// connection failure evict the session pool-wide and retry ONCE on a
// fresh session — the transparent self-healing path. Close fails new
// flights with ErrClosed and waits for running ones.
func (t *Counter) flight(op func(*Session) error) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.inflight.Add(1)
	t.mu.Unlock()
	defer t.inflight.Done()

	if err := t.attempt(op); err == nil || errors.Is(err, ErrClosed) {
		return err
	}
	// The first session died (possibly mid-window); it has been evicted
	// and a fresh checkout redials. Only this second failure surfaces.
	return t.attempt(op)
}

func (t *Counter) attempt(op func(*Session) error) error {
	sess, err := t.pool.checkout()
	if err != nil {
		return err
	}
	if err := op(sess); err != nil {
		t.pool.evict(sess)
		return err
	}
	t.pool.checkin(sess)
	return nil
}

// land drains the windows that pooled up behind the owner's flight, one
// batched pipeline per window, then releases the wire. Windows stranded
// by Close fail with ErrClosed rather than a raw connection error.
func (t *Counter) land(cb *tcpComb, wire int) {
	for {
		cb.mu.Lock()
		w := cb.next
		cb.next = nil
		if w == nil {
			cb.flying = false
			cb.mu.Unlock()
			return
		}
		cb.mu.Unlock()
		w.err = t.flight(func(sess *Session) error {
			var ferr error
			w.vals, ferr = sess.batch(wire, w.k, false, w.vals[:0])
			return ferr
		})
		close(w.done)
	}
}

// RPCs returns the total round trips performed across the counter's
// sessions, evicted and retired ones included — the count is monotone;
// divide by operations for the E25 msgs/op metric.
func (t *Counter) RPCs() int64 { return t.pool.rpcs() }

// Close shuts the counter down: new flights (and windows stranded behind
// a closing flight) fail with ErrClosed, running flights are waited for,
// and every pooled session is then retired with its round trips folded
// into the monotone RPC total. Idempotent.
func (t *Counter) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	t.inflight.Wait()
	t.pool.close()
}

// pool is the Counter's session pool: up to `width` idle sessions reused
// round-robin across flights, every dialed session tracked in `live` so
// the RPC bill stays monotone through eviction and retirement.
type pool struct {
	c      *Cluster
	width  int
	mu     sync.Mutex
	idle   []*Session
	live   map[*Session]struct{}
	lost   int64 // RPCs of retired sessions
	closed bool
}

func newPool(c *Cluster, width int) *pool {
	if width < 1 {
		width = c.net.InWidth()
	}
	return &pool{c: c, width: width, live: make(map[*Session]struct{})}
}

// checkout hands the caller exclusive use of a session: the least
// recently returned idle one (round-robin across the pool), or a fresh
// dial when none is idle.
func (p *pool) checkout() (*Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(p.idle); n > 0 {
		sess := p.idle[0]
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return sess, nil
	}
	p.mu.Unlock()
	sess, err := p.c.NewSession()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		sess.Close()
		return nil, ErrClosed
	}
	p.live[sess] = struct{}{}
	p.mu.Unlock()
	return sess, nil
}

// checkin returns a healthy session to the idle list; beyond the pool
// width (or after close) it is retired instead.
func (p *pool) checkin(sess *Session) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.width {
		p.idle = append(p.idle, sess)
		p.mu.Unlock()
		return
	}
	p.retireLocked(sess)
	p.mu.Unlock()
}

// evict retires a session whose connection failed pool-wide: it leaves
// the live set, its round trips fold into the monotone total, and every
// future checkout gets a different (or freshly dialed) session.
func (p *pool) evict(sess *Session) {
	p.mu.Lock()
	p.retireLocked(sess)
	p.mu.Unlock()
}

func (p *pool) retireLocked(sess *Session) {
	if _, ok := p.live[sess]; !ok {
		return
	}
	delete(p.live, sess)
	p.lost += sess.RPCs()
	sess.Close()
}

// rpcs returns the monotone round-trip total across live and retired
// sessions.
func (p *pool) rpcs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lost
	for sess := range p.live {
		total += sess.RPCs()
	}
	return total
}

// close retires every idle session and marks the pool closed; sessions
// still checked out are retired by their flight's checkin. (Counter.Close
// waits for flights first, so by the time it closes the pool every
// session is idle.)
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, sess := range p.idle {
		p.retireLocked(sess)
	}
	p.idle = nil
	p.mu.Unlock()
}
