// Package tcpnet deploys a counting network across TCP servers — the
// closest reproduction of the real-system experiments of refs [19,20] of
// the paper (10 Sun UltraSparc-10 workstations): balancers are partitioned
// across shard servers, a balancer access is one request/response round
// trip to the shard that owns it (the remote analogue of §1.2's shared
// memory word), and counter cells live on the shard owning the exit wire.
//
// A client session shepherds a token by walking the wiring locally and
// performing one STEP RPC per balancer crossing, then one CELL RPC at the
// exit — exactly depth(B)+1 round trips per Fetch&Increment.
//
// The wire protocol is fixed-size binary frames (encoding/binary, big
// endian):
//
//	request:  op(1) id(4)            op 1 = STEP node, op 2 = CELL wire
//	response: val(8)                 STEP: exit port; CELL: counter value
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
	"repro/internal/network"
)

// Protocol op codes.
const (
	opStep byte = 1
	opCell byte = 2
)

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves STEP/CELL requests over TCP.
type Shard struct {
	ln    net.Listener
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	wg    sync.WaitGroup
	done  chan struct{}
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests). The
// shard owns every network node with id ≡ index (mod shards) and every
// output-wire cell with wire ≡ index (mod shards); cells are initialized
// to their wire index per §1.1.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		ln:    ln,
		bals:  make(map[int32]*balancer.PQ),
		cells: make(map[int32]*atomic.Int64),
		done:  make(chan struct{}),
	}
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for wire := 0; wire < topo.OutWidth(); wire++ {
		if wire%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(wire))
			s.cells[int32(wire)] = c
		}
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.ln.Addr().String() }

// Close stops the shard; in-flight connections are dropped.
func (s *Shard) Close() {
	close(s.done)
	s.ln.Close()
	s.wg.Wait()
}

func (s *Shard) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one client connection until EOF.
func (s *Shard) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	var req [5]byte
	var resp [8]byte
	for {
		if _, err := io.ReadFull(conn, req[:]); err != nil {
			return
		}
		id := int32(binary.BigEndian.Uint32(req[1:]))
		var val int64
		switch req[0] {
		case opStep:
			b, ok := s.bals[id]
			if !ok {
				return // protocol violation: drop the connection
			}
			val = int64(b.Step())
		case opCell:
			// The stride (output width t) rides in the upper bits of the
			// id to keep the protocol stateless: id = wire | stride<<16.
			// Networks therefore must have t < 65536 — far beyond any
			// practical configuration.
			wire := id & 0xffff
			stride := int64(id >> 16)
			c, ok := s.cells[wire]
			if !ok {
				return
			}
			val = c.Add(stride) - stride
		default:
			return
		}
		binary.BigEndian.PutUint64(resp[:], uint64(val))
		if _, err := conn.Write(resp[:]); err != nil {
			return
		}
	}
}

// Cluster is a client-side view of a sharded deployment: the topology plus
// shard addresses. Sessions (one per goroutine) hold a connection to each
// shard.
type Cluster struct {
	net    *network.Network
	addrs  []string
	stride int64
}

// NewCluster wires a topology to its shard addresses (shard i owns nodes
// and cells ≡ i mod len(addrs)).
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{net: n, addrs: addrs, stride: int64(n.OutWidth())}
}

// Session is a single-goroutine client: one persistent connection per
// shard.
type Session struct {
	c     *Cluster
	conns []net.Conn
}

// NewSession dials every shard.
func (c *Cluster) NewSession() (*Session, error) {
	s := &Session{c: c, conns: make([]net.Conn, len(c.addrs))}
	for i, addr := range c.addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tcpnet: dial shard %d: %w", i, err)
		}
		s.conns[i] = conn
	}
	return s, nil
}

// Close drops the session's connections.
func (s *Session) Close() {
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// rpc performs one fixed-frame request/response on the shard owning id.
func (s *Session) rpc(op byte, shard int, id int32) (int64, error) {
	var req [5]byte
	req[0] = op
	binary.BigEndian.PutUint32(req[1:], uint32(id))
	conn := s.conns[shard]
	if _, err := conn.Write(req[:]); err != nil {
		return 0, err
	}
	var resp [8]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(resp[:])), nil
}

// Inc shepherds one token through the distributed network and returns its
// counter value: depth RPCs for the balancer crossings plus one for the
// exit cell.
func (s *Session) Inc(pid int) (int64, error) {
	shards := len(s.c.addrs)
	wire := pid % s.c.net.InWidth()
	node, port := s.c.net.InputDest(wire)
	for node >= 0 {
		p, err := s.rpc(opStep, node%shards, int32(node))
		if err != nil {
			return 0, err
		}
		node, port = s.c.net.Dest(node, int(p))
	}
	// port now names the exit wire; fetch the cell value with the stride
	// packed into the id's upper bits.
	id := int32(port) | int32(s.c.stride)<<16
	return s.rpc(opCell, port%shards, id)
}

// Hops returns the number of round trips one Inc costs.
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }
