package tcpnet

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
)

// scrape GETs url and returns the status code and body.
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// parseMetrics reads a /metrics body into series -> value (series is
// the full `name{labels}` sample key; comment lines are skipped).
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		out[line[:cut]] = v
	}
	return out
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardControlPlaneEndpoints drives traffic at a 2-shard C(4,8)
// deployment and checks the shard's admin surface end to end: /status
// topology, /metrics counters moving, /health quiescence flipping as
// clients connect and leave, and the 503 after Close.
func TestShardControlPlaneEndpoints(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Shard
	addrs := make([]string, 2)
	for i := range addrs {
		s, err := StartShard("127.0.0.1:0", topo, i, len(addrs))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		shards = append(shards, s)
		addrs[i] = s.Addr()
	}
	srv, err := ctlplane.Serve("127.0.0.1:0", shards[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := scrape(t, base+"/health")
	if code != http.StatusOK {
		t.Fatalf("/health on idle shard = %d: %s", code, body)
	}
	var h ctlplane.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Live || !h.Quiescent {
		t.Fatalf("idle shard health %q (err %v)", body, err)
	}

	ctr := NewCluster(topo, addrs).NewCounter()
	for pid := 0; pid < 8; pid++ {
		if _, err := ctr.Inc(pid); err != nil {
			t.Fatal(err)
		}
	}

	code, body = scrape(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st ShardStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status body %q: %v", body, err)
	}
	if st.Transport != "tcp" || st.Shard != 0 || st.Shards != 2 {
		t.Fatalf("/status = %+v", st)
	}
	if st.Balancers == 0 || st.Cells == 0 {
		t.Fatalf("/status reports an empty partition: %+v", st)
	}

	_, body = scrape(t, base+"/metrics")
	m := parseMetrics(t, body)
	series := `countnet_shard_frames_total{transport="tcp",shard="0"}`
	if m[series] == 0 {
		t.Fatalf("no frames counted after 8 incs:\n%s", body)
	}
	if m[`countnet_shard_conns_open{transport="tcp",shard="0"}`] == 0 {
		t.Fatalf("pooled session not visible in conns gauge:\n%s", body)
	}
	if m[`countnet_dedup_clients{transport="tcp",shard="0"}`] == 0 {
		t.Fatalf("counter's dedup window not visible:\n%s", body)
	}
	if h := shards[0].Health(); !h.Live || h.Quiescent {
		t.Fatalf("shard with open conns reports %+v", h)
	}

	// The client leaving returns the shard to quiescence...
	ctr.Close()
	waitFor(t, "shard quiescence after client close", func() bool {
		h := shards[0].Health()
		return h.Live && h.Quiescent
	})

	// ...and Close flips /health to 503.
	shards[0].Close()
	code, body = scrape(t, base+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health on closed shard = %d: %s", code, body)
	}
}

// gatedConn blocks every Read until the gate closes; writes (and the
// HELLO announcement) pass through, so a dialed session looks healthy
// but its first flight parks mid-air — a deterministic in-flight state.
type gatedConn struct {
	net.Conn
	gate <-chan struct{}
}

func (g *gatedConn) Read(p []byte) (int, error) {
	<-g.gate
	return g.Conn.Read(p)
}

// TestCounterHealthFlipsAcrossDrain parks a flight behind a read gate
// and watches the counter's health walk the full lifecycle:
// live+quiescent -> live+in-flight -> draining (not live, 503) while
// Close waits the flight out -> closed with the flight landed.
func TestCounterHealthFlipsAcrossDrain(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	gate := make(chan struct{})
	cluster.SetDialWrapper(func(c net.Conn) net.Conn { return &gatedConn{Conn: c, gate: gate} })
	ctr := cluster.NewCounter()
	defer ctr.Close()

	if h := ctr.Health(); !h.Live || !h.Quiescent || h.Detail != "live" {
		t.Fatalf("fresh counter health = %+v", h)
	}

	srv, err := ctlplane.Serve("127.0.0.1:0", ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	incDone := make(chan error, 1)
	go func() {
		_, err := ctr.Inc(0)
		incDone <- err
	}()
	waitFor(t, "flight in the air", func() bool { return !ctr.Health().Quiescent })
	if h := ctr.Health(); !h.Live {
		t.Fatalf("in-flight counter should still be live: %+v", h)
	}

	closeDone := make(chan struct{})
	go func() {
		ctr.Close()
		close(closeDone)
	}()
	waitFor(t, "draining state", func() bool { return ctr.Health().Detail == "draining" })
	if h := ctr.Health(); h.Live || h.Quiescent {
		t.Fatalf("draining counter health = %+v", h)
	}
	if code, _ := scrape(t, base+"/health"); code != http.StatusServiceUnavailable {
		t.Fatalf("/health while draining = %d, want 503", code)
	}

	close(gate) // let the parked flight land
	if err := <-incDone; err != nil {
		t.Fatalf("gated Inc failed: %v", err)
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the flight landed")
	}
	if h := ctr.Health(); h.Live || !h.Quiescent || h.Detail != "closed" {
		t.Fatalf("closed counter health = %+v", h)
	}
}

// TestShardedCounterEndpointAggregation checks the fleet-level control
// plane: per-stripe samples side by side under stripe labels, nested
// /status with residue classes, and conjunction health.
func TestShardedCounterEndpointAggregation(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, stop, err := StartShardedCluster(topo, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctr := sc.NewCounter(0)
	defer ctr.Close()
	for pid := 0; pid < 16; pid++ {
		if _, err := ctr.Inc(pid); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := ctlplane.Serve("127.0.0.1:0", ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	_, body := scrape(t, base+"/metrics")
	m := parseMetrics(t, body)
	var fleetRPCs int64
	for stripe := 0; stripe < 2; stripe++ {
		series := `countnet_client_rpcs_total{stripe="` + strconv.Itoa(stripe) + `",transport="tcp"}`
		v, ok := m[series]
		if !ok || v == 0 {
			t.Fatalf("stripe %d rpcs missing from fleet scrape:\n%s", stripe, body)
		}
		fleetRPCs += int64(v)
	}
	if got := ctr.RPCs(); fleetRPCs != got {
		t.Fatalf("scraped stripe rpcs sum to %d, aggregate says %d", fleetRPCs, got)
	}

	code, body := scrape(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st ShardedStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status body %q: %v", body, err)
	}
	if len(st.Stripes) != 2 {
		t.Fatalf("fleet status has %d stripes, want 2: %s", len(st.Stripes), body)
	}
	if st.Stripes[1].ResidueClass != "v*2+1" {
		t.Fatalf("stripe 1 residue class = %q", st.Stripes[1].ResidueClass)
	}
	if h := ctr.Health(); !h.Live {
		t.Fatalf("fleet health = %+v", h)
	}

	// Closing one stripe takes the whole fleet's liveness down, and the
	// detail names the culprit.
	ctr.Counter(1).Close()
	h := ctr.Health()
	if h.Live || !strings.Contains(h.Detail, "stripe=1") {
		t.Fatalf("fleet health after stripe close = %+v", h)
	}
}

// TestSIGTERMDrainExactCount wires the fleet into DrainOnSignal, fires
// a real SIGTERM mid-run, and reconciles: every value handed out before
// the drain is unique, stranded callers see ErrClosed, and a fresh
// client's quiescent read equals exactly the number of successful
// increments — the drain lost and duplicated nothing.
func TestSIGTERMDrainExactCount(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, stop, err := StartShardedCluster(topo, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctr := sc.NewCounter(0)

	done, cancel := DrainOnSignalForTest(t, ctr)
	defer cancel()

	var mu sync.Mutex
	var values []int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for {
				v, err := ctr.Inc(pid)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("pid %d: unexpected error %v", pid, err)
					}
					return
				}
				mu.Lock()
				values = append(values, v)
				mu.Unlock()
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let the fleet take real traffic
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not finish within 10s of SIGTERM")
	}
	wg.Wait()

	if h := ctr.Health(); h.Live || !strings.Contains(h.Detail, "closed") {
		t.Fatalf("post-drain fleet health = %+v", h)
	}

	seen := make(map[int64]struct{}, len(values))
	for _, v := range values {
		if _, dup := seen[v]; dup {
			t.Fatalf("value %d handed out twice across the drain", v)
		}
		seen[v] = struct{}{}
	}

	fresh := sc.NewCounter(0)
	defer fresh.Close()
	total, err := fresh.Read()
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(values)) {
		t.Fatalf("quiescent read = %d, clients hold %d values: drain lost or duplicated tokens",
			total, len(values))
	}
}

// DrainOnSignalForTest installs the production drain hook on SIGTERM.
// signal.Notify intercepts the signal for the whole process, so the
// test harness survives the Kill below.
func DrainOnSignalForTest(t *testing.T, ctr *ShardedCounter) (<-chan struct{}, func()) {
	t.Helper()
	return ctlplane.DrainOnSignal(func() { ctr.Close() }, syscall.SIGTERM)
}
