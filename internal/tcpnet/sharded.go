package tcpnet

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/xport"
)

// ShardedCluster composes S independent TCP deployments the way
// counter.Sharded composes S in-process networks: each stripe is a full
// Cluster (its own shard servers, balancer states and exit cells), a
// caller is routed by the shared shard.StripeOf pid hash, and stripe s
// maps its local values v to the global residue class v·S + s. The hot
// links and server-side atomic words multiply by S on top of the batching
// and coalescing each stripe already runs — striping ∘ coalescing ∘
// batching.
//
// The sub-deployments may share one topology object: a Cluster only reads
// it (wiring and initial states); the mutable balancer state lives on the
// stripe's own servers.
type ShardedCluster struct {
	clusters []*Cluster
	n        int64
	name     string
}

// NewShardedCluster wires S independent deployments into one sharded
// fleet; clusters[i] serves stripe i.
func NewShardedCluster(clusters []*Cluster) (*ShardedCluster, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("tcpnet: NewShardedCluster with no clusters")
	}
	name := clusters[0].net.Name()
	for i, c := range clusters {
		if c == nil {
			return nil, fmt.Errorf("tcpnet: NewShardedCluster cluster %d is nil", i)
		}
		if c.net.InWidth() != clusters[0].net.InWidth() ||
			c.net.OutWidth() != clusters[0].net.OutWidth() {
			return nil, fmt.Errorf("tcpnet: NewShardedCluster cluster %d shape differs", i)
		}
	}
	return &ShardedCluster{
		clusters: clusters,
		n:        int64(len(clusters)),
		name:     fmt.Sprintf("tcpshard%d:%s", len(clusters), name),
	}, nil
}

// StartShardedCluster launches S independent loopback deployments of
// topo, each partitioned across `shards` servers, and returns the fleet
// plus a stop function closing every server — the test/benchmark
// harness; production deployments build Clusters over real addresses and
// use NewShardedCluster.
func StartShardedCluster(topo *network.Network, deployments, shards int) (*ShardedCluster, func(), error) {
	return StartShardedClusterConfig(topo, deployments, shards, ShardConfig{})
}

// StartShardedClusterConfig is StartShardedCluster with per-deployment
// shard tuning (dedup-window sizing) threaded to every server of every
// stripe.
func StartShardedClusterConfig(topo *network.Network, deployments, shards int, cfg ShardConfig) (*ShardedCluster, func(), error) {
	var servers []*Shard
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	clusters := make([]*Cluster, deployments)
	for d := 0; d < deployments; d++ {
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			s, err := StartShardConfig("127.0.0.1:0", topo, i, shards, cfg)
			if err != nil {
				stop()
				return nil, nil, err
			}
			servers = append(servers, s)
			addrs[i] = s.Addr()
		}
		clusters[d] = NewCluster(topo, addrs)
	}
	sc, err := NewShardedCluster(clusters)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return sc, stop, nil
}

// Shards returns the stripe count S.
func (sc *ShardedCluster) Shards() int { return int(sc.n) }

// Cluster returns stripe i's deployment.
func (sc *ShardedCluster) Cluster(i int) *Cluster { return sc.clusters[i] }

// Name identifies the fleet in benchmark tables.
func (sc *ShardedCluster) Name() string { return sc.name }

// NewCounter builds the fleet-wide counter: one pooled, self-healing
// coalescing Counter per stripe (see Cluster.NewCounterPool; width <= 0
// defaults per stripe to its input width), composed by the shared
// xport.ShardedCounter striping core. Each stripe's Counter owns its
// own client id, so the stripes' exactly-once dedup windows — and their
// retry budgets — are fully independent.
func (sc *ShardedCluster) NewCounter(poolWidth int) *ShardedCounter {
	ctrs := make([]*Counter, len(sc.clusters))
	for i, c := range sc.clusters {
		ctrs[i] = c.NewCounterPool(poolWidth)
	}
	return xport.NewShardedCounter(sc.name, ctrs)
}

// ShardedCounter is the fleet-wide client: pid-striped routing over S
// per-stripe pooled coalescing Counters — the shared xport core.
type ShardedCounter = xport.ShardedCounter

// StripeStatus is one stripe's slot in a sharded counter's /status.
type StripeStatus = xport.StripeStatus

// ShardedStatus is the fleet-wide /status document.
type ShardedStatus = xport.ShardedStatus
