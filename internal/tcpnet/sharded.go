package tcpnet

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/shard"
)

// ShardedCluster composes S independent TCP deployments the way
// counter.Sharded composes S in-process networks: each stripe is a full
// Cluster (its own shard servers, balancer states and exit cells), a
// caller is routed by the shared shard.StripeOf pid hash, and stripe s
// maps its local values v to the global residue class v·S + s. The hot
// links and server-side atomic words multiply by S on top of the batching
// and coalescing each stripe already runs — striping ∘ coalescing ∘
// batching.
//
// The sub-deployments may share one topology object: a Cluster only reads
// it (wiring and initial states); the mutable balancer state lives on the
// stripe's own servers.
type ShardedCluster struct {
	clusters []*Cluster
	n        int64
	name     string
}

// NewShardedCluster wires S independent deployments into one sharded
// fleet; clusters[i] serves stripe i.
func NewShardedCluster(clusters []*Cluster) (*ShardedCluster, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("tcpnet: NewShardedCluster with no clusters")
	}
	name := clusters[0].net.Name()
	for i, c := range clusters {
		if c == nil {
			return nil, fmt.Errorf("tcpnet: NewShardedCluster cluster %d is nil", i)
		}
		if c.net.InWidth() != clusters[0].net.InWidth() ||
			c.net.OutWidth() != clusters[0].net.OutWidth() {
			return nil, fmt.Errorf("tcpnet: NewShardedCluster cluster %d shape differs", i)
		}
	}
	return &ShardedCluster{
		clusters: clusters,
		n:        int64(len(clusters)),
		name:     fmt.Sprintf("tcpshard%d:%s", len(clusters), name),
	}, nil
}

// StartShardedCluster launches S independent loopback deployments of
// topo, each partitioned across `shards` servers, and returns the fleet
// plus a stop function closing every server — the test/benchmark
// harness; production deployments build Clusters over real addresses and
// use NewShardedCluster.
func StartShardedCluster(topo *network.Network, deployments, shards int) (*ShardedCluster, func(), error) {
	return StartShardedClusterConfig(topo, deployments, shards, ShardConfig{})
}

// StartShardedClusterConfig is StartShardedCluster with per-deployment
// shard tuning (dedup-window sizing) threaded to every server of every
// stripe.
func StartShardedClusterConfig(topo *network.Network, deployments, shards int, cfg ShardConfig) (*ShardedCluster, func(), error) {
	var servers []*Shard
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	clusters := make([]*Cluster, deployments)
	for d := 0; d < deployments; d++ {
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			s, err := StartShardConfig("127.0.0.1:0", topo, i, shards, cfg)
			if err != nil {
				stop()
				return nil, nil, err
			}
			servers = append(servers, s)
			addrs[i] = s.Addr()
		}
		clusters[d] = NewCluster(topo, addrs)
	}
	sc, err := NewShardedCluster(clusters)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return sc, stop, nil
}

// Shards returns the stripe count S.
func (sc *ShardedCluster) Shards() int { return int(sc.n) }

// Cluster returns stripe i's deployment.
func (sc *ShardedCluster) Cluster(i int) *Cluster { return sc.clusters[i] }

// Name identifies the fleet in benchmark tables.
func (sc *ShardedCluster) Name() string { return sc.name }

// NewCounter builds the fleet-wide counter: one pooled, self-healing
// coalescing Counter per stripe (see Cluster.NewCounterPool; width <= 0
// defaults per stripe to its input width). Each stripe's Counter owns
// its own client id, so the stripes' exactly-once dedup windows — and
// their retry budgets — are fully independent.
func (sc *ShardedCluster) NewCounter(poolWidth int) *ShardedCounter {
	t := &ShardedCounter{
		sc:    sc,
		ctrs:  make([]*Counter, len(sc.clusters)),
		plane: ctlplane.NewFleet(sc.name, "stripe"),
	}
	for i, c := range sc.clusters {
		t.ctrs[i] = c.NewCounterPool(poolWidth)
		t.plane.Add(strconv.Itoa(i), t.ctrs[i])
	}
	return t
}

// ShardedCounter is the fleet-wide client: pid-striped routing over S
// per-stripe pooled coalescing Counters, values mapped into per-stripe
// residue classes, and the read side (RPCs, Read) aggregated across
// stripes so exact-count accounting stays monotone.
type ShardedCounter struct {
	sc    *ShardedCluster
	ctrs  []*Counter
	plane *ctlplane.Fleet // per-stripe aggregation behind one Source
}

// StripeStatus is one stripe's slot in a sharded counter's /status.
type StripeStatus struct {
	Stripe       int             `json:"stripe"`
	ResidueClass string          `json:"residue_class"` // global values this stripe hands out
	Health       ctlplane.Health `json:"health"`
	Status       CounterStatus   `json:"status"`
}

// ShardedStatus is the fleet-wide /status document.
type ShardedStatus struct {
	Name    string         `json:"name"`
	Stripes []StripeStatus `json:"stripes"`
}

// Health implements ctlplane.Source: the fleet is live (and quiescent)
// only when every stripe is.
func (t *ShardedCounter) Health() ctlplane.Health { return t.plane.Health() }

// Status implements ctlplane.Source: every stripe's topology plus the
// residue class its values land in — the document an operator reads to
// see which stripe a global value came from.
func (t *ShardedCounter) Status() any {
	st := ShardedStatus{Name: t.sc.name}
	for i, c := range t.ctrs {
		st.Stripes = append(st.Stripes, StripeStatus{
			Stripe:       i,
			ResidueClass: fmt.Sprintf("v*%d+%d", t.sc.n, i),
			Health:       c.Health(),
			Status:       c.Status().(CounterStatus),
		})
	}
	return st
}

// Gather implements ctlplane.Source: every stripe's samples under a
// stripe="i" label, so per-stripe load (rpcs, retries, windows) sits
// side by side in one scrape and skew across the StripeOf hash is
// visible directly.
func (t *ShardedCounter) Gather() []ctlplane.Sample { return t.plane.Gather() }

// Counter returns stripe i's underlying pooled Counter (for inspection).
func (t *ShardedCounter) Counter(i int) *Counter { return t.ctrs[i] }

// stripe routes a pid to its per-stripe counter.
func (t *ShardedCounter) stripe(pid int) (int64, *Counter) {
	i := shard.StripeOf(pid, int(t.sc.n))
	return int64(i), t.ctrs[i]
}

// Inc returns the next value in pid's stripe residue class; coalescing,
// pooling and retry-once resilience apply within the stripe.
func (t *ShardedCounter) Inc(pid int) (int64, error) {
	i, c := t.stripe(pid)
	v, err := c.Inc(pid)
	if err != nil {
		return 0, err
	}
	return v*t.sc.n + i, nil
}

// Dec revokes pid's stripe's most recent increment on the antitoken's
// exit wire.
func (t *ShardedCounter) Dec(pid int) (int64, error) {
	i, c := t.stripe(pid)
	v, err := c.Dec(pid)
	if err != nil {
		return 0, err
	}
	return v*t.sc.n + i, nil
}

// IncBatch claims k values as one batched pipeline on pid's stripe,
// appending the k globally-mapped values to dst.
func (t *ShardedCounter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	i, c := t.stripe(pid)
	base := len(dst)
	dst, err := c.IncBatch(pid, k, dst)
	if err != nil {
		return dst, err
	}
	return t.remap(dst, base, i), nil
}

// DecBatch revokes k values as one batched antitoken pipeline on pid's
// stripe, appending the k globally-mapped revoked values to dst.
func (t *ShardedCounter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	i, c := t.stripe(pid)
	base := len(dst)
	dst, err := c.DecBatch(pid, k, dst)
	if err != nil {
		return dst, err
	}
	return t.remap(dst, base, i), nil
}

// remap rewrites the values a stripe appended past `from` into its global
// residue class.
func (t *ShardedCounter) remap(vals []int64, from int, stripe int64) []int64 {
	for j := from; j < len(vals); j++ {
		vals[j] = vals[j]*t.sc.n + stripe
	}
	return vals
}

// SetRetryPolicy bounds every stripe's self-healing retry path (see
// Counter.SetRetryPolicy).
func (t *ShardedCounter) SetRetryPolicy(attempts int, budget time.Duration) {
	for _, c := range t.ctrs {
		c.SetRetryPolicy(attempts, budget)
	}
}

// RPCs sums the monotone round-trip totals of every stripe — the
// aggregate E26 cost numerator.
func (t *ShardedCounter) RPCs() int64 {
	var total int64
	for _, c := range t.ctrs {
		total += c.RPCs()
	}
	return total
}

// Read sums the stripes' quiescent net counts (increments minus
// decrements) — which is how the exact-count equivalence tests reconcile
// sharded runs against sequential totals.
func (t *ShardedCounter) Read() (int64, error) {
	var total int64
	for _, c := range t.ctrs {
		v, err := c.Read()
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// Close shuts every stripe's counter down (ErrClosed to stranded
// callers; RPC totals stay counted).
func (t *ShardedCounter) Close() {
	for _, c := range t.ctrs {
		c.Close()
	}
}
